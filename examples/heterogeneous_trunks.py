"""Explore heterogeneous (OS+WS) chiplet integration for the trunk stage.

Reproduces the paper's Sec. IV-C study: brute-force the trunk mapping with
0, 2, 4, and 9 weight-stationary chiplets in the quadrant, then sweep the
latency constraint to see when heterogeneity stops paying off.

Run with::

    python examples/heterogeneous_trunks.py
"""

from repro import TrunkDSE
from repro.sim import format_table


def main() -> None:
    dse = TrunkDSE()
    rows = []
    base = None
    for cfg in dse.table():
        if base is None:
            base = cfg
        rows.append({
            "config": cfg.label,
            "e2e_ms": round(cfg.e2e_ms, 1),
            "energy_mj": round(cfg.energy_j * 1e3, 2),
            "edp_j_ms": round(cfg.edp_j_ms, 2),
            "d_energy_pct": round(
                (cfg.energy_j / base.energy_j - 1) * 100, 1),
            "feasible": cfg.feasible,
            "detection_on": cfg.alloc["DET_TR"][1],
        })
    print(format_table(rows, "Heterogeneous trunk integration (Table I)"))

    print("\nLatency-constraint sensitivity for Het(2):")
    for l_cstr_ms in (70, 85, 94, 120, 200):
        cfg = TrunkDSE(l_cstr_s=l_cstr_ms / 1e3).search(2)
        print(f"  L_cstr={l_cstr_ms:4d} ms -> feasible={cfg.feasible}, "
              f"energy={cfg.energy_j * 1e3:.2f} mJ, "
              f"DET on {cfg.alloc['DET_TR'][1].upper()}")

    # The generic per-quadrant hetero axis (docs/HETERO.md): whole-quadrant
    # compositions as sweep scenarios, scheduled end to end by Algorithm 1
    # on the mixed package (so WS trunks can row-shard, unlike the
    # model-whole DSE mapping above).
    print("\nPer-quadrant packages through the generic hetero axis:")
    from repro.sweep import Scenario, run_scenario
    for token in (None, "trunk:ws", "trunk:ws@1.2"):
        row = run_scenario(Scenario(hetero=token))
        line = (f"  {token or 'homogeneous':>12s}: "
                f"pipe {row['pipe_ms']:7.2f} ms, "
                f"energy {row['energy_j']:.3f} J")
        if token:
            line += f"  [{row['package_composition']}]"
        print(line)


if __name__ == "__main__":
    main()
