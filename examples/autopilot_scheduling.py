"""Schedule the full Autopilot perception pipeline and inspect the result.

Reproduces the paper's Figs. 5-8 flow: quadrant allocation, throughput
matching, the resulting chiplet map, and the NoP traffic report.

Run with::

    python examples/autopilot_scheduling.py
"""

from repro import build_perception_workload, match_throughput, simba_package


def main() -> None:
    workload = build_perception_workload()
    package = simba_package()
    schedule = match_throughput(workload, package, tolerance=1.05)

    print(f"Lat_base (FE+BFPN) = {schedule.base_latency_s * 1e3:.1f} ms\n")

    print("Chiplet mapping (group -> mesh coordinates):")
    for stage in workload.stages:
        print(f"  [{stage.name}]")
        for group in stage.groups:
            gs = schedule.groups[group.name]
            if gs.host is not None:
                print(f"    {group.name:11s} colocated with {gs.host}")
                continue
            coords = [package.chiplet(c).coords for c in gs.chiplet_ids]
            print(f"    {group.name:11s} {gs.plan.mode:9s} "
                  f"x{gs.plan.n_chiplets:<2d} "
                  f"pipe={gs.plan.pipe_latency_s * 1e3:6.1f} ms  {coords}")

    print("\nBusiest chiplets:")
    busy = sorted(schedule.chiplet_busy().items(), key=lambda kv: -kv[1])
    for cid, t in busy[:5]:
        c = package.chiplet(cid)
        print(f"  chiplet {cid:2d} @ {c.coords}  {t * 1e3:6.1f} ms/frame")

    print("\nLargest NoP transfers:")
    edges = sorted(schedule.nop_edges(), key=lambda e: -e.latency_s)
    for e in edges[:5]:
        print(f"  {e.src_group:10s} -> {e.dst_group:10s} "
              f"{e.payload_bytes / 1e6:7.1f} MB over {e.hops:.1f} hops: "
              f"{e.latency_s * 1e3:.2f} ms, {e.energy_j * 1e3:.2f} mJ")

    s = schedule.summary()
    print(f"\npipe {s['pipe_ms']:.1f} ms | e2e {s['e2e_ms']:.1f} ms | "
          f"{s['energy_j']:.3f} J | util {s['utilization']:.1%} | "
          f"NoP {s['nop_latency_ms']:.1f} ms")


if __name__ == "__main__":
    main()
