"""Validate the scheduled platform end to end: DES, floorplan, DRAM.

Cross-checks the analytical schedule three ways:

1. stream frames through a discrete-event simulation and compare the
   measured throughput against the analytical pipelining latency;
2. render the chiplet floorplan (the paper's Figs. 5-8 view);
3. check the package DRAM budget at the camera frame rate.

Run with::

    python examples/platform_validation.py
"""

from repro import build_perception_workload, match_throughput
from repro.arch import dram_report
from repro.sim import stream_validate
from repro.viz import render_floorplan


def main() -> None:
    workload = build_perception_workload()
    schedule = match_throughput(workload)

    print(render_floorplan(schedule))

    result = stream_validate(schedule, n_frames=32)
    print(f"\nDES validation over {len(result.frames)} frames:"
          f"\n  analytical pipe latency {result.predicted_pipe_s * 1e3:.2f}"
          f" ms, measured {result.measured_pipe_s * 1e3:.2f} ms "
          f"(error {result.prediction_error:.2%})"
          f"\n  first-frame latency {result.first_frame_latency_s * 1e3:.1f}"
          f" ms"
          f"\n  sustainable rate {result.sustainable_fps:.1f} FPS "
          f"(target {result.target_fps:.0f} FPS: "
          f"{'met' if result.meets_target_fps else 'NOT met — scale NPUs'})")

    dram = dram_report(workload)
    print(f"\nDRAM budget (LPDDR4 {dram.bandwidth_bytes_per_s / 1e9:.1f}"
          f" GB/s):"
          f"\n  weights {dram.weight_bytes / 1e6:.1f} MB/frame + camera "
          f"input {dram.input_bytes / 1e6:.1f} MB/frame"
          f"\n  demand {dram.demand_bytes_per_s / 1e9:.2f} GB/s at "
          f"{dram.fps:.0f} FPS ({dram.bandwidth_utilization:.1%} of budget)"
          f"\n  DRAM-sustainable frame rate {dram.max_fps:.0f} FPS")


if __name__ == "__main__":
    main()
