"""Bring your own workload: schedule a custom DNN pipeline on the MCM.

The library's scheduler is not tied to the Tesla Autopilot graph — any
pipeline expressed as stages of layer groups can be throughput-matched.
This example builds a compact radar+camera fusion stack (2 radar encoders,
4 camera encoders, a fusion transformer, a single detection head) and maps
it onto the 6x6 package.

Run with::

    python examples/custom_workload.py
"""

from repro import ThroughputMatcher, simba_package
from repro.workloads import conv, dense, matmul, softmax
from repro.workloads.graph import LayerGroup, PerceptionWorkload, Stage


def build_radar_fusion_workload() -> PerceptionWorkload:
    encoders = Stage("ENCODERS")
    camera_chain = (
        conv("cam.conv1", (128, 256), 32, 3, r=5, stride=4),
        conv("cam.conv2", (64, 128), 64, 32, r=3, stride=2),
        conv("cam.conv3", (32, 64), 128, 64, r=3, stride=2),
    )
    encoders.add(LayerGroup(
        name="CAM_ENC", layers=camera_chain, stage="ENCODERS",
        instances=4, instance_axis="camera", pipeline_splittable=True))
    radar_chain = (
        conv("radar.conv1", (64, 64), 32, 2, r=5),
        conv("radar.conv2", (32, 64), 64, 32, r=3, stride=2),
    )
    encoders.add(LayerGroup(
        name="RADAR_ENC", layers=radar_chain, stage="ENCODERS",
        instances=2, instance_axis="model"))

    fusion = Stage("FUSION")
    fusion.add(LayerGroup(
        name="F_QKV",
        layers=(dense("f_qkv", (32, 64), 3 * 128, 128),),
        stage="FUSION", instances=6, instance_axis="model"))
    fusion.add(LayerGroup(
        name="F_ATTN",
        layers=(matmul("f_scores", (32, 64), 512, 128),
                softmax("f_softmax", (32, 64), 512),
                matmul("f_ctx", (32, 64), 128, 512)),
        stage="FUSION", depends_on=("F_QKV",)))
    fusion.add(LayerGroup(
        name="F_FFN",
        layers=(dense("f_ffn1", (32, 64), 512, 128),
                dense("f_ffn2", (32, 64), 128, 512)),
        stage="FUSION", depends_on=("F_ATTN",)))

    heads = Stage("HEADS")
    heads.add(LayerGroup(
        name="DET_HEAD",
        layers=(conv("det.conv", (32, 64), 128, 128, r=3),
                dense("det.pred", (32, 64), 16, 128)),
        stage="HEADS"))
    # Pad to four stages so the quadrant allocation applies unchanged.
    post = Stage("POST")
    post.add(LayerGroup(
        name="TRACKER",
        layers=(dense("track.assoc", (1, 512), 64, 64),),
        stage="POST"))
    return PerceptionWorkload(stages=[encoders, fusion, heads, post])


def main() -> None:
    workload = build_radar_fusion_workload()
    matcher = ThroughputMatcher(workload, simba_package(), tolerance=1.05)
    schedule = matcher.run()
    print(f"custom workload: {workload.total_macs / 1e9:.2f} GMACs")
    for name, gs in schedule.groups.items():
        where = (f"{gs.plan.n_chiplets} chiplets ({gs.plan.mode})"
                 if gs.host is None else f"colocated with {gs.host}")
        print(f"  {name:10s} {where:28s} "
              f"pipe {gs.plan.pipe_latency_s * 1e6:8.1f} us")
    s = schedule.summary()
    print(f"\npipe {s['pipe_ms']:.3f} ms | e2e {s['e2e_ms']:.3f} ms | "
          f"energy {s['energy_j'] * 1e3:.2f} mJ")


if __name__ == "__main__":
    main()
