"""Scale the scheduler to both FSD NPUs (72 chiplets), as in Fig. 10.

Run with::

    python examples/scaling_dual_npu.py
"""

from repro import build_perception_workload, match_throughput, simba_package


def main() -> None:
    single = match_throughput(build_perception_workload(),
                              simba_package(npus=1))
    dual = match_throughput(build_perception_workload(),
                            simba_package(npus=2))

    print("Dual-NPU sharding trace (paper Fig. 10):")
    for t in dual.trace:
        if t.phase == "init":
            continue
        print(f"  step {t.step:2d} [{t.phase:6s}] {t.group:10s} -> "
              f"{t.n_chiplets:2d} chiplets | pipe {t.pipe_latency_ms:6.1f} "
              f"ms | {t.chiplets_remaining} chiplets remaining")

    s1, s2 = single.summary(), dual.summary()
    print(f"\n1 NPU (36 chiplets): pipe {s1['pipe_ms']:.1f} ms, "
          f"e2e {s1['e2e_ms']:.1f} ms")
    print(f"2 NPUs (72 chiplets): pipe {s2['pipe_ms']:.1f} ms, "
          f"e2e {s2['e2e_ms']:.1f} ms")
    print(f"pipelining speedup: {s1['pipe_ms'] / s2['pipe_ms']:.2f}x "
          f"(paper: ~2x)")


if __name__ == "__main__":
    main()
