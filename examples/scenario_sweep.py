"""Scenario sweep: fan a 72-point design grid across worker processes.

Sweeps tolerance x NoP bandwidth x package size x workload variant x
heterogeneous WS budget — the ablation axes the paper implies but never
runs — and shows that the parallel path reproduces the serial results
byte-for-byte while the shared plan cache absorbs the redundant pricing.

Run with::

    python examples/scenario_sweep.py

Equivalent CLI::

    chiplet-npu sweep --tolerances 1.0,1.05,1.2 --nop-gbps none,50 \\
        --npus 1,2 --workloads default,quad-camera \\
        --het-budgets none,2,4 --workers 4
"""

import time

from repro.sweep import ScenarioSweep, scenario_grid


def main() -> None:
    grid = scenario_grid(
        tolerances=(1.0, 1.05, 1.2),
        nop_gbps=(None, 50.0),
        npus=(1, 2),
        workloads=("default", "quad-camera"),
        het_ws_budgets=(None, 2, 4),
    )
    print(f"grid: {len(grid)} scenarios "
          "(3 tolerances x 2 NoP bandwidths x 2 package sizes "
          "x 2 workloads x 3 het budgets)")

    t0 = time.perf_counter()
    serial = ScenarioSweep(grid, workers=1).run()
    t1 = time.perf_counter()
    parallel = ScenarioSweep(grid, workers=4).run()
    t2 = time.perf_counter()

    print(f"serial:   {t1 - t0:6.2f} s   "
          f"plan cache {serial.summary()['plan_cache']}")
    print(f"parallel: {t2 - t1:6.2f} s   "
          f"plan cache {parallel.summary()['plan_cache']}")
    identical = serial.rows_json() == parallel.rows_json()
    print(f"serial == parallel (byte-identical rows): {identical}")
    assert identical

    # A few headline rows: how the dual-NPU package and the heterogeneous
    # trunk budget move the headline metrics.
    print("\nscenario highlights:")
    for key in (
            "tol=1.05|nop=default|npus=1|wl=default|het=-",
            "tol=1.05|nop=default|npus=2|wl=default|het=-",
            "tol=1.05|nop=default|npus=1|wl=default|het=2",
            "tol=1.05|nop=50|npus=1|wl=quad-camera|het=4",
    ):
        row = serial.row(key)
        trunk = (f"  trunk EDP {row['trunk_edp_j_ms']:.2f} J*ms"
                 if "trunk_edp_j_ms" in row else "")
        print(f"  {key}")
        print(f"    pipe {row['pipe_ms']:7.2f} ms   "
              f"e2e {row['e2e_ms']:7.1f} ms   "
              f"energy {row['energy_j']:.3f} J   "
              f"chiplets {row['used_chiplets']}{trunk}")


if __name__ == "__main__":
    main()
