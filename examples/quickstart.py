"""Quickstart: price a layer, build the pipeline, schedule it on an MCM.

Run with::

    python examples/quickstart.py
"""

from repro import (
    build_perception_workload,
    evaluate,
    match_throughput,
    nvdla_chiplet,
    shidiannao_chiplet,
)
from repro.workloads import conv


def main() -> None:
    # 1. Price a single layer on both chiplet dataflows.
    layer = conv("demo_conv", (90, 160), 128, 64, r=3)
    for accel in (shidiannao_chiplet(), nvdla_chiplet()):
        cost = evaluate(layer, accel)
        print(f"{accel.name:18s} latency={cost.latency_ms:7.3f} ms "
              f"energy={cost.energy_j * 1e3:6.3f} mJ "
              f"util={cost.utilization:5.1%} bound={cost.bound}")

    # 2. Build the full Tesla-Autopilot-style perception workload.
    workload = build_perception_workload()
    print(f"\npipeline: {len(workload.all_layers())} layers, "
          f"{workload.total_macs / 1e9:.0f} GMACs per frame")

    # 3. Schedule it on the 6x6 Simba-like MCM with Algorithm 1.
    schedule = match_throughput(workload)
    summary = schedule.summary()
    print(f"\n36-chiplet schedule:"
          f"\n  pipe latency  {summary['pipe_ms']:.1f} ms"
          f"\n  E2E latency   {summary['e2e_ms']:.1f} ms"
          f"\n  energy        {summary['energy_j']:.3f} J/frame"
          f"\n  utilization   {summary['utilization']:.1%}")


if __name__ == "__main__":
    main()
