"""Per-file AST rules: R1 determinism, R2 plan-key hygiene, R4 gated
columns, R5 units naming, R6 numpy confinement.

Each rule is a pure function ``(path, tree, ...) -> list[Diagnostic]``
over one parsed module; rule *scoping* (which packages a rule applies
to) lives in :mod:`repro.devtools.runner`, and pragma suppression in
:mod:`repro.devtools.diagnostics`.  The repo-level R3 axis-coherence
check is in :mod:`repro.devtools.axes`.
"""

from __future__ import annotations

import ast

from .diagnostics import Diagnostic

#: packages (under ``src/repro/``) whose code feeds row payloads, key
#: fragments, or JSON artifacts — the R1 determinism scope.
R1_PACKAGES = frozenset(
    {"analysis", "core", "cost", "design", "experiments", "sweep"})

#: the only modules allowed to touch :mod:`hashlib` directly (R2): the
#: plan-store content hash and the cache that fronts it.
R2_ALLOWED_SUFFIXES = ("core/planstore.py", "core/plancache.py")

#: packages whose row-dict builders the R4 gated-column rule parses.
R4_PACKAGES = frozenset({"sweep"})

#: the only module allowed to import numpy (R6): the vectorized batch
#: pricing engine, which guards the import and falls back to stdlib.
R6_ALLOWED_SUFFIXES = ("cost/batch.py",)

#: variable names R4 treats as sweep row dicts.
R4_ROW_NAMES = frozenset({"row", "out"})

#: calls whose results depend on wall clock, PID, or entropy — anything
#: matching ``(module, attr)`` as the last two dotted components.
_R1_BANNED = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    # Sleeping is wall-clock coupling too: retry backoff must compute
    # durations deterministically and wait through the injectable
    # repro.sweep.resilience.Clock (RealClock owns the one sanctioned
    # time.sleep call site).
    ("time", "sleep"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
    ("os", "urandom"), ("os", "getpid"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
    ("random", "random"), ("random", "randint"),
    ("random", "randrange"), ("random", "choice"),
    ("random", "choices"), ("random", "shuffle"),
    ("random", "sample"), ("random", "uniform"),
    ("random", "gauss"), ("random", "getrandbits"),
    ("random", "randbytes"),
}

#: quantity words that demand a unit (or ratio) suffix when they end a
#: numeric field/column name (R5).
_R5_QUANTITY_WORDS = ("latency", "energy", "bandwidth", "frequency",
                      "duration", "period", "power", "time")

#: the suffix vocabulary R5 points offenders at.
R5_SUFFIXES = ("_s", "_ms", "_ns", "_hz", "_ghz", "_gbps", "_j", "_mj",
               "_bytes", "_fps", "_pct", "_share", "_util", "_ratio")


def _dotted(node: ast.AST) -> tuple | None:
    """``a.b.c`` -> ``("a", "b", "c")``; None for non-name chains."""
    parts: list = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def _import_aliases(tree: ast.AST) -> dict:
    """Map local names bound by ``from X import y [as z]`` to (X, y)."""
    aliases: dict = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                aliases[alias.asname or alias.name] = \
                    (node.module.rsplit(".", 1)[-1], alias.name)
    return aliases


# ----------------------------------------------------------------------
# R1: determinism
# ----------------------------------------------------------------------

def check_determinism(path: str, tree: ast.AST) -> list:
    """R1: ban wall-clock/entropy calls and unordered-set iteration.

    Row payloads, key fragments, and JSON artifacts must be pure
    functions of the scenario; a ``time.time()`` or a ``for x in {...}``
    in their data path silently breaks the byte-stability contract.
    """
    diags: list = []
    aliases = _import_aliases(tree)

    def resolve(func: ast.AST) -> tuple | None:
        chain = _dotted(func)
        if chain is None:
            return None
        if len(chain) == 1:
            return aliases.get(chain[0])
        return (chain[-2], chain[-1])

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = resolve(node.func)
            if name is not None and name in _R1_BANNED:
                diags.append(Diagnostic(
                    "R1", path, node.lineno, node.col_offset,
                    f"nondeterministic call {'.'.join(name)}(); row "
                    f"bytes, plan keys, and artifacts must be pure "
                    f"functions of the scenario"))
            elif (name == ("random", "Random") and not node.args
                    and not node.keywords):
                diags.append(Diagnostic(
                    "R1", path, node.lineno, node.col_offset,
                    "unseeded random.Random(); pass an explicit seed"))
        iters: list = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it, aliases):
                diags.append(Diagnostic(
                    "R1", path, it.lineno, it.col_offset,
                    "iteration over an unordered set; wrap it in "
                    "sorted(...) before it feeds rows, keys, or "
                    "artifacts"))
    return diags


def _is_set_expr(node: ast.AST, aliases: dict) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        chain = _dotted(node.func)
        return chain is not None and chain[-1] in ("set", "frozenset")
    return False


# ----------------------------------------------------------------------
# R2: plan-key hygiene
# ----------------------------------------------------------------------

def check_hash_hygiene(path: str, tree: ast.AST) -> list:
    """R2: no direct ``hashlib`` use outside the plan-store modules.

    Every plan key must be minted by ``plan_key_hash`` /
    ``PlanStore.key_hash`` so no fast path can fork the shard-isolation
    contract with a subtly different canonicalization.
    """
    if path.replace("\\", "/").endswith(R2_ALLOWED_SUFFIXES):
        return []
    diags: list = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            chain = _dotted(node.func)
            if chain is not None and len(chain) >= 2 \
                    and chain[-2] == "hashlib":
                diags.append(Diagnostic(
                    "R2", path, node.lineno, node.col_offset,
                    f"direct hashlib.{chain[-1]}() outside "
                    f"core/planstore.py|core/plancache.py; route key "
                    f"construction through plan_key_hash or "
                    f"PlanStore.key_hash"))
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            module = getattr(node, "module", None)
            names = [a.name for a in node.names]
            if module == "hashlib" or "hashlib" in names:
                diags.append(Diagnostic(
                    "R2", path, node.lineno, node.col_offset,
                    "hashlib import outside core/planstore.py|"
                    "core/plancache.py; plan/key hashing is owned by "
                    "plan_key_hash / PlanStore.key_hash"))
    return diags


# ----------------------------------------------------------------------
# R4: gated columns
# ----------------------------------------------------------------------

def check_gated_columns(path: str, tree: ast.AST,
                        frozen_columns: frozenset) -> list:
    """R4: row columns outside the frozen baseline need an axis guard.

    In the sweep row builders, writing a key that is absent from the
    frozen fixtures (``tests/data/frozen_*.json``) without an
    only-when-set ``if`` guard would change the bytes of every default
    artifact.  Keys are resolved from string constants and from loops
    over module-level string tuples (the ``_DRAM_FIELDS`` pattern);
    writes the rule cannot resolve are skipped, and dynamic
    ``row.update(...)`` calls must themselves sit behind a guard.
    """
    if not frozen_columns:
        return []
    diags: list = []
    constants = _module_string_tuples(tree)
    parents = _parent_map(tree)

    def guarded(node: ast.AST) -> bool:
        cur = parents.get(node)
        while cur is not None:
            if isinstance(cur, ast.If):
                return True
            cur = parents.get(cur)
        return False

    def flag(node: ast.AST, keys) -> None:
        for key in keys:
            if key not in frozen_columns and not guarded(node):
                diags.append(Diagnostic(
                    "R4", path, node.lineno, node.col_offset,
                    f"row column {key!r} is not in the frozen baseline "
                    f"(tests/data/frozen_*.json); write it behind an "
                    f"only-when-set guard or extend the fixture"))

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in R4_ROW_NAMES):
                    flag(node, _subscript_keys(target, parents, constants))
                elif (isinstance(target, ast.Name)
                        and target.id in R4_ROW_NAMES
                        and isinstance(node.value, ast.Dict)):
                    flag(node, [k.value for k in node.value.keys
                                if isinstance(k, ast.Constant)
                                and isinstance(k.value, str)])
        elif (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "update"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in R4_ROW_NAMES):
            arg = node.args[0] if node.args else None
            if isinstance(arg, ast.Dict) and all(
                    isinstance(k, ast.Constant) for k in arg.keys):
                flag(node, [k.value for k in arg.keys])
            elif not guarded(node):
                diags.append(Diagnostic(
                    "R4", path, node.lineno, node.col_offset,
                    "dynamic row.update(...) outside an axis guard can "
                    "introduce columns absent from the frozen baseline; "
                    "guard it on the axis that produces them"))
    return diags


def _module_string_tuples(tree: ast.AST) -> dict:
    """Module-level ``NAME = ("a", "b", ...)`` constants (R4 loop iters)."""
    constants: dict = {}
    for node in getattr(tree, "body", []):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, (ast.Tuple, ast.List)) \
                and all(isinstance(e, ast.Constant)
                        and isinstance(e.value, str)
                        for e in node.value.elts):
            constants[node.targets[0].id] = \
                tuple(e.value for e in node.value.elts)
    return constants


def _parent_map(tree: ast.AST) -> dict:
    parents: dict = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _subscript_keys(target: ast.Subscript, parents: dict,
                    constants: dict) -> list:
    """Resolve ``row[<expr>]`` store keys to string constants, or []."""
    key = target.slice
    if isinstance(key, ast.Constant) and isinstance(key.value, str):
        return [key.value]
    if isinstance(key, ast.Name):
        # `for name in _FIELDS: row[name] = ...` — resolve the loop iter.
        cur = parents.get(target)
        while cur is not None:
            if isinstance(cur, ast.For) \
                    and isinstance(cur.target, ast.Name) \
                    and cur.target.id == key.id:
                it = cur.iter
                if isinstance(it, ast.Name) and it.id in constants:
                    return list(constants[it.id])
                if isinstance(it, (ast.Tuple, ast.List)) and all(
                        isinstance(e, ast.Constant)
                        and isinstance(e.value, str) for e in it.elts):
                    return [e.value for e in it.elts]
                return []
            cur = parents.get(cur)
    return []


# ----------------------------------------------------------------------
# R5: units naming
# ----------------------------------------------------------------------

def check_unit_suffixes(path: str, tree: ast.AST) -> list:
    """R5: numeric fields/columns must not end in a bare quantity word.

    ``latency`` says nothing about seconds vs milliseconds; ``pipe_ms``
    does.  The rule fires on dataclass field names and row/dict string
    keys whose final word is a unit-less quantity, and points at the
    suffix vocabulary the repo already uses everywhere.
    """
    diags: list = []

    def offends(name: str) -> bool:
        if not isinstance(name, str) or not name:
            return False
        word = name.lower()
        return any(word == q or word.endswith("_" + q)
                   for q in _R5_QUANTITY_WORDS)

    def flag(node: ast.AST, name: str, what: str) -> None:
        diags.append(Diagnostic(
            "R5", path, node.lineno, node.col_offset,
            f"{what} {name!r} names a quantity without a unit; add one "
            f"of {'/'.join(R5_SUFFIXES)} (see docs/LINT.md)"))

    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) \
                        and isinstance(stmt.target, ast.Name) \
                        and _is_numeric_annotation(stmt.annotation) \
                        and offends(stmt.target.id):
                    flag(stmt, stmt.target.id, "numeric field")
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and offends(key.value):
                    flag(key, key.value, "column key")
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.slice, ast.Constant) \
                        and offends(target.slice.value):
                    flag(target, target.slice.value, "column key")
    return diags


def _is_numeric_annotation(annotation: ast.AST) -> bool:
    text = ast.unparse(annotation)
    return ("float" in text or "int" in text) and "str" not in text


# ----------------------------------------------------------------------
# R6: numpy confinement
# ----------------------------------------------------------------------

def check_numpy_confinement(path: str, tree: ast.AST) -> list:
    """R6: no numpy import outside ``cost/batch.py``.

    The deterministic scalar core stays stdlib-only — its results are
    the repo's byte-stability reference, and numpy's float fast paths
    (pairwise summation, SIMD reductions) must never silently replace
    the scalar arithmetic.  The one sanctioned import site is the batch
    pricing engine, which is locked to exact scalar equality by the
    pricing fixtures and property tests.
    """
    if path.replace("\\", "/").endswith(R6_ALLOWED_SUFFIXES):
        return []
    diags: list = []
    for node in ast.walk(tree):
        offender = None
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".", 1)[0] == "numpy":
                    offender = alias.name
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.split(".", 1)[0] == "numpy":
                offender = module
        if offender is not None:
            diags.append(Diagnostic(
                "R6", path, node.lineno, node.col_offset,
                f"numpy import ({offender}) outside "
                f"{'|'.join(R6_ALLOWED_SUFFIXES)}; the scalar core is "
                f"stdlib-only — route vectorized work through "
                f"repro.cost.batch"))
    return diags
