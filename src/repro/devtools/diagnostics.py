"""Diagnostic records and suppression pragmas for repro-lint.

A :class:`Diagnostic` is one finding: a stable rule ID, a file position,
and a message.  Findings can be silenced at the offending line with an
end-of-line pragma::

    tmp = f".{prefix}.{uuid.uuid4().hex}.tmp"  # repro-lint: disable=R1

or for a whole file (anywhere in the file, conventionally at the top)::

    # repro-lint: disable-file=R1,R5

Pragmas are read from real COMMENT tokens (via :mod:`tokenize`), so a
pragma-shaped string literal never disables anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

#: ``disable`` scopes one source line; ``disable-file`` scopes the file.
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*"
    r"([A-Z][A-Z0-9]*(?:\s*,\s*[A-Z][A-Z0-9]*)*)")


@dataclass(frozen=True)
class Diagnostic:
    """One repro-lint finding at a file position."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def format(self) -> str:
        """``path:line:col: RULE message`` — the CI/editor-friendly form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} " \
               f"{self.message}"

    def to_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}


@dataclass(frozen=True)
class Suppressions:
    """Pragma-disabled rules for one source file."""

    #: rules disabled for the entire file
    file_rules: frozenset = frozenset()
    #: line -> rules disabled on that line
    line_rules: dict = field(default_factory=dict)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_rules:
            return True
        return rule in self.line_rules.get(line, ())


def scan_pragmas(src: str) -> Suppressions:
    """Extract ``# repro-lint: disable[-file]=...`` pragmas from source.

    Only genuine comment tokens count; unreadable source yields an empty
    suppression set (the caller will have failed to parse it anyway).
    """
    file_rules: set = set()
    line_rules: dict = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(src).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except (tokenize.TokenizeError, SyntaxError, IndentationError):
        return Suppressions()
    for line, text in comments:
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = {tok.strip() for tok in match.group(2).split(",")}
        if match.group(1) == "disable-file":
            file_rules |= rules
        else:
            line_rules.setdefault(line, set()).update(rules)
    return Suppressions(
        file_rules=frozenset(file_rules),
        line_rules={ln: frozenset(rs) for ln, rs in line_rules.items()})
