"""repro-lint driver: file discovery, rule orchestration, and reports.

``chiplet-npu lint`` (or ``python -m repro.devtools.runner``) runs every
rule over ``src/repro`` plus the repo-level R3 coherence check, prints
``path:line:col: RULE message`` diagnostics, and exits non-zero when any
survive the pragma filter.  Explicit file arguments run the per-file
rules on those files alone (with every rule in scope — how the self-test
fixtures are exercised).
"""

from __future__ import annotations

import argparse
import ast
import json
import pathlib
import sys

from .axes import CLI_PATH, DESIGN_DOCS_PATH, DOCS_PATH, SCENARIO_PATH, \
    check_axis_coherence
from .diagnostics import Diagnostic, scan_pragmas
from .rules import (
    R1_PACKAGES,
    R2_ALLOWED_SUFFIXES,
    R4_PACKAGES,
    R6_ALLOWED_SUFFIXES,
    check_determinism,
    check_gated_columns,
    check_hash_hygiene,
    check_numpy_confinement,
    check_unit_suffixes,
)

#: rule ID -> one-line description (the ``--list-rules`` output and the
#: vocabulary docs/LINT.md documents).
RULES = {
    "R1": "determinism: no wall-clock/entropy calls or unordered-set "
          "iteration in row/key/artifact-producing packages "
          f"({', '.join(sorted(R1_PACKAGES))})",
    "R2": "plan-key hygiene: hashlib only inside "
          f"{' and '.join(R2_ALLOWED_SUFFIXES)} "
          "(plan_key_hash / PlanStore.key_hash own key construction)",
    "R3": "axis coherence: every Scenario axis threads through "
          "AXIS_SPECS, key/to_dict, the CLI sweep/report/design flags, "
          "and the docs/SWEEP.md + docs/DESIGN.md flag tables; every "
          "sweep- and design-parser flag has a docs table row and no "
          "row names a retired flag",
    "R4": "gated columns: sweep row keys outside the frozen fixtures "
          "are written behind only-when-set guards",
    "R5": "units naming: numeric fields/columns carry unit suffixes "
          "(_s/_ms/_ghz/_gbps/_j/_bytes/...), never bare quantity words",
    "R6": "numpy confinement: numpy imports only inside "
          f"{'|'.join(R6_ALLOWED_SUFFIXES)} — the deterministic scalar "
          "core stays stdlib-only",
}


def find_repo_root(start: pathlib.Path | None = None) -> pathlib.Path:
    """The repo root: nearest ancestor holding ``src/repro``.

    Defaults to the checkout this module was imported from, so the lint
    CLI works from any working directory.
    """
    here = start or pathlib.Path(__file__).resolve()
    for candidate in [here, *here.parents]:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    raise FileNotFoundError(
        f"no src/repro tree above {here}; pass --root explicitly")


def iter_source_files(root: pathlib.Path) -> list:
    """Every lintable module under ``src/repro``, in sorted order."""
    return sorted((root / "src" / "repro").rglob("*.py"))


def load_frozen_columns(root: pathlib.Path) -> frozenset:
    """Union of row keys across the ``tests/data/frozen_*.json`` fixtures.

    The R4 baseline: any fixture whose document carries a ``row`` object
    contributes that object's keys.  A repo without fixtures yields an
    empty set, which disables R4 rather than flagging everything.
    """
    columns: set = set()
    for fixture in sorted((root / "tests" / "data").glob("frozen_*.json")):
        try:
            doc = json.loads(fixture.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        row = doc.get("row") if isinstance(doc, dict) else None
        if isinstance(row, dict):
            columns.update(row)
    return frozenset(columns)


def _package_of(path: pathlib.Path, root: pathlib.Path) -> str | None:
    """Subpackage of ``src/repro`` a file lives in; None when outside.

    ``""`` marks top-level modules (``cli.py``); ``None`` marks explicit
    out-of-tree files (self-test fixtures), which get every rule.
    """
    try:
        rel = path.resolve().relative_to(root / "src" / "repro")
    except ValueError:
        return None
    return rel.parts[0] if len(rel.parts) > 1 else ""


def lint_file(path: pathlib.Path, root: pathlib.Path,
              frozen_columns: frozenset) -> list:
    """Run the per-file rules (R1/R2/R4/R5/R6) on one module."""
    try:
        rel = str(path.resolve().relative_to(root))
    except ValueError:
        rel = str(path)
    try:
        src = path.read_text()
        tree = ast.parse(src, filename=rel)
    except OSError as exc:
        return [Diagnostic("E0", rel, 1, 0, f"cannot read file: {exc}")]
    except SyntaxError as exc:
        return [Diagnostic("E0", rel, exc.lineno or 1, 0,
                           f"syntax error: {exc.msg}")]
    package = _package_of(path, root)
    diags: list = []
    if package is None or package in R1_PACKAGES:
        diags += check_determinism(rel, tree)
    diags += check_hash_hygiene(rel, tree)
    if package is None or package in R4_PACKAGES:
        diags += check_gated_columns(rel, tree, frozen_columns)
    diags += check_unit_suffixes(rel, tree)
    diags += check_numpy_confinement(rel, tree)
    suppressions = scan_pragmas(src)
    return [d for d in diags
            if not suppressions.is_suppressed(d.rule, d.line)]


def lint_repo_axes(root: pathlib.Path) -> list:
    """Run the repo-level R3 coherence check against the real tree."""
    surfaces = []
    for rel in (SCENARIO_PATH, CLI_PATH, DOCS_PATH, DESIGN_DOCS_PATH):
        target = root / rel
        if not target.is_file():
            return [Diagnostic("R3", rel, 1, 0,
                               "coherence surface missing from the repo")]
        surfaces.append(target.read_text())
    return check_axis_coherence(*surfaces[:3],
                                design_docs_text=surfaces[3])


def run_lint(paths: list | None = None,
             root: pathlib.Path | None = None) -> tuple:
    """Lint the repo (default) or explicit files.

    Returns ``(diagnostics, checked_file_count)``.  The repo run covers
    every module under ``src/repro`` plus R3; explicit paths run the
    per-file rules only, with all of them in scope regardless of
    location — the contract the fixture self-tests rely on.
    """
    root = root or find_repo_root()
    frozen = load_frozen_columns(root)
    diags: list = []
    if paths:
        targets = [pathlib.Path(p) for p in paths]
    else:
        targets = iter_source_files(root)
        diags += lint_repo_axes(root)
    for target in targets:
        diags += lint_file(target, root, frozen)
    return sorted(diags, key=lambda d: d.sort_key), len(targets)


def render_report(diags: list, checked: int) -> dict:
    """The JSON report document (also the ``--output`` artifact)."""
    return {
        "checked_files": checked,
        "issues": [d.to_dict() for d in diags],
        "rules": RULES,
    }


def render_text(diags: list, checked: int) -> str:
    lines = [d.format() for d in diags]
    noun = "issue" if len(diags) == 1 else "issues"
    lines.append(f"repro-lint: {len(diags)} {noun} "
                 f"({checked} files checked, rules "
                 f"{'/'.join(sorted(RULES))})")
    return "\n".join(lines)


def main(argv: list | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="chiplet-npu lint",
        description="repro-lint: the repo's determinism-contract static "
                    "analysis (rules R1-R6, see docs/LINT.md).")
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: the whole "
                             "src/repro tree plus the R3 axis check)")
    parser.add_argument("--root", default=None,
                        help="repo root (default: auto-detected)")
    parser.add_argument("--json", action="store_true",
                        help="emit the JSON report on stdout")
    parser.add_argument("--output", default=None,
                        help="also write the JSON report to this file")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule IDs and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule}: {description}")
        return 0

    root = pathlib.Path(args.root).resolve() if args.root \
        else find_repo_root()
    diags, checked = run_lint(args.paths, root=root)
    report = render_report(diags, checked)
    if args.output:
        out = pathlib.Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True)
                       + "\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_text(diags, checked))
    return 1 if diags else 0


if __name__ == "__main__":
    sys.exit(main())
