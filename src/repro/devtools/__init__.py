"""repro-lint: the repo's determinism-contract static-analysis pass.

Five rules encode the invariants every artifact in this reproduction
rides on (see ``docs/LINT.md``):

- **R1 determinism** — no wall-clock/entropy calls or unordered-set
  iteration in the packages that produce rows, keys, or artifacts;
- **R2 plan-key hygiene** — ``hashlib`` stays inside the plan store;
- **R3 axis coherence** — every Scenario axis threads through
  ``AXIS_SPECS``, ``key``/``to_dict``, the CLI flags, and the docs;
- **R4 gated columns** — unfrozen row keys sit behind axis guards;
- **R5 units naming** — numeric fields carry unit suffixes.

Run it as ``chiplet-npu lint`` or ``python -m repro.devtools.runner``;
silence a deliberate violation with ``# repro-lint: disable=RULE``.
"""

from .axes import check_axis_coherence
from .diagnostics import Diagnostic, Suppressions, scan_pragmas
from .runner import (
    RULES,
    find_repo_root,
    lint_file,
    load_frozen_columns,
    main,
    run_lint,
)

__all__ = [
    "Diagnostic",
    "RULES",
    "Suppressions",
    "check_axis_coherence",
    "find_repo_root",
    "lint_file",
    "load_frozen_columns",
    "main",
    "run_lint",
    "scan_pragmas",
]
