"""R3: axis coherence across the Scenario dataclass, AXIS_SPECS, the
key-fragment builder, the CLI flags, and the docs/SWEEP.md axis table.

PR 3-5 each added sweep axes by hand-threading the same name through
five places; this check makes the convention mechanical.  It is a pure
function of the three source texts so the self-test suite can prove it
fires by doctoring them (e.g. deleting an ``AXIS_SPECS`` entry) without
touching the real tree.
"""

from __future__ import annotations

import ast
import re

from .diagnostics import Diagnostic

#: default locations of the coherence surfaces, relative to root.
SCENARIO_PATH = "src/repro/sweep/scenario.py"
CLI_PATH = "src/repro/cli.py"
DOCS_PATH = "docs/SWEEP.md"
DESIGN_DOCS_PATH = "docs/DESIGN.md"

#: first backticked token of a docs axis-table row: ``| `--flag` | ...``
_DOCS_ROW_RE = re.compile(r"^\|\s*`(--[a-z0-9-]+)`")


def _scenario_surfaces(tree: ast.AST) -> dict:
    """Field names, AXIS_SPECS keys, and self.<field> refs in key/to_dict."""
    out: dict = {"fields": {}, "axis_specs": {}, "axis_specs_line": None,
                 "key_refs": set(), "key_line": None,
                 "to_dict_refs": set(), "to_dict_line": None}
    for node in getattr(tree, "body", []):
        if isinstance(node, ast.ClassDef) and node.name == "Scenario":
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) \
                        and isinstance(stmt.target, ast.Name):
                    out["fields"][stmt.target.id] = stmt.lineno
                elif isinstance(stmt, ast.FunctionDef) \
                        and stmt.name in ("key", "to_dict"):
                    refs = {sub.attr for sub in ast.walk(stmt)
                            if isinstance(sub, ast.Attribute)
                            and isinstance(sub.value, ast.Name)
                            and sub.value.id == "self"}
                    slot = "key" if stmt.name == "key" else "to_dict"
                    out[f"{slot}_refs"] = refs
                    out[f"{slot}_line"] = stmt.lineno
        else:
            # Both spellings: `AXIS_SPECS = {...}` and the annotated
            # `AXIS_SPECS: dict[str, AxisSpec] = {...}`.
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            if isinstance(target, ast.Name) \
                    and target.id == "AXIS_SPECS" \
                    and isinstance(node.value, ast.Dict):
                out["axis_specs_line"] = node.lineno
                for key in node.value.keys:
                    if isinstance(key, ast.Constant):
                        out["axis_specs"][key.value] = key.lineno
    return out


def _parser_flags(tree: ast.AST, func_name: str) -> dict:
    """``dest -> (flag, line)`` for every --flag in one parser builder."""
    flags: dict = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == func_name:
            for call in ast.walk(node):
                if isinstance(call, ast.Call) \
                        and isinstance(call.func, ast.Attribute) \
                        and call.func.attr == "add_argument" \
                        and call.args \
                        and isinstance(call.args[0], ast.Constant) \
                        and str(call.args[0].value).startswith("--"):
                    flag = call.args[0].value
                    dest = flag[2:].replace("-", "_")
                    flags[dest] = (flag, call.lineno)
    return flags


def _axis_text_dicts(tree: ast.AST, func_name: str,
                     var_name: str | None = None) -> tuple:
    """``axis -> (args dest, line)`` from an axis-texts dict literal.

    Matches either ``<var_name> = {...}`` inside ``func_name`` (the
    ``_grid_kwargs`` shape) or the dict argument of a
    ``parse_grid_axes({...})`` call (the scaling-report shape).
    Values must be ``args.<dest>`` attributes.
    """
    for node in ast.walk(tree):
        if not (isinstance(node, ast.FunctionDef)
                and node.name == func_name):
            continue
        for sub in ast.walk(node):
            found = None
            if var_name is not None and isinstance(sub, ast.Assign) \
                    and len(sub.targets) == 1 \
                    and isinstance(sub.targets[0], ast.Name) \
                    and sub.targets[0].id == var_name \
                    and isinstance(sub.value, ast.Dict):
                found = sub.value
            elif var_name is None and isinstance(sub, ast.Call) \
                    and isinstance(sub.func, ast.Name) \
                    and sub.func.id == "parse_grid_axes" \
                    and sub.args and isinstance(sub.args[0], ast.Dict):
                found = sub.args[0]
            if found is not None:
                axes: dict = {}
                for key, value in zip(found.keys, found.values):
                    if isinstance(key, ast.Constant) \
                            and isinstance(value, ast.Attribute) \
                            and isinstance(value.value, ast.Name) \
                            and value.value.id == "args":
                        axes[key.value] = (value.attr, key.lineno)
                return axes, node.lineno
        return {}, node.lineno
    return {}, 1


def _docs_flags(docs_text: str) -> dict:
    """``--flag -> line`` from the docs/SWEEP.md axis table."""
    flags: dict = {}
    for lineno, line in enumerate(docs_text.splitlines(), start=1):
        match = _DOCS_ROW_RE.match(line.strip())
        if match:
            flags[match.group(1)] = lineno
    return flags


def check_axis_coherence(scenario_src: str, cli_src: str, docs_text: str,
                         scenario_path: str = SCENARIO_PATH,
                         cli_path: str = CLI_PATH,
                         docs_path: str = DOCS_PATH,
                         design_docs_text: str | None = None,
                         design_docs_path: str = DESIGN_DOCS_PATH) -> list:
    """Cross-check every Scenario axis through all five surfaces.

    Returns one R3 diagnostic per missing or stale link: Scenario field
    <-> AXIS_SPECS <-> key/to_dict fragments <-> CLI sweep flags (and the
    scaling-report subset) <-> the docs axis table.  The docs link is
    checked in both directions and over the *whole* sweep-parser
    surface: a table row naming a retired flag is stale, and a parser
    flag (axis or execution) with no table row is undocumented.

    When ``design_docs_text`` is given, the same full coherence contract
    applies to the ``design`` subcommand's surfaces: the ``_run_design``
    axis-texts dict must cover every axis, each dest must resolve to a
    ``_design_parser`` flag, and the docs/DESIGN.md flag table is
    checked in both directions.
    """
    diags: list = []

    def diag(path: str, line: int, message: str) -> None:
        diags.append(Diagnostic("R3", path, line, 0, message))

    try:
        scenario_tree = ast.parse(scenario_src)
        cli_tree = ast.parse(cli_src)
    except SyntaxError as exc:
        diag(scenario_path, exc.lineno or 1,
             f"cannot parse coherence surfaces: {exc.msg}")
        return diags

    sc = _scenario_surfaces(scenario_tree)
    fields, specs = sc["fields"], sc["axis_specs"]
    if not fields:
        diag(scenario_path, 1, "Scenario dataclass not found")
        return diags
    if sc["axis_specs_line"] is None:
        diag(scenario_path, 1, "AXIS_SPECS dict not found")
        return diags

    # Scenario fields <-> AXIS_SPECS, both directions.
    for name, line in fields.items():
        if name not in specs:
            diag(scenario_path, line,
                 f"Scenario axis {name!r} has no AXIS_SPECS entry")
    for name, line in specs.items():
        if name not in fields:
            diag(scenario_path, line,
                 f"AXIS_SPECS entry {name!r} is not a Scenario field")

    # Every axis must contribute to the key fragment and the row payload.
    for name, line in fields.items():
        if name not in sc["key_refs"]:
            diag(scenario_path, sc["key_line"] or line,
                 f"Scenario axis {name!r} never referenced in the "
                 f"Scenario.key fragment builder")
        if name not in sc["to_dict_refs"]:
            diag(scenario_path, sc["to_dict_line"] or line,
                 f"Scenario axis {name!r} never referenced in "
                 f"Scenario.to_dict()")

    # CLI: the sweep axis-texts dict covers every axis, and each dest
    # resolves to a real --flag of the sweep parser.
    sweep_axes, grid_line = _axis_text_dicts(cli_tree, "_grid_kwargs",
                                             "axis_texts")
    sweep_flags = _parser_flags(cli_tree, "_sweep_parser")
    if not sweep_axes:
        diag(cli_path, grid_line, "_grid_kwargs axis_texts dict not found")
    for name in specs:
        if sweep_axes and name not in sweep_axes:
            diag(cli_path, grid_line,
                 f"axis {name!r} missing from the _grid_kwargs "
                 f"axis_texts dict (unreachable from the sweep CLI)")
    for name, (dest, line) in sweep_axes.items():
        if name not in specs:
            diag(cli_path, line,
                 f"axis_texts key {name!r} has no AXIS_SPECS entry")
        if dest not in sweep_flags:
            diag(cli_path, line,
                 f"axis {name!r} maps to args.{dest} but _sweep_parser "
                 f"defines no --{dest.replace('_', '-')} flag")

    # The scaling report parses a subset of the same axes.
    report_axes, report_line = _axis_text_dicts(
        cli_tree, "_run_scaling_report")
    report_flags = _parser_flags(cli_tree, "_scaling_parser")
    for name, (dest, line) in report_axes.items():
        if name not in specs:
            diag(cli_path, line,
                 f"scaling-report axis {name!r} has no AXIS_SPECS entry")
        if dest not in report_flags:
            diag(cli_path, line,
                 f"scaling-report axis {name!r} maps to args.{dest} but "
                 f"_scaling_parser defines no matching flag")

    # Docs: every sweep axis appears in the SWEEP.md axis table, and the
    # table carries no stale flags.
    docs = _docs_flags(docs_text)
    if not docs:
        diag(docs_path, 1, "no axis table rows found (| `--flag` | ...)")
    for name, (dest, _) in sweep_axes.items():
        flag = sweep_flags.get(dest, (None, None))[0]
        if docs and flag is not None and flag not in docs:
            diag(docs_path, min(docs.values()),
                 f"axis {name!r} ({flag}) missing from the docs axis "
                 f"table")
    known_flags = {flag for flag, _ in sweep_flags.values()}
    for flag, line in docs.items():
        if flag not in known_flags:
            diag(docs_path, line,
                 f"docs axis table lists {flag} but _sweep_parser "
                 f"defines no such flag")

    # ... and the reverse: every flag the sweep parser defines — axis or
    # execution — must appear in a SWEEP.md table row, so the CLI surface
    # can never silently outgrow its documentation.
    axis_flags = {sweep_flags[dest][0] for _, (dest, _) in
                  sweep_axes.items() if dest in sweep_flags}
    for dest in sorted(sweep_flags):
        flag, line = sweep_flags[dest]
        if docs and flag not in docs and flag not in axis_flags:
            diag(cli_path, line,
                 f"_sweep_parser defines {flag} but no {docs_path} "
                 f"table row documents it")

    # The design search declares the same axis surface; hold it to the
    # same contract against its own parser and docs/DESIGN.md table.
    if design_docs_text is not None:
        design_axes, design_line = _axis_text_dicts(
            cli_tree, "_run_design", "axis_texts")
        design_flags = _parser_flags(cli_tree, "_design_parser")
        if not design_axes:
            diag(cli_path, design_line,
                 "_run_design axis_texts dict not found")
        for name in specs:
            if design_axes and name not in design_axes:
                diag(cli_path, design_line,
                     f"axis {name!r} missing from the _run_design "
                     f"axis_texts dict (unreachable from the design CLI)")
        for name, (dest, line) in design_axes.items():
            if name not in specs:
                diag(cli_path, line,
                     f"design axis_texts key {name!r} has no AXIS_SPECS "
                     f"entry")
            if dest not in design_flags:
                diag(cli_path, line,
                     f"design axis {name!r} maps to args.{dest} but "
                     f"_design_parser defines no "
                     f"--{dest.replace('_', '-')} flag")
        design_docs = _docs_flags(design_docs_text)
        if not design_docs:
            diag(design_docs_path, 1,
                 "no axis table rows found (| `--flag` | ...)")
        for name, (dest, _) in design_axes.items():
            flag = design_flags.get(dest, (None, None))[0]
            if design_docs and flag is not None \
                    and flag not in design_docs:
                diag(design_docs_path, min(design_docs.values()),
                     f"design axis {name!r} ({flag}) missing from the "
                     f"docs flag table")
        known_design = {flag for flag, _ in design_flags.values()}
        for flag, line in design_docs.items():
            if flag not in known_design:
                diag(design_docs_path, line,
                     f"docs flag table lists {flag} but _design_parser "
                     f"defines no such flag")
        for dest in sorted(design_flags):
            flag, line = design_flags[dest]
            if design_docs and flag not in design_docs:
                diag(cli_path, line,
                     f"_design_parser defines {flag} but no "
                     f"{design_docs_path} table row documents it")
    return diags
