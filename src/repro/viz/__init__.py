"""Terminal visualization: mesh floorplans, bar charts, step plots."""

from .charts import hbar_chart, sparkline, step_plot
from .floorplan import chiplet_labels, render_floorplan, render_quadrant

__all__ = [
    "hbar_chart",
    "sparkline",
    "step_plot",
    "chiplet_labels",
    "render_floorplan",
    "render_quadrant",
]
