"""Terminal bar charts and step plots for the experiment outputs.

Pure-text rendering (no plotting dependencies): horizontal bars for the
breakdown/NoP/context figures and a step plot for the Fig. 10 sharding
trace.
"""

from __future__ import annotations


def hbar_chart(items: list[tuple[str, float]], title: str = "",
               width: int = 50, unit: str = "") -> str:
    """Horizontal bar chart: one row per (label, value)."""
    if not items:
        return "(empty chart)"
    peak = max(value for _, value in items)
    label_w = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        bar = "#" * (round(width * value / peak) if peak > 0 else 0)
        lines.append(f"{label.ljust(label_w)} |{bar.ljust(width)}| "
                     f"{value:,.2f}{unit}")
    return "\n".join(lines)


def step_plot(points: list[tuple[str, float]], title: str = "",
              width: int = 50, unit: str = "ms") -> str:
    """Monotone step plot (Fig. 10 style): value after each labelled step."""
    if not points:
        return "(empty plot)"
    peak = max(v for _, v in points)
    label_w = max(len(label) for label, _ in points)
    lines = [title] if title else []
    for label, value in points:
        pos = round(width * value / peak) if peak > 0 else 0
        track = "." * max(0, pos - 1) + "o"
        lines.append(f"{label.ljust(label_w)} |{track.ljust(width)}| "
                     f"{value:,.1f} {unit}")
    return "\n".join(lines)


def sparkline(values: list[float]) -> str:
    """Compact one-line trend (used in summaries)."""
    if not values:
        return ""
    glyphs = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if hi == lo:
        return glyphs[0] * len(values)
    scale = (len(glyphs) - 1) / (hi - lo)
    return "".join(glyphs[round((v - lo) * scale)] for v in values)
