"""ASCII floorplan rendering of a scheduled MCM package.

The paper's Figs. 5-8 are mesh diagrams showing which chiplet runs which
block.  This renders the same view in a terminal: one cell per chiplet,
labelled with the (abbreviated) group it executes, its per-frame busy time,
and its dataflow style when heterogeneous.
"""

from __future__ import annotations

from ..core.schedule import Schedule

#: compact display labels for the canonical perception groups
_ABBREV = {
    "FE_BFPN": "FE",
    "S_LIFT": "sLF",
    "S_Q_PROJ": "sQ",
    "S_KV_PROJ": "sKV",
    "S_ATTN": "sAT",
    "S_FFN": "sFF",
    "T_Q_PROJ": "tQ",
    "T_KV_PROJ": "tKV",
    "T_ATTN": "tAT",
    "T_FFN": "tFF",
    "T_POOL": "tPL",
    "OCC_TR": "OCC",
    "LANE_TR": "LAN",
    "DET_TR": "DET",
}


def _label(name: str) -> str:
    if name in _ABBREV:
        return _ABBREV[name]
    return name[:3]


def chiplet_labels(schedule: Schedule) -> dict[int, str]:
    """Map chiplet id -> short label of the group(s) it hosts."""
    labels: dict[int, list[str]] = {}
    for name, gs in schedule.groups.items():
        if gs.host is not None:
            continue  # colocated groups ride on the host's label
        for idx, cid in enumerate(gs.chiplet_ids):
            tag = _label(name)
            if gs.plan.n_chiplets > 1:
                tag = f"{tag}{idx}"
            labels.setdefault(cid, []).append(tag)
    return {cid: "+".join(tags) for cid, tags in labels.items()}


def render_floorplan(schedule: Schedule, show_busy: bool = True,
                     cell_width: int = 9) -> str:
    """Render the package mesh with group assignments (Figs. 5-8 style)."""
    pkg = schedule.package
    labels = chiplet_labels(schedule)
    busy = schedule.chiplet_busy()

    def cell(cid: int) -> list[str]:
        chiplet = pkg.chiplet(cid)
        top = labels.get(cid, "idle")
        if chiplet.dataflow != "os":
            top += "*"
        lines = [top[:cell_width].center(cell_width)]
        if show_busy:
            lines.append(f"{busy[cid] * 1e3:5.1f}ms".center(cell_width))
        return lines

    rows: list[str] = []
    border = "+" + "+".join("-" * cell_width for _ in range(pkg.mesh_w)) \
        + "+"
    rows.append(border)
    for y in range(pkg.mesh_h):
        cells = [cell(pkg.at(x, y).chiplet_id) for x in range(pkg.mesh_w)]
        for line_idx in range(len(cells[0])):
            rows.append(
                "|" + "|".join(c[line_idx] for c in cells) + "|")
        rows.append(border)
    if any(pkg.chiplet(c.chiplet_id).dataflow != "os"
           for c in pkg.chiplets):
        rows.append("(* = weight-stationary chiplet)")
    return "\n".join(rows)


def render_quadrant(schedule: Schedule, stage_name: str) -> str:
    """Render only the quadrant(s) owned by one stage."""
    pkg = schedule.package
    quads = schedule.stage_quadrants[stage_name]
    members = {c.chiplet_id for q in quads for c in pkg.quadrant(q)}
    labels = chiplet_labels(schedule)
    busy = schedule.chiplet_busy()
    lines = [f"[{stage_name}] quadrant(s) {quads}"]
    for cid in sorted(members):
        c = pkg.chiplet(cid)
        lines.append(f"  ({c.x},{c.y}) {labels.get(cid, 'idle'):12s} "
                     f"{busy[cid] * 1e3:6.1f} ms/frame")
    return "\n".join(lines)
