"""Command-line entry point: regenerate any paper table or figure.

Examples::

    chiplet-npu table2          # Table II comparison
    chiplet-npu fig10           # dual-NPU scaling trace
    chiplet-npu all             # every experiment
    python -m repro.cli fig3

Scenario sweeps (the ``sweep`` subcommand) fan a grid of scheduler runs
across worker processes and merge the results deterministically::

    chiplet-npu sweep --tolerances 1.0,1.05,1.2 --npus 1,2 --workers 4
    chiplet-npu sweep --nop-gbps 25,50,100 --workloads default,hires \\
        --het-budgets none,2,4 --json --output results/sweep.json
    chiplet-npu sweep --dataflows os,ws --frequencies-ghz none,1.0 \\
        --axis native_tile=16x16,8x8 --dram-gbps none,6
    chiplet-npu sweep --nop-gbps 25,50,100 --topologies mesh,torus
    chiplet-npu sweep --hetero none,trunk:ws,trunk:ws@1.2
    chiplet-npu sweep --workloads default,hires --workers 4 \\
        --stream --store results/planstore

Axes are comma-separated lists; ``none`` keeps an axis at its default
(``--nop-gbps none`` = 100 GB/s, ``--het-budgets none`` = skip the trunk
DSE, ``--dram-gbps none`` = compute-only steady state).  Any axis can
also be given as ``--axis NAME=VALUES`` with its canonical name (see
``repro.sweep.AXIS_SPECS``); malformed values fail with an error naming
the offending axis.  ``--stream`` prints each row as it finishes
(completion order) while the merged artifact stays byte-identical to the
batch path; ``--store DIR`` warm-starts every worker from a shared
disk-backed plan store and flushes newly computed plans back for the
next run.  The report includes the shared plan-cache and
layer-cost-cache hit/miss statistics, so cache-effectiveness regressions
are visible alongside the metrics.

Sweeps are fault-tolerant (see ``docs/RESILIENCE.md``): transient
failures retry on a deterministic backoff schedule (``--retries`` caps
the attempts), ``--journal DIR`` checkpoints every outcome so a rerun of
the same command resumes instead of re-pricing, ``--keep-going``
finishes a grid with quarantined scenarios as a partial result (exit
status 2, failures listed in the report), and the dev-only
``--inject-faults`` flag scripts reproducible failures::

    chiplet-npu sweep --npus 1,2,4 --workers 4 --retries 5 \\
        --journal results/journal --keep-going
    chiplet-npu sweep --npus 1,2 --inject-faults 'fail:0;crash:1'

``--delta-from DIR`` runs a *delta-sweep* against a previous run's
journal: scenarios whose content fingerprint is unchanged are spliced
from the baseline instead of re-priced (see ``docs/SWEEP.md``), and the
output stays byte-identical to a cold full run::

    chiplet-npu sweep --nop-gbps 25,50,200 --delta-from results/journal

``design`` closes the DSE loop (see ``docs/DESIGN.md``): declare a
joint package-design space over the same axes (including partial
Het(k) quadrant tokens like ``trunk:ws#4``), rank every candidate with
one batch pricing request, prune against latency/energy targets, and
materialize only the Pareto frontier into full sweep rows — the
frontier report is byte-identical across workers and store
temperature::

    chiplet-npu design --dataflows os,ws --frequencies-ghz 1.0,2.0 \\
        --hetero none,trunk:ws#4 --target-pipe-ms 40
    chiplet-npu design --npus 1,2 --dram-gbps none,6 --max-energy-j 2 \\
        --store results/planstore --json --output results/frontier.json

The chiplet-count scaling report (``report scaling``) sweeps
``npus x workload x dram_gbps`` through the same engine and emits the
scaling table/figure::

    chiplet-npu report scaling --npus 1,2,4 --dram-gbps none,6,2
    chiplet-npu report scaling --json --output results/scaling_report.json

``serve`` runs the networked plan-memo server (see ``docs/SERVING.md``):
a plan-store directory behind HTTP speaking the
get/put/batch_get/batch_put/stats/compact protocol, with a deterministic
size/age-bounded GC policy and per-request-class p50/p99 latency
accounting.  ``sweep --store-url`` attaches it interchangeably with
``--store``; ``sweep --dispatch`` shards the grid across remote
``/sweep`` workers and merges byte-identically to a serial run::

    chiplet-npu serve --store results/planstore --port 8023
    chiplet-npu sweep --npus 1,2,4 --store-url http://127.0.0.1:8023
    chiplet-npu sweep --npus 1,2,4 \\
        --dispatch http://10.0.0.1:8023,http://10.0.0.2:8023

``lint`` runs repro-lint, the repo's determinism-contract static
analysis (rules R1-R5, see ``docs/LINT.md``), over the ``src/repro``
tree (or explicit files) and exits non-zero on any finding::

    chiplet-npu lint
    chiplet-npu lint --json --output results/replint.json
    chiplet-npu lint --list-rules
"""

from __future__ import annotations

import argparse
import json
import sys

from .experiments import ALL_EXPERIMENTS


def _sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="chiplet-npu sweep",
        description="Run a scenario grid (tolerance x NoP bandwidth x "
                    "package size x workload x het budget) across worker "
                    "processes with deterministic result merging.")
    parser.add_argument("--tolerances", default="1.05",
                        help="comma-separated tolerance coefficients")
    parser.add_argument("--nop-gbps", default="none",
                        help="comma-separated NoP bandwidths in GB/s "
                             "('none' = default 100)")
    parser.add_argument("--npus", default="1",
                        help="comma-separated NPU module counts")
    parser.add_argument("--workloads", default="default",
                        help="comma-separated workload variant names")
    parser.add_argument("--het-budgets", default="none",
                        help="comma-separated WS chiplet budgets for the "
                             "trunk DSE ('none' = skip)")
    parser.add_argument("--dataflows", default="none",
                        help="comma-separated chiplet dataflow styles "
                             "(os/ws/rs; 'none' = os)")
    parser.add_argument("--frequencies-ghz", default="none",
                        help="comma-separated chiplet clocks in GHz "
                             "('none' = 2 GHz)")
    parser.add_argument("--native-tiles", default="none",
                        help="comma-separated native dataflow tiles as "
                             "ROWSxCOLS, e.g. 16x16 ('none' = 16x16)")
    parser.add_argument("--dram-gbps", default="none",
                        help="comma-separated package DRAM bandwidths in "
                             "GB/s ('none' = compute-only steady state)")
    parser.add_argument("--topologies", default="none",
                        help="comma-separated NoP topologies (mesh, "
                             "torus, or KIND-WxH grids like torus-8x8; "
                             "'none' = the seed open mesh)")
    parser.add_argument("--hetero", default="none",
                        help="comma-separated per-quadrant hardware "
                             "override tokens (QUAD:DATAFLOW[@GHZ]"
                             "[/ROWSxCOLS][#COUNT] joined by '+', e.g. "
                             "trunk:ws@1.2+temporal:@1.5 or trunk:ws#4; "
                             "'none' = homogeneous package)")
    parser.add_argument("--axis", action="append", default=[],
                        metavar="NAME=VALUES",
                        help="extra axis by canonical name (e.g. "
                             "--axis native_tile=16x16,8x8); may repeat, "
                             "overrides the dedicated flag for that axis")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = serial)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="directory of a shared disk-backed plan "
                             "store: workers warm-start from it and flush "
                             "newly computed plans back")
    parser.add_argument("--store-url", default=None, metavar="URL",
                        help="URL of a chiplet-npu memo server (see "
                             "'chiplet-npu serve'): like --store, but "
                             "warm-starts from and flushes to the "
                             "networked plan store; the report adds the "
                             "server's p50/p99 latency per request class")
    parser.add_argument("--dispatch", default=None, metavar="URLS",
                        help="comma-separated memo-server worker URLs: "
                             "shard the grid round-robin across them, "
                             "price each shard remotely (/sweep), and "
                             "merge rows byte-identically to a serial "
                             "run")
    parser.add_argument("--stream", action="store_true",
                        help="print each scenario's row as it finishes "
                             "(completion order) before the merged report")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="max attempts per scenario on transient "
                             "failures (default 3; 1 = no retries); "
                             "backoff is deterministic per scenario key")
    parser.add_argument("--keep-going", action="store_true",
                        help="quarantine scenarios that exhaust their "
                             "retries and finish with a partial result "
                             "(exit status 2) instead of failing the "
                             "whole sweep")
    parser.add_argument("--journal", default=None, metavar="DIR",
                        help="checkpoint every outcome to this journal "
                             "directory and resume from it: scenarios "
                             "already journaled are replayed, not "
                             "re-priced (byte-identical rows)")
    parser.add_argument("--delta-from", default=None, metavar="DIR",
                        help="delta-sweep: splice rows from this baseline "
                             "journal directory for scenarios whose "
                             "content fingerprint is unchanged and "
                             "re-price only the rest (byte-identical to "
                             "a cold full run; incompatible with "
                             "--stream)")
    parser.add_argument("--inject-faults", default=None, metavar="SCRIPT",
                        help="dev-only deterministic fault script: "
                             "';'-joined KIND:TARGET[@ATTEMPTS] tokens "
                             "with KIND in fail/crash/hang/corrupt-shard "
                             "and TARGET a grid index (shard index for "
                             "corrupt-shard); see docs/RESILIENCE.md")
    parser.add_argument("--json", action="store_true",
                        help="emit structured JSON instead of a table")
    parser.add_argument("--output", default=None,
                        help="also write the full sweep JSON to this file")
    return parser


def _grid_kwargs(args) -> dict:
    """Axis texts from the dedicated flags plus ``--axis`` overrides."""
    from .sweep import parse_grid_axes
    axis_texts = {
        "tolerance": args.tolerances,
        "nop_gbps": args.nop_gbps,
        "npus": args.npus,
        "workload": args.workloads,
        "het_ws_budget": args.het_budgets,
        "dataflow": args.dataflows,
        "frequency_ghz": args.frequencies_ghz,
        "native_tile": args.native_tiles,
        "dram_gbps": args.dram_gbps,
        "topology": args.topologies,
        "hetero": args.hetero,
    }
    for item in args.axis:
        name, sep, values = item.partition("=")
        if not sep or not name or not values:
            raise ValueError(
                f"--axis expects NAME=VALUES, got {item!r}")
        axis_texts[name.strip()] = values
    return parse_grid_axes(axis_texts)


def _run_sweep(argv: list[str]) -> int:
    from .io import save_sweep
    from .sim.metrics import format_table
    from .sweep import (
        FaultPlan,
        RetryPolicy,
        ScenarioSweep,
        SweepFailure,
        SweepQuarantineError,
        scenario_grid,
    )

    parser = _sweep_parser()
    args = parser.parse_args(argv)
    if args.delta_from is not None and args.stream:
        # Splicing needs the whole baseline up front; streaming rows in
        # completion order would interleave spliced and re-priced rows
        # misleadingly.  Keep the two modes apart.
        parser.error("--delta-from cannot be combined with --stream")
    if args.store is not None and args.store_url is not None:
        parser.error("--store and --store-url name two different plan "
                     "stores; pass one")
    if args.store_url is not None:
        from .serve import is_store_url
        if not is_store_url(args.store_url):
            parser.error(f"--store-url must start with http:// or "
                         f"https://; got {args.store_url!r} "
                         f"(for a directory store, use --store)")
    if args.dispatch is not None:
        for flag, value in (("--stream", args.stream),
                            ("--delta-from", args.delta_from),
                            ("--journal", args.journal),
                            ("--inject-faults", args.inject_faults)):
            if value:
                parser.error(f"--dispatch executes remotely and cannot "
                             f"be combined with {flag}")
        from .serve import is_store_url
        for url in args.dispatch.split(","):
            if url.strip() and not is_store_url(url.strip()):
                parser.error(f"--dispatch workers must be http(s) "
                             f"URLs; got {url.strip()!r}")
    store_path = args.store_url if args.store_url is not None \
        else args.store
    try:
        grid = scenario_grid(**_grid_kwargs(args))
        retry = (RetryPolicy(max_attempts=args.retries)
                 if args.retries is not None else None)
        faults = (FaultPlan.parse(args.inject_faults)
                  if args.inject_faults else None)
        sweep = ScenarioSweep(grid, workers=args.workers,
                              store_path=store_path,
                              strict=not args.keep_going,
                              retry=retry,
                              journal_path=args.journal,
                              resume_from=args.journal,
                              faults=faults)
    except (ValueError, KeyError) as exc:
        # str(KeyError) wraps the message in repr quotes; unwrap it.
        parser.error(exc.args[0] if exc.args else str(exc))
    try:
        if args.dispatch is not None:
            from .serve import dispatch_sweep
            urls = [u.strip() for u in args.dispatch.split(",")
                    if u.strip()]
            result = dispatch_sweep(grid, urls, retry=retry,
                                    strict=not args.keep_going)
        elif args.stream:
            # Stream rows in completion order, then merge canonically —
            # the merged artifact is byte-identical to the batch path.
            outcomes = []
            for outcome in sweep.run_iter():
                outcomes.append(outcome)
                if isinstance(outcome, SweepFailure):
                    if args.json:
                        print(json.dumps(outcome.to_manifest(),
                                         sort_keys=True), flush=True)
                    else:
                        print(f"[{len(outcomes)}/{len(grid)}] "
                              f"{outcome.key}: QUARANTINED "
                              f"({outcome.error} after {outcome.attempts} "
                              f"attempt(s))", flush=True)
                    continue
                if args.json:
                    print(json.dumps(outcome.row, sort_keys=True),
                          flush=True)
                else:
                    row = outcome.row
                    print(f"[{len(outcomes)}/{len(grid)}] {row['key']}: "
                          f"pipe {row['pipe_ms']:.2f} ms, "
                          f"e2e {row['e2e_ms']:.1f} ms, "
                          f"{row['energy_j']:.3f} J", flush=True)
            result = sweep.merge(outcomes)
        elif args.delta_from is not None:
            result = sweep.run_delta(args.delta_from)
        else:
            result = sweep.run()
    except (ValueError, SweepQuarantineError) as exc:
        # e.g. a het budget larger than a scenario's trunk quadrant, or
        # a strict sweep refusing a grid with quarantined scenarios.
        parser.error(str(exc))

    if args.output:
        import pathlib
        pathlib.Path(args.output).parent.mkdir(parents=True, exist_ok=True)
        save_sweep(result, args.output)

    # A partial (quarantine-carrying) result exits 2 so scripts and CI
    # can tell "priced everything" from "kept going past failures".
    exit_status = 0 if result.complete else 2

    if args.json:
        if args.stream:
            # Rows already streamed as JSON lines; close with the summary
            # (the full merged document is available via --output).
            print(json.dumps({"summary": result.summary()},
                             indent=2, sort_keys=True))
        else:
            # Same serialization as save_sweep, so stdout and --output
            # (and rows_json, the determinism contract) are
            # byte-comparable.
            print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return exit_status

    # format_table derives headers from the first row, so the trunk and
    # hardware-axis columns must appear in every row once any scenario
    # sets them (unset axes show as the default marker).
    has_trunk = any("trunk_edp_j_ms" in r for r in result.rows)
    hw_columns = [
        ("df", "dataflow", lambda v: v),
        ("ghz", "frequency_ghz", lambda v: v),
        ("tile", "native_tile", lambda v: f"{v[0]}x{v[1]}"),
        ("dram", "dram_gbps", lambda v: v),
        ("topo", "topology", lambda v: v),
        ("hetero", "hetero", lambda v: v),
    ]
    shown_hw = [(label, field, fmt) for label, field, fmt in hw_columns
                if any(field in r for r in result.rows)]
    has_dram = any("dram_throttled" in r for r in result.rows)
    has_hops = any("nop_avg_hops" in r for r in result.rows)
    display = []
    for row in result.rows:
        shown = {
            "tol": row["tolerance"],
            "nop": row["nop_gbps"] or "def",
            "npus": row["npus"],
            "workload": row["workload"],
            "het": "-" if row["het_ws_budget"] is None
                   else row["het_ws_budget"],
        }
        for label, field, fmt in shown_hw:
            shown[label] = fmt(row[field]) if field in row else "def"
        shown.update({
            "pipe_ms": round(row["pipe_ms"], 2),
            "e2e_ms": round(row["e2e_ms"], 1),
            "energy_j": round(row["energy_j"], 3),
            "util_pct": round(row["utilization"] * 100, 1),
            "chiplets": row["used_chiplets"],
        })
        if has_dram:
            shown["dram_bound"] = ("yes" if row.get("dram_throttled")
                                   else "-")
        if has_hops:
            shown["avg_hops"] = (round(row["nop_avg_hops"], 2)
                                 if "nop_avg_hops" in row else "-")
        if has_trunk:
            shown["trunk_edp"] = (round(row["trunk_edp_j_ms"], 2)
                                  if "trunk_edp_j_ms" in row else "-")
        display.append(shown)
    if display:
        print(format_table(display,
                           f"Scenario sweep ({len(result.rows)} scenarios, "
                           f"workers={result.workers})"))
    else:
        print("Scenario sweep: no scenario priced successfully "
              f"(workers={result.workers})")
    summary = result.summary()
    cache = summary["plan_cache"]
    print(f"plan cache: {cache['hits']} hits / {cache['misses']} misses "
          f"({100 * cache['hit_rate']:.1f}% hit rate, "
          f"{cache['entries']} entries, "
          f"{cache['store_hits']} served from store)")
    layer = summary["layer_cost_cache"]
    seeded = layer.get("seeded", 0)
    print(f"layer-cost cache: {layer['hits']} hits / "
          f"{layer['misses']} misses "
          f"({100 * layer['hit_rate']:.1f}% hit rate, "
          f"{layer['entries']} entries"
          + (f", {seeded} seeded" if seeded else "") + ")")
    if result.delta_skipped is not None:
        print(f"delta sweep: {result.delta_skipped} of "
              f"{len(result.rows)} scenario(s) spliced from the "
              f"baseline, {len(result.rows) - result.delta_skipped} "
              f"re-priced")
    if result.store_skipped:
        names = ", ".join(rec["file"] for rec in result.store_skipped)
        print(f"plan store: skipped {len(result.store_skipped)} "
              f"corrupt/stale shard(s): {names}")
    server_urls = [u for u in ([args.store_url] if args.store_url else [])
                   + ([u.strip() for u in args.dispatch.split(",")
                       if u.strip()] if args.dispatch else [])]
    for url in dict.fromkeys(server_urls):
        # TPU-paper style serving report: the server's own per-request
        # latency percentiles (measured server-side, so they cover every
        # client hammering it, not just this sweep).
        from .serve import RemoteStoreClient, render_latency_report
        try:
            stats = RemoteStoreClient(url).stats()
        except Exception as exc:
            print(f"memo server {url}: stats unavailable ({exc})")
            continue
        print(f"memo server {url}: {stats.get('entries', '?')} entries, "
              f"generation {stats.get('generation', '?')}")
        print(render_latency_report(stats.get("requests", {})))
    if result.failures:
        print(f"quarantined {len(result.failures)} scenario(s):")
        for failure in result.failures:
            print(f"  {failure.key}: {failure.error} after "
                  f"{failure.attempts} attempt(s)")
    return exit_status


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="chiplet-npu serve",
        description="Serve a plan-store directory as an always-warm "
                    "networked memo server (get/put/batch/stats/compact "
                    "over HTTP, plus /sweep shard pricing for "
                    "--dispatch; see docs/SERVING.md).")
    parser.add_argument("--store", required=True, metavar="DIR",
                        help="plan-store directory to serve (created if "
                             "missing; corrupt/stale shards are skipped "
                             "into the /stats manifest, never fatal)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=0,
                        help="bind port (default 0 = auto-assign; the "
                             "chosen URL is printed on startup)")
    parser.add_argument("--max-entries", type=int, default=None,
                        metavar="N",
                        help="GC size bound: keep at most N records "
                             "(evict oldest put-generation first, ties "
                             "in key order)")
    parser.add_argument("--max-age-puts", type=int, default=None,
                        metavar="N",
                        help="GC age bound: evict records not re-put "
                             "within N put generations (the server's "
                             "logical clock, not wall time)")
    parser.add_argument("--compact-after-shards", type=int, default=64,
                        metavar="N",
                        help="compact the backing store once it holds N "
                             "shard files (default 64)")
    parser.add_argument("--latency-log", default=None, metavar="FILE",
                        help="append one deterministic-format JSON line "
                             "per request (request_class, duration_ms)")
    return parser


def _run_serve(argv: list[str]) -> int:
    from .serve import GCPolicy, MemoServer
    from .sweep.runner import _attach_store

    parser = _serve_parser()
    args = parser.parse_args(argv)
    try:
        policy = GCPolicy(
            max_entries=args.max_entries,
            max_age_puts=args.max_age_puts,
            compact_after_shards=args.compact_after_shards)
        server = MemoServer(args.store, host=args.host, port=args.port,
                            gc_policy=policy,
                            latency_log=args.latency_log)
    except (ValueError, OSError) as exc:
        parser.error(str(exc))
    # Warm this process's plan cache from the served directory so
    # /sweep shard pricing reuses (and re-feeds) the same plans the
    # memo routes serve.
    _attach_store(args.store)
    print(f"serving plan store {args.store} on {server.url}", flush=True)
    if server.load_skipped:
        names = ", ".join(rec["file"] for rec in server.load_skipped)
        print(f"skipped {len(server.load_skipped)} corrupt/stale "
              f"shard(s) at startup: {names}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _scaling_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="chiplet-npu report scaling",
        description="Chiplet-count scaling report: sweep npus x workload "
                    "x DRAM bandwidth through the sweep engine and emit "
                    "the scaling table (speedup, efficiency, DRAM wall).")
    parser.add_argument("--npus", default="1,2,4",
                        help="comma-separated NPU module counts")
    parser.add_argument("--dram-gbps", default="none,6,2",
                        help="comma-separated DRAM bandwidths in GB/s "
                             "('none' = compute-only column)")
    parser.add_argument("--workloads", default="default",
                        help="comma-separated workload variant names")
    parser.add_argument("--topologies", default="none",
                        help="comma-separated NoP topologies (mesh/torus; "
                             "'none' = the seed open mesh); setting this "
                             "adds topology and mean-hop columns")
    parser.add_argument("--hetero", default="none",
                        help="comma-separated per-quadrant hardware "
                             "override tokens (e.g. trunk:ws@1.2; 'none' "
                             "= homogeneous package); setting this adds "
                             "composition and trunk-utilization columns")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = serial)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="shared disk-backed plan store directory")
    parser.add_argument("--json", action="store_true",
                        help="emit the deterministic JSON document "
                             "instead of the table")
    parser.add_argument("--output", default=None,
                        help="also write the JSON document to this file")
    return parser


def _run_scaling_report(argv: list[str]) -> int:
    from .experiments import scaling
    from .sweep import parse_grid_axes

    parser = _scaling_parser()
    args = parser.parse_args(argv)
    try:
        kwargs = parse_grid_axes({
            "npus": args.npus,
            "dram_gbps": args.dram_gbps,
            "workload": args.workloads,
            "topology": args.topologies,
            "hetero": args.hetero,
        })
        result = scaling.run(npus=kwargs["npus"],
                             dram_gbps=kwargs["dram_gbps"],
                             workloads=kwargs["workloads"],
                             topologies=kwargs["topologies"],
                             heteros=kwargs["heteros"],
                             workers=args.workers,
                             store_path=args.store)
    except (ValueError, KeyError) as exc:
        parser.error(exc.args[0] if exc.args else str(exc))

    # The document is a pure function of the grid (no cache counters or
    # timings), so the emitted bytes are deterministic run-to-run.
    document = json.dumps(result, indent=2, sort_keys=True)
    if args.output:
        import pathlib
        out = pathlib.Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(document + "\n")
    if args.json:
        print(document)
    else:
        print(scaling.render(result))
    return 0


def _design_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="chiplet-npu design",
        description="Joint package-design search: enumerate a declared "
                    "axis space, rank every candidate through one batch "
                    "pricing request, prune against latency/energy "
                    "targets, and materialize only the Pareto frontier "
                    "into full sweep rows (deterministic report; see "
                    "docs/DESIGN.md).")
    parser.add_argument("--tolerances", default="1.05",
                        help="comma-separated tolerance coefficients")
    parser.add_argument("--nop-gbps", default="none",
                        help="comma-separated NoP bandwidths in GB/s "
                             "('none' = default 100)")
    parser.add_argument("--npus", default="1",
                        help="comma-separated NPU module counts")
    parser.add_argument("--workloads", default="default",
                        help="comma-separated workload variant names")
    parser.add_argument("--het-budgets", default="none",
                        help="comma-separated WS chiplet budgets for the "
                             "trunk DSE ('none' = skip)")
    parser.add_argument("--dataflows", default="none",
                        help="comma-separated chiplet dataflow styles "
                             "(os/ws/rs; 'none' = os)")
    parser.add_argument("--frequencies-ghz", default="none",
                        help="comma-separated chiplet clocks in GHz "
                             "('none' = 2 GHz)")
    parser.add_argument("--native-tiles", default="none",
                        help="comma-separated native dataflow tiles as "
                             "ROWSxCOLS, e.g. 16x16 ('none' = 16x16)")
    parser.add_argument("--dram-gbps", default="none",
                        help="comma-separated package DRAM bandwidths in "
                             "GB/s ('none' = compute-only steady state)")
    parser.add_argument("--topologies", default="none",
                        help="comma-separated NoP topologies (mesh, "
                             "torus, or KIND-WxH grids like torus-8x8; "
                             "'none' = the seed open mesh)")
    parser.add_argument("--hetero", default="none",
                        help="comma-separated per-quadrant hardware "
                             "override tokens (QUAD:DATAFLOW[@GHZ]"
                             "[/ROWSxCOLS][#COUNT] joined by '+', e.g. "
                             "trunk:ws@1.2+temporal:@1.5 or trunk:ws#4; "
                             "'none' = homogeneous package)")
    parser.add_argument("--axis", action="append", default=[],
                        metavar="NAME=VALUES",
                        help="extra axis by canonical name (e.g. "
                             "--axis native_tile=16x16,8x8); may repeat, "
                             "overrides the dedicated flag for that axis")
    parser.add_argument("--target-pipe-ms", type=float, default=None,
                        metavar="MS",
                        help="prune candidates whose proxy pipe latency "
                             "exceeds this bound (the proxy is an "
                             "optimistic bound, so no candidate that "
                             "could meet the target is discarded)")
    parser.add_argument("--max-energy-j", type=float, default=None,
                        metavar="J",
                        help="prune candidates whose proxy per-frame "
                             "energy exceeds this bound")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the frontier "
                             "materialization sweep (1 = serial; the "
                             "proxy phase is one batch and never forks)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="directory of a shared disk-backed plan "
                             "store warm-starting the frontier "
                             "materialization (plans flush back)")
    parser.add_argument("--store-url", default=None, metavar="URL",
                        help="URL of a chiplet-npu memo server (see "
                             "'chiplet-npu serve'): like --store, over "
                             "the network")
    parser.add_argument("--json", action="store_true",
                        help="emit the deterministic frontier JSON "
                             "document instead of the table")
    parser.add_argument("--output", default=None,
                        help="also write the frontier JSON document to "
                             "this file")
    return parser


def _run_design(argv: list[str]) -> int:
    from .analysis import design_frontier_table
    from .design import DesignSearch, DesignSpace, DesignTargets

    parser = _design_parser()
    args = parser.parse_args(argv)
    if args.store is not None and args.store_url is not None:
        parser.error("--store and --store-url name two different plan "
                     "stores; pass one")
    if args.store_url is not None:
        from .serve import is_store_url
        if not is_store_url(args.store_url):
            parser.error(f"--store-url must start with http:// or "
                         f"https://; got {args.store_url!r} "
                         f"(for a directory store, use --store)")
    store_path = args.store_url if args.store_url is not None \
        else args.store
    axis_texts = {
        "tolerance": args.tolerances,
        "nop_gbps": args.nop_gbps,
        "npus": args.npus,
        "workload": args.workloads,
        "het_ws_budget": args.het_budgets,
        "dataflow": args.dataflows,
        "frequency_ghz": args.frequencies_ghz,
        "native_tile": args.native_tiles,
        "dram_gbps": args.dram_gbps,
        "topology": args.topologies,
        "hetero": args.hetero,
    }
    for item in args.axis:
        name, sep, values = item.partition("=")
        if not sep or not name or not values:
            parser.error(f"--axis expects NAME=VALUES, got {item!r}")
        axis_texts[name.strip()] = values
    try:
        space = DesignSpace.from_axis_texts(axis_texts)
        targets = DesignTargets(pipe_ms=args.target_pipe_ms,
                                energy_j=args.max_energy_j)
        result = DesignSearch(space, targets=targets,
                              workers=args.workers,
                              store_path=store_path).run()
    except (ValueError, KeyError) as exc:
        parser.error(exc.args[0] if exc.args else str(exc))

    # The frontier document is a pure function of the declared space and
    # targets (search stats count work, never caches or clocks), so the
    # emitted bytes are identical across serial/parallel runs and
    # cold/warm stores.
    report = result.report()
    document = json.dumps(report, indent=2, sort_keys=True)
    if args.output:
        import pathlib
        out = pathlib.Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(document + "\n")
    if args.json:
        print(document)
        return 0
    for line in design_frontier_table(report):
        print(line)
    if result.sweep is not None:
        # Cache effectiveness prints beside the report, never inside it:
        # hit/miss counts depend on store temperature, the frontier does
        # not.
        cache = result.sweep.summary()["plan_cache"]
        print(f"plan cache: {cache['hits']} hits / "
              f"{cache['misses']} misses "
              f"({100 * cache['hit_rate']:.1f}% hit rate, "
              f"{cache['entries']} entries, "
              f"{cache['store_hits']} served from store)")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "sweep":
        # Dispatch before the main parser so `sweep --help` (and any
        # sweep flag) reaches the sweep parser.  The parse_known_args
        # fallback below additionally tolerates the *shared* flags
        # (--json/--output) before the subcommand; sweep-specific flags
        # must follow `sweep`.
        return _run_sweep(argv[1:])
    if len(argv) >= 2 and argv[0] == "report" and argv[1] == "scaling":
        # `report scaling` is its own artifact generator (the markdown
        # report keeps its `report` form; scaling flags follow).
        return _run_scaling_report(argv[2:])
    if argv and argv[0] == "lint":
        # Same pre-dispatch as `sweep`, for the same reason: lint flags
        # (and file arguments) belong to the lint parser.
        from .devtools.runner import main as lint_main
        return lint_main(argv[1:])
    if argv and argv[0] == "serve":
        # Same pre-dispatch as `sweep`: serve flags belong to the serve
        # parser (and the command blocks, so it never mixes with the
        # experiment runner).
        return _run_serve(argv[1:])
    if argv and argv[0] == "design":
        # Same pre-dispatch as `sweep`: design flags belong to the
        # design parser.
        return _run_design(argv[1:])

    parser = argparse.ArgumentParser(
        prog="chiplet-npu",
        description="Reproduce the multi-chiplet NPU perception study "
                    "(DATE 2025).")
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["all", "design", "lint",
                                           "report", "serve", "sweep"],
        help="paper artifact to regenerate ('report' writes a full "
             "markdown reproduction report; 'sweep' runs a scenario "
             "grid, see 'chiplet-npu sweep --help'; 'design' searches a "
             "declared design space for its Pareto frontier, see "
             "'chiplet-npu design --help'; 'serve' runs the networked "
             "plan-memo server, see 'chiplet-npu serve --help'; 'lint' "
             "runs the repro-lint static analysis, see 'chiplet-npu "
             "lint --help')")
    parser.add_argument(
        "--json", action="store_true",
        help="emit structured JSON instead of tables")
    parser.add_argument(
        "--output", default=None,
        help="file to write ('report' defaults to results/REPORT.md)")
    args, rest = parser.parse_known_args(argv)

    if args.experiment == "sweep":
        # Shared flags placed before the subcommand (--json sweep ...):
        # re-emit them plus any trailing sweep flags from ``rest`` so the
        # sweep parser sees one canonical command line.
        extra = ["--json"] if args.json else []
        if args.output:
            extra += ["--output", args.output]
        return _run_sweep(extra + rest)
    if args.experiment == "design":
        # Shared flags placed before the subcommand (--json design ...).
        extra = ["--json"] if args.json else []
        if args.output:
            extra += ["--output", args.output]
        return _run_design(extra + rest)
    if args.experiment == "report" and rest and rest[0] == "scaling":
        # Shared flags before the subcommand (--json report scaling ...).
        extra = ["--json"] if args.json else []
        if args.output:
            extra += ["--output", args.output]
        return _run_scaling_report(extra + rest[1:])
    if args.experiment == "lint":
        # Shared flags before the subcommand (--json lint).
        from .devtools.runner import main as lint_main
        extra = ["--json"] if args.json else []
        if args.output:
            extra += ["--output", args.output]
        return lint_main(extra + rest)
    if args.experiment == "serve":
        # Serve has no shared flags; any trailing flags are its own.
        return _run_serve(rest)
    if rest:
        parser.error(f"unrecognized arguments: {' '.join(rest)}")

    if args.experiment == "report":
        from .io import generate_report
        out = args.output or "results/REPORT.md"
        sys.stdout.write(f"writing {out}\n")
        import pathlib
        pathlib.Path(out).parent.mkdir(parents=True, exist_ok=True)
        generate_report(out)
        return 0

    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        module = ALL_EXPERIMENTS[name]
        result = module.run()
        if args.json:
            print(json.dumps({name: result}, indent=2, default=str))
        else:
            print(f"=== {name} ===")
            print(module.render(result))
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
