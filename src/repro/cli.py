"""Command-line entry point: regenerate any paper table or figure.

Examples::

    chiplet-npu table2          # Table II comparison
    chiplet-npu fig10           # dual-NPU scaling trace
    chiplet-npu all             # every experiment
    python -m repro.cli fig3
"""

from __future__ import annotations

import argparse
import json
import sys

from .experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="chiplet-npu",
        description="Reproduce the multi-chiplet NPU perception study "
                    "(DATE 2025).")
    parser.add_argument(
        "experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["all", "report"],
        help="paper artifact to regenerate ('report' writes a full "
             "markdown reproduction report)")
    parser.add_argument(
        "--json", action="store_true",
        help="emit structured JSON instead of tables")
    parser.add_argument(
        "--output", default=None,
        help="file to write ('report' defaults to results/REPORT.md)")
    args = parser.parse_args(argv)

    if args.experiment == "report":
        from .io import generate_report
        out = args.output or "results/REPORT.md"
        sys.stdout.write(f"writing {out}\n")
        import pathlib
        pathlib.Path(out).parent.mkdir(parents=True, exist_ok=True)
        generate_report(out)
        return 0

    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" \
        else [args.experiment]
    for name in names:
        module = ALL_EXPERIMENTS[name]
        result = module.run()
        if args.json:
            print(json.dumps({name: result}, indent=2, default=str))
        else:
            print(f"=== {name} ===")
            print(module.render(result))
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
