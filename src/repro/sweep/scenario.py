"""Scenario definitions for design-space sweeps.

A :class:`Scenario` is one fully-specified run of the throughput-matching
scheduler (plus, optionally, the trunk DSE): a workload variant, a package
size, a NoP bandwidth, a tolerance coefficient, a heterogeneous WS chiplet
budget — and the *hardware* axes the accelerator, memory, and package
models expose: dataflow style, clock frequency, native dataflow tile,
DRAM bandwidth, the package NoP topology (``mesh``, ``torus``, or
explicit ``KIND-WxH`` grids), and per-quadrant hardware overrides
(``hetero``, compact tokens like ``trunk:ws@1.2`` — see
:mod:`repro.arch.quadrants`).  Scenarios are frozen, hashable, and
serializable, with a deterministic ``key`` string used to merge results
order-independently.

The hardware axes all default to ``None`` = seed behavior: they are
excluded from ``key`` and ``to_dict()`` unless set, so grids that do not
touch them produce byte-identical artifacts (and PlanStore merge keys)
to the PR 2 engine.

:meth:`Scenario.build` is the single package-construction path: it
materializes the ``(workload, package, DramBudget)`` triple every
scenario implies, so the sweep runner, the experiments, and the CLI all
agree on how an axis value becomes hardware.

:func:`scenario_grid` expands a cartesian grid over those axes — the shape
of every ablation the paper implies but does not run (tolerance, NoP
bandwidth, chiplet-count scaling, workload dimensions, Het(k) budgets,
dataflow/frequency/tile choices, DRAM-contention scenarios).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from ..arch import (
    DramBudget,
    MCMPackage,
    NoPConfig,
    QuadrantOverrides,
    canonical_topology,
    parse_topology,
    simba_package,
    workload_dram_bytes,
)
from ..cost import AcceleratorConfig, simba_chiplet
from ..cost.accelerator import DATAFLOW_STYLES as _STYLES
from ..workloads.graph import PerceptionWorkload
from ..workloads.pipeline import PipelineConfig, build_perception_workload

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..core.schedule import Schedule

#: named workload variants: the paper's fixed workload plus the scaling
#: knobs of analysis.scaling, as reusable scenario axes.
WORKLOAD_VARIANTS: dict[str, PipelineConfig] = {
    "default": PipelineConfig(),
    "lores": PipelineConfig(input_hw=(540, 960)),
    "hires": PipelineConfig(input_hw=(1080, 1920)),
    "quad-camera": PipelineConfig(cameras=4),
    "six-camera": PipelineConfig(cameras=6),
    "shallow-queue": PipelineConfig(t_frames=6),
    "deep-queue": PipelineConfig(t_frames=24),
    "full-context": PipelineConfig(lane_context=1.0),
}


def workload_variant(name: str) -> PipelineConfig:
    """The :class:`PipelineConfig` behind a variant name."""
    try:
        return WORKLOAD_VARIANTS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload variant {name!r}; "
            f"known: {', '.join(sorted(WORKLOAD_VARIANTS))}") from None


@dataclass(frozen=True)
class ScenarioBuild:
    """The hardware a :class:`Scenario` materializes to.

    One :meth:`Scenario.build` call produces the full
    ``(workload, package, DramBudget)`` triple plus the config behind the
    workload variant, so experiments and the sweep runner stop
    hand-rolling ``simba_package(...)`` calls.  ``dram`` is ``None`` when
    the scenario leaves the DRAM axis unset — the schedule then keeps the
    seed compute-only accounting.
    """

    scenario: "Scenario"
    config: PipelineConfig
    workload: PerceptionWorkload
    package: MCMPackage
    dram: DramBudget | None
    #: per-frame DRAM traffic (0 when no budget is attached).
    dram_bytes_per_frame: int

    @property
    def accel(self) -> AcceleratorConfig:
        """The (possibly overridden) package-wide chiplet config.

        On a per-quadrant heterogeneous package this is chiplet 0's
        config (the ``fe`` quadrant); consult the package's chiplets for
        the per-quadrant mix.
        """
        return self.package.chiplets[0].accel

    def schedule(self) -> "Schedule":
        """Run the throughput matcher on the materialized hardware.

        The scenario's combined plan context (topology + hetero) scopes
        every plan the matcher prices, so heterogeneous scenarios never
        share plan-store shards with homogeneous ones.
        """
        from ..core.throughput import ThroughputMatcher
        return ThroughputMatcher(
            self.workload, self.package,
            tolerance=self.scenario.tolerance,
            dram=self.dram,
            dram_bytes_per_frame=self.dram_bytes_per_frame,
            plan_context=self.scenario.plan_context).run()


@dataclass(frozen=True)
class Scenario:
    """One point of a sweep grid."""

    tolerance: float = 1.05
    #: NoP link bandwidth in GB/s; None keeps the default (100 GB/s).
    nop_gbps: float | None = None
    #: number of 6x6 NPU modules in the package (package size axis).
    npus: int = 1
    #: key into :data:`WORKLOAD_VARIANTS`.
    workload: str = "default"
    #: when set, additionally run the trunk DSE with this WS chiplet budget.
    het_ws_budget: int | None = None
    # ------------------------------------------------------------------
    # Hardware axes (PR 3).  All default to None = seed behavior, and are
    # excluded from key/to_dict unless set — existing grids, artifacts,
    # and PlanStore merge keys are unchanged at defaults.
    # ------------------------------------------------------------------
    #: chiplet dataflow style ("os", "ws", "rs"); None keeps "os".
    dataflow: str | None = None
    #: chiplet clock in GHz; None keeps the 2 GHz Simba preset.
    frequency_ghz: float | None = None
    #: native dataflow tile as (rows, cols); None keeps 16x16.
    native_tile: tuple[int, int] | None = None
    #: package DRAM bandwidth in GB/s; None detaches the DRAM budget
    #: (compute-only steady state, the seed behavior).
    dram_gbps: float | None = None
    #: NoP topology token ("mesh", "torus", or "KIND-WxH" explicit
    #: grids); None keeps the seed open mesh.
    topology: str | None = None
    #: per-quadrant hardware overrides as a compact token
    #: ("trunk:ws@1.2+temporal:@1.5", partial Het(k) counts like
    #: "trunk:ws#4" — see repro.arch.quadrants); None keeps the package
    #: homogeneous (seed behavior).
    hetero: str | None = None

    def __post_init__(self) -> None:
        # tolerance/npus/workload have no "default" sentinel: an explicit
        # None (e.g. a CLI axis of 'none') is a usage error, reported as
        # ValueError rather than a comparison TypeError.
        if self.tolerance is None or self.tolerance < 1.0:
            raise ValueError("tolerance must be a number >= 1.0")
        if self.npus is None or self.npus < 1:
            raise ValueError("npus must be an integer >= 1")
        if self.nop_gbps is not None and self.nop_gbps <= 0:
            raise ValueError("nop_gbps must be positive")
        if self.het_ws_budget is not None and self.het_ws_budget < 0:
            raise ValueError("het_ws_budget must be >= 0")
        if self.dataflow is not None and self.dataflow not in _STYLES:
            raise ValueError(
                f"dataflow must be one of {', '.join(_STYLES)}; "
                f"got {self.dataflow!r}")
        if self.frequency_ghz is not None and self.frequency_ghz <= 0:
            raise ValueError("frequency_ghz must be positive")
        if self.native_tile is not None:
            tile = self.native_tile
            if (not isinstance(tile, (tuple, list)) or len(tile) != 2
                    or not all(isinstance(d, int) and d > 0 for d in tile)):
                raise ValueError(
                    f"native_tile must be two positive integers "
                    f"(rows, cols); got {tile!r}")
            object.__setattr__(self, "native_tile", tuple(tile))
        if self.dram_gbps is not None and self.dram_gbps <= 0:
            raise ValueError("dram_gbps must be positive")
        if self.topology is not None:
            # Canonicalize so "Torus" / "torus-8X8" key identically, and
            # fail fast on tokens (or npus conflicts) the package builder
            # would reject mid-sweep.
            _, dims = parse_topology(self.topology)
            if dims is not None and self.npus != 1:
                raise ValueError(
                    f"topology {self.topology!r} fixes an explicit grid "
                    f"and is incompatible with npus={self.npus}")
            object.__setattr__(self, "topology",
                               canonical_topology(self.topology))
        if self.hetero is not None:
            # Canonicalize (quadrant order, %g frequencies) so equivalent
            # spellings key identically, and fail fast on tokens the
            # package builder would reject mid-sweep.
            object.__setattr__(self, "hetero",
                               QuadrantOverrides.parse(self.hetero).token)
        workload_variant(self.workload)  # fail fast on unknown variants

    @property
    def key(self) -> str:
        """Deterministic identity string (merge key and report label).

        Hardware axes contribute a fragment only when set, keeping the
        key byte-stable for every grid expressible before they existed.
        """
        nop = "default" if self.nop_gbps is None else f"{self.nop_gbps:g}"
        het = "-" if self.het_ws_budget is None else str(self.het_ws_budget)
        parts = [f"tol={self.tolerance:g}|nop={nop}|npus={self.npus}"
                 f"|wl={self.workload}|het={het}"]
        if self.dataflow is not None:
            parts.append(f"df={self.dataflow}")
        if self.frequency_ghz is not None:
            parts.append(f"ghz={self.frequency_ghz:g}")
        if self.native_tile is not None:
            parts.append(f"tile={self.native_tile[0]}x{self.native_tile[1]}")
        if self.dram_gbps is not None:
            parts.append(f"dram={self.dram_gbps:g}")
        if self.topology is not None:
            parts.append(f"topo={self.topology}")
        if self.hetero is not None:
            parts.append(f"hetero={self.hetero}")
        return "|".join(parts)

    def to_dict(self) -> dict:
        """Row payload; hardware axes appear only when set (byte-stable)."""
        out = {
            "tolerance": self.tolerance,
            "nop_gbps": self.nop_gbps,
            "npus": self.npus,
            "workload": self.workload,
            "het_ws_budget": self.het_ws_budget,
        }
        if self.dataflow is not None:
            out["dataflow"] = self.dataflow
        if self.frequency_ghz is not None:
            out["frequency_ghz"] = self.frequency_ghz
        if self.native_tile is not None:
            out["native_tile"] = list(self.native_tile)
        if self.dram_gbps is not None:
            out["dram_gbps"] = self.dram_gbps
        if self.topology is not None:
            out["topology"] = self.topology
        if self.hetero is not None:
            out["hetero"] = self.hetero
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "Scenario":
        """Rebuild a scenario from its :meth:`to_dict` payload.

        The inverse the serving layer's ``/sweep`` route uses to price
        shards shipped as JSON: ``to_dict`` keys map 1:1 onto
        constructor kwargs (absent axes stay at their defaults), and
        ``__post_init__`` re-canonicalizes, so the round-tripped
        scenario has the same ``key`` — and prices to the same row — as
        the original.  Unknown keys fail fast rather than silently
        dropping an axis a newer client swept.
        """
        if not isinstance(payload, dict):
            raise TypeError(
                f"scenario payload must be an object, got "
                f"{type(payload).__name__}")
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - fields)
        if unknown:
            raise ValueError(
                f"unknown scenario axes {unknown}; this side speaks "
                f"axes {sorted(fields)}")
        kwargs = dict(payload)
        tile = kwargs.get("native_tile")
        if tile is not None:
            kwargs["native_tile"] = tuple(tile)
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Hardware materialization
    # ------------------------------------------------------------------

    @property
    def plan_context(self) -> str | None:
        """Plan-cache/store keying context implied by the hardware axes.

        Composes the topology fragment (mirroring
        :attr:`repro.arch.NoPTopology.plan_context`: ``None`` for the
        unset axis or any explicit mesh, the kind token otherwise) with a
        ``het:<token>`` fragment when per-quadrant overrides are set —
        heterogeneous rows must never share a store shard with
        homogeneous ones, even for the quadrants an override does not
        touch.  Every planner a scenario drives — the throughput matcher
        *and* the trunk DSE — must key its plans with this, so no store
        shard ever crosses topologies or package compositions.  ``None``
        (both axes unset) keeps every pre-existing key byte-stable.
        """
        parts = []
        if self.topology is not None:
            kind, _ = parse_topology(self.topology)
            if kind != "mesh":
                parts.append(kind)
        if self.hetero is not None:
            parts.append(f"het:{self.hetero}")
        return "|".join(parts) if parts else None

    def quadrant_overrides(self) -> QuadrantOverrides | None:
        """The parsed per-quadrant override spec (None when unset)."""
        if self.hetero is None:
            return None
        return QuadrantOverrides.parse(self.hetero)

    def trunk_hw(self) -> tuple[float | None, tuple[int, int] | None]:
        """Effective ``(frequency_ghz, native_tile)`` of the trunk quadrant.

        The scenario-wide hardware axes overlaid with the ``trunk``
        quadrant override (if any) — what the trunk DSE's candidate
        accelerators must run at.  The quadrant *dataflow* is
        deliberately absent: the DSE explores its own OS/WS mixes
        regardless of the quadrant's resident style.
        """
        freq, tile = self.frequency_ghz, self.native_tile
        spec = self.quadrant_overrides()
        trunk = spec.get("trunk") if spec is not None else None
        if trunk is not None:
            if trunk.frequency_ghz is not None:
                freq = trunk.frequency_ghz
            if trunk.native_tile is not None:
                tile = trunk.native_tile
        return freq, tile

    def accel(self) -> AcceleratorConfig:
        """The chiplet config this scenario's axes describe.

        Overrides ride on the Simba preset via
        :meth:`~repro.cost.AcceleratorConfig.with_overrides`, so an
        explicit value equal to the default yields the *identical*
        config (same plan-cache and plan-store entries), while any real
        difference changes the content hash and never shares a plan.
        """
        base = simba_chiplet(self.dataflow or "os")
        freq = (None if self.frequency_ghz is None
                else self.frequency_ghz * 1e9)
        return base.with_overrides(frequency_hz=freq,
                                   native_tile=self.native_tile)

    def dram_budget(self) -> DramBudget | None:
        """The DRAM budget this scenario attaches (None = detached)."""
        if self.dram_gbps is None:
            return None
        return DramBudget(bandwidth_bytes_per_s=self.dram_gbps * 1e9)

    def package(self) -> MCMPackage:
        """Materialize only the package (no workload build) — for callers
        that pair the scenario's hardware with their own workload.

        Per-quadrant overrides layer on the package-wide accelerator
        last, so the ``hetero`` axis composes with every other hardware
        axis (a ``trunk:ws`` override on a 1 GHz package yields a 1 GHz
        WS trunk quadrant).
        """
        nop = (NoPConfig(bandwidth_bytes_per_s=self.nop_gbps * 1e9)
               if self.nop_gbps is not None else NoPConfig())
        accel = self.accel()
        package = simba_package(dataflow=accel.dataflow, npus=self.npus,
                                accel=accel, nop=nop,
                                topology=self.topology)
        spec = self.quadrant_overrides()
        if spec is not None:
            package = spec.apply(package)
        return package

    def build(self) -> ScenarioBuild:
        """Materialize the ``(workload, package, DramBudget)`` triple.

        The single construction path shared by the sweep runner, the
        experiments, and the CLI: at default axes it reproduces the PR 2
        hand-rolled ``simba_package(npus=..., nop=...)`` call exactly.
        """
        config = workload_variant(self.workload)
        workload = build_perception_workload(config)
        package = self.package()
        dram = self.dram_budget()
        dram_bytes = (workload_dram_bytes(workload, config)
                      if dram is not None else 0)
        return ScenarioBuild(scenario=self, config=config,
                             workload=workload, package=package,
                             dram=dram, dram_bytes_per_frame=dram_bytes)


def scenario_grid(
        tolerances: Sequence[float] = (1.05,),
        nop_gbps: Sequence[float | None] = (None,),
        npus: Sequence[int] = (1,),
        workloads: Sequence[str] = ("default",),
        het_ws_budgets: Sequence[int | None] = (None,),
        dataflows: Sequence[str | None] = (None,),
        frequencies_ghz: Sequence[float | None] = (None,),
        native_tiles: Sequence[tuple[int, int] | None] = (None,),
        dram_gbps: Sequence[float | None] = (None,),
        topologies: Sequence[str | None] = (None,),
        heteros: Sequence[str | None] = (None,),
) -> list[Scenario]:
    """Cartesian scenario grid over the eleven sweep axes.

    The expansion order is deterministic (row-major over the arguments as
    given), so a grid built twice from the same inputs is identical — the
    property the parallel runner's order-independent merge relies on.
    The hardware axes expand innermost: grids that leave them at their
    defaults enumerate in exactly the PR 2 order.
    """
    grid = [
        Scenario(tolerance=tol, nop_gbps=bw, npus=n,
                 workload=wl, het_ws_budget=het, dataflow=df,
                 frequency_ghz=ghz, native_tile=tile, dram_gbps=dram,
                 topology=topo, hetero=hmix)
        for tol in tolerances
        for bw in nop_gbps
        for n in npus
        for wl in workloads
        for het in het_ws_budgets
        for df in dataflows
        for ghz in frequencies_ghz
        for tile in native_tiles
        for dram in dram_gbps
        for topo in topologies
        for hmix in heteros
    ]
    seen: set[str] = set()
    for s in grid:
        if s.key in seen:
            raise ValueError(f"duplicate scenario in grid: {s.key}")
        seen.add(s.key)
    return grid


# ----------------------------------------------------------------------
# CLI axis parsing
# ----------------------------------------------------------------------

def parse_tile(text: str) -> tuple[int, int]:
    """Parse a native-tile token (``16x16`` -> ``(16, 16)``)."""
    rows, sep, cols = text.lower().partition("x")
    if not sep or not rows.strip().isdigit() or not cols.strip().isdigit():
        raise ValueError("expected ROWSxCOLS, e.g. 16x16")
    return (int(rows), int(cols))


def _parse_dataflow(text: str) -> str:
    if text not in _STYLES:
        raise ValueError(f"expected one of {', '.join(_STYLES)}")
    return text


def _parse_topology_token(text: str) -> str:
    """Validate and canonicalize one topology axis token.

    Delegates to :func:`repro.arch.canonical_topology`, whose errors
    list the valid kinds and the ``KIND-WxH`` grid form — wrapped by
    :func:`parse_axis` with the offending axis name.
    """
    return canonical_topology(text)


def _parse_hetero_token(text: str) -> str:
    """Validate and canonicalize one per-quadrant hetero axis token.

    Delegates to :meth:`repro.arch.QuadrantOverrides.parse`, whose
    errors list the valid quadrant names and dataflow styles — wrapped
    by :func:`parse_axis` with the offending axis name.
    """
    return QuadrantOverrides.parse(text).token


@dataclass(frozen=True)
class AxisSpec:
    """How one CLI axis maps onto :func:`scenario_grid`."""

    #: keyword argument of :func:`scenario_grid`
    grid_kwarg: str
    #: token parser for one non-``none`` value
    cast: Callable
    #: whether the ``none`` sentinel is meaningful for this axis
    allows_none: bool
    #: one-line help fragment
    help: str = ""


#: every sweep axis reachable from the CLI, keyed by its canonical name
#: (also accepted by ``--axis NAME=VALUES``).
AXIS_SPECS: dict[str, AxisSpec] = {
    "tolerance": AxisSpec("tolerances", float, False,
                          "Algorithm 1 tolerance coefficient"),
    "nop_gbps": AxisSpec("nop_gbps", float, True,
                         "NoP link bandwidth in GB/s"),
    "npus": AxisSpec("npus", int, False, "6x6 NPU modules in the package"),
    "workload": AxisSpec("workloads", str, False, "workload variant name"),
    "het_ws_budget": AxisSpec("het_ws_budgets", int, True,
                              "WS chiplet budget for the trunk DSE"),
    "dataflow": AxisSpec("dataflows", _parse_dataflow, True,
                         "chiplet dataflow style (os/ws/rs)"),
    "frequency_ghz": AxisSpec("frequencies_ghz", float, True,
                              "chiplet clock in GHz"),
    "native_tile": AxisSpec("native_tiles", parse_tile, True,
                            "native dataflow tile, ROWSxCOLS"),
    "dram_gbps": AxisSpec("dram_gbps", float, True,
                          "package DRAM bandwidth in GB/s"),
    "topology": AxisSpec("topologies", _parse_topology_token, True,
                         "NoP topology: mesh, torus, or KIND-WxH grid"),
    "hetero": AxisSpec("heteros", _parse_hetero_token, True,
                       "per-quadrant hardware overrides, e.g. "
                       "trunk:ws@1.2+temporal:@1.5 or trunk:ws#4"),
}


def parse_axis(text: str, cast=float, axis: str | None = None) -> list:
    """Parse a comma-separated CLI axis ('1.0,1.05'); 'none' -> None.

    Every axis — float, int, string, or tuple-valued (``16x16``) — goes
    through this one path, so the ``none`` sentinel behaves uniformly and
    a bad token produces a ``ValueError`` naming the offending axis and
    value instead of a bare cast traceback.
    """
    label = f" for axis {axis!r}" if axis else ""
    values: list = []
    for tok in text.split(","):
        tok = tok.strip()
        if not tok:
            continue
        if tok.lower() == "none":
            values.append(None)
            continue
        try:
            values.append(cast(tok))
        except (ValueError, TypeError) as exc:
            detail = str(exc) or f"not a valid {getattr(cast, '__name__', 'value')}"
            raise ValueError(
                f"invalid value {tok!r}{label}: {detail}") from None
    if not values:
        raise ValueError(f"empty axis{label}: {text!r}")
    return values


def parse_grid_axes(axis_texts: dict[str, str]) -> dict:
    """Parse named CLI axes into :func:`scenario_grid` keyword arguments.

    ``axis_texts`` maps canonical axis names (see :data:`AXIS_SPECS`) to
    their comma-separated value strings; unknown names and ``none`` on an
    axis that has no default sentinel raise a ``ValueError`` naming the
    axis.
    """
    kwargs: dict = {}
    for name, text in axis_texts.items():
        spec = AXIS_SPECS.get(name)
        if spec is None:
            raise ValueError(
                f"unknown sweep axis {name!r}; "
                f"known: {', '.join(sorted(AXIS_SPECS))}")
        values = parse_axis(text, spec.cast, axis=name)
        if not spec.allows_none and None in values:
            raise ValueError(
                f"invalid value 'none' for axis {name!r}: "
                f"this axis has no default sentinel")
        kwargs[spec.grid_kwarg] = values
    return kwargs
