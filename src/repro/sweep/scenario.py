"""Scenario definitions for design-space sweeps.

A :class:`Scenario` is one fully-specified run of the throughput-matching
scheduler (plus, optionally, the trunk DSE): a workload variant, a package
size, a NoP bandwidth, a tolerance coefficient, and a heterogeneous WS
chiplet budget.  Scenarios are frozen, hashable, and serializable, with a
deterministic ``key`` string used to merge results order-independently.

:func:`scenario_grid` expands a cartesian grid over those axes — the shape
of every ablation the paper implies but does not run (tolerance, NoP
bandwidth, chiplet-count scaling, workload dimensions, Het(k) budgets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..workloads.pipeline import PipelineConfig

#: named workload variants: the paper's fixed workload plus the scaling
#: knobs of analysis.scaling, as reusable scenario axes.
WORKLOAD_VARIANTS: dict[str, PipelineConfig] = {
    "default": PipelineConfig(),
    "lores": PipelineConfig(input_hw=(540, 960)),
    "hires": PipelineConfig(input_hw=(1080, 1920)),
    "quad-camera": PipelineConfig(cameras=4),
    "six-camera": PipelineConfig(cameras=6),
    "shallow-queue": PipelineConfig(t_frames=6),
    "deep-queue": PipelineConfig(t_frames=24),
    "full-context": PipelineConfig(lane_context=1.0),
}


def workload_variant(name: str) -> PipelineConfig:
    """The :class:`PipelineConfig` behind a variant name."""
    try:
        return WORKLOAD_VARIANTS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload variant {name!r}; "
            f"known: {', '.join(sorted(WORKLOAD_VARIANTS))}") from None


@dataclass(frozen=True)
class Scenario:
    """One point of a sweep grid."""

    tolerance: float = 1.05
    #: NoP link bandwidth in GB/s; None keeps the default (100 GB/s).
    nop_gbps: float | None = None
    #: number of 6x6 NPU modules in the package (package size axis).
    npus: int = 1
    #: key into :data:`WORKLOAD_VARIANTS`.
    workload: str = "default"
    #: when set, additionally run the trunk DSE with this WS chiplet budget.
    het_ws_budget: int | None = None

    def __post_init__(self) -> None:
        # tolerance/npus/workload have no "default" sentinel: an explicit
        # None (e.g. a CLI axis of 'none') is a usage error, reported as
        # ValueError rather than a comparison TypeError.
        if self.tolerance is None or self.tolerance < 1.0:
            raise ValueError("tolerance must be a number >= 1.0")
        if self.npus is None or self.npus < 1:
            raise ValueError("npus must be an integer >= 1")
        if self.nop_gbps is not None and self.nop_gbps <= 0:
            raise ValueError("nop_gbps must be positive")
        if self.het_ws_budget is not None and self.het_ws_budget < 0:
            raise ValueError("het_ws_budget must be >= 0")
        workload_variant(self.workload)  # fail fast on unknown variants

    @property
    def key(self) -> str:
        """Deterministic identity string (merge key and report label)."""
        nop = "default" if self.nop_gbps is None else f"{self.nop_gbps:g}"
        het = "-" if self.het_ws_budget is None else str(self.het_ws_budget)
        return (f"tol={self.tolerance:g}|nop={nop}|npus={self.npus}"
                f"|wl={self.workload}|het={het}")

    def to_dict(self) -> dict:
        return {
            "tolerance": self.tolerance,
            "nop_gbps": self.nop_gbps,
            "npus": self.npus,
            "workload": self.workload,
            "het_ws_budget": self.het_ws_budget,
        }


def scenario_grid(
        tolerances: Sequence[float] = (1.05,),
        nop_gbps: Sequence[float | None] = (None,),
        npus: Sequence[int] = (1,),
        workloads: Sequence[str] = ("default",),
        het_ws_budgets: Sequence[int | None] = (None,),
) -> list[Scenario]:
    """Cartesian scenario grid over the five sweep axes.

    The expansion order is deterministic (row-major over the arguments as
    given), so a grid built twice from the same inputs is identical — the
    property the parallel runner's order-independent merge relies on.
    """
    grid = [
        Scenario(tolerance=tol, nop_gbps=bw, npus=n,
                 workload=wl, het_ws_budget=het)
        for tol in tolerances
        for bw in nop_gbps
        for n in npus
        for wl in workloads
        for het in het_ws_budgets
    ]
    seen: set[str] = set()
    for s in grid:
        if s.key in seen:
            raise ValueError(f"duplicate scenario in grid: {s.key}")
        seen.add(s.key)
    return grid


def parse_axis(text: str, cast=float) -> list:
    """Parse a comma-separated CLI axis ('1.0,1.05'); 'none' -> None."""
    values: list = []
    for tok in text.split(","):
        tok = tok.strip()
        if not tok:
            continue
        values.append(None if tok.lower() == "none" else cast(tok))
    if not values:
        raise ValueError(f"empty axis: {text!r}")
    return values
