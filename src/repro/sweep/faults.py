"""Deterministic fault injection for the sweep engine (dev/test only).

Fleet-scale execution meets partial failure as the *normal* case: a
worker OOMs mid-chunk, a shared plan-store shard is truncated by a dying
host, a scenario trips a transient I/O error.  Reproducing those faults
on demand is what makes the resilience layer testable — a flaky test
that kills a worker "sometimes" proves nothing.

A :class:`FaultPlan` is a reproducible failure script: *scenario N fails
on attempt K*, *the worker pricing scenario N dies on attempt K*, *the
N-th plan-store shard is corrupted before the run*.  Every fault is a
pure function of ``(scenario key, attempt number)``, so a plan replayed
against the same grid fires identically — in unit tests, in the CI
fault-injection smoke, and behind the dev-only ``--inject-faults`` CLI
flag.

Fault kinds:

``fail``
    raise :class:`InjectedFault` (a retryable
    :class:`~repro.sweep.resilience.TransientError`) before pricing.
``crash``
    kill the worker process the way a segfault/OOM would (``os._exit``,
    no cleanup) — the parent observes a ``BrokenProcessPool`` and must
    respawn and re-dispatch.
``hang``
    block the worker for ``hang_s`` — long enough to trip the runner's
    chunk watchdog, which kills the pool and re-dispatches.
``corrupt-shard``
    truncate the N-th shard file of the attached plan store before the
    sweep starts, exercising the store's corrupt-shard tolerance and the
    ``store_skipped`` reporting path.
"""

from __future__ import annotations

import os
import pathlib
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

from .resilience import Clock, RealClock, TransientError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from .scenario import Scenario

#: the injectable failure modes, in documentation order.
FAULT_KINDS = ("fail", "crash", "hang", "corrupt-shard")

#: exit status of a ``crash`` fault — distinctive in worker core dumps.
CRASH_EXIT_CODE = 86


class InjectedFault(TransientError):
    """The deterministic, *retryable* failure a ``fail`` fault raises."""


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault.

    ``target`` is a grid index (resolved to a scenario key via
    :meth:`FaultPlan.resolved` before shipping to workers) or an exact
    scenario key; for ``corrupt-shard`` it is the index into the store's
    sorted shard list.  ``attempts`` lists the attempt numbers on which
    a per-scenario fault fires — ``(1,)`` injects one transient failure,
    ``(1, 2, 3)`` makes the scenario a poison pill for a 3-attempt
    policy.
    """

    kind: str
    target: int | str
    attempts: tuple[int, ...] = (1,)
    #: how long a ``hang`` fault blocks its worker.
    hang_s: float = 300.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(FAULT_KINDS)}")
        attempts = tuple(sorted(set(self.attempts)))
        if not attempts or any(not isinstance(a, int) or a < 1
                               for a in attempts):
            raise ValueError("attempts must be positive attempt numbers")
        object.__setattr__(self, "attempts", attempts)
        if self.hang_s <= 0:
            raise ValueError("hang_s must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered script of deterministic faults for one sweep run."""

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a CLI fault script: ``;``-joined ``KIND:TARGET[@ATTEMPTS]``.

        ``TARGET`` is a grid index (shard index for ``corrupt-shard``);
        ``ATTEMPTS`` a ``,``-list of attempt numbers, default ``1``.
        Examples: ``fail:0`` (scenario 0 fails once), ``fail:2@1,2,3``
        (scenario 2 is a poison pill), ``crash:1`` (the worker pricing
        scenario 1 dies on attempt 1), ``corrupt-shard:0``.
        """
        specs = []
        for token in text.split(";"):
            token = token.strip()
            if not token:
                continue
            kind, sep, rest = token.partition(":")
            if not sep:
                raise ValueError(
                    f"fault token {token!r} is not KIND:TARGET[@ATTEMPTS]")
            target_text, attempt_sep, attempts_text = rest.partition("@")
            target_text = target_text.strip()
            if not target_text.isdigit():
                raise ValueError(
                    f"fault target {target_text!r} in {token!r} must be "
                    f"a grid index (shard index for corrupt-shard)")
            attempts: tuple[int, ...] = (1,)
            if attempt_sep:
                parts = [a.strip() for a in attempts_text.split(",")]
                if not all(p.isdigit() and int(p) >= 1 for p in parts):
                    raise ValueError(
                        f"fault attempts {attempts_text!r} in {token!r} "
                        f"must be positive attempt numbers")
                attempts = tuple(int(p) for p in parts)
            specs.append(FaultSpec(kind=kind, target=int(target_text),
                                   attempts=attempts))
        if not specs:
            raise ValueError(f"empty fault plan: {text!r}")
        return cls(specs=tuple(specs))

    def resolved(self, scenarios: Sequence["Scenario"]) -> "FaultPlan":
        """Resolve grid-index targets to scenario keys.

        Key-targeted and ``corrupt-shard`` specs pass through; an index
        outside the grid is an error (a silently dead fault would make a
        fault-injection test vacuous).
        """
        specs = []
        for spec in self.specs:
            if spec.kind == "corrupt-shard" or isinstance(spec.target, str):
                specs.append(spec)
                continue
            if not 0 <= spec.target < len(scenarios):
                raise ValueError(
                    f"fault target index {spec.target} outside the "
                    f"{len(scenarios)}-scenario grid")
            specs.append(replace(spec, target=scenarios[spec.target].key))
        return FaultPlan(specs=tuple(specs))

    # ------------------------------------------------------------------
    # per-scenario faults (fired inside workers)
    # ------------------------------------------------------------------

    def spec_for(self, key: str, attempt: int) -> FaultSpec | None:
        """The first per-scenario spec armed for ``(key, attempt)``."""
        for spec in self.specs:
            if (spec.kind != "corrupt-shard" and spec.target == key
                    and attempt in spec.attempts):
                return spec
        return None

    def fire(self, key: str, attempt: int,
             clock: Clock | None = None) -> None:
        """Trigger the scripted fault for ``(key, attempt)``, if any.

        ``fail`` raises :class:`InjectedFault`; ``crash`` kills this
        process without cleanup, exactly like a segfault or the OOM
        killer; ``hang`` blocks on the (injectable) clock.
        """
        spec = self.spec_for(key, attempt)
        if spec is None:
            return
        if spec.kind == "fail":
            raise InjectedFault(
                f"injected failure for {key} (attempt {attempt})")
        if spec.kind == "crash":
            os._exit(CRASH_EXIT_CODE)
        if spec.kind == "hang":
            (clock or RealClock()).sleep(spec.hang_s)

    # ------------------------------------------------------------------
    # store faults (fired once, before the run)
    # ------------------------------------------------------------------

    def shard_targets(self) -> tuple[int, ...]:
        """Sorted shard indices the ``corrupt-shard`` specs name."""
        return tuple(sorted(spec.target for spec in self.specs
                            if spec.kind == "corrupt-shard"
                            and isinstance(spec.target, int)))

    def corrupt_store(self, store_path: str | pathlib.Path,
                      ) -> list[pathlib.Path]:
        """Truncate the targeted shards of a plan store (deterministic).

        Each targeted shard keeps its first half — guaranteed-invalid
        JSON — so ``PlanStore.load()`` must skip it (recording it in
        ``skipped_files``) and the sweep degrades to recomputing those
        plans.  Returns the shards actually corrupted; indices beyond
        the store are ignored (an empty store has nothing to corrupt).
        """
        from ..core.planstore import PlanStore
        shards = PlanStore(store_path).shard_files()
        corrupted = []
        for index in self.shard_targets():
            if 0 <= index < len(shards):
                shard = shards[index]
                shard.write_text(shard.read_text()[:shard.stat().st_size // 2])
                corrupted.append(shard)
        return corrupted
