"""Parallel scenario-sweep engine over the scheduler and trunk DSE."""

from .runner import ScenarioSweep, SweepResult, run_scenario, run_sweep
from .scenario import (
    WORKLOAD_VARIANTS,
    Scenario,
    parse_axis,
    scenario_grid,
    workload_variant,
)

__all__ = [
    "ScenarioSweep",
    "SweepResult",
    "run_scenario",
    "run_sweep",
    "WORKLOAD_VARIANTS",
    "Scenario",
    "parse_axis",
    "scenario_grid",
    "workload_variant",
]
