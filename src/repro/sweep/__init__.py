"""Parallel scenario-sweep engine over the scheduler and trunk DSE."""

from .runner import (
    ScenarioSweep,
    SweepOutcome,
    SweepResult,
    clear_trunk_memo,
    layer_cost_cache_stats,
    run_scenario,
    run_sweep,
)
from .scenario import (
    AXIS_SPECS,
    WORKLOAD_VARIANTS,
    AxisSpec,
    Scenario,
    ScenarioBuild,
    parse_axis,
    parse_grid_axes,
    parse_tile,
    scenario_grid,
    workload_variant,
)

__all__ = [
    "ScenarioSweep",
    "SweepOutcome",
    "SweepResult",
    "clear_trunk_memo",
    "layer_cost_cache_stats",
    "run_scenario",
    "run_sweep",
    "AXIS_SPECS",
    "WORKLOAD_VARIANTS",
    "AxisSpec",
    "Scenario",
    "ScenarioBuild",
    "parse_axis",
    "parse_grid_axes",
    "parse_tile",
    "scenario_grid",
    "workload_variant",
]
