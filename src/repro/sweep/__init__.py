"""Parallel scenario-sweep engine over the scheduler and trunk DSE."""

from .runner import (
    ScenarioSweep,
    SweepOutcome,
    SweepResult,
    clear_trunk_memo,
    layer_cost_cache_stats,
    run_scenario,
    run_sweep,
)
from .scenario import (
    WORKLOAD_VARIANTS,
    Scenario,
    parse_axis,
    scenario_grid,
    workload_variant,
)

__all__ = [
    "ScenarioSweep",
    "SweepOutcome",
    "SweepResult",
    "clear_trunk_memo",
    "layer_cost_cache_stats",
    "run_scenario",
    "run_sweep",
    "WORKLOAD_VARIANTS",
    "Scenario",
    "parse_axis",
    "scenario_grid",
    "workload_variant",
]
