"""Journal-backed sweep checkpoints: atomic append-per-outcome, resume.

A crashed sweep must not forfeit its completed work.  The plan store
already keeps *plans* warm across crashes; :class:`SweepJournal` does
the same for finished *rows*: the orchestrator checkpoints every outcome
the moment it lands, and ``ScenarioSweep(resume_from=...)`` replays the
journal and prices only the scenarios it is missing.

The on-disk idiom is the :class:`~repro.core.planstore.PlanStore` one —
immutable record files landed by temp-write + ``os.replace`` rename, so
a reader (or a resuming run) never observes a partial record and a crash
mid-write leaves at worst an orphaned ``.tmp`` file that the next load
ignores:

* one ``outcome-<index>.json`` per completed scenario, named by the
  scenario's grid index (the journal belongs to one grid; the writer is
  the single orchestrator process, so index names cannot collide);
* one ``failure-<index>.json`` per quarantined scenario — kept for the
  failure manifest and post-mortems, but **never** replayed: a resumed
  sweep re-attempts quarantined scenarios from scratch, because the
  fault that killed them may have been transient;
* every record is stamped with :data:`JOURNAL_SCHEMA_VERSION`; records
  from another version (or corrupt/truncated files) are skipped and
  recorded in :attr:`SweepJournal.skipped_files`, so a stale journal
  degrades to re-pricing instead of resurrecting wrong rows.

Rows round-trip byte-exactly: the payload is the row dict JSON that
``rows_json()`` serializes anyway (floats round-trip via ``repr``), so a
crashed-then-resumed sweep produces output byte-identical to an
uninterrupted run — the property the CI fault-injection smoke locks.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import TYPE_CHECKING

from ..core.plancache import CacheStats
from .resilience import SweepFailure

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from .runner import SweepOutcome

#: journal record layout revision; bump when the payload changes meaning.
JOURNAL_SCHEMA_VERSION = 1

_OUTCOME_PREFIX = "outcome-"
_FAILURE_PREFIX = "failure-"
_SUFFIX = ".json"


def _stats_from(payload: object) -> CacheStats:
    """Rebuild a :class:`CacheStats` from its ``to_dict`` payload."""
    if not isinstance(payload, dict):
        return CacheStats(hits=0, misses=0, entries=0, store_hits=0)
    return CacheStats(hits=int(payload.get("hits", 0)),
                      misses=int(payload.get("misses", 0)),
                      entries=int(payload.get("entries", 0)),
                      store_hits=int(payload.get("store_hits", 0)),
                      seeded=int(payload.get("seeded", 0)))


class SweepJournal:
    """A directory of per-outcome checkpoint records for one sweep grid."""

    def __init__(self, path: str | pathlib.Path,
                 schema_version: int = JOURNAL_SCHEMA_VERSION) -> None:
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.schema_version = schema_version
        #: files ignored by the last load(): (path, reason) pairs,
        #: reason in {"corrupt", "schema"} — the PlanStore convention.
        self.skipped_files: list[tuple[pathlib.Path, str]] = []

    # ------------------------------------------------------------------
    # writing (single orchestrator process)
    # ------------------------------------------------------------------

    def _write(self, name: str, payload: dict) -> pathlib.Path:
        """Land one immutable record atomically (temp + rename)."""
        target = self.path / f"{name}{_SUFFIX}"
        tmp = self.path / f".{name}{_SUFFIX}.tmp"
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, target)
        return target

    def record(self, index: int, outcome: "SweepOutcome") -> pathlib.Path:
        """Checkpoint one completed scenario under its grid index.

        The ``fingerprint`` field (when the outcome carries one) is what
        lets a later ``run_delta`` splice this row without re-pricing;
        it is additive, so pre-fingerprint readers ignore it and the
        schema version stays put.
        """
        payload = {
            "schema": self.schema_version,
            "index": index,
            "key": outcome.key,
            "row": outcome.row,
            "plan_cache": outcome.plan_cache.to_dict(),
            "layer_cache": outcome.layer_cache.to_dict(),
        }
        if outcome.fingerprint is not None:
            payload["fingerprint"] = outcome.fingerprint
        return self._write(f"{_OUTCOME_PREFIX}{index:05d}", payload)

    def record_failure(self, index: int,
                       failure: SweepFailure) -> pathlib.Path:
        """Checkpoint one quarantined scenario (never replayed)."""
        return self._write(f"{_FAILURE_PREFIX}{index:05d}", {
            "schema": self.schema_version,
            "index": index,
            "key": failure.key,
            "error": failure.error,
            "attempts": failure.attempts,
            "detail": failure.detail,
        })

    # ------------------------------------------------------------------
    # reading (resume / inspection)
    # ------------------------------------------------------------------

    def outcome_files(self) -> list[pathlib.Path]:
        """All outcome records currently journaled, sorted by index."""
        return sorted(self.path.glob(f"{_OUTCOME_PREFIX}*{_SUFFIX}"))

    def failure_files(self) -> list[pathlib.Path]:
        """All failure records currently journaled, sorted by index."""
        return sorted(self.path.glob(f"{_FAILURE_PREFIX}*{_SUFFIX}"))

    def _read(self, record: pathlib.Path) -> dict | None:
        """One record's payload; None (and a skip entry) when invalid."""
        try:
            payload = json.loads(record.read_text())
        except (OSError, UnicodeDecodeError, json.JSONDecodeError):
            self.skipped_files.append((record, "corrupt"))
            return None
        if (not isinstance(payload, dict)
                or payload.get("schema") != self.schema_version):
            self.skipped_files.append((record, "schema"))
            return None
        return payload

    def load(self) -> dict[str, "SweepOutcome"]:
        """Replay every valid outcome record into a ``key -> outcome`` map.

        Corrupt, truncated, or stale-schema records are skipped (and
        listed in :attr:`skipped_files`), never fatal: a damaged journal
        degrades to re-pricing the affected scenarios.  Failure records
        are deliberately absent — resume re-attempts quarantined keys.
        """
        from .runner import SweepOutcome
        self.skipped_files = []
        outcomes: dict[str, SweepOutcome] = {}
        for record in self.outcome_files():
            payload = self._read(record)
            if payload is None:
                continue
            key, row = payload.get("key"), payload.get("row")
            if not isinstance(key, str) or not isinstance(row, dict):
                self.skipped_files.append((record, "corrupt"))
                continue
            fingerprint = payload.get("fingerprint")
            outcomes[key] = SweepOutcome(
                key=key,
                row=row,
                plan_cache=_stats_from(payload.get("plan_cache")),
                layer_cache=_stats_from(payload.get("layer_cache")),
                fingerprint=(fingerprint
                             if isinstance(fingerprint, str) else None),
            )
        return outcomes

    def load_failures(self) -> list[SweepFailure]:
        """The journaled failure records (post-mortem inspection)."""
        failures = []
        for record in self.failure_files():
            payload = self._read(record)
            if payload is None:
                continue
            key = payload.get("key")
            if not isinstance(key, str):
                self.skipped_files.append((record, "corrupt"))
                continue
            failures.append(SweepFailure(
                key=key,
                error=str(payload.get("error", "")),
                attempts=int(payload.get("attempts", 0)),
                detail=str(payload.get("detail", "")),
            ))
        return failures
