"""Parallel scenario-sweep engine.

:class:`ScenarioSweep` fans a grid of :class:`~repro.sweep.scenario.Scenario`
points across worker processes and merges the results deterministically:

* every scenario is priced by :func:`run_scenario`, a pure function of the
  scenario (the schedulers and cost model are deterministic), so the same
  grid produces identical rows whether it runs serially or on N workers;
* workers return ``(key, row, cache_delta)`` tuples that are merged by
  scenario key, then emitted in the grid's canonical order — completion
  order never leaks into the output, which is what makes the serial and
  parallel paths byte-identical once serialized;
* each worker process owns its own process-wide
  :class:`~repro.core.plancache.PlanCache`; per-scenario hit/miss deltas
  are summed into the sweep report, so cache effectiveness is visible in
  artifacts (the *split* between hits and misses depends on which worker
  priced which scenario first and is intentionally excluded from the
  deterministic row payload).
"""

from __future__ import annotations

import functools
import json
import operator
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..arch import NoPConfig, simba_package
from ..core.dse import TrunkDSE
from ..core.plancache import CacheStats, plan_cache_stats
from ..core.throughput import ThroughputMatcher
from ..workloads.pipeline import STAGE_TR, build_perception_workload
from .scenario import Scenario, workload_variant

#: summary metrics copied from Schedule.summary() into each sweep row.
_SUMMARY_FIELDS = ("e2e_ms", "pipe_ms", "energy_j", "edp_j_ms",
                   "utilization", "nop_latency_ms", "nop_energy_j",
                   "used_chiplets")


def run_scenario(scenario: Scenario) -> dict:
    """Price one scenario: scheduler summary plus optional trunk DSE.

    Pure function of the scenario — this is the unit of work shipped to
    sweep workers, and the determinism contract of the whole engine.
    """
    config = workload_variant(scenario.workload)
    workload = build_perception_workload(config)
    nop = (NoPConfig(bandwidth_bytes_per_s=scenario.nop_gbps * 1e9)
           if scenario.nop_gbps is not None else NoPConfig())
    package = simba_package(npus=scenario.npus, nop=nop)
    schedule = ThroughputMatcher(workload, package,
                                 tolerance=scenario.tolerance).run()
    summary = schedule.summary()
    row = {"key": scenario.key, **scenario.to_dict()}
    row["base_ms"] = schedule.base_latency_s * 1e3
    for name in _SUMMARY_FIELDS:
        row[name] = summary[name]
    row["shard_steps"] = sum(t.action == "shard" for t in schedule.trace)

    if scenario.het_ws_budget is not None:
        # Mirror schedule_heterogeneous: the pipe constraint is the
        # scenario's tolerance over ITS base latency, and the chiplet
        # budget is the package's actual trunk-quadrant capacity.
        l_cstr = scenario.tolerance * schedule.base_latency_s
        trunk_chiplets = sum(
            package.quadrant_capacity(q)
            for q in schedule.stage_quadrants[STAGE_TR])
        row.update(_trunk_columns(scenario.workload, workload,
                                  scenario.het_ws_budget,
                                  l_cstr, trunk_chiplets))
    return row


#: per-process memo: the trunk DSE depends only on (workload variant,
#: WS budget, constraint, quadrant budget) — a grid varying NoP
#: bandwidth must not re-run the brute-force enumeration per scenario.
_TRUNK_MEMO: dict[tuple, dict] = {}


def _trunk_columns(variant: str, workload, ws_budget: int,
                   l_cstr_s: float, chiplets: int) -> dict:
    if ws_budget > chiplets:
        raise ValueError(
            f"het_ws_budget {ws_budget} exceeds the trunk quadrant "
            f"capacity ({chiplets} chiplets for this scenario)")
    key = (variant, ws_budget, l_cstr_s, chiplets)
    if key not in _TRUNK_MEMO:
        best = TrunkDSE(stage=workload.stage(STAGE_TR),
                        l_cstr_s=l_cstr_s,
                        chiplets=chiplets).search(ws_budget)
        _TRUNK_MEMO[key] = {
            "trunk_label": best.label,
            "trunk_pipe_ms": best.pipe_ms,
            "trunk_energy_j": best.energy_j,
            "trunk_edp_j_ms": best.edp_j_ms,
            "trunk_feasible": best.feasible,
        }
    return dict(_TRUNK_MEMO[key])


def _run_with_stats(scenario: Scenario) -> tuple[str, dict, CacheStats]:
    """Worker entry point: row plus this scenario's plan-cache delta."""
    before = plan_cache_stats()
    row = run_scenario(scenario)
    # The counter delta is this scenario's; entries reflect the worker's
    # table after the run (CacheStats.__sub__ keeps the minuend's).
    return scenario.key, row, plan_cache_stats() - before


@dataclass
class SweepResult:
    """Merged output of one sweep run."""

    scenarios: list[Scenario]
    #: one row per scenario, in the grid's canonical order.
    rows: list[dict]
    #: summed per-scenario plan-cache deltas across all workers.
    cache_stats: CacheStats
    parallel: bool
    workers: int

    def row(self, key: str) -> dict:
        for r in self.rows:
            if r["key"] == key:
                return r
        raise KeyError(key)

    def rows_json(self) -> str:
        """Canonical serialization of the deterministic payload.

        Serial and parallel runs of the same grid produce byte-identical
        output here (cache statistics are excluded on purpose: the
        hit/miss split depends on work placement, the rows do not).
        """
        return json.dumps({"rows": self.rows}, sort_keys=True, indent=2)

    def summary(self) -> dict:
        """Headline sweep metrics, Schedule.summary()-style."""
        return {
            "scenarios": len(self.rows),
            "parallel": self.parallel,
            "workers": self.workers,
            "plan_cache": self.cache_stats.to_dict(),
        }

    def to_dict(self) -> dict:
        return {"summary": self.summary(), "rows": self.rows}


@dataclass
class ScenarioSweep:
    """Run a scenario grid, serially or across worker processes."""

    scenarios: list[Scenario]
    workers: int = 1
    #: optional chunk size forwarded to the executor's map.
    chunksize: int = field(default=1)

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("sweep needs at least one scenario")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        keys = [s.key for s in self.scenarios]
        if len(set(keys)) != len(keys):
            raise ValueError("scenario keys must be unique")

    # ------------------------------------------------------------------

    def run(self) -> SweepResult:
        """Execute the grid and merge results in canonical order."""
        if self.workers == 1:
            outcomes = [_run_with_stats(s) for s in self.scenarios]
        else:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                outcomes = list(pool.map(_run_with_stats, self.scenarios,
                                         chunksize=self.chunksize))
        by_key = {key: row for key, row, _ in outcomes}
        missing = [s.key for s in self.scenarios if s.key not in by_key]
        if missing:
            raise RuntimeError(f"scenarios produced no result: {missing}")
        # CacheStats.__add__ sums the counters and keeps the largest
        # per-process table size (tables are per-worker).
        stats = functools.reduce(operator.add,
                                 (d for _, _, d in outcomes))
        return SweepResult(
            scenarios=list(self.scenarios),
            rows=[by_key[s.key] for s in self.scenarios],
            cache_stats=stats,
            parallel=self.workers > 1,
            workers=self.workers,
        )


def run_sweep(scenarios: list[Scenario], workers: int = 1) -> SweepResult:
    """Convenience wrapper: build and run a :class:`ScenarioSweep`."""
    return ScenarioSweep(scenarios, workers=workers).run()
