"""Parallel scenario-sweep engine with streaming delivery and a plan store.

:class:`ScenarioSweep` fans a grid of :class:`~repro.sweep.scenario.Scenario`
points across worker processes and merges the results deterministically:

* every scenario is priced by :func:`run_scenario`, a pure function of the
  scenario (the schedulers and cost model are deterministic), so the same
  grid produces identical rows whether it runs serially or on N workers;
* workers return :class:`SweepOutcome` records that are merged by scenario
  key, then emitted in the grid's canonical order — completion order never
  leaks into the output, which is what makes the serial, parallel, and
  streaming paths byte-identical once serialized;
* :meth:`ScenarioSweep.run_iter` streams outcomes as they finish (serially,
  or over worker futures), so huge grids report rows as they land;
  :meth:`ScenarioSweep.run` is literally ``merge(run_iter())``, which
  is why the batch artifact and the collected stream are the same bytes;
* ``store_path`` layers a :class:`~repro.core.planstore.PlanStore` under
  every worker's plan cache: workers warm-start from disk and flush their
  newly computed plans back after each scenario, so plan pricing amortizes
  across processes *and* runs;
* each worker process owns its own process-wide
  :class:`~repro.core.plancache.PlanCache` and layer-cost ``evaluate``
  memo; per-scenario hit/miss deltas for both are summed into the sweep
  report, so the effectiveness of both memo layers is visible in artifacts
  (the *split* between hits and misses depends on which worker priced
  which scenario first and is intentionally excluded from the
  deterministic row payload).

Execution is fault-tolerant (see :mod:`repro.sweep.resilience`): failures
inside a worker are shipped back per scenario and retried on the
:class:`RetryPolicy`'s deterministic schedule; a dead worker
(``BrokenProcessPool``) or a hung pool (the ``chunk_timeout_s`` watchdog)
costs only the in-flight chunks, which are re-dispatched as singletons so
a poison scenario quarantines alone; a ``journal_path`` checkpoints every
outcome so ``resume_from=`` replays completed keys instead of re-pricing
them; and ``strict=False`` merges a partially failed grid into a partial
result carrying a deterministic ``failures`` manifest.
"""

from __future__ import annotations

import functools
import json
import operator
import pathlib
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Union

from ..core.dse import TrunkDSE
from ..core.plancache import CacheStats, get_plan_cache, plan_cache_stats
from ..core.planstore import PlanStore, content_digest
from ..cost import nvdla_chiplet, shidiannao_chiplet
from ..cost.batch import scenario_pairs, seed_pairs
from ..cost.model import evaluate
from ..workloads.pipeline import STAGE_TR
from .faults import FaultPlan
from .journal import SweepJournal
from .resilience import (
    Clock,
    RealClock,
    RetryPolicy,
    SweepFailure,
    SweepQuarantineError,
    WorkerCrashError,
    error_class,
)
from .scenario import Scenario

#: summary metrics copied from Schedule.summary() into each sweep row.
_SUMMARY_FIELDS = ("e2e_ms", "pipe_ms", "energy_j", "edp_j_ms",
                   "utilization", "nop_latency_ms", "nop_energy_j",
                   "used_chiplets")

#: extra summary metrics present only when a scenario sets ``dram_gbps``
#: (appended to the row then, so default-axis rows are byte-stable).
_DRAM_FIELDS = ("compute_pipe_ms", "dram_ms", "dram_bw_util",
                "dram_energy_j", "dram_throttled")

#: extra hop metrics present only when a scenario sets ``topology``
#: (likewise gated so default-axis rows stay byte-stable); an explicit
#: ``topology=mesh`` row carries them too, which is how mesh-vs-torus
#: comparisons read both sides from one sweep artifact.
_TOPOLOGY_FIELDS = ("nop_avg_hops", "nop_max_hops")

# Rows of scenarios that set ``hetero`` additionally carry
# ``package_composition`` (the canonical per-quadrant hardware string)
# and ``stage_utilization`` (per-stage useful-MAC utilization at each
# quadrant's own clock); both are gated on the axis so default rows stay
# byte-stable, and a no-op override (e.g. ``trunk:os@2``) carries them
# too — that is how hetero-vs-homogeneous comparisons read both sides
# from one artifact.


def layer_cost_cache_stats() -> CacheStats:
    """This process's layer-cost ``evaluate`` lru_cache counters.

    Shaped as a :class:`CacheStats` so sweep reports can surface both memo
    layers (group plans and layer costs) side by side.
    """
    info = evaluate.cache_info()
    return CacheStats(hits=info.hits, misses=info.misses,
                      entries=info.currsize, seeded=info.seeded)


def run_scenario(scenario: Scenario) -> dict:
    """Price one scenario: scheduler summary plus optional trunk DSE.

    Pure function of the scenario — this is the unit of work shipped to
    sweep workers, and the determinism contract of the whole engine.
    All hardware comes from :meth:`Scenario.build`, the one
    package-construction path experiments and the CLI share.
    """
    built = scenario.build()
    # Pre-seed the evaluate memo from one batch-priced matrix (the
    # workload's layers crossed with the package's distinct chiplet
    # configs, plus the trunk-DSE candidates): the schedulers' inner
    # loops below then hit the memo instead of calling the mapper.
    # Idempotent and exact, so warm re-runs and row bytes are unchanged.
    seed_pairs(scenario_pairs(scenario, built))
    schedule = built.schedule()
    summary = schedule.summary()
    row = {"key": scenario.key, **scenario.to_dict()}
    row["base_ms"] = schedule.base_latency_s * 1e3
    for name in _SUMMARY_FIELDS:
        row[name] = summary[name]
    if scenario.dram_gbps is not None:
        for name in _DRAM_FIELDS:
            row[name] = summary[name]
    if scenario.topology is not None:
        for name in _TOPOLOGY_FIELDS:
            row[name] = getattr(schedule, name)
    if scenario.hetero is not None:
        from ..arch import package_composition
        row["package_composition"] = package_composition(built.package)
        row["stage_utilization"] = schedule.stage_utilization()
    row["shard_steps"] = sum(t.action == "shard" for t in schedule.trace)

    if scenario.het_ws_budget is not None:
        # Mirror schedule_heterogeneous: the pipe constraint is the
        # scenario's tolerance over ITS base latency, and the chiplet
        # budget is the package's actual trunk-quadrant capacity.  The
        # constraint is the *compute* base latency — heterogeneous trunk
        # mapping cannot relieve a DRAM wall.
        l_cstr = scenario.tolerance * schedule.base_latency_s
        trunk_chiplets = sum(
            built.package.quadrant_capacity(q)
            for q in schedule.stage_quadrants[STAGE_TR])
        row.update(_trunk_columns(scenario, built.workload,
                                  scenario.het_ws_budget,
                                  l_cstr, trunk_chiplets))
    return row


#: per-process memo: the trunk DSE depends only on (workload variant,
#: WS budget, constraint, quadrant budget) — a grid varying NoP
#: bandwidth must not re-run the brute-force enumeration per scenario.
_TRUNK_MEMO: dict[tuple, dict] = {}


def clear_trunk_memo() -> None:
    """Reset the per-process trunk-DSE memo (cold-start measurements)."""
    _TRUNK_MEMO.clear()


def _trunk_columns(scenario: Scenario, workload, ws_budget: int,
                   l_cstr_s: float, chiplets: int) -> dict:
    if ws_budget > chiplets:
        raise ValueError(
            f"het_ws_budget {ws_budget} exceeds the trunk quadrant "
            f"capacity ({chiplets} chiplets for this scenario)")
    # Hardware overrides are part of the memo identity: two scenarios
    # that differ only in frequency or tile must not share a DSE result.
    # (The scenario *dataflow* axis is not: the trunk DSE explores its
    # own OS/WS mixes regardless of the package-wide style.)  The trunk
    # quadrant's hardware is the *effective* one — a per-quadrant
    # ``trunk`` override wins over the scenario-wide axes.  The plan
    # context is part of the key too — the DSE's *columns* are
    # topology-agnostic, but a torus or heterogeneous scenario must
    # still price (and flush) its plans under its own context, never the
    # homogeneous mesh one.
    trunk_ghz, trunk_tile = scenario.trunk_hw()
    key = (scenario.workload, ws_budget, l_cstr_s, chiplets,
           trunk_ghz, trunk_tile, scenario.plan_context)
    if key not in _TRUNK_MEMO:
        freq = None if trunk_ghz is None else trunk_ghz * 1e9
        os_accel = shidiannao_chiplet().with_overrides(
            frequency_hz=freq, native_tile=trunk_tile)
        ws_accel = nvdla_chiplet().with_overrides(
            frequency_hz=freq, native_tile=trunk_tile)
        best = TrunkDSE(stage=workload.stage(STAGE_TR),
                        os_accel=os_accel,
                        ws_accel=ws_accel,
                        l_cstr_s=l_cstr_s,
                        chiplets=chiplets,
                        plan_context=scenario.plan_context).search(ws_budget)
        _TRUNK_MEMO[key] = {
            "trunk_label": best.label,
            "trunk_pipe_ms": best.pipe_ms,
            "trunk_energy_j": best.energy_j,
            "trunk_edp_j_ms": best.edp_j_ms,
            "trunk_feasible": best.feasible,
        }
    return dict(_TRUNK_MEMO[key])


def scenario_fingerprint(scenario: Scenario) -> str:
    """Content hash of everything ``run_scenario`` prices for a scenario.

    Materializes the scenario through :meth:`Scenario.build` and digests
    the same canonical views the plan store hashes — every workload
    group, every chiplet's accelerator config — plus the scenario's own
    axis payload, its plan context, and the DRAM traffic the budget
    would meter.  Two scenarios with equal fingerprints are priced from
    identical inputs, so the pure :func:`run_scenario` produces
    byte-identical rows for them; delta-sweeps rely on exactly that to
    splice journaled rows instead of re-pricing (and a code change that
    alters any serialized view changes the fingerprint, which safely
    voids stale journals).
    """
    from ..io.serialize import accel_to_dict, group_to_dict
    built = scenario.build()
    payload = {
        "scenario": scenario.to_dict(),
        "context": scenario.plan_context,
        "groups": [group_to_dict(g) for g in built.workload.all_groups()],
        "chiplets": [accel_to_dict(c.accel)
                     for c in built.package.chiplets],
        "dram_bytes_per_frame": built.dram_bytes_per_frame,
    }
    return content_digest(payload)


@dataclass(frozen=True)
class SweepOutcome:
    """One completed scenario: its row plus this run's memo deltas."""

    key: str
    row: dict
    #: plan-cache counter delta attributable to this scenario
    plan_cache: CacheStats
    #: layer-cost ``evaluate`` counter delta attributable to this scenario
    layer_cache: CacheStats
    #: :func:`scenario_fingerprint` of the priced scenario.  Computed
    #: parent-side at journal-checkpoint time (workers never pay for
    #: it), so it is ``None`` on freshly priced in-memory outcomes and
    #: on outcomes replayed from journals written before fingerprints
    #: existed (delta-sweeps then conservatively re-price).
    fingerprint: str | None = None


#: what :meth:`ScenarioSweep.run_iter` yields: a priced scenario, or the
#: quarantine record of one that exhausted its retries.
SweepItem = Union[SweepOutcome, SweepFailure]


def _open_store(store_path):
    """A :class:`~repro.core.plancache.PlanStoreLike` for a store spec.

    ``http(s)://`` values open a
    :class:`~repro.serve.client.RemoteStoreClient` against a memo
    server; anything else is a disk-backed :class:`PlanStore`
    directory.  (The serve import is lazy — it pulls in this module for
    the ``/sweep`` route, so a top-level import would cycle.)
    """
    from ..serve.client import is_store_url
    if is_store_url(store_path):
        from ..serve.client import RemoteStoreClient
        return RemoteStoreClient(store_path)
    return PlanStore(store_path)


def _same_store(store_path, attached_path) -> bool:
    """Whether a store spec names the already-attached store.

    URL stores compare as normalized strings, directory stores as
    paths — never across kinds.
    """
    from ..serve.client import is_store_url
    if is_store_url(store_path):
        return (isinstance(attached_path, str)
                and store_path.rstrip("/") == attached_path)
    if isinstance(attached_path, str):
        return False
    return pathlib.Path(store_path) == attached_path


def _attach_store(store_path) -> bool:
    """Attach a plan store (directory or server URL) to this process's
    plan cache.

    Idempotent for the same directory/URL; refuses to silently serve
    (and flush) a different store than the one requested.
    """
    cache = get_plan_cache()
    if store_path is None:
        return False
    attached = cache.store
    if attached is not None:
        if _same_store(store_path, attached.path):
            return False
        raise RuntimeError(
            f"plan cache is already attached to store {attached.path}; "
            f"cannot attach {store_path} (detach the first store or run "
            f"the sweeps sequentially)")
    cache.attach_store(_open_store(store_path))
    return True


def _worker_init(store_path) -> None:
    """Pool initializer: warm-start the worker's plan cache from disk."""
    _attach_store(store_path)


def _run_one(scenario: Scenario, faults: FaultPlan | None = None,
             attempt: int = 1, clock: Clock | None = None) -> SweepOutcome:
    """Price one scenario and capture both memo layers' deltas.

    Any scripted fault for ``(scenario.key, attempt)`` fires first, so
    injected failures land exactly where a real one would: before the
    outcome exists.  When a store is attached, the plans this scenario
    introduced are flushed immediately — an atomic shard write that
    concurrent workers sharing the directory tolerate without locks —
    so even a crashed or cancelled sweep leaves its completed work warm
    on disk.
    """
    if faults is not None:
        faults.fire(scenario.key, attempt, clock)
    plan_before = plan_cache_stats()
    layer_before = layer_cost_cache_stats()
    row = run_scenario(scenario)
    # The counter delta is this scenario's; entries reflect the worker's
    # table after the run (CacheStats.__sub__ keeps the minuend's).
    outcome = SweepOutcome(
        key=scenario.key,
        row=row,
        plan_cache=plan_cache_stats() - plan_before,
        layer_cache=layer_cost_cache_stats() - layer_before,
    )
    get_plan_cache().flush_to_store()
    return outcome


def _run_chunk(items: list[tuple[Scenario, int]],
               faults: FaultPlan | None = None) -> list[tuple]:
    """Worker entry point: price a chunk of ``(scenario, attempt)`` pairs.

    Failures are caught *per scenario* and shipped back as data, so one
    raising scenario costs neither its chunk-mates' finished work nor the
    worker process — the parent decides retry vs quarantine.  Entries are
    ``("ok", outcome)`` or ``("err", scenario, attempt, exception)``.
    """
    entries: list[tuple] = []
    for scenario, attempt in items:
        try:
            entries.append(("ok", _run_one(scenario, faults=faults,
                                           attempt=attempt)))
        except Exception as error:
            entries.append(("err", scenario, attempt, error))
    return entries


@dataclass
class SweepResult:
    """Merged output of one sweep run."""

    scenarios: list[Scenario]
    #: one row per *priced* scenario, in the grid's canonical order
    #: (every scenario, unless a non-strict merge quarantined some).
    rows: list[dict]
    #: summed per-scenario plan-cache deltas across all workers.
    cache_stats: CacheStats
    #: summed per-scenario layer-cost evaluate-cache deltas likewise.
    layer_cache_stats: CacheStats
    parallel: bool
    workers: int
    #: quarantined scenarios (grid order); empty for a complete result.
    failures: list[SweepFailure] = field(default_factory=list)
    #: plan-store shard files ignored as corrupt/stale, as
    #: ``{"file", "reason"}`` records (empty without a store).
    store_skipped: list[dict] = field(default_factory=list)
    #: delta-sweep runs only: scenarios spliced from the baseline by
    #: fingerprint proof instead of re-priced.  ``None`` (the default)
    #: means "not a delta run" and keeps ``summary()`` byte-stable.
    delta_skipped: int | None = None
    _row_index: dict | None = field(default=None, init=False, repr=False,
                                    compare=False)

    @property
    def complete(self) -> bool:
        """Whether every scenario in the grid produced a row."""
        return not self.failures

    def row(self, key: str) -> dict:
        """The row for one scenario key (dict-indexed, built once)."""
        if self._row_index is None:
            self._row_index = {r["key"]: r for r in self.rows}
        return self._row_index[key]

    def rows_json(self) -> str:
        """Canonical serialization of the deterministic payload.

        Serial, parallel, streaming, and crash-resumed runs of the same
        grid produce byte-identical output here (cache statistics are
        excluded on purpose: the hit/miss split depends on work
        placement, the rows do not — and retry attempt counts are
        excluded for the same reason: they report infrastructure luck,
        not scenario economics).
        """
        return json.dumps({"rows": self.rows}, sort_keys=True, indent=2)

    def failures_manifest(self) -> list[dict]:
        """Deterministic quarantine manifest: key, error class, attempts.

        Grid-ordered and free of messages/paths/addresses, so two runs
        that fail the same way produce the same manifest bytes.
        """
        return [f.to_manifest() for f in self.failures]

    def failures_json(self) -> str:
        """Canonical serialization of :meth:`failures_manifest`."""
        return json.dumps({"failures": self.failures_manifest()},
                          sort_keys=True, indent=2)

    def summary(self) -> dict:
        """Headline sweep metrics, Schedule.summary()-style.

        The ``failures`` and ``store_skipped`` keys appear only when
        non-empty, and ``delta_skipped`` only on delta-sweep runs, so
        summaries of healthy full sweeps stay byte-stable against
        pre-resilience artifacts.
        """
        report = {
            "scenarios": len(self.rows),
            "parallel": self.parallel,
            "workers": self.workers,
            "plan_cache": self.cache_stats.to_dict(),
            "layer_cost_cache": self.layer_cache_stats.to_dict(),
        }
        if self.failures:
            report["failures"] = self.failures_manifest()
        if self.store_skipped:
            report["store_skipped"] = self.store_skipped
        if self.delta_skipped is not None:
            report["delta_skipped"] = self.delta_skipped
        return report

    def to_dict(self) -> dict:
        return {"summary": self.summary(), "rows": self.rows}


@dataclass
class ScenarioSweep:
    """Run a scenario grid, serially or across worker processes."""

    scenarios: list[Scenario]
    workers: int = 1
    #: scenarios shipped per worker task (streaming granularity).
    chunksize: int = field(default=1)
    #: optional shared plan store: a directory (disk-backed
    #: :class:`PlanStore`) or an ``http(s)://`` memo-server URL
    #: (:class:`~repro.serve.client.RemoteStoreClient`); workers
    #: warm-start from it and flush newly computed plans back.
    store_path: str | pathlib.Path | None = None
    #: strict merges raise on any quarantined scenario; ``strict=False``
    #: returns a partial result carrying the failures manifest instead.
    strict: bool = True
    #: retry schedule for transient failures (None = the default policy).
    retry: RetryPolicy | None = None
    #: optional journal directory: every outcome checkpoints there.
    journal_path: str | pathlib.Path | None = None
    #: optional journal directory to *replay*: completed keys are yielded
    #: from the journal instead of re-priced, and new outcomes keep
    #: checkpointing there (unless ``journal_path`` points elsewhere).
    resume_from: str | pathlib.Path | None = None
    #: dev/test-only deterministic fault script (``--inject-faults``).
    faults: FaultPlan | None = None
    #: where retry backoff waits; inject a NullClock in tests.
    clock: Clock | None = None

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("sweep needs at least one scenario")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        keys = [s.key for s in self.scenarios]
        if len(set(keys)) != len(keys):
            raise ValueError("scenario keys must be unique")
        if self.retry is None:
            self.retry = RetryPolicy()
        if self.clock is None:
            self.clock = RealClock()
        self._grid_index = {s.key: i for i, s in enumerate(self.scenarios)}
        self._scenarios_by_key = {s.key: s for s in self.scenarios}

    # ------------------------------------------------------------------

    def run_iter(self) -> Iterator[SweepItem]:
        """Yield one :class:`SweepOutcome` per scenario as each finishes
        (or a :class:`SweepFailure` for a scenario that exhausted its
        retries — only possible once faults or real failures occur).

        Serial runs yield in grid order; parallel runs yield in completion
        order over worker futures.  Feed the collected items to
        :meth:`merge` for the canonical result — byte-identical to
        :meth:`run`, which is implemented exactly that way.
        """
        faults = (self.faults.resolved(self.scenarios)
                  if self.faults is not None else None)
        journal = None
        journal_dir = self.journal_path or self.resume_from
        if journal_dir is not None:
            journal = SweepJournal(journal_dir)
        if faults is not None and self.store_path is not None:
            from ..serve.client import is_store_url
            if not is_store_url(self.store_path):
                # corrupt-shard faults doctor local shard files; a URL
                # store has no local files (server-side corruption is
                # covered by the serving tests instead).
                faults.corrupt_store(self.store_path)
        remaining = self.scenarios
        if self.resume_from is not None:
            replayed = SweepJournal(self.resume_from).load()
            remaining = []
            for scenario in self.scenarios:
                done = replayed.get(scenario.key)
                if done is not None:
                    yield done
                else:
                    remaining.append(scenario)
        if not remaining:
            return
        if self.workers == 1:
            yield from self._serial_iter(remaining, faults, journal)
        else:
            yield from self._parallel_iter(remaining, faults, journal)

    # -- serial path ---------------------------------------------------

    def _serial_iter(self, scenarios: list[Scenario],
                     faults: FaultPlan | None,
                     journal: SweepJournal | None) -> Iterator[SweepItem]:
        attached = _attach_store(self.store_path)
        try:
            for scenario in scenarios:
                item = self._price_with_retries(scenario, faults)
                self._checkpoint(journal, item)
                yield item
        finally:
            if attached:
                get_plan_cache().detach_store()

    def _price_with_retries(self, scenario: Scenario,
                            faults: FaultPlan | None) -> SweepItem:
        """One scenario through the retry loop (serial path)."""
        attempt = 1
        while True:
            if attempt > 1:
                self.clock.sleep(self.retry.backoff_s(scenario.key, attempt))
            try:
                return _run_one(scenario, faults=faults, attempt=attempt,
                                clock=self.clock)
            except Exception as error:
                if (self.retry.is_retryable(error)
                        and attempt < self.retry.max_attempts):
                    attempt += 1
                    continue
                return SweepFailure(key=scenario.key,
                                    error=error_class(error),
                                    attempts=attempt, detail=str(error))

    # -- parallel path -------------------------------------------------

    def _spawn_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_worker_init,
            initargs=(self.store_path,))

    def _lost_unit(self, unit: list[tuple[Scenario, int]],
                   pending: deque) -> list[SweepFailure]:
        """Requeue a unit whose worker died/hung; quarantine the spent.

        Lost scenarios re-dispatch as *singletons* at the next attempt,
        so on repeat the guilty scenario crashes alone and quarantines
        alone — chunk-mates that were merely collateral recover.
        """
        failures = []
        for scenario, attempt in unit:
            if attempt < self.retry.max_attempts:
                pending.append([(scenario, attempt + 1)])
            else:
                failures.append(SweepFailure(
                    key=scenario.key,
                    error=error_class(WorkerCrashError()),
                    attempts=attempt,
                    detail="worker process died or hung mid-chunk"))
        return failures

    def _settle_entries(self, entries: list[tuple],
                        pending: deque) -> list[SweepItem]:
        """Sort worker chunk entries into yields, retries, quarantines."""
        items: list[SweepItem] = []
        for entry in entries:
            if entry[0] == "ok":
                items.append(entry[1])
                continue
            _, scenario, attempt, error = entry
            if (self.retry.is_retryable(error)
                    and attempt < self.retry.max_attempts):
                pending.append([(scenario, attempt + 1)])
            else:
                items.append(SweepFailure(key=scenario.key,
                                          error=error_class(error),
                                          attempts=attempt,
                                          detail=str(error)))
        return items

    def _parallel_iter(self, scenarios: list[Scenario],
                       faults: FaultPlan | None,
                       journal: SweepJournal | None) -> Iterator[SweepItem]:
        pending: deque = deque(
            [(s, 1) for s in scenarios[i:i + self.chunksize]]
            for i in range(0, len(scenarios), self.chunksize))
        pool = self._spawn_pool()
        inflight: dict = {}
        try:
            while pending or inflight:
                respawn = False
                while pending and not respawn:
                    unit = pending.popleft()
                    for scenario, attempt in unit:
                        if attempt > 1:
                            self.clock.sleep(
                                self.retry.backoff_s(scenario.key, attempt))
                    try:
                        inflight[pool.submit(_run_chunk, unit,
                                             faults)] = unit
                    except BrokenProcessPool:
                        pending.appendleft(unit)
                        respawn = True
                if inflight and not respawn:
                    done, _ = wait(inflight,
                                   timeout=self.retry.chunk_timeout_s,
                                   return_when=FIRST_COMPLETED)
                    if not done:
                        # Watchdog: nothing completed within the window;
                        # the pool is presumed hung and every in-flight
                        # chunk is treated as lost.
                        respawn = True
                    for future in done:
                        unit = inflight.pop(future)
                        try:
                            entries = future.result()
                        except (BrokenProcessPool, OSError):
                            # The worker died mid-chunk (segfault, OOM
                            # kill, injected crash): nothing came back.
                            respawn = True
                            items = self._lost_unit(unit, pending)
                        else:
                            items = self._settle_entries(entries, pending)
                        for item in items:
                            self._checkpoint(journal, item)
                            yield item
                if respawn:
                    for unit in inflight.values():
                        for item in self._lost_unit(unit, pending):
                            self._checkpoint(journal, item)
                            yield item
                    inflight.clear()
                    _kill_pool(pool)
                    pool = self._spawn_pool()
        finally:
            # A consumer that abandons the stream (or a fatal error) must
            # not block on the rest of the grid: drop every not-yet-started
            # chunk before waiting out the in-flight ones.
            pool.shutdown(wait=True, cancel_futures=True)

    # -- checkpointing -------------------------------------------------

    def _checkpoint(self, journal: SweepJournal | None,
                    item: SweepItem) -> None:
        if journal is None:
            return
        index = self._grid_index[item.key]
        if isinstance(item, SweepFailure):
            journal.record_failure(index, item)
            return
        if item.fingerprint is None:
            # Fingerprints are journal metadata: computed parent-side at
            # checkpoint time, overlapped with worker compute, so the
            # workers (and unjournaled runs) never pay the extra
            # Scenario.build + digest.
            item = replace(item, fingerprint=scenario_fingerprint(
                self._scenarios_by_key[item.key]))
        journal.record(index, item)

    # ------------------------------------------------------------------

    def merge(self, outcomes: Iterable[SweepItem]) -> SweepResult:
        """Merge items (any order) into the canonical-order result.

        Duplicate outcomes for one key (possible with retries, resume,
        or overlapping journals) are tolerated only when their rows are
        byte-identical — anything else means two runs disagreed about a
        pure function, which must never be papered over.  A key that
        failed in one source but priced in another counts as priced.
        With quarantined keys left over, ``strict`` merges raise
        :class:`SweepQuarantineError`; non-strict merges return the
        partial result with its ``failures`` manifest.
        """
        failures: list[SweepFailure] = []
        by_key: dict[str, SweepOutcome] = {}
        for item in outcomes:
            if isinstance(item, SweepFailure):
                failures.append(item)
                continue
            seen = by_key.get(item.key)
            if seen is None:
                by_key[item.key] = item
            elif (json.dumps(item.row, sort_keys=True)
                    != json.dumps(seen.row, sort_keys=True)):
                raise RuntimeError(
                    f"duplicate outcomes for scenario {item.key} have "
                    f"different rows; retries and resume must re-price "
                    f"identically — refusing to merge")
        failed: dict[str, SweepFailure] = {}
        for failure in failures:
            if failure.key not in by_key and failure.key not in failed:
                failed[failure.key] = failure
        missing = [s.key for s in self.scenarios
                   if s.key not in by_key and s.key not in failed]
        if missing:
            raise RuntimeError(f"scenarios produced no result: {missing}")
        quarantined = [failed[s.key] for s in self.scenarios
                       if s.key in failed]
        if quarantined and self.strict:
            raise SweepQuarantineError(quarantined)
        priced = [by_key[s.key] for s in self.scenarios if s.key in by_key]
        # CacheStats.__add__ sums the counters and keeps the largest
        # per-process table size (tables are per-worker).  The explicit
        # zero seed keeps an all-quarantined non-strict merge total.
        zero = CacheStats(hits=0, misses=0, entries=0, store_hits=0)
        plan_stats = functools.reduce(
            operator.add, (o.plan_cache for o in priced), zero)
        layer_stats = functools.reduce(
            operator.add, (o.layer_cache for o in priced), zero)
        return SweepResult(
            scenarios=list(self.scenarios),
            rows=[o.row for o in priced],
            cache_stats=plan_stats,
            layer_cache_stats=layer_stats,
            parallel=self.workers > 1,
            workers=self.workers,
            failures=quarantined,
            store_skipped=self._store_skipped(),
        )

    def _store_skipped(self) -> list[dict]:
        """Corrupt/stale shard records of the attached store, if any.

        Probed from the parent with a fresh load so the parallel path —
        where only workers ever read the store — reports shard loss too.
        """
        from ..serve.client import is_store_url
        if self.store_path is None:
            return []
        if is_store_url(self.store_path):
            # The server probed its own shards at load time; ask it for
            # the manifest instead of touching its disk.  An unreachable
            # server degrades to "no manifest" — the sweep itself
            # already succeeded or failed on its own connections.
            from ..serve.client import RemoteStoreClient
            try:
                return RemoteStoreClient(self.store_path,
                                         retry=self.retry,
                                         clock=self.clock,
                                         ).skipped_manifest()
            except Exception:
                return []
        probe = PlanStore(self.store_path)
        probe.load()
        return probe.skipped_manifest()

    def run(self) -> SweepResult:
        """Execute the grid and merge results in canonical order."""
        return self.merge(self.run_iter())

    # -- delta-sweeps --------------------------------------------------

    def _baseline_outcomes(
            self,
            baseline: "SweepResult | str | pathlib.Path",
    ) -> dict[str, SweepOutcome]:
        """Splice candidates from a prior result or its journal.

        Journal records carry the fingerprint they were priced under;
        an in-memory :class:`SweepResult` carries its scenarios, whose
        fingerprints are recomputed (cheap — no pricing).  Either way a
        candidate without a fingerprint is never spliced.
        """
        if not isinstance(baseline, SweepResult):
            return SweepJournal(baseline).load()
        scenarios = {s.key: s for s in baseline.scenarios}
        zero = CacheStats(hits=0, misses=0, entries=0)
        outcomes: dict[str, SweepOutcome] = {}
        for row in baseline.rows:
            scenario = scenarios.get(row["key"])
            if scenario is None:  # pragma: no cover - malformed baseline
                continue
            outcomes[row["key"]] = SweepOutcome(
                key=row["key"], row=row, plan_cache=zero, layer_cache=zero,
                fingerprint=scenario_fingerprint(scenario))
        return outcomes

    def run_delta(self,
                  baseline: "SweepResult | str | pathlib.Path",
                  ) -> SweepResult:
        """Re-price only the scenarios that moved since ``baseline``.

        ``baseline`` is a prior :class:`SweepResult` or the directory of
        the journal a prior run checkpointed to.  Every scenario in this
        sweep's grid whose key appears in the baseline *and* whose
        :func:`scenario_fingerprint` matches the baseline's is spliced
        from the baseline verbatim — the fingerprint proves the pricing
        inputs are identical, and ``run_scenario`` is pure, so the
        spliced row is the row a cold run would produce.  Everything
        else (new keys, moved fingerprints, pre-fingerprint journal
        records) is re-priced through the normal engine, retries,
        journaling and all.  The merged result is byte-identical to a
        full cold run of the grid (``rows_json()``), with
        ``delta_skipped`` counting the spliced scenarios in
        :meth:`SweepResult.summary`.

        Spliced outcomes keep their journaled cache-counter deltas (the
        resume convention); splices from an in-memory result count zero,
        since that work was already reported by the baseline run.
        """
        base = self._baseline_outcomes(baseline)
        spliced: list[SweepOutcome] = []
        remaining: list[Scenario] = []
        for scenario in self.scenarios:
            done = base.get(scenario.key)
            if (done is not None and done.fingerprint is not None
                    and done.fingerprint == scenario_fingerprint(scenario)):
                spliced.append(done)
            else:
                remaining.append(scenario)
        items: list[SweepItem] = list(spliced)
        if remaining:
            sub = replace(self, scenarios=remaining, resume_from=None)
            # Checkpoints must land under the *parent* grid's indices:
            # a delta journal lines up with the full grid, not with the
            # compacted re-price list.
            sub._grid_index = self._grid_index
            items.extend(sub.run_iter())
        result = self.merge(items)
        result.delta_skipped = len(spliced)
        return result


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear down a broken or hung pool without waiting on its work.

    A hung worker never returns, so ``shutdown(wait=True)`` would block
    forever — terminate the worker processes first, then reap them.
    """
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        proc.terminate()
    pool.shutdown(wait=True, cancel_futures=True)


def run_sweep(scenarios: list[Scenario], workers: int = 1,
              store_path: str | pathlib.Path | None = None,
              **kwargs) -> SweepResult:
    """Convenience wrapper: build and run a :class:`ScenarioSweep`."""
    return ScenarioSweep(scenarios, workers=workers,
                         store_path=store_path, **kwargs).run()
