"""Parallel scenario-sweep engine with streaming delivery and a plan store.

:class:`ScenarioSweep` fans a grid of :class:`~repro.sweep.scenario.Scenario`
points across worker processes and merges the results deterministically:

* every scenario is priced by :func:`run_scenario`, a pure function of the
  scenario (the schedulers and cost model are deterministic), so the same
  grid produces identical rows whether it runs serially or on N workers;
* workers return :class:`SweepOutcome` records that are merged by scenario
  key, then emitted in the grid's canonical order — completion order never
  leaks into the output, which is what makes the serial, parallel, and
  streaming paths byte-identical once serialized;
* :meth:`ScenarioSweep.run_iter` streams outcomes as they finish (serially,
  or over ``as_completed`` futures), so huge grids report rows as they
  land; :meth:`ScenarioSweep.run` is literally ``merge(run_iter())``, which
  is why the batch artifact and the collected stream are the same bytes;
* ``store_path`` layers a :class:`~repro.core.planstore.PlanStore` under
  every worker's plan cache: workers warm-start from disk and flush their
  newly computed plans back after each scenario, so plan pricing amortizes
  across processes *and* runs;
* each worker process owns its own process-wide
  :class:`~repro.core.plancache.PlanCache` and layer-cost ``evaluate``
  memo; per-scenario hit/miss deltas for both are summed into the sweep
  report, so the effectiveness of both memo layers is visible in artifacts
  (the *split* between hits and misses depends on which worker priced
  which scenario first and is intentionally excluded from the
  deterministic row payload).
"""

from __future__ import annotations

import functools
import json
import operator
import pathlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from ..core.dse import TrunkDSE
from ..core.plancache import CacheStats, get_plan_cache, plan_cache_stats
from ..core.planstore import PlanStore
from ..cost import nvdla_chiplet, shidiannao_chiplet
from ..cost.model import evaluate
from ..workloads.pipeline import STAGE_TR
from .scenario import Scenario

#: summary metrics copied from Schedule.summary() into each sweep row.
_SUMMARY_FIELDS = ("e2e_ms", "pipe_ms", "energy_j", "edp_j_ms",
                   "utilization", "nop_latency_ms", "nop_energy_j",
                   "used_chiplets")

#: extra summary metrics present only when a scenario sets ``dram_gbps``
#: (appended to the row then, so default-axis rows are byte-stable).
_DRAM_FIELDS = ("compute_pipe_ms", "dram_ms", "dram_bw_util",
                "dram_energy_j", "dram_throttled")

#: extra hop metrics present only when a scenario sets ``topology``
#: (likewise gated so default-axis rows stay byte-stable); an explicit
#: ``topology=mesh`` row carries them too, which is how mesh-vs-torus
#: comparisons read both sides from one sweep artifact.
_TOPOLOGY_FIELDS = ("nop_avg_hops", "nop_max_hops")

# Rows of scenarios that set ``hetero`` additionally carry
# ``package_composition`` (the canonical per-quadrant hardware string)
# and ``stage_utilization`` (per-stage useful-MAC utilization at each
# quadrant's own clock); both are gated on the axis so default rows stay
# byte-stable, and a no-op override (e.g. ``trunk:os@2``) carries them
# too — that is how hetero-vs-homogeneous comparisons read both sides
# from one artifact.


def layer_cost_cache_stats() -> CacheStats:
    """This process's layer-cost ``evaluate`` lru_cache counters.

    Shaped as a :class:`CacheStats` so sweep reports can surface both memo
    layers (group plans and layer costs) side by side.
    """
    info = evaluate.cache_info()
    return CacheStats(hits=info.hits, misses=info.misses,
                      entries=info.currsize)


def run_scenario(scenario: Scenario) -> dict:
    """Price one scenario: scheduler summary plus optional trunk DSE.

    Pure function of the scenario — this is the unit of work shipped to
    sweep workers, and the determinism contract of the whole engine.
    All hardware comes from :meth:`Scenario.build`, the one
    package-construction path experiments and the CLI share.
    """
    built = scenario.build()
    schedule = built.schedule()
    summary = schedule.summary()
    row = {"key": scenario.key, **scenario.to_dict()}
    row["base_ms"] = schedule.base_latency_s * 1e3
    for name in _SUMMARY_FIELDS:
        row[name] = summary[name]
    if scenario.dram_gbps is not None:
        for name in _DRAM_FIELDS:
            row[name] = summary[name]
    if scenario.topology is not None:
        for name in _TOPOLOGY_FIELDS:
            row[name] = getattr(schedule, name)
    if scenario.hetero is not None:
        from ..arch import package_composition
        row["package_composition"] = package_composition(built.package)
        row["stage_utilization"] = schedule.stage_utilization()
    row["shard_steps"] = sum(t.action == "shard" for t in schedule.trace)

    if scenario.het_ws_budget is not None:
        # Mirror schedule_heterogeneous: the pipe constraint is the
        # scenario's tolerance over ITS base latency, and the chiplet
        # budget is the package's actual trunk-quadrant capacity.  The
        # constraint is the *compute* base latency — heterogeneous trunk
        # mapping cannot relieve a DRAM wall.
        l_cstr = scenario.tolerance * schedule.base_latency_s
        trunk_chiplets = sum(
            built.package.quadrant_capacity(q)
            for q in schedule.stage_quadrants[STAGE_TR])
        row.update(_trunk_columns(scenario, built.workload,
                                  scenario.het_ws_budget,
                                  l_cstr, trunk_chiplets))
    return row


#: per-process memo: the trunk DSE depends only on (workload variant,
#: WS budget, constraint, quadrant budget) — a grid varying NoP
#: bandwidth must not re-run the brute-force enumeration per scenario.
_TRUNK_MEMO: dict[tuple, dict] = {}


def clear_trunk_memo() -> None:
    """Reset the per-process trunk-DSE memo (cold-start measurements)."""
    _TRUNK_MEMO.clear()


def _trunk_columns(scenario: Scenario, workload, ws_budget: int,
                   l_cstr_s: float, chiplets: int) -> dict:
    if ws_budget > chiplets:
        raise ValueError(
            f"het_ws_budget {ws_budget} exceeds the trunk quadrant "
            f"capacity ({chiplets} chiplets for this scenario)")
    # Hardware overrides are part of the memo identity: two scenarios
    # that differ only in frequency or tile must not share a DSE result.
    # (The scenario *dataflow* axis is not: the trunk DSE explores its
    # own OS/WS mixes regardless of the package-wide style.)  The trunk
    # quadrant's hardware is the *effective* one — a per-quadrant
    # ``trunk`` override wins over the scenario-wide axes.  The plan
    # context is part of the key too — the DSE's *columns* are
    # topology-agnostic, but a torus or heterogeneous scenario must
    # still price (and flush) its plans under its own context, never the
    # homogeneous mesh one.
    trunk_ghz, trunk_tile = scenario.trunk_hw()
    key = (scenario.workload, ws_budget, l_cstr_s, chiplets,
           trunk_ghz, trunk_tile, scenario.plan_context)
    if key not in _TRUNK_MEMO:
        freq = None if trunk_ghz is None else trunk_ghz * 1e9
        os_accel = shidiannao_chiplet().with_overrides(
            frequency_hz=freq, native_tile=trunk_tile)
        ws_accel = nvdla_chiplet().with_overrides(
            frequency_hz=freq, native_tile=trunk_tile)
        best = TrunkDSE(stage=workload.stage(STAGE_TR),
                        os_accel=os_accel,
                        ws_accel=ws_accel,
                        l_cstr_s=l_cstr_s,
                        chiplets=chiplets,
                        plan_context=scenario.plan_context).search(ws_budget)
        _TRUNK_MEMO[key] = {
            "trunk_label": best.label,
            "trunk_pipe_ms": best.pipe_ms,
            "trunk_energy_j": best.energy_j,
            "trunk_edp_j_ms": best.edp_j_ms,
            "trunk_feasible": best.feasible,
        }
    return dict(_TRUNK_MEMO[key])


@dataclass(frozen=True)
class SweepOutcome:
    """One completed scenario: its row plus this run's memo deltas."""

    key: str
    row: dict
    #: plan-cache counter delta attributable to this scenario
    plan_cache: CacheStats
    #: layer-cost ``evaluate`` counter delta attributable to this scenario
    layer_cache: CacheStats


def _attach_store(store_path) -> bool:
    """Attach a PlanStore to this process's plan cache.

    Idempotent for the same directory; refuses to silently serve (and
    flush) a different store than the one requested.
    """
    cache = get_plan_cache()
    if store_path is None:
        return False
    attached = cache.store
    if attached is not None:
        if pathlib.Path(store_path) == attached.path:
            return False
        raise RuntimeError(
            f"plan cache is already attached to store {attached.path}; "
            f"cannot attach {store_path} (detach the first store or run "
            f"the sweeps sequentially)")
    cache.attach_store(PlanStore(store_path))
    return True


def _worker_init(store_path) -> None:
    """Pool initializer: warm-start the worker's plan cache from disk."""
    _attach_store(store_path)


def _run_one(scenario: Scenario) -> SweepOutcome:
    """Price one scenario and capture both memo layers' deltas.

    When a store is attached, the plans this scenario introduced are
    flushed immediately — an atomic shard write that concurrent workers
    sharing the directory tolerate without locks — so even a crashed or
    cancelled sweep leaves its completed work warm on disk.
    """
    plan_before = plan_cache_stats()
    layer_before = layer_cost_cache_stats()
    row = run_scenario(scenario)
    # The counter delta is this scenario's; entries reflect the worker's
    # table after the run (CacheStats.__sub__ keeps the minuend's).
    outcome = SweepOutcome(
        key=scenario.key,
        row=row,
        plan_cache=plan_cache_stats() - plan_before,
        layer_cache=layer_cost_cache_stats() - layer_before,
    )
    get_plan_cache().flush_to_store()
    return outcome


def _run_chunk(scenarios: list[Scenario]) -> list[SweepOutcome]:
    """Worker entry point: price a chunk of scenarios."""
    return [_run_one(s) for s in scenarios]


@dataclass
class SweepResult:
    """Merged output of one sweep run."""

    scenarios: list[Scenario]
    #: one row per scenario, in the grid's canonical order.
    rows: list[dict]
    #: summed per-scenario plan-cache deltas across all workers.
    cache_stats: CacheStats
    #: summed per-scenario layer-cost evaluate-cache deltas likewise.
    layer_cache_stats: CacheStats
    parallel: bool
    workers: int
    _row_index: dict | None = field(default=None, init=False, repr=False,
                                    compare=False)

    def row(self, key: str) -> dict:
        """The row for one scenario key (dict-indexed, built once)."""
        if self._row_index is None:
            self._row_index = {r["key"]: r for r in self.rows}
        return self._row_index[key]

    def rows_json(self) -> str:
        """Canonical serialization of the deterministic payload.

        Serial, parallel, and streaming runs of the same grid produce
        byte-identical output here (cache statistics are excluded on
        purpose: the hit/miss split depends on work placement, the rows
        do not).
        """
        return json.dumps({"rows": self.rows}, sort_keys=True, indent=2)

    def summary(self) -> dict:
        """Headline sweep metrics, Schedule.summary()-style."""
        return {
            "scenarios": len(self.rows),
            "parallel": self.parallel,
            "workers": self.workers,
            "plan_cache": self.cache_stats.to_dict(),
            "layer_cost_cache": self.layer_cache_stats.to_dict(),
        }

    def to_dict(self) -> dict:
        return {"summary": self.summary(), "rows": self.rows}


@dataclass
class ScenarioSweep:
    """Run a scenario grid, serially or across worker processes."""

    scenarios: list[Scenario]
    workers: int = 1
    #: scenarios shipped per worker task (streaming granularity).
    chunksize: int = field(default=1)
    #: optional directory of a shared, disk-backed plan store: workers
    #: warm-start from it and flush newly computed plans back.
    store_path: str | pathlib.Path | None = None

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ValueError("sweep needs at least one scenario")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.chunksize < 1:
            raise ValueError("chunksize must be >= 1")
        keys = [s.key for s in self.scenarios]
        if len(set(keys)) != len(keys):
            raise ValueError("scenario keys must be unique")

    # ------------------------------------------------------------------

    def run_iter(self) -> Iterator[SweepOutcome]:
        """Yield one :class:`SweepOutcome` per scenario as each finishes.

        Serial runs yield in grid order; parallel runs yield in completion
        order over ``as_completed`` futures.  Feed the collected outcomes
        to :meth:`merge` for the canonical result — byte-identical to
        :meth:`run`, which is implemented exactly that way.
        """
        if self.workers == 1:
            attached = _attach_store(self.store_path)
            try:
                for scenario in self.scenarios:
                    yield _run_one(scenario)
            finally:
                if attached:
                    get_plan_cache().detach_store()
            return
        chunks = [self.scenarios[i:i + self.chunksize]
                  for i in range(0, len(self.scenarios), self.chunksize)]
        pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_worker_init,
            initargs=(self.store_path,))
        try:
            futures = [pool.submit(_run_chunk, chunk) for chunk in chunks]
            for future in as_completed(futures):
                yield from future.result()
        finally:
            # A consumer that abandons the stream (or a chunk that
            # raises) must not block on the rest of the grid: drop every
            # not-yet-started chunk before waiting out the in-flight ones.
            pool.shutdown(wait=True, cancel_futures=True)

    def merge(self, outcomes: Iterable[SweepOutcome]) -> SweepResult:
        """Merge outcomes (any order) into the canonical-order result."""
        outcomes = list(outcomes)
        by_key = {o.key: o.row for o in outcomes}
        missing = [s.key for s in self.scenarios if s.key not in by_key]
        if missing:
            raise RuntimeError(f"scenarios produced no result: {missing}")
        # CacheStats.__add__ sums the counters and keeps the largest
        # per-process table size (tables are per-worker).
        plan_stats = functools.reduce(
            operator.add, (o.plan_cache for o in outcomes))
        layer_stats = functools.reduce(
            operator.add, (o.layer_cache for o in outcomes))
        return SweepResult(
            scenarios=list(self.scenarios),
            rows=[by_key[s.key] for s in self.scenarios],
            cache_stats=plan_stats,
            layer_cache_stats=layer_stats,
            parallel=self.workers > 1,
            workers=self.workers,
        )

    def run(self) -> SweepResult:
        """Execute the grid and merge results in canonical order."""
        return self.merge(self.run_iter())


def run_sweep(scenarios: list[Scenario], workers: int = 1,
              store_path: str | pathlib.Path | None = None) -> SweepResult:
    """Convenience wrapper: build and run a :class:`ScenarioSweep`."""
    return ScenarioSweep(scenarios, workers=workers,
                         store_path=store_path).run()
