"""Deterministic retry/backoff policy for fault-tolerant sweep execution.

The sweep engine prices pure functions of frozen scenarios, but the
*infrastructure* running them is not pure: worker processes die
(``BrokenProcessPool``), chunks hang, shared stores lose shards.  This
module is the policy layer the runner consults when that happens:

* :class:`RetryPolicy` bounds the attempts per scenario and computes a
  **deterministic** backoff — a pure function of the attempt number and
  the scenario key, never of the wall clock, the PID, or entropy, so the
  retry schedule passes the repro-lint R1 determinism gate and replays
  identically in every process.  Actually *waiting* that backoff out is
  delegated to an injectable :class:`Clock`, so tests (and CI) retry
  instantly while production sweeps space their re-dispatches.
* :class:`TransientError` marks the failures worth retrying (injected
  faults, worker crashes, I/O hiccups); deterministic errors — a
  ``ValueError`` from a scenario that can never price — are quarantined
  on the first attempt, because re-running a pure function cannot
  change its answer.
* :class:`SweepFailure` is the quarantine record: the scenario key, a
  rule-stable error class (the exception type name — never a memory
  address or timestamp), and the attempts spent.  Strict merges raise
  :class:`SweepQuarantineError` carrying those records; ``strict=False``
  merges return them as the partial result's ``failures`` manifest.

These retry/timeout/backoff semantics are the wire contract the future
networked memo server inherits: a remote worker that re-dispatches a
shard must land on the same schedule this module computes locally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol

#: modulus of the key-jitter rolling hash (a prime, so single-character
#: key edits move the fraction; small enough to stay exact in floats).
_JITTER_MODULUS = 1_000_003

#: base of the rolling hash (any small prime > the byte alphabet works).
_JITTER_BASE = 131


class Clock(Protocol):
    """Where retry backoff actually waits.  Injectable for tests."""

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (implementations may record instead)."""
        ...  # pragma: no cover - protocol stub


class RealClock:
    """Wall-clock sleeping — the default outside tests.

    The *duration* slept is always computed by :meth:`RetryPolicy.backoff_s`
    (deterministic); only the act of waiting touches the real clock, which
    is why this is the single sanctioned ``time.sleep`` call site.
    """

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)  # repro-lint: disable=R1

    def __repr__(self) -> str:  # keep ScenarioSweep reprs readable
        return "RealClock()"


class NullClock:
    """Recording no-op clock: tests assert the schedule without waiting."""

    def __init__(self) -> None:
        #: every backoff requested, in request order.
        self.slept: list[float] = []

    def sleep(self, seconds: float) -> None:
        self.slept.append(seconds)

    def __repr__(self) -> str:
        return f"NullClock(slept={self.slept!r})"


def key_fraction(key: str) -> float:
    """Deterministic jitter fraction in ``[0, 1)`` derived from a key.

    A fixed-base polynomial rolling hash over the key's code points —
    deliberately *not* ``hashlib`` (R2 confines that to the plan store)
    and *not* entropy (R1 bans it): the same key yields the same
    fraction in every process on every run, so two scenarios that fail
    together still re-dispatch on distinct, reproducible schedules.
    """
    acc = 0
    for ch in key:
        acc = (acc * _JITTER_BASE + ord(ch)) % _JITTER_MODULUS
    return acc / _JITTER_MODULUS


class TransientError(RuntimeError):
    """Base class for failures the retry layer treats as transient."""


class WorkerCrashError(TransientError):
    """A worker process died (or hung past the watchdog) mid-chunk.

    Synthesized by the runner when a ``BrokenProcessPool`` or a chunk
    watchdog timeout loses in-flight work — the chunks themselves never
    raised, so this stands in as the (retryable, rule-stable) cause.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deterministic retry schedule for sweep scenarios.

    ``backoff_s`` is exponential in the attempt number and scaled by a
    key-derived fraction (see :func:`key_fraction`); it never consults
    the wall clock, so the full schedule for any grid is known before
    the sweep starts.  ``chunk_timeout_s`` arms the parallel runner's
    watchdog: if *no* chunk completes within it, the pool is presumed
    hung, killed, and the in-flight chunks re-dispatched.
    """

    #: total tries per scenario (1 = no retries).
    max_attempts: int = 3
    #: backoff before the second attempt; doubles per further attempt.
    backoff_base_s: float = 0.05
    #: ceiling on any single backoff.
    backoff_cap_s: float = 2.0
    #: parallel watchdog: seconds without any chunk completion before
    #: the pool is declared hung (None = never).
    chunk_timeout_s: float | None = None
    #: exception types worth retrying; anything else is deterministic
    #: and quarantines on the first failure.
    retryable: tuple = (TransientError, TimeoutError, ConnectionError,
                        EOFError, OSError, MemoryError)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff values must be >= 0")
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0:
            raise ValueError("chunk_timeout_s must be positive (or None)")

    def is_retryable(self, error: BaseException) -> bool:
        """Whether ``error`` is transient (worth another attempt)."""
        return isinstance(error, self.retryable)

    def backoff_s(self, key: str, attempt: int) -> float:
        """Deterministic pause before dispatching ``attempt`` of ``key``.

        ``attempt`` is the attempt about to run (2 = first retry).  Pure
        function of its arguments: exponential in the attempt, scaled by
        the key's jitter fraction, capped at :attr:`backoff_cap_s`.
        """
        if attempt <= 1:
            return 0.0
        raw = (self.backoff_base_s * (2 ** (attempt - 2))
               * (1.0 + key_fraction(key)))
        return min(self.backoff_cap_s, raw)


def error_class(error: BaseException) -> str:
    """Rule-stable failure label: the exception type name.

    Deliberately *not* ``str(error)`` (messages may embed paths or
    counters) and not ``repr`` (may embed addresses): two runs that fail
    the same way produce the same manifest bytes.
    """
    return type(error).__name__


@dataclass(frozen=True)
class SweepFailure:
    """A quarantined scenario: key, stable error class, attempts spent.

    ``detail`` keeps the last attempt's human-readable message for
    operators; :meth:`to_manifest` deliberately excludes it, so the
    deterministic ``failures`` manifest carries only rule-stable fields.
    """

    key: str
    error: str
    attempts: int
    detail: str = ""

    def to_manifest(self) -> dict:
        """The deterministic manifest entry (sorted-key JSON safe)."""
        return {"key": self.key, "error": self.error,
                "attempts": self.attempts}


class SweepQuarantineError(RuntimeError):
    """Strict merge refusing a grid with quarantined scenarios."""

    def __init__(self, failures: list) -> None:
        #: the :class:`SweepFailure` records, in grid order.
        self.failures = list(failures)
        listing = "; ".join(
            f"{f.key} [{f.error} after {f.attempts} attempt(s)]"
            + (f": {f.detail}" if f.detail else "")
            for f in self.failures)
        noun = "scenario" if len(self.failures) == 1 else "scenarios"
        super().__init__(
            f"{len(self.failures)} {noun} quarantined after exhausted "
            f"retries (pass strict=False / --keep-going for a partial "
            f"result): {listing}")
