"""Multi-chiplet module architecture model (chiplets, NoP topology, DRAM)."""

from .chiplet import Chiplet
from .dram import (
    FSD_LPDDR4_BYTES_PER_S,
    DramBudget,
    DramReport,
    camera_input_bytes,
    dram_report,
    weight_stream_bytes,
    workload_dram_bytes,
)
from .nop import NOP_28NM, NoPConfig, NoPTransfer, transfer_cost
from .package import MCMPackage, simba_package
from .quadrants import (
    QUADRANT_NAMES,
    QuadrantOverride,
    QuadrantOverrides,
    hetero_cells,
    package_composition,
    quadrant_ids,
)
from .topology import (
    TOPOLOGY_KINDS,
    NoPTopology,
    canonical_topology,
    min_hop_map,
    parse_topology,
    topology_for,
)

__all__ = [
    "Chiplet",
    "FSD_LPDDR4_BYTES_PER_S",
    "DramBudget",
    "DramReport",
    "camera_input_bytes",
    "dram_report",
    "weight_stream_bytes",
    "workload_dram_bytes",
    "NOP_28NM",
    "NoPConfig",
    "NoPTransfer",
    "transfer_cost",
    "MCMPackage",
    "min_hop_map",
    "simba_package",
    "QUADRANT_NAMES",
    "QuadrantOverride",
    "QuadrantOverrides",
    "hetero_cells",
    "package_composition",
    "quadrant_ids",
    "TOPOLOGY_KINDS",
    "NoPTopology",
    "canonical_topology",
    "parse_topology",
    "topology_for",
]
