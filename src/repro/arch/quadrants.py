"""Per-quadrant heterogeneous package composition.

The paper evaluates heterogeneous integration only inside the trunk
quadrant (Table I), but its outlook — and the "Chiplets on Wheels"
survey — treat mixed-chiplet packages as the deployment story: each
perception stage owns one quadrant per module, so matching every
quadrant's *hardware* (dataflow, clock, native tile) to its stage's
workload phase is the package-level analogue of picking the right
accelerator per kernel.

:class:`QuadrantOverrides` is that spec as a first-class object: a set of
per-quadrant :class:`QuadrantOverride` records, parsed from compact
tokens like ``trunk:ws@1.2`` and applied to an
:class:`~repro.arch.package.MCMPackage` by rewriting the quadrant's
chiplets through :meth:`~repro.cost.AcceleratorConfig.with_overrides`.
Quadrant names follow the paper's stage-per-quadrant assignment (see
:func:`repro.core.placement.default_stage_quadrants`): local quadrant
``i`` of every module maps to ``QUADRANT_NAMES[i]``, so an override
named ``trunk`` rewrites the trunk quadrant of *each* NPU module.

Token grammar (one axis value; ``+`` separates quadrants because ``,``
separates axis values on the CLI)::

    HETERO  := QTOKEN ('+' QTOKEN)*
    QTOKEN  := QUADRANT ':' SPEC
    SPEC    := [DATAFLOW] ['@' GHZ] ['/' ROWSxCOLS] ['#' COUNT]
               # >= 1 hardware component (dataflow, clock, or tile)

Examples: ``trunk:ws`` (weight-stationary trunk quadrant),
``trunk:ws@1.2`` (WS at 1.2 GHz), ``temporal:@1.5`` (clock only),
``fe:/8x8`` (tile only), ``trunk:ws+temporal:@1.5`` (two quadrants),
``trunk:ws#4`` (the paper's Het(4): only four trunk chiplets per module
group rewritten, corner-farthest-first, the rest keep the base config).
``parse`` canonicalizes (quadrants in :data:`QUADRANT_NAMES` order,
``%g`` frequencies), so equivalent spellings key sweeps identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cost import DATAFLOW_STYLES, AcceleratorConfig
from .chiplet import Chiplet
from .package import MCMPackage

__all__ = [
    "QUADRANT_NAMES",
    "QuadrantOverride",
    "QuadrantOverrides",
    "hetero_cells",
    "package_composition",
    "quadrant_ids",
]

#: canonical quadrant names, in local quadrant-index order — the paper's
#: stage-per-quadrant assignment (FE+BFPN, spatial fusion, temporal
#: fusion, trunks).
QUADRANT_NAMES = ("fe", "spatial", "temporal", "trunk")


@dataclass(frozen=True)
class QuadrantOverride:
    """Hardware overrides for one quadrant's chiplets.

    Every hardware field defaults to ``None`` = keep the package-wide
    value; at least one must be set (a fully-empty override is a parse
    error, not a silent no-op).  ``count`` limits the override to the
    first ``count`` cells of :func:`hetero_cells`'s deterministic order
    — the paper's partial Het(k) embeddings — and is a modifier, not a
    hardware component on its own.
    """

    dataflow: str | None = None
    frequency_ghz: float | None = None
    native_tile: tuple[int, int] | None = None
    count: int | None = None

    def __post_init__(self) -> None:
        if self.dataflow is None and self.frequency_ghz is None \
                and self.native_tile is None:
            raise ValueError(
                "empty quadrant override: give a dataflow, @GHZ, "
                "and/or /ROWSxCOLS (#COUNT alone overrides nothing)")
        if self.dataflow is not None and self.dataflow not in DATAFLOW_STYLES:
            raise ValueError(
                f"unknown dataflow {self.dataflow!r}; valid dataflows: "
                f"{', '.join(DATAFLOW_STYLES)}")
        if self.frequency_ghz is not None and self.frequency_ghz <= 0:
            raise ValueError("quadrant frequency_ghz must be positive")
        if self.native_tile is not None:
            tile = self.native_tile
            if (not isinstance(tile, (tuple, list)) or len(tile) != 2
                    or not all(isinstance(d, int) and d > 0 for d in tile)):
                raise ValueError(
                    f"quadrant native_tile must be two positive integers "
                    f"(rows, cols); got {tile!r}")
            object.__setattr__(self, "native_tile", tuple(tile))
        if self.count is not None and (
                not isinstance(self.count, int) or self.count < 1):
            raise ValueError(
                f"quadrant #COUNT must be a positive integer; "
                f"got {self.count!r}")

    @property
    def token(self) -> str:
        """Canonical SPEC fragment (``ws@1.2/8x8#4`` form)."""
        out = self.dataflow or ""
        if self.frequency_ghz is not None:
            out += f"@{self.frequency_ghz:g}"
        if self.native_tile is not None:
            out += f"/{self.native_tile[0]}x{self.native_tile[1]}"
        if self.count is not None:
            out += f"#{self.count}"
        return out

    def apply(self, base: AcceleratorConfig) -> AcceleratorConfig:
        """The quadrant's chiplet config, layered on the package-wide one.

        Routed through :meth:`AcceleratorConfig.with_overrides`, so an
        override that spells out the base value yields the *identical*
        config (same plan-cache and plan-store entries) while any real
        difference changes the content hash.
        """
        freq = (None if self.frequency_ghz is None
                else self.frequency_ghz * 1e9)
        return base.with_overrides(dataflow=self.dataflow,
                                   frequency_hz=freq,
                                   native_tile=self.native_tile)


def _parse_tile(text: str, token: str) -> tuple[int, int]:
    rows, sep, cols = text.partition("x")
    if not sep or not rows.strip().isdigit() or not cols.strip().isdigit():
        raise ValueError(
            f"bad native tile {text!r} in {token!r}: expected ROWSxCOLS, "
            f"e.g. 8x8")
    return (int(rows), int(cols))


def _parse_quadrant_token(token: str) -> tuple[str, QuadrantOverride]:
    """Split one QTOKEN; value validation lives in QuadrantOverride.

    Only the *lexical* errors (token shape, unparseable numbers) are
    raised here; everything about legal values — dataflow styles,
    positive frequencies/tiles, the at-least-one-field rule — has a
    single source of truth in ``QuadrantOverride.__post_init__``, whose
    message is wrapped with the offending quadrant and token.
    """
    quad, sep, spec = token.partition(":")
    quad = quad.strip().lower()
    if not sep or not quad:
        raise ValueError(
            f"expected QUADRANT:SPEC in {token!r} (e.g. trunk:ws@1.2); "
            f"valid quadrants: {', '.join(QUADRANT_NAMES)}")
    if quad not in QUADRANT_NAMES:
        raise ValueError(
            f"unknown quadrant {quad!r} in {token!r}; valid quadrants: "
            f"{', '.join(QUADRANT_NAMES)}")
    spec = spec.strip().lower()
    spec, cnt_sep, cnt_text = spec.partition("#")
    count = None
    if cnt_sep:
        if not cnt_text.strip().isdigit():
            raise ValueError(
                f"bad count {cnt_text!r} in {token!r}: expected #COUNT, "
                f"e.g. trunk:ws#4")
        count = int(cnt_text)
    rest, tile_sep, tile_text = spec.partition("/")
    df_text, ghz_sep, ghz_text = rest.partition("@")
    ghz = None
    if ghz_sep:
        try:
            ghz = float(ghz_text)
        except ValueError:
            raise ValueError(
                f"bad frequency {ghz_text!r} in {token!r}: expected "
                f"@GHZ, e.g. trunk:ws@1.2") from None
    tile = _parse_tile(tile_text, token) if tile_sep else None
    try:
        override = QuadrantOverride(dataflow=df_text.strip() or None,
                                    frequency_ghz=ghz, native_tile=tile,
                                    count=count)
    except ValueError as exc:
        raise ValueError(
            f"{exc} (quadrant {quad!r} in {token!r})") from None
    return quad, override


@dataclass(frozen=True)
class QuadrantOverrides:
    """Per-quadrant hardware overrides for an MCM package.

    ``overrides`` is canonically ordered (by :data:`QUADRANT_NAMES`
    position), so two specs describing the same composition compare,
    hash, and tokenize identically regardless of spelling order.
    """

    overrides: tuple[tuple[str, QuadrantOverride], ...]

    def __post_init__(self) -> None:
        if not self.overrides:
            raise ValueError("QuadrantOverrides needs at least one quadrant")
        names = [name for name, _ in self.overrides]
        for name in names:
            if name not in QUADRANT_NAMES:
                raise ValueError(
                    f"unknown quadrant {name!r}; valid quadrants: "
                    f"{', '.join(QUADRANT_NAMES)}")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate quadrant override in {names}")
        ordered = tuple(sorted(self.overrides,
                               key=lambda kv: QUADRANT_NAMES.index(kv[0])))
        object.__setattr__(self, "overrides", ordered)

    @classmethod
    def parse(cls, text: str) -> "QuadrantOverrides":
        """Parse a compact hetero token (see the module docstring)."""
        tokens = [t.strip() for t in text.split("+")]
        if not any(tokens):
            raise ValueError(
                f"empty hetero spec {text!r}: expected QUADRANT:SPEC "
                f"tokens joined by '+', e.g. trunk:ws@1.2")
        return cls(tuple(_parse_quadrant_token(t) for t in tokens if t))

    @property
    def token(self) -> str:
        """Canonical axis token (``trunk:ws@1.2+...``, quadrant-ordered)."""
        return "+".join(f"{name}:{ov.token}" for name, ov in self.overrides)

    def get(self, name: str) -> QuadrantOverride | None:
        """The override for one quadrant name, or ``None``."""
        for quad, ov in self.overrides:
            if quad == name:
                return ov
        return None

    def apply(self, package: MCMPackage) -> MCMPackage:
        """Materialize the spec: a copy of ``package`` with every named
        quadrant's chiplets rewritten through ``with_overrides``.

        Partial overrides (``#COUNT``) rewrite only the selected cells;
        a count exceeding the quadrant's capacity is an error here — the
        first point the package geometry is known — rather than a silent
        whole-quadrant override.
        """
        accel_of: dict[int, AcceleratorConfig] = {}
        for name, override in self.overrides:
            ids = quadrant_ids(name, package)
            cells = hetero_cells(package, ids)
            if override.count is not None and override.count > len(cells):
                raise ValueError(
                    f"quadrant {name!r} has {len(cells)} chiplet(s); "
                    f"#{override.count} exceeds it")
            for cell in hetero_cells(package, ids, override.count):
                accel_of[cell.chiplet_id] = override.apply(cell.accel)
        return package.with_accels(accel_of, suffix=f"+het({self.token})")


def quadrant_ids(name: str, package: MCMPackage) -> list[int]:
    """Global quadrant indices of ``name`` across all NPU modules.

    The one place the stage-per-quadrant indexing contract (local
    quadrant ``i`` of module ``m`` is global ``i + 4m``) is spelled out;
    :meth:`QuadrantOverrides.apply` and :func:`package_composition` both
    resolve names through it.
    """
    count = package.quadrant_count
    if count % len(QUADRANT_NAMES):
        raise ValueError(
            f"package {package.name} has {count} quadrants; quadrant "
            f"names need a multiple of {len(QUADRANT_NAMES)}")
    local = QUADRANT_NAMES.index(name)
    return [local + len(QUADRANT_NAMES) * m
            for m in range(count // len(QUADRANT_NAMES))]


def hetero_cells(package: MCMPackage, quadrants: "list[int] | tuple[int, ...]",
                 count: int | None = None) -> list[Chiplet]:
    """Deterministic chiplet selection inside quadrant(s).

    ``count=None`` selects every cell (whole-quadrant overrides, the
    sweep-axis path).  A partial ``count`` — the paper's Het(k) trunk
    embeddings — prefers the quadrant corner farthest from the fusion
    stages, so the remaining OS chiplets keep the low-hop paths to their
    producers (the policy ``repro.core.hetero`` has always used).
    """
    cells = [c for q in quadrants for c in package.quadrant(q)]
    if count is None:
        return cells
    cells.sort(key=lambda c: (-(c.x + c.y), c.chiplet_id))
    return cells[:count]


def package_composition(package: MCMPackage) -> str:
    """Canonical per-quadrant hardware description of a package.

    One fragment per local quadrant name (``fe:os@2|...|trunk:ws@1.2``),
    aggregated across NPU modules; a quadrant whose modules or cells
    disagree reports ``mixed``.  Deterministic, so it is safe in sweep
    rows and report documents.
    """
    count = package.quadrant_count
    if count % len(QUADRANT_NAMES):
        # packages outside the stage-per-quadrant tiling: per-quadrant
        # indices are the only stable naming.
        return "|".join(
            f"q{q}:{_quadrant_token(package, [q])}" for q in range(count))
    return "|".join(
        f"{name}:{_quadrant_token(package, quadrant_ids(name, package))}"
        for name in QUADRANT_NAMES)


def _quadrant_token(package: MCMPackage, quadrants: list[int]) -> str:
    tokens = {c.hw_token for q in quadrants for c in package.quadrant(q)}
    return tokens.pop() if len(tokens) == 1 else "mixed"
