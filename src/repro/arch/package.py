"""Multi-chiplet module (MCM) package model.

A :class:`MCMPackage` is a rectangular mesh of accelerator chiplets joined by
a Network-on-Package.  The canonical instance is the Simba-like 6x6 package
of 256-PE chiplets (9,216 PEs total, matching the Tesla NPU budget the paper
uses); a dual-NPU platform composes two of them (Sec. V-B).

Quadrants are 3x3 chiplet blocks; the paper's scheduler assigns one
perception stage per quadrant, so the package exposes quadrant membership
and per-stage chiplet budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cost import AcceleratorConfig, simba_chiplet
from .chiplet import Chiplet
from .nop import NOP_28NM, NoPConfig


def min_hop_map(mesh_w: int, mesh_h: int,
                sources: list[tuple[int, int]]) -> list[list[int]]:
    """Min XY-routed hops from every mesh cell to the nearest source.

    Two-pass L1 distance transform over the mesh — O(cells) regardless
    of the source count, and identical to ``min(|dx| + |dy|)`` because
    the mesh has no holes.  Indexed ``[x][y]``.
    """
    inf = mesh_w + mesh_h  # exceeds any reachable distance
    dist = [inf] * (mesh_w * mesh_h)  # flat, index x * mesh_h + y
    for x, y in sources:
        dist[x * mesh_h + y] = 0
    for x in range(mesh_w):
        base = x * mesh_h
        for y in range(mesh_h):
            i = base + y
            d = dist[i]
            if x and dist[i - mesh_h] + 1 < d:
                d = dist[i - mesh_h] + 1
            if y and dist[i - 1] + 1 < d:
                d = dist[i - 1] + 1
            dist[i] = d
    last_x, last_y = mesh_w - 1, mesh_h - 1
    for x in range(last_x, -1, -1):
        base = x * mesh_h
        for y in range(last_y, -1, -1):
            i = base + y
            d = dist[i]
            if x < last_x and dist[i + mesh_h] + 1 < d:
                d = dist[i + mesh_h] + 1
            if y < last_y and dist[i + 1] + 1 < d:
                d = dist[i + 1] + 1
            dist[i] = d
    return [dist[x * mesh_h:(x + 1) * mesh_h] for x in range(mesh_w)]


@dataclass
class MCMPackage:
    """A mesh of chiplets plus NoP parameters."""

    name: str
    mesh_w: int
    mesh_h: int
    chiplets: list[Chiplet]
    nop: NoPConfig = NOP_28NM
    #: number of 6x6 NPU modules composed into this package
    npus: int = 1

    def __post_init__(self) -> None:
        if len(self.chiplets) != self.mesh_w * self.mesh_h:
            raise ValueError(
                f"{self.name}: {len(self.chiplets)} chiplets do not fill a "
                f"{self.mesh_w}x{self.mesh_h} mesh")
        ids = {c.chiplet_id for c in self.chiplets}
        if ids != set(range(len(self.chiplets))):
            raise ValueError(f"{self.name}: chiplet ids must be 0..N-1")

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.chiplets)

    def chiplet(self, chiplet_id: int) -> Chiplet:
        return self.chiplets[chiplet_id]

    def at(self, x: int, y: int) -> Chiplet:
        for c in self.chiplets:
            if c.x == x and c.y == y:
                return c
        raise KeyError(f"no chiplet at ({x}, {y})")

    @property
    def total_pes(self) -> int:
        return sum(c.accel.pe_count for c in self.chiplets)

    @property
    def quadrant_count(self) -> int:
        return max(c.quadrant for c in self.chiplets) + 1

    def quadrant(self, q: int) -> list[Chiplet]:
        members = [c for c in self.chiplets if c.quadrant == q]
        if not members:
            raise KeyError(f"no quadrant {q} in {self.name}")
        return members

    def quadrant_capacity(self, q: int) -> int:
        return len(self.quadrant(q))

    def hops(self, a: int, b: int) -> int:
        """XY-routed hop count between two chiplet ids."""
        return self.chiplet(a).hops_to(self.chiplet(b))

    def with_dataflow_at(self, coords: list[tuple[int, int]],
                         accel: AcceleratorConfig) -> "MCMPackage":
        """Return a copy with the chiplets at ``coords`` replaced.

        Used for heterogeneous integration (Sec. IV-C): Het(2)/Het(4)
        embed 2 or 4 weight-stationary chiplets in the trunk quadrant.
        """
        targets = set(coords)
        new = []
        for c in self.chiplets:
            if c.coords in targets:
                new.append(c.with_accel(accel))
                targets.discard(c.coords)
            else:
                new.append(c)
        if targets:
            raise KeyError(f"coords not on mesh: {sorted(targets)}")
        return MCMPackage(self.name + "+het", self.mesh_w, self.mesh_h,
                          new, self.nop, self.npus)


def _quadrant_of(x: int, y: int) -> int:
    """Quadrant index for a 6x6 NPU tile: 3x3 blocks, row-major.

    For packages composed of several 6x6 NPUs side by side, quadrants
    continue counting across modules (module m contributes quadrants
    4m..4m+3).
    """
    module = x // 6
    lx = x % 6
    return 4 * module + (y // 3) * 2 + (lx // 3)


def simba_package(dataflow: str = "os", npus: int = 1,
                  accel: AcceleratorConfig | None = None,
                  nop: NoPConfig = NOP_28NM) -> MCMPackage:
    """Build one or more Simba-like 6x6 MCM NPUs as a single mesh.

    ``npus=2`` models the paper's Sec. V-B platform with both FSD NPUs
    active (72 chiplets, 18,432 PEs) as a 12x6 mesh.
    """
    if npus < 1:
        raise ValueError("npus must be >= 1")
    base = accel or simba_chiplet(dataflow)
    mesh_w, mesh_h = 6 * npus, 6
    chiplets = []
    cid = 0
    for y in range(mesh_h):
        for x in range(mesh_w):
            chiplets.append(Chiplet(cid, x, y, base, _quadrant_of(x, y)))
            cid += 1
    return MCMPackage(f"simba-{mesh_w}x{mesh_h}-{dataflow}",
                      mesh_w, mesh_h, chiplets, nop, npus)
