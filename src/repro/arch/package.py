"""Multi-chiplet module (MCM) package model.

A :class:`MCMPackage` is a grid of accelerator chiplets joined by a
Network-on-Package whose hop geometry is a first-class
:class:`~repro.arch.topology.NoPTopology` (open mesh, torus, or a
parameterized ``WxH`` grid).  The canonical instance is the Simba-like
6x6 mesh of 256-PE chiplets (9,216 PEs total, matching the Tesla NPU
budget the paper uses); a dual-NPU platform composes two of them
(Sec. V-B).

Quadrants are 3x3 chiplet blocks on the standard tiling (2x2 blocks on
explicit ``WxH`` grids); the paper's scheduler assigns one perception
stage per quadrant, so the package exposes quadrant membership and
per-stage chiplet budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cost import AcceleratorConfig, simba_chiplet
from .chiplet import Chiplet
from .nop import NOP_28NM, NoPConfig
from .topology import NoPTopology, min_hop_map, topology_for

__all__ = ["MCMPackage", "min_hop_map", "simba_package"]


@dataclass
class MCMPackage:
    """A grid of chiplets plus NoP parameters and topology."""

    name: str
    mesh_w: int
    mesh_h: int
    chiplets: list[Chiplet]
    nop: NoPConfig = NOP_28NM
    #: number of 6x6 NPU modules composed into this package
    npus: int = 1
    #: hop geometry of the package grid; ``None`` defaults to the seed
    #: open mesh of the package's own dimensions.
    topology: NoPTopology | None = None

    def __post_init__(self) -> None:
        if self.topology is None:
            self.topology = NoPTopology("mesh", self.mesh_w, self.mesh_h)
        if (self.topology.width, self.topology.height) != \
                (self.mesh_w, self.mesh_h):
            raise ValueError(
                f"{self.name}: topology grid "
                f"{self.topology.width}x{self.topology.height} does not "
                f"match the {self.mesh_w}x{self.mesh_h} package")
        if len(self.chiplets) != self.mesh_w * self.mesh_h:
            raise ValueError(
                f"{self.name}: {len(self.chiplets)} chiplets do not fill a "
                f"{self.mesh_w}x{self.mesh_h} mesh")
        ids = {c.chiplet_id for c in self.chiplets}
        if ids != set(range(len(self.chiplets))):
            raise ValueError(f"{self.name}: chiplet ids must be 0..N-1")

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.chiplets)

    def chiplet(self, chiplet_id: int) -> Chiplet:
        return self.chiplets[chiplet_id]

    def at(self, x: int, y: int) -> Chiplet:
        for c in self.chiplets:
            if c.x == x and c.y == y:
                return c
        raise KeyError(f"no chiplet at ({x}, {y})")

    @property
    def total_pes(self) -> int:
        return sum(c.accel.pe_count for c in self.chiplets)

    @property
    def quadrant_count(self) -> int:
        return max(c.quadrant for c in self.chiplets) + 1

    def quadrant(self, q: int) -> list[Chiplet]:
        members = [c for c in self.chiplets if c.quadrant == q]
        if not members:
            raise KeyError(f"no quadrant {q} in {self.name}")
        return members

    def quadrant_capacity(self, q: int) -> int:
        return len(self.quadrant(q))

    def hops(self, a: int, b: int) -> int:
        """Topology-routed hop count between two chiplet ids."""
        assert self.topology is not None  # set in __post_init__
        return self.topology.hops(self.chiplet(a).coords,
                                  self.chiplet(b).coords)

    def with_accels(self, accel_of: dict[int, AcceleratorConfig],
                    suffix: str = "+het") -> "MCMPackage":
        """Return a copy with per-chiplet accelerator replacements.

        ``accel_of`` maps chiplet ids to their new configs; every other
        chiplet is kept.  This is the one mixed-package construction
        primitive: whole-quadrant overrides
        (:meth:`repro.arch.quadrants.QuadrantOverrides.apply`) and the
        paper's partial Het(k) trunk embeddings (``repro.core.hetero``)
        both route through it.
        """
        unknown = set(accel_of) - {c.chiplet_id for c in self.chiplets}
        if unknown:
            raise KeyError(f"chiplet ids not in package: {sorted(unknown)}")
        new = [c.with_accel(accel_of[c.chiplet_id])
               if c.chiplet_id in accel_of else c
               for c in self.chiplets]
        return MCMPackage(self.name + suffix, self.mesh_w, self.mesh_h,
                          new, self.nop, self.npus, self.topology)

    def with_dataflow_at(self, coords: list[tuple[int, int]],
                         accel: AcceleratorConfig) -> "MCMPackage":
        """Return a copy with the chiplets at ``coords`` replaced.

        Used for heterogeneous integration (Sec. IV-C): Het(2)/Het(4)
        embed 2 or 4 weight-stationary chiplets in the trunk quadrant.
        Thin coordinate-keyed wrapper over :meth:`with_accels`.
        """
        missing = [xy for xy in coords
                   if not any(c.coords == xy for c in self.chiplets)]
        if missing:
            raise KeyError(f"coords not on mesh: {sorted(missing)}")
        return self.with_accels(
            {self.at(x, y).chiplet_id: accel for x, y in coords})


def _quadrant_of(x: int, y: int) -> int:
    """Quadrant index for a 6x6 NPU tile: 3x3 blocks, row-major.

    For packages composed of several 6x6 NPUs side by side, quadrants
    continue counting across modules (module m contributes quadrants
    4m..4m+3).
    """
    module = x // 6
    lx = x % 6
    return 4 * module + (y // 3) * 2 + (lx // 3)


def _grid_quadrant_of(x: int, y: int, width: int, height: int) -> int:
    """Quadrant index on an explicit ``WxH`` grid: 2x2 blocks of
    ``(W/2)x(H/2)`` chiplets, row-major (4 quadrants total)."""
    return (y // (height // 2)) * 2 + (x // (width // 2))


def simba_package(dataflow: str = "os", npus: int = 1,
                  accel: AcceleratorConfig | None = None,
                  nop: NoPConfig = NOP_28NM,
                  topology: str | NoPTopology | None = None) -> MCMPackage:
    """Build one or more Simba-like 6x6 MCM NPUs as a single grid.

    ``npus=2`` models the paper's Sec. V-B platform with both FSD NPUs
    active (72 chiplets, 18,432 PEs) as a 12x6 mesh.  ``topology``
    selects the NoP hop geometry: ``None``/``"mesh"`` keep the seed open
    mesh, ``"torus"`` adds wraparound links at the same grid size, and
    an explicit ``KIND-WxH`` token (e.g. ``"torus-8x8"``, single-module
    only) sizes the grid directly with a 2x2 quadrant tiling.
    """
    if npus < 1:
        raise ValueError("npus must be >= 1")
    if isinstance(topology, NoPTopology):
        topo = topology
    else:
        topo = topology_for(topology, npus)
    base = accel or simba_chiplet(dataflow)
    mesh_w, mesh_h = topo.width, topo.height
    standard_tiling = (mesh_w, mesh_h) == (6 * npus, 6)
    if not standard_tiling:
        # The token path already enforces these via parse_topology; a
        # directly-passed NoPTopology instance must meet the same 2x2
        # quadrant-tiling preconditions (and fix the whole package, so
        # it cannot combine with multi-module tiling).
        if npus != 1:
            raise ValueError(
                f"topology grid {mesh_w}x{mesh_h} is incompatible with "
                f"npus={npus}: the grid already fixes the package size")
        if mesh_w < 2 or mesh_h < 2 or mesh_w % 2 or mesh_h % 2:
            raise ValueError(
                f"topology grid {mesh_w}x{mesh_h} must have even width "
                f"and height >= 2 (the 2x2 quadrant tiling needs both)")
    chiplets = []
    cid = 0
    for y in range(mesh_h):
        for x in range(mesh_w):
            quad = (_quadrant_of(x, y) if standard_tiling
                    else _grid_quadrant_of(x, y, mesh_w, mesh_h))
            chiplets.append(Chiplet(cid, x, y, base, quad))
            cid += 1
    name = f"simba-{mesh_w}x{mesh_h}-{dataflow}"
    if topo.kind != "mesh":
        name = f"simba-{mesh_w}x{mesh_h}-{topo.kind}-{dataflow}"
    return MCMPackage(name, mesh_w, mesh_h, chiplets, nop, npus, topo)
