"""Package-level DRAM traffic and bandwidth accounting.

The FSD platform feeds its NPUs from LPDDR4 (~63.5 GB/s in the Tesla FSD,
Sec. II-A).  Per frame, the package must stream:

* the camera inputs (8 x 720p x fp16 words),
* every true filter weight that does not persist in chiplet global
  buffers (activation-producing "weights" of attention matmuls never
  touch DRAM — they are produced on package).

This module aggregates that traffic for a workload, checks it against a
DRAM budget at the target frame rate, and prices its energy.  It closes a
loop the paper leaves implicit: the MCM's aggregate on-package bandwidth
only helps if DRAM does not become the new bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.graph import PerceptionWorkload
from ..workloads.layers import BYTES_PER_WORD
from ..workloads.pipeline import PipelineConfig

#: LPDDR4 on the Tesla FSD (GB/s).
FSD_LPDDR4_BYTES_PER_S = 63.5e9


@dataclass(frozen=True)
class DramBudget:
    """DRAM interface parameters for the package."""

    bandwidth_bytes_per_s: float = FSD_LPDDR4_BYTES_PER_S
    energy_pj_per_word: float = 160.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("DRAM bandwidth must be positive")

    def stream_time_s(self, n_bytes: int | float) -> float:
        """Seconds to stream ``n_bytes`` through the DRAM interface.

        This is the per-frame DRAM service time the scheduler compares
        against the compute pipe latency: when it is larger, DRAM — not
        the chiplets — sets the steady-state frame rate.
        """
        if n_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return n_bytes / self.bandwidth_bytes_per_s

    def stream_energy_j(self, n_bytes: int | float) -> float:
        """DRAM access energy for ``n_bytes`` (word-granular pricing)."""
        if n_bytes < 0:
            raise ValueError("byte count must be non-negative")
        words = n_bytes / BYTES_PER_WORD
        return words * self.energy_pj_per_word * 1e-12


@dataclass(frozen=True)
class DramReport:
    """Per-frame DRAM traffic of a workload against a budget."""

    weight_bytes: int
    input_bytes: int
    fps: float
    bandwidth_bytes_per_s: float
    energy_j: float

    @property
    def total_bytes(self) -> int:
        return self.weight_bytes + self.input_bytes

    @property
    def demand_bytes_per_s(self) -> float:
        return self.total_bytes * self.fps

    @property
    def bandwidth_utilization(self) -> float:
        return self.demand_bytes_per_s / self.bandwidth_bytes_per_s

    @property
    def sustainable(self) -> bool:
        return self.bandwidth_utilization <= 1.0

    @property
    def max_fps(self) -> float:
        return self.bandwidth_bytes_per_s / self.total_bytes


def camera_input_bytes(config: PipelineConfig | None = None) -> int:
    """Raw sensor bytes per frame (all cameras, fp16 RGB)."""
    config = config or PipelineConfig()
    h, w = config.input_hw
    return config.cameras * 3 * h * w * BYTES_PER_WORD


def weight_stream_bytes(workload: PerceptionWorkload) -> int:
    """True filter weights streamed per frame (activations excluded).

    Weights are fetched once per layer per frame; replicated instances
    share the fetch only when they run on the same chiplet, so we count
    the conservative one-fetch-per-instance figure.
    """
    total_words = 0
    for group in workload.all_groups():
        for layer in group.layers:
            if layer.kind.is_compute and not layer.weights_are_activations:
                total_words += layer.weight_words * group.instances
    return total_words * BYTES_PER_WORD


def workload_dram_bytes(workload: PerceptionWorkload,
                        config: PipelineConfig | None = None) -> int:
    """Total per-frame DRAM bytes: streamed weights plus camera inputs.

    The single figure the scheduler needs to turn a :class:`DramBudget`
    into a steady-state throughput bound (see
    :attr:`repro.core.schedule.Schedule.dram_time_s`).
    """
    return weight_stream_bytes(workload) + camera_input_bytes(config)


def dram_report(workload: PerceptionWorkload,
                config: PipelineConfig | None = None,
                budget: DramBudget | None = None,
                fps: float | None = None) -> DramReport:
    """Aggregate DRAM demand for the workload at a frame rate."""
    config = config or PipelineConfig()
    budget = budget or DramBudget()
    fps = fps if fps is not None else config.fps
    weights = weight_stream_bytes(workload)
    inputs = camera_input_bytes(config)
    words = (weights + inputs) / BYTES_PER_WORD
    return DramReport(
        weight_bytes=weights,
        input_bytes=inputs,
        fps=fps,
        bandwidth_bytes_per_s=budget.bandwidth_bytes_per_s,
        energy_j=words * budget.energy_pj_per_word * 1e-12,
    )
