"""Package-level NoP topologies (paper Sec. IV-D follow-on).

The seed model hard-wired the package interconnect to an XY-routed *open*
rectangular mesh: every hop count was a Manhattan distance, computed
inline wherever it was needed (placement, schedule pricing, the package's
``hops`` accessor).  :class:`NoPTopology` promotes that geometry to a
first-class object so the topology itself becomes a sweep axis:

* ``mesh`` — the seed open grid; XY-routed hops are plain L1 distances.
* ``torus`` — the same grid with wraparound links on both axes; the
  per-axis hop count becomes ``min(d, size - d)``, which shortens every
  route longer than half the grid (the paper's Sec. IV-D observation
  that package-level interconnect topology, not just link bandwidth,
  bounds multi-chiplet latency).
* parameterized ``WxH`` grids — packages beyond the side-by-side 6x6
  NPU tiling, quadrant-partitioned into 2x2 blocks.

Everything hop-shaped routes through this object: ``hops(a, b)`` prices
one route, :meth:`NoPTopology.min_hop_map` builds the multi-source
nearest-hop map placement and schedule pricing share.  The mesh map
delegates to the same two-pass L1 distance transform the seed used, so
default-topology results are bit-identical to the seed model.

Plan keying: group plans are currently topology-independent (sharding
prices compute only), but the plan cache and store key conservatively via
:attr:`NoPTopology.plan_context` — ``None`` for any mesh (the seed
geometry class, keeping every existing key byte-stable) and the kind
token otherwise, so torus-planned entries can never be served to a mesh
run (or vice versa) even once planning becomes NoP-aware.
"""

from __future__ import annotations

from dataclasses import dataclass

#: supported topology kinds, in canonical order.
TOPOLOGY_KINDS = ("mesh", "torus")


def min_hop_map(mesh_w: int, mesh_h: int,
                sources: list[tuple[int, int]]) -> list[list[int]]:
    """Min XY-routed hops from every open-mesh cell to the nearest source.

    Two-pass L1 distance transform over the mesh — O(cells) regardless
    of the source count, and identical to ``min(|dx| + |dy|)`` because
    the mesh has no holes.  Indexed ``[x][y]``.
    """
    inf = mesh_w + mesh_h  # exceeds any reachable distance
    dist = [inf] * (mesh_w * mesh_h)  # flat, index x * mesh_h + y
    for x, y in sources:
        dist[x * mesh_h + y] = 0
    for x in range(mesh_w):
        base = x * mesh_h
        for y in range(mesh_h):
            i = base + y
            d = dist[i]
            if x and dist[i - mesh_h] + 1 < d:
                d = dist[i - mesh_h] + 1
            if y and dist[i - 1] + 1 < d:
                d = dist[i - 1] + 1
            dist[i] = d
    last_x, last_y = mesh_w - 1, mesh_h - 1
    for x in range(last_x, -1, -1):
        base = x * mesh_h
        for y in range(last_y, -1, -1):
            i = base + y
            d = dist[i]
            if x < last_x and dist[i + mesh_h] + 1 < d:
                d = dist[i + mesh_h] + 1
            if y < last_y and dist[i + 1] + 1 < d:
                d = dist[i + 1] + 1
            dist[i] = d
    return [dist[x * mesh_h:(x + 1) * mesh_h] for x in range(mesh_w)]


@dataclass(frozen=True)
class NoPTopology:
    """Hop geometry of the package's Network-on-Package grid."""

    kind: str = "mesh"
    width: int = 6
    height: int = 6

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; valid choices: "
                f"{', '.join(TOPOLOGY_KINDS)}")
        if self.width < 1 or self.height < 1:
            raise ValueError(
                f"topology grid must be at least 1x1, "
                f"got {self.width}x{self.height}")

    # ------------------------------------------------------------------

    @property
    def wraparound(self) -> bool:
        """True when both axes close into rings (torus)."""
        return self.kind == "torus"

    @property
    def token(self) -> str:
        """Canonical axis token for this topology (``torus-8x8`` form)."""
        return f"{self.kind}-{self.width}x{self.height}"

    @property
    def plan_context(self) -> "str | None":
        """Plan-cache/store keying context for this topology.

        ``None`` for any mesh — the seed geometry class, so every plan
        key (and PlanStore content hash) produced before topologies
        existed stays byte-stable.  Any other kind returns its token
        kind, so e.g. torus-planned store entries are never served to a
        mesh sweep even though today's sharding plans are
        topology-independent: the keying is conservative so NoP-aware
        planning can land without a store schema bump.
        """
        return None if self.kind == "mesh" else self.kind

    # ------------------------------------------------------------------
    # Hop geometry
    # ------------------------------------------------------------------

    def hops(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        """XY-routed hop count between two grid coordinates.

        On a torus each axis may route through the wraparound link, so
        the per-axis distance is ``min(d, size - d)``.
        """
        dx = abs(a[0] - b[0])
        dy = abs(a[1] - b[1])
        if self.wraparound:
            dx = min(dx, self.width - dx)
            dy = min(dy, self.height - dy)
        return dx + dy

    def min_hop_map(self,
                    sources: list[tuple[int, int]]) -> list[list[int]]:
        """Min hops from every grid cell to the nearest source.

        Indexed ``[x][y]``.  The mesh path is the seed's two-pass L1
        distance transform (bit-identical maps); the torus path uses the
        closed-form wraparound distance, exact for per-axis XY routing.
        Empty source sets yield the mesh's unreachable sentinel
        (``width + height``) everywhere, mirroring the transform.
        """
        if not self.wraparound:
            return min_hop_map(self.width, self.height, sources)
        w, h = self.width, self.height
        if not sources:
            return [[w + h] * h for _ in range(w)]
        out = []
        for x in range(w):
            col = []
            for y in range(h):
                cell = (x, y)
                col.append(min(self.hops(cell, s) for s in sources))
            out.append(col)
        return out


def parse_topology(token: str) -> "tuple[str, tuple[int, int] | None]":
    """Parse a topology axis token into ``(kind, explicit grid dims)``.

    Accepted forms: ``mesh`` / ``torus`` (grid sized by the package's
    NPU count) and ``KIND-WxH`` (an explicit grid, e.g. ``torus-8x8``).
    Explicit grids need even dimensions >= 2 so the 2x2 quadrant tiling
    (one perception stage per quadrant) stays well-defined.
    """
    text = token.strip().lower()
    kind, sep, size = text.partition("-")
    if kind not in TOPOLOGY_KINDS:
        raise ValueError(
            f"unknown topology {token!r}; valid choices: "
            f"{', '.join(TOPOLOGY_KINDS)}, optionally with an explicit "
            f"grid as KIND-WxH (e.g. torus-8x8)")
    if not sep:
        return kind, None
    w_text, x, h_text = size.partition("x")
    if not x or not w_text.isdigit() or not h_text.isdigit():
        raise ValueError(
            f"bad topology grid in {token!r}: expected KIND-WxH with "
            f"integer dimensions, e.g. mesh-8x8")
    dims = (int(w_text), int(h_text))
    if dims[0] < 2 or dims[1] < 2 or dims[0] % 2 or dims[1] % 2:
        raise ValueError(
            f"topology grid {token!r} must have even width and height "
            f">= 2 (the 2x2 quadrant tiling needs both)")
    return kind, dims


def canonical_topology(token: str) -> str:
    """Validate and canonicalize one topology token (lowercased form)."""
    kind, dims = parse_topology(token)
    return kind if dims is None else f"{kind}-{dims[0]}x{dims[1]}"


def topology_for(token: "str | None", npus: int) -> NoPTopology:
    """Resolve a topology token against a package of ``npus`` modules.

    ``None`` and size-less tokens take the standard side-by-side tiling
    (``6*npus x 6``); an explicit ``KIND-WxH`` grid sizes the package
    directly and is only meaningful for a single-module package.
    """
    if token is None:
        return NoPTopology("mesh", 6 * npus, 6)
    kind, dims = parse_topology(token)
    if dims is None:
        return NoPTopology(kind, 6 * npus, 6)
    if npus != 1:
        raise ValueError(
            f"explicit topology grid {token!r} is incompatible with "
            f"npus={npus}: the grid already fixes the package size")
    return NoPTopology(kind, dims[0], dims[1])
