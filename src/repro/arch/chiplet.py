"""A single accelerator chiplet instance on the package mesh."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cost import AcceleratorConfig


@dataclass(frozen=True)
class Chiplet:
    """One accelerator chiplet with a mesh position.

    ``quadrant`` identifies the 3x3 block of the 6x6 Simba-like package the
    chiplet belongs to; the paper's scheduler allocates one perception stage
    per quadrant (Sec. IV).
    """

    chiplet_id: int
    x: int
    y: int
    accel: AcceleratorConfig
    quadrant: int

    @property
    def coords(self) -> tuple[int, int]:
        return (self.x, self.y)

    @property
    def dataflow(self) -> str:
        return self.accel.dataflow

    @property
    def hw_token(self) -> str:
        """Compact hardware description of this chiplet (``ws@1.2`` form).

        Delegates to :attr:`AcceleratorConfig.hw_token`; heterogeneous
        package composition strings are built from these.
        """
        return self.accel.hw_token

    # Hop distances are owned by the package topology
    # (``MCMPackage.hops`` / ``repro.arch.topology.NoPTopology``): a
    # chiplet alone cannot know whether its grid wraps around.

    def with_accel(self, accel: AcceleratorConfig) -> "Chiplet":
        return replace(self, accel=accel)
