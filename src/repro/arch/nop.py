"""Network-on-Package cost model (paper Sec. IV-D).

The paper models NoP data movement with three microarchitecture parameters
taken from Simba scaled to 28 nm:

* interconnect bandwidth: 100 GB/s per chiplet link,
* per-hop latency: 35 ns,
* transmission energy: 2.04 pJ/bit.

Transmission latency is the feature-map serialization time multiplied by the
hop count (store-and-forward, the paper's stated formula) plus the per-hop
router latency; energy is ``bits * pJ/bit * hops``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NoPConfig:
    """NoP link parameters."""

    bandwidth_bytes_per_s: float = 100.0e9
    hop_latency_s: float = 35.0e-9
    energy_pj_per_bit: float = 2.04

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("NoP bandwidth must be positive")
        if self.hop_latency_s < 0 or self.energy_pj_per_bit < 0:
            raise ValueError("NoP latency/energy must be non-negative")


@dataclass(frozen=True)
class NoPTransfer:
    """Cost of moving one tensor between two chiplets."""

    payload_bytes: int
    hops: int
    latency_s: float
    energy_j: float


#: Default NoP parameters (Simba scaled to 28 nm, Sec. IV-D).
NOP_28NM = NoPConfig()


def transfer_cost(payload_bytes: int, hops: int,
                  config: NoPConfig = NOP_28NM) -> NoPTransfer:
    """Price a point-to-point transfer of ``payload_bytes`` over ``hops``.

    Zero hops (producer and consumer co-located) cost nothing.
    """
    if payload_bytes < 0 or hops < 0:
        raise ValueError("payload and hops must be non-negative")
    if hops == 0 or payload_bytes == 0:
        return NoPTransfer(payload_bytes, hops, 0.0, 0.0)
    serialization = payload_bytes / config.bandwidth_bytes_per_s
    latency = hops * (serialization + config.hop_latency_s)
    energy = payload_bytes * 8 * config.energy_pj_per_bit * 1e-12 * hops
    return NoPTransfer(payload_bytes, hops, latency, energy)
