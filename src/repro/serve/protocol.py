"""Wire protocol for the networked plan-memo service.

The memo server and :class:`~repro.serve.client.RemoteStoreClient` speak
a small POST-JSON protocol whose semantics are *exactly* the
:class:`~repro.core.planstore.PlanStore` contract lifted onto HTTP (see
``docs/SERVING.md`` for the full specification):

* **Keys are content hashes** minted by
  :func:`repro.core.planstore.plan_key_hash` — the wire never invents a
  second canonicalization (repro-lint R2 keeps hashing confined to the
  plan-store module).
* **Schema skew is a miss, never an error.**  Every request carries the
  client's :data:`~repro.core.planstore.SCHEMA_VERSION`; a server on a
  different version answers gets with misses and ignores puts, exactly
  as ``PlanStore.load`` skips foreign-schema shards.  Likewise a corrupt
  shard on the server's disk simply leaves its keys unserved.
* **Errors split into a deterministic taxonomy**: transport failures
  (connection refused, timeouts) are *transient* and retried on the
  deterministic :class:`~repro.sweep.resilience.RetryPolicy` schedule;
  protocol violations (HTTP 4xx, malformed envelopes) raise
  :class:`ServeProtocolError` and are never retried — re-sending a
  malformed request cannot change the answer.

This module also owns the server-side latency accounting: every request
is timed into a :class:`LatencyRecorder` and reported as nearest-rank
p50/p99 per request class, TPU-paper style (latency percentiles over
throughput).  The *format* of the report and of the latency log lines is
deterministic — fixed field order, fixed rounding — while the measured
values naturally vary run to run.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass

#: wire-protocol revision, stamped into every response envelope.  Bump
#: when a route's request or response shape changes meaning; clients
#: reject mismatched responses rather than misparse them.
PROTOCOL_VERSION = 1

#: the request classes (= POST routes without the slash) the server
#: serves and times.  Sorted; reports iterate this order.
REQUEST_CLASSES = ("batch_get", "batch_put", "compact", "get", "put",
                   "stats", "sweep")


class ServeProtocolError(RuntimeError):
    """A deterministic protocol violation (malformed envelope, HTTP 4xx,
    protocol-version skew).  Deliberately *not* a
    :class:`~repro.sweep.resilience.TransientError`: retrying an
    identical malformed exchange cannot change the outcome, so the
    retry layer quarantines it on the first attempt.
    """


def percentile(sorted_values: list, q: float) -> float:
    """Nearest-rank percentile of pre-sorted ``values`` (q in [0, 100]).

    The TPU-paper convention: p50/p99 are actual observed samples, not
    interpolations — deterministic for a given sample multiset and
    independent of float rounding subtleties.
    """
    if not sorted_values:
        return 0.0
    if q <= 0:
        return sorted_values[0]
    rank = -(-q * len(sorted_values) // 100)  # ceil without math import
    return sorted_values[min(len(sorted_values) - 1, int(rank) - 1)]


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of one request class's server-side latencies."""

    request_class: str
    count: int
    p50_ms: float
    p99_ms: float
    mean_ms: float

    def to_dict(self) -> dict:
        return {"count": self.count,
                "p50_ms": self.p50_ms,
                "p99_ms": self.p99_ms,
                "mean_ms": self.mean_ms}


class LatencyRecorder:
    """Thread-safe per-request-class latency samples and percentiles.

    Samples are recorded in milliseconds; :meth:`report` rounds to
    microsecond precision (3 decimals) so the report format is stable
    regardless of platform timer resolution.
    """

    #: rounding applied to reported percentiles (decimals of a ms).
    _DECIMALS = 3

    def __init__(self) -> None:
        self._samples: dict[str, list[float]] = {}
        self._lock = threading.Lock()

    def record(self, request_class: str, duration_ms: float) -> None:
        """Add one server-side request timing sample."""
        with self._lock:
            self._samples.setdefault(request_class, []).append(duration_ms)

    def summaries(self) -> list[LatencySummary]:
        """One :class:`LatencySummary` per seen class, sorted by class."""
        with self._lock:
            snapshot = {cls: list(samples)
                        for cls, samples in self._samples.items()}
        out = []
        for cls in sorted(snapshot):
            values = sorted(snapshot[cls])
            out.append(LatencySummary(
                request_class=cls,
                count=len(values),
                p50_ms=round(percentile(values, 50), self._DECIMALS),
                p99_ms=round(percentile(values, 99), self._DECIMALS),
                mean_ms=round(sum(values) / len(values), self._DECIMALS)))
        return out

    def report(self) -> dict:
        """``request class -> {count, p50_ms, p99_ms, mean_ms}`` (sorted)."""
        return {s.request_class: s.to_dict() for s in self.summaries()}

    def log_line(self, request_class: str, duration_ms: float) -> str:
        """One deterministic-format latency log line.

        Fixed field order and rounding, JSON-parseable, newline-free —
        the shape the CI artifact and operators grep.
        """
        return json.dumps(
            {"duration_ms": round(duration_ms, self._DECIMALS),
             "request_class": request_class},
            sort_keys=True, separators=(", ", ": "))


def render_latency_report(report: dict) -> str:
    """Human-readable p50/p99 table of a :meth:`LatencyRecorder.report`
    payload (also what ``chiplet-npu sweep --store-url`` prints).

    Accepts the wire dict rather than the recorder so the *client* can
    render the server's ``/stats`` response without holding samples.
    """
    if not report:
        return "serving latency: no requests recorded"
    lines = ["serving latency (server-side, per request class):"]
    for cls in sorted(report):
        entry = report[cls]
        lines.append(
            f"  {cls:<10} count={entry['count']:<6} "
            f"p50={entry['p50_ms']:.3f} ms  "
            f"p99={entry['p99_ms']:.3f} ms")
    return "\n".join(lines)


def error_body(kind: str, detail: str = "") -> dict:
    """The JSON body of a protocol-level error response."""
    body = {"error": kind, "protocol": PROTOCOL_VERSION}
    if detail:
        body["detail"] = detail
    return body
