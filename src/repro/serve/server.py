"""The always-warm plan-memo server (``chiplet-npu serve``).

A :class:`MemoServer` wraps a disk-backed
:class:`~repro.core.planstore.PlanStore` directory with a threaded HTTP
front end speaking the ``get/put/batch_get/batch_put/stats/compact``
protocol of :mod:`repro.serve.protocol`, plus a ``/sweep`` endpoint that
prices scenario shards for distributed dispatch
(:mod:`repro.serve.dispatch`).

Design points, all inherited from the plan store rather than invented:

* **Startup loads whatever the shards will give.**  Corrupt or
  foreign-schema shards are skipped exactly as ``PlanStore.load`` skips
  them — their keys simply miss on the wire (never an error), and the
  skip manifest is served under ``/stats`` so operators see the loss.
* **Every put persists atomically.**  Accepted records are flushed
  through ``PlanStore.flush_records`` (digest-named shard, temp file +
  ``os.replace``), so a killed server restarts warm with everything it
  ever acknowledged.
* **GC is deterministic.**  :class:`GCPolicy` bounds the table by size
  (``max_entries``) and age (``max_age_puts``, measured in put
  *generations* — the server's logical clock, not the wall clock), and
  eviction order is a pure function of (generation, key): oldest first,
  ties in key order.  Compaction rewrites the store directory to one
  shard minus the evicted records; invalid files are left in place for
  inspection, as ``PlanStore.compact`` leaves them.
* **Out-of-band shards are absorbed, never lost.**  ``/sweep`` pricing
  flushes this process's plan cache straight to the backing directory
  (and a co-hosted worker may flush there too); those shards never pass
  through a put route.  Before any eviction or compaction the server
  folds unseen shard files into the live table, so a rewrite can only
  ever remove records the GC policy doomed — and the get routes serve
  absorbed keys like any other.

Request handling serializes on one lock (the table is a dict; requests
are small), while the ``ThreadingHTTPServer`` keeps slow readers from
blocking the accept loop.  Every request is timed server-side into a
:class:`~repro.serve.protocol.LatencyRecorder` and optionally appended
to a deterministic-format latency log.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from ..core.plancache import get_plan_cache, plan_cache_stats
from ..core.planstore import SCHEMA_VERSION, PlanStore
from .protocol import (
    PROTOCOL_VERSION,
    LatencyRecorder,
    error_body,
)


@dataclass(frozen=True)
class GCPolicy:
    """Deterministic size- and age-bounded eviction for the memo table.

    Age is measured in *put generations* — the server increments its
    generation counter once per accepted put/batch_put request, so the
    policy is a pure function of the request sequence (never of the
    wall clock; repro-lint R1 thinking applied to serving).  ``None``
    disables a bound.
    """

    #: keep at most this many records (evict oldest-generation first,
    #: ties in key order).
    max_entries: int | None = None
    #: evict records not re-put within this many put generations.
    max_age_puts: int | None = None
    #: compact the backing store once it accumulates this many shard
    #: files (each accepted put flushes one).
    compact_after_shards: int = 64

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        if self.max_age_puts is not None and self.max_age_puts < 1:
            raise ValueError("max_age_puts must be >= 1 (or None)")
        if self.compact_after_shards < 1:
            raise ValueError("compact_after_shards must be >= 1")

    def evictions(self, generations: dict[str, int],
                  current_generation: int) -> list[str]:
        """Keys to evict, in deterministic (generation, key) order."""
        doomed: set[str] = set()
        if self.max_age_puts is not None:
            doomed.update(
                key for key, gen in generations.items()
                if current_generation - gen > self.max_age_puts)
        if self.max_entries is not None:
            live = [(gen, key) for key, gen in generations.items()
                    if key not in doomed]
            excess = len(live) - self.max_entries
            if excess > 0:
                doomed.update(key for _, key in sorted(live)[:excess])
        return sorted(doomed, key=lambda key: (generations[key], key))


class MemoServer:
    """The networked memo store: a plan-store directory behind HTTP."""

    def __init__(self, store_path: str | pathlib.Path,
                 host: str = "127.0.0.1", port: int = 0,
                 gc_policy: GCPolicy | None = None,
                 latency_log: str | pathlib.Path | None = None,
                 schema_version: int = SCHEMA_VERSION) -> None:
        self.store = PlanStore(store_path, schema_version=schema_version)
        #: key hash -> raw JSON record (None = memoized-infeasible).
        self.records: dict[str, Optional[dict]] = \
            self.store.load_records()
        #: shard name -> skip reason, for every file the startup load
        #: (or a later absorption) refused.  These are the files
        #: compaction must leave in place for inspection, and the
        #: manifest the ``/stats`` route serves.
        self._skipped: dict[str, str] = {
            shard.name: reason
            for shard, reason in self.store.skipped_files}
        #: shard files already folded into the table (or skipped).
        #: Shards are immutable and content-addressed, so each file
        #: needs examining at most once.
        self._absorbed: set[str] = {
            shard.name for shard in self.store.shard_files()}
        #: put generation each key was last written in (0 = startup).
        self.generations: dict[str, int] = dict.fromkeys(self.records, 0)
        self.generation = 0
        self.gc_policy = gc_policy or GCPolicy()
        self.evicted_total = 0
        self.compactions = 0
        self.latency = LatencyRecorder()
        self._latency_log = (pathlib.Path(latency_log)
                             if latency_log is not None else None)
        self._lock = threading.Lock()
        self._httpd = ThreadingHTTPServer((host, port),
                                          _make_handler(self))
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    @property
    def load_skipped(self) -> list[dict]:
        """Skipped-shard manifest: ``[{"file", "reason"}, ...]``, sorted.

        Same shape as ``PlanStore.skipped_manifest``; covers files the
        startup load skipped plus any absorbed later and found bad.
        """
        return [{"file": name, "reason": reason}
                for name, reason in sorted(self._skipped.items())]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Block serving requests (the ``chiplet-npu serve`` loop)."""
        self._httpd.serve_forever()

    def start(self) -> "MemoServer":
        """Serve on a daemon thread (tests, CI smoke, embedded use)."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MemoServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request handling ----------------------------------------------

    def handle(self, route: str, payload: dict) -> tuple[int, dict]:
        """Dispatch one parsed request; returns (HTTP status, body).

        Pure routing — timing and transport live in the HTTP handler.
        """
        handlers = {
            "/get": self._handle_get,
            "/put": self._handle_put,
            "/batch_get": self._handle_batch_get,
            "/batch_put": self._handle_batch_put,
            "/stats": self._handle_stats,
            "/compact": self._handle_compact,
            "/sweep": self._handle_sweep,
        }
        handler = handlers.get(route)
        if handler is None:
            return 404, error_body("unknown_route", route)
        if not isinstance(payload, dict):
            return 400, error_body("bad_request",
                                   "request body must be a JSON object")
        try:
            body = handler(payload)
        except _BadRequest as exc:
            return 400, error_body("bad_request", str(exc))
        body.setdefault("protocol", PROTOCOL_VERSION)
        body.setdefault("schema", self.store.schema_version)
        return 200, body

    def _schema_matches(self, payload: dict) -> bool:
        """Whether the request's schema version matches the server's.

        A missing field counts as a mismatch: the wire contract is the
        plan store's — a shard (or request) without the right stamp is
        stale, and stale means miss/no-op, never error.
        """
        return payload.get("schema") == self.store.schema_version

    def _handle_get(self, payload: dict) -> dict:
        key = payload.get("key")
        if not isinstance(key, str):
            raise _BadRequest("'key' must be a string")
        with self._lock:
            if not self._schema_matches(payload) \
                    or key not in self.records:
                return {"found": False}
            return {"found": True, "record": self.records[key]}

    def _handle_batch_get(self, payload: dict) -> dict:
        want_all = payload.get("all", False)
        keys = payload.get("keys")
        if not want_all and not isinstance(keys, list):
            raise _BadRequest("'keys' must be a list (or pass all=true)")
        with self._lock:
            if not self._schema_matches(payload):
                return {"records": {}}
            if want_all:
                return {"records": dict(self.records)}
            return {"records": {key: self.records[key] for key in keys
                                if isinstance(key, str)
                                and key in self.records}}

    def _handle_put(self, payload: dict) -> dict:
        key = payload.get("key")
        if not isinstance(key, str) or "record" not in payload:
            raise _BadRequest("'key' (string) and 'record' are required")
        return self._accept({key: payload["record"]}, payload)

    def _handle_batch_put(self, payload: dict) -> dict:
        records = payload.get("records")
        if not isinstance(records, dict):
            raise _BadRequest("'records' must be an object")
        return self._accept(records, payload)

    def _accept(self, records: dict, payload: dict) -> dict:
        """Store records from one put request (one generation tick).

        Schema-skewed writers are ignored wholesale — a stale client
        must not poison the table, just as a stale shard never loads.
        """
        if not self._schema_matches(payload):
            return {"stored": 0, "ignored": len(records)}
        with self._lock:
            self.generation += 1
            for key in sorted(records):
                self.records[key] = records[key]
                self.generations[key] = self.generation
            flushed = self.store.flush_records(records)
            if flushed is not None:
                # this shard's entries are the table's; never re-read it
                self._absorbed.add(flushed.name)
            evicted = self._collect_locked()
        return {"stored": len(records), "evicted": evicted}

    def _handle_stats(self, payload: dict) -> dict:
        with self._lock:
            entries = len(self.records)
            generation = self.generation
            evicted = self.evicted_total
            compactions = self.compactions
            skipped = self.load_skipped
        return {
            "entries": entries,
            "generation": generation,
            "requests": self.latency.report(),
            "gc": {"evicted": evicted, "compactions": compactions,
                   "policy": {
                       "max_entries": self.gc_policy.max_entries,
                       "max_age_puts": self.gc_policy.max_age_puts,
                       "compact_after_shards":
                           self.gc_policy.compact_after_shards,
                   }},
            "store_skipped": skipped,
        }

    def _handle_compact(self, payload: dict) -> dict:
        with self._lock:
            evicted = self._collect_locked(force=True)
            entries = len(self.records)
            shards = len(self.store.shard_files())
        return {"evicted": evicted, "entries": entries, "shards": shards}

    # -- GC / compaction -----------------------------------------------

    def _collect_locked(self, force: bool = False) -> int:
        """Apply the GC policy; compact when due.  Caller holds the lock.

        Returns the number of records evicted.  Out-of-band shards are
        absorbed into the table *first*, so eviction is the only way a
        persisted record ever leaves.  Compaction happens when forced
        (``/compact``), when anything was evicted (the doomed records
        must leave the disk too, not just the table), or when the
        shard-file count crosses the policy threshold.
        """
        self._absorb_locked()
        doomed = self.gc_policy.evictions(self.generations,
                                          self.generation)
        for key in doomed:
            del self.records[key]
            del self.generations[key]
        self.evicted_total += len(doomed)
        shard_count = len(self.store.shard_files())
        if force or doomed \
                or shard_count >= self.gc_policy.compact_after_shards:
            self._compact_locked()
        return len(doomed)

    def _absorb_locked(self) -> int:
        """Fold shards written outside the put routes into the table.

        ``/sweep`` pricing flushes the plan cache straight to the
        backing directory, and a co-hosted worker may flush there too;
        those shards never pass through :meth:`_accept`.  Reading them
        into the table (at the current generation) lets the get routes
        serve their keys and keeps compaction from discarding them.
        Corrupt/foreign files get the load's tolerance — skipped into
        the ``/stats`` manifest, never an error — and are thereafter
        protected from compaction's unlink pass.  Caller holds the
        lock; returns the number of records absorbed.
        """
        absorbed = 0
        for shard in self.store.shard_files():
            if shard.name in self._absorbed:
                continue
            self._absorbed.add(shard.name)
            try:
                payload = json.loads(shard.read_text())
            except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                self._skipped[shard.name] = "corrupt"
                continue
            if (not isinstance(payload, dict)
                    or payload.get("schema") != self.store.schema_version
                    or not isinstance(payload.get("entries"), dict)):
                self._skipped[shard.name] = "schema"
                continue
            for key, record in payload["entries"].items():
                if key not in self.records:
                    self.records[key] = record
                    self.generations[key] = self.generation
                    absorbed += 1
        return absorbed

    def _compact_locked(self) -> None:
        """Rewrite the store directory to exactly the live table.

        The merged shard lands atomically before the sources are
        removed; files skipped as corrupt/stale (at startup or during
        absorption) are left in place for inspection — the
        ``PlanStore.compact`` convention — so the ``/stats`` manifest
        keeps naming files that actually exist.
        """
        sources = self.store.shard_files()
        merged = self.store.flush_records(self.records)
        for shard in sources:
            if shard != merged and shard.name not in self._skipped:
                try:
                    shard.unlink()
                except OSError:  # pragma: no cover - concurrent unlink
                    pass
        # Only the merged shard and the skipped files are known to
        # remain; anything landing concurrently must stay unabsorbed so
        # the next collection folds it in.
        self._absorbed = set(self._skipped)
        if merged is not None:
            self._absorbed.add(merged.name)
        self.compactions += 1

    # -- distributed dispatch ------------------------------------------

    def _handle_sweep(self, payload: dict) -> dict:
        """Price a shard of scenarios for a dispatch client.

        Rebuilds each scenario from its ``to_dict`` payload and prices
        it with this process's plan cache (schedulers are pure, so the
        rows are byte-identical to any other worker's).  Failures are
        shipped back as data, one record per scenario — the dispatch
        layer decides retry vs quarantine, mirroring the in-process
        runner's chunk protocol.
        """
        from ..sweep.resilience import error_class
        from ..sweep.runner import layer_cost_cache_stats, run_scenario
        from ..sweep.scenario import Scenario
        raw = payload.get("scenarios")
        if not isinstance(raw, list):
            raise _BadRequest("'scenarios' must be a list of objects")
        outcomes: list[dict] = []
        failures: list[dict] = []
        for spec in raw:
            try:
                scenario = Scenario.from_dict(spec)
            except (TypeError, ValueError, KeyError) as exc:
                failures.append({"key": str(spec), "error":
                                 error_class(exc), "attempts": 1,
                                 "detail": str(exc)})
                continue
            plan_before = plan_cache_stats()
            layer_before = layer_cost_cache_stats()
            try:
                row = run_scenario(scenario)
            except Exception as exc:
                failures.append({"key": scenario.key,
                                 "error": error_class(exc),
                                 "attempts": 1, "detail": str(exc)})
                continue
            outcomes.append({
                "key": scenario.key,
                "row": row,
                "plan_cache":
                    _stats_dict(plan_cache_stats() - plan_before),
                "layer_cache":
                    _stats_dict(layer_cost_cache_stats() - layer_before),
            })
        get_plan_cache().flush_to_store()
        # The flush above writes shards to the backing directory without
        # passing through a put route; fold them into the live table so
        # get/batch_get serve them and compaction keeps them (GC policy
        # still applies, same as any put).
        with self._lock:
            self._collect_locked()
        return {"outcomes": outcomes, "failures": failures}

    # -- timing --------------------------------------------------------

    def observe(self, route: str, duration_ms: float) -> None:
        """Record one request's server-side latency sample."""
        request_class = route.lstrip("/") or "root"
        self.latency.record(request_class, duration_ms)
        if self._latency_log is not None:
            line = self.latency.log_line(request_class, duration_ms)
            with self._lock:
                with self._latency_log.open("a") as handle:
                    handle.write(line + "\n")


class _BadRequest(ValueError):
    """Raised by route handlers on malformed payloads (HTTP 400)."""


def _stats_dict(stats) -> dict:
    """Explicit CacheStats wire form (no gating — this is not a row)."""
    return {"hits": stats.hits, "misses": stats.misses,
            "entries": stats.entries, "store_hits": stats.store_hits,
            "seeded": stats.seeded}


def _make_handler(server: MemoServer):
    """The request-handler class bound to one :class:`MemoServer`."""

    class Handler(BaseHTTPRequestHandler):
        #: keep CI logs quiet; latency goes to the recorder instead.
        def log_message(self, *args) -> None:  # pragma: no cover
            pass

        def do_POST(self) -> None:
            started = time.perf_counter()
            try:
                length = int(self.headers.get("Content-Length") or 0)
            except ValueError:
                self._reply(400, error_body(
                    "bad_request", "malformed Content-Length header"))
                return
            raw = self.rfile.read(length) if length > 0 else b"{}"
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                self._reply(400, error_body("bad_request",
                                            "body is not valid JSON"))
                return
            try:
                status, body = server.handle(self.path, payload)
            except Exception:  # pragma: no cover - handler bug guard
                status, body = 500, error_body("internal")
            # Observe before replying: once a client has read its
            # response, the sample is guaranteed visible to any stats
            # request it makes next (no read-your-own-request race).
            server.observe(self.path,
                           (time.perf_counter() - started) * 1e3)
            self._reply(status, body)

        def do_GET(self) -> None:
            # Convenience read-only aliases (curl-ability): /stats and
            # /healthz answer GETs; everything else is POST-only.
            if self.path == "/healthz":
                self._reply(200, {"ok": True,
                                  "protocol": PROTOCOL_VERSION,
                                  "schema": server.store.schema_version})
                return
            if self.path == "/stats":
                status, body = server.handle("/stats", {})
                self._reply(status, body)
                return
            self._reply(404, error_body("unknown_route", self.path))

        def _reply(self, status: int, body: dict) -> None:
            data = json.dumps(body, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)

    return Handler
