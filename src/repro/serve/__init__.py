"""Sweep-as-a-service: the networked plan-memo server and its clients.

The serving layer promotes the PR 2 directory-shared
:class:`~repro.core.planstore.PlanStore` into an always-warm service
(see ``docs/SERVING.md`` and ``docs/ARCHITECTURE.md``):

* :mod:`repro.serve.protocol` — the POST-JSON wire contract (schema
  skew and corrupt shards are misses, never errors), the deterministic
  error taxonomy, and nearest-rank p50/p99 latency accounting;
* :mod:`repro.serve.server` — :class:`MemoServer`
  (``chiplet-npu serve``): a threaded HTTP front end over a plan-store
  directory with a deterministic size/age-bounded :class:`GCPolicy`;
* :mod:`repro.serve.client` — :class:`RemoteStoreClient`, attachable to
  :class:`~repro.core.plancache.PlanCache` interchangeably with the
  disk store (``chiplet-npu sweep --store-url``);
* :mod:`repro.serve.dispatch` — distributed grid execution across
  remote ``/sweep`` workers, merged through the sweep engine's
  order-independent merge (``chiplet-npu sweep --dispatch``).
"""

from .client import RemoteStoreClient, is_store_url
from .dispatch import dispatch_sweep, shard_round_robin
from .protocol import (
    PROTOCOL_VERSION,
    REQUEST_CLASSES,
    LatencyRecorder,
    LatencySummary,
    ServeProtocolError,
    percentile,
    render_latency_report,
)
from .server import GCPolicy, MemoServer

__all__ = [
    "PROTOCOL_VERSION",
    "REQUEST_CLASSES",
    "GCPolicy",
    "LatencyRecorder",
    "LatencySummary",
    "MemoServer",
    "RemoteStoreClient",
    "ServeProtocolError",
    "dispatch_sweep",
    "is_store_url",
    "percentile",
    "render_latency_report",
    "shard_round_robin",
]
