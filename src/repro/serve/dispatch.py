"""Distributed grid execution: shard a sweep across remote workers.

``dispatch_sweep`` splits a scenario grid round-robin across a set of
memo-server workers (each exposing the ``/sweep`` route), posts every
shard concurrently, and merges the returned rows through the existing
order-independent :meth:`~repro.sweep.runner.ScenarioSweep.merge` — the
same merge that already proves serial, parallel, streaming, and resumed
rows byte-identical, so a two-worker distributed run collapses to the
exact bytes of a serial one.

Design points:

* **Sharding is deterministic.**  Worker ``i`` of ``n`` gets
  ``scenarios[i::n]`` — a pure function of the grid order and the
  worker list, so a re-dispatch lands identical shards.
* **Workers return data, not exceptions.**  The ``/sweep`` route ships
  per-scenario failures back as records (the in-process chunk
  protocol's wire twin); the dispatch layer converts them to
  :class:`~repro.sweep.resilience.SweepFailure` and lets ``merge``
  decide strict-raise vs partial result.
* **Transport faults retry deterministically.**  Each shard post rides
  the client's :class:`~repro.sweep.resilience.RetryPolicy`; a worker
  that stays unreachable after its retries quarantines *its shard's*
  scenarios (``WorkerCrashError``'s wire analogue), never the grid.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Sequence

from ..core.plancache import CacheStats
from ..sweep.resilience import (
    Clock,
    RetryPolicy,
    SweepFailure,
    SweepQuarantineError,
    error_class,
)
from ..sweep.runner import ScenarioSweep, SweepItem, SweepOutcome, SweepResult
from ..sweep.scenario import Scenario
from .client import RemoteStoreClient


def shard_round_robin(scenarios: Sequence[Scenario],
                      shards: int) -> list[list[Scenario]]:
    """Deterministic round-robin split; empty shards are dropped."""
    if shards < 1:
        raise ValueError("shards must be >= 1")
    return [list(scenarios[i::shards]) for i in range(shards)
            if scenarios[i::shards]]


def _wire_stats(payload: dict) -> CacheStats:
    """A worker's CacheStats wire dict back into counters."""
    return CacheStats(hits=int(payload.get("hits", 0)),
                      misses=int(payload.get("misses", 0)),
                      entries=int(payload.get("entries", 0)),
                      store_hits=int(payload.get("store_hits", 0)),
                      seeded=int(payload.get("seeded", 0)))


def _post_shard(url: str, shard: list[Scenario],
                retry: RetryPolicy | None, clock: Clock | None,
                timeout_s: float) -> list[SweepItem]:
    """Price one shard on one worker; failures come back as items."""
    client = RemoteStoreClient(url, retry=retry, clock=clock,
                               timeout_s=timeout_s)
    try:
        response = client.sweep([s.to_dict() for s in shard])
    except Exception as error:
        # The worker stayed unreachable (or spoke garbage) through the
        # whole retry schedule: quarantine its shard, not the grid.
        attempts = retry.max_attempts if retry is not None \
            else RetryPolicy().max_attempts
        return [SweepFailure(key=scenario.key, error=error_class(error),
                             attempts=attempts, detail=str(error))
                for scenario in shard]
    items: list[SweepItem] = []
    for outcome in response.get("outcomes", []):
        items.append(SweepOutcome(
            key=outcome["key"],
            row=outcome["row"],
            plan_cache=_wire_stats(outcome.get("plan_cache", {})),
            layer_cache=_wire_stats(outcome.get("layer_cache", {}))))
    for failure in response.get("failures", []):
        items.append(SweepFailure(
            key=str(failure.get("key", "")),
            error=str(failure.get("error", "RuntimeError")),
            attempts=int(failure.get("attempts", 1)),
            detail=str(failure.get("detail", ""))))
    return items


def dispatch_sweep(scenarios: Sequence[Scenario],
                   worker_urls: Sequence[str],
                   strict: bool = True,
                   retry: RetryPolicy | None = None,
                   clock: Clock | None = None,
                   timeout_s: float = 600.0) -> SweepResult:
    """Run a grid across remote ``/sweep`` workers and merge the rows.

    Returns the same :class:`~repro.sweep.runner.SweepResult` a local
    run produces, with ``rows_json()`` byte-identical to serial
    execution of the same grid (``run_scenario`` is pure; the merge is
    order-independent).  ``workers`` in the result reports the number of
    shards actually dispatched — a grid smaller than the worker list
    contacts only the first ``len(grid)`` workers.

    In strict mode the first shard that comes back with failures decides
    the run: outstanding shard futures are cancelled and the quarantine
    raises immediately, so one dead worker never holds the call for the
    full ``timeout_s`` of every other shard.  (Shards already in flight
    finish in the background; their results are discarded.)
    """
    if not worker_urls:
        raise ValueError("dispatch needs at least one worker URL")
    urls = list(worker_urls)
    sweep = ScenarioSweep(list(scenarios), strict=strict, retry=retry,
                          clock=clock)
    shards = shard_round_robin(list(scenarios), len(urls))
    items: list[SweepItem] = []
    pool = ThreadPoolExecutor(max_workers=len(shards))
    try:
        futures = [pool.submit(_post_shard, urls[i], shard, retry, clock,
                               timeout_s)
                   for i, shard in enumerate(shards)]
        for future in as_completed(futures):
            shard_items = future.result()
            if strict:
                failures = [item for item in shard_items
                            if isinstance(item, SweepFailure)]
                if failures:
                    # merge() would insist on full grid coverage before
                    # raising, so the early exit raises the quarantine
                    # itself — same exception, without waiting on the
                    # shards we are abandoning.
                    raise SweepQuarantineError(failures)
            items.extend(shard_items)
    finally:
        # Never wait on abandoned shards: a worker blocked until
        # timeout_s keeps its thread, not this call.
        pool.shutdown(wait=False, cancel_futures=True)
    result = sweep.merge(items)
    result.workers = len(shards)
    result.parallel = len(shards) > 1
    return result
