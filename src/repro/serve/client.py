"""HTTP client for the memo server, attachable as a plan store.

:class:`RemoteStoreClient` satisfies the
:class:`~repro.core.plancache.PlanStoreLike` protocol, so
``PlanCache.attach_store`` (and therefore the whole sweep engine via
``--store-url``) accepts it interchangeably with the disk-backed
:class:`~repro.core.planstore.PlanStore`:

* ``load()`` is one batched round-trip (``batch_get`` with
  ``all=true``) deserialized through the same ``plan_from_record`` path
  disk shards use — a warm server start is byte-identical to a warm
  disk start, and reports ``misses: 0`` exactly the same way.
* ``flush(entries)`` is one batched ``batch_put`` of
  ``plan_to_record`` dumps — the records the server persists are the
  records a disk flush would have written.
* ``key_hash`` is inherited from
  :class:`~repro.core.planstore.PlanKeyMemo`, so the client mints
  content hashes with the *identical* canonicalization the disk store
  uses (hashing stays confined to ``core/planstore.py`` per repro-lint
  R2) and the two store kinds can never disagree about a key.

Transient transport failures (connection refused, resets, timeouts,
HTTP 5xx) retry on the PR 7 deterministic
:class:`~repro.sweep.resilience.RetryPolicy` schedule through an
injectable :class:`~repro.sweep.resilience.Clock`; deterministic
protocol violations (HTTP 4xx, protocol-version skew) raise
:class:`~repro.serve.protocol.ServeProtocolError` immediately —
re-sending a malformed exchange cannot change the answer.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import TYPE_CHECKING, Optional

from ..core.planstore import SCHEMA_VERSION, PlanKeyMemo
from ..sweep.resilience import Clock, RealClock, RetryPolicy
from .protocol import PROTOCOL_VERSION, ServeProtocolError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.sharding import GroupPlan


def is_store_url(store_path) -> bool:
    """Whether a ``store_path``-style value names a memo server URL."""
    return isinstance(store_path, str) \
        and store_path.startswith(("http://", "https://"))


class RemoteStoreClient(PlanKeyMemo):
    """A memo-server connection with the disk store's attach surface."""

    def __init__(self, url: str,
                 retry: RetryPolicy | None = None,
                 clock: Clock | None = None,
                 timeout_s: float = 30.0,
                 schema_version: int = SCHEMA_VERSION) -> None:
        super().__init__()
        if not is_store_url(url):
            raise ValueError(
                f"store URL must start with http:// or https://; "
                f"got {url!r}")
        #: normalized server URL; doubles as the attach identity the
        #: runner compares, mirroring ``PlanStore.path``.
        self.path = url.rstrip("/")
        self.retry = retry if retry is not None else RetryPolicy()
        self.clock = clock if clock is not None else RealClock()
        self.timeout_s = timeout_s
        self.schema_version = schema_version

    @property
    def url(self) -> str:
        return self.path

    def __repr__(self) -> str:
        return f"RemoteStoreClient({self.path!r})"

    # -- transport -----------------------------------------------------

    def post(self, route: str, payload: dict | None = None) -> dict:
        """One protocol exchange with deterministic retries.

        The backoff schedule is keyed by the route (stable across runs);
        HTTP 5xx counts as transient, HTTP 4xx and protocol-version
        skew raise :class:`ServeProtocolError` without retrying.
        """
        body = dict(payload or {})
        body.setdefault("schema", self.schema_version)
        data = json.dumps(body, sort_keys=True).encode("utf-8")
        attempt = 1
        while True:
            if attempt > 1:
                self.clock.sleep(
                    self.retry.backoff_s(f"serve:{route}", attempt))
            try:
                return self._post_once(route, data)
            except ServeProtocolError:
                raise
            except (urllib.error.URLError, ConnectionError,
                    TimeoutError, OSError) as error:
                if self.retry.is_retryable(error) \
                        and attempt < self.retry.max_attempts:
                    attempt += 1
                    continue
                raise

    def _post_once(self, route: str, data: bytes) -> dict:
        request = urllib.request.Request(
            self.path + route, data=data,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout_s) as response:
                raw = response.read()
        except urllib.error.HTTPError as error:
            if error.code >= 500:
                raise  # transient server side; the retry loop decides
            raise ServeProtocolError(
                f"{route} rejected with HTTP {error.code}") from error
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServeProtocolError(
                f"{route} returned a non-JSON body") from error
        protocol = body.get("protocol")
        if protocol is not None and protocol != PROTOCOL_VERSION:
            raise ServeProtocolError(
                f"{route} speaks protocol {protocol}, "
                f"client speaks {PROTOCOL_VERSION}")
        return body

    # -- PlanStoreLike surface -----------------------------------------

    def load(self) -> dict[str, Optional["GroupPlan"]]:
        """Every served entry, deserialized like a disk-shard load.

        A schema-skewed server answers with an empty table — the remote
        analogue of a stale store degrading to a cold start.
        """
        from ..io.serialize import plan_from_record
        records = self.post("/batch_get", {"all": True}) \
            .get("records", {})
        return {key: None if record is None
                else plan_from_record(record)
                for key, record in records.items()}

    def flush(self, entries: dict[str, Optional["GroupPlan"]]) -> int:
        """Batch-put newly computed entries; returns the stored count."""
        from ..io.serialize import plan_to_record
        if not entries:
            return 0
        records = {key: None if plan is None else plan_to_record(plan)
                   for key, plan in entries.items()}
        return int(self.post("/batch_put",
                             {"records": records}).get("stored", 0))

    # ``key_hash`` is PlanKeyMemo's — the exact disk-store hashing.

    # -- raw-record and operator surface -------------------------------

    def get_record(self, key: str) -> tuple[bool, Optional[dict]]:
        """One raw record: ``(found, record)``; a miss is ``(False, None)``."""
        body = self.post("/get", {"key": key})
        return bool(body.get("found")), body.get("record")

    def put_record(self, key: str, record: Optional[dict]) -> int:
        """Store one raw record; returns the server's stored count."""
        return int(self.post("/put", {"key": key,
                                      "record": record}).get("stored", 0))

    def batch_get(self, keys: list[str]) -> dict[str, Optional[dict]]:
        """Raw records for ``keys`` (absent keys simply missing)."""
        return self.post("/batch_get", {"keys": list(keys)}) \
            .get("records", {})

    def batch_put(self, records: dict[str, Optional[dict]]) -> int:
        """Store raw records; returns the server's stored count."""
        return int(self.post("/batch_put",
                             {"records": dict(records)}).get("stored", 0))

    def stats(self) -> dict:
        """The server's ``/stats`` document (entries, latency, GC)."""
        return self.post("/stats")

    def compact(self) -> dict:
        """Force server-side GC + compaction; returns its report."""
        return self.post("/compact")

    def skipped_manifest(self) -> list[dict]:
        """Corrupt/stale shard manifest of the server's backing store.

        The remote analogue of ``PlanStore.skipped_manifest`` — how
        ``SweepResult.store_skipped`` reports shard loss for URL stores.
        """
        return list(self.stats().get("store_skipped", []))

    def sweep(self, scenario_payloads: list[dict]) -> dict:
        """Price a scenario shard on the server (dispatch transport)."""
        return self.post("/sweep", {"scenarios": list(scenario_payloads)})
