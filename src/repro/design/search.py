"""Rank-cheap / materialize-frontier package-design search.

The search never runs the scheduler on a non-frontier candidate.  Every
candidate package is priced through **one** batch
:class:`~repro.cost.PricingRequest` (the whole space's distinct
``(layer, accel)`` pairs, deduplicated), each candidate is scored with a
closed-form per-stage roofline proxy over that matrix, target-violating
candidates are pruned, and only the proxy-Pareto frontier is
materialized into full sweep rows by the existing
:class:`~repro.sweep.runner.ScenarioSweep` engine (plan-store warm
starts included).  This is :func:`repro.core.dse.best_ranked`'s
rank-then-materialize idiom lifted from trunk mappings to whole
packages.

Determinism: the proxy is a pure function of the batch matrix (whose
numpy and scalar engines are exactly equal by contract), pruning and
dominance are pure arithmetic, and materialized rows come from the
sweep engine's pure ``run_scenario`` — so the frontier, and its report,
are byte-identical across serial/parallel runs and across cold/warm
plan stores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from ..core.dse import best_ranked
from ..core.placement import default_stage_quadrants
from ..cost import builds_request, price_batch
from ..sweep.runner import ScenarioSweep, SweepResult
from ..sweep.scenario import Scenario, ScenarioBuild
from .pareto import pareto_indices
from .space import DesignSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cost.batch import Pair
    from ..cost.model import LayerCost


@dataclass(frozen=True)
class DesignTargets:
    """Feasibility targets a candidate's proxy must meet to survive.

    ``None`` disables a target.  The proxy is an optimistic bound (see
    :func:`proxy_objectives`), so pruning on it never discards a design
    whose *materialized* metrics would have met the target.
    """

    pipe_ms: float | None = None
    energy_j: float | None = None

    def __post_init__(self) -> None:
        if self.pipe_ms is not None and self.pipe_ms <= 0:
            raise ValueError("target pipe_ms must be positive")
        if self.energy_j is not None and self.energy_j <= 0:
            raise ValueError("target energy_j must be positive")

    def admits(self, pipe_ms: float, energy_j: float) -> bool:
        """Whether a candidate's proxy objectives meet every target."""
        if self.pipe_ms is not None and pipe_ms > self.pipe_ms:
            return False
        if self.energy_j is not None and energy_j > self.energy_j:
            return False
        return True


@dataclass(frozen=True)
class DesignCandidate:
    """One enumerated design with its proxy score and search verdict."""

    #: position in the space's canonical enumeration (stable identity).
    index: int
    scenario: Scenario
    #: per-stage roofline bound on the steady-state pipe latency.
    proxy_pipe_ms: float
    #: per-frame energy bound (work spread evenly across stage cells).
    proxy_energy_j: float
    #: True when a :class:`DesignTargets` bound rejected the candidate.
    pruned: bool


def proxy_objectives(built: ScenarioBuild,
                     costs: Mapping["Pair", "LayerCost"],
                     ) -> tuple[float, float]:
    """Closed-form ``(pipe_ms, energy_j)`` bound for one candidate.

    Per stage (stages own their quadrants, Sec. IV): each chiplet of the
    stage's quadrants processes the stage's layer chains at its own
    batch-priced rate, combined harmonically — perfect work spreading,
    so homogeneous quadrants reduce to ``serial_latency / n_chiplets``.
    The pipe proxy is the slowest stage; the energy proxy charges each
    stage its cell-averaged chain energy.  NoP transfers, DRAM
    contention, and sharding overheads are deliberately absent: the
    proxy is an *optimistic* bound used only to rank and prune, never a
    reported metric — frontier candidates get real rows from the sweep
    engine.
    """
    stage_quadrants = default_stage_quadrants(built.workload, built.package)
    pipe_s = 0.0
    energy_j = 0.0
    for stage in built.workload.stages:
        cells = [cell for q in stage_quadrants[stage.name]
                 for cell in built.package.quadrant(q)]
        latency_of: dict = {}
        energy_of: dict = {}
        for accel in dict.fromkeys(cell.accel for cell in cells):
            serial_s = 0.0
            serial_j = 0.0
            for group in stage.groups:
                chain_s = sum(costs[(layer, accel)].latency_s
                              for layer in group.layers)
                chain_j = sum(costs[(layer, accel)].energy_j
                              for layer in group.layers)
                serial_s += group.instances * chain_s
                serial_j += group.instances * chain_j
            latency_of[accel] = serial_s
            energy_of[accel] = serial_j
        rate = sum(1.0 / latency_of[cell.accel] for cell in cells)
        stage_s = 1.0 / rate
        stage_j = sum(energy_of[cell.accel] for cell in cells) / len(cells)
        if stage_s > pipe_s:
            pipe_s = stage_s
        energy_j += stage_j
    return pipe_s * 1e3, energy_j


@dataclass
class DesignSearchResult:
    """Everything one :meth:`DesignSearch.run` produced.

    ``candidates`` covers the whole space in enumeration order;
    ``frontier`` is its non-pruned, non-dominated subset (same order);
    ``rows`` are the frontier's materialized sweep rows, aligned with
    ``frontier``.  ``sweep`` carries the materialization's cache/store
    statistics — reported beside the frontier document, never inside it
    (stats are machine-dependent; the document is not).
    """

    space: DesignSpace
    targets: DesignTargets
    candidates: list[DesignCandidate]
    frontier: list[DesignCandidate]
    rows: list[dict]
    #: distinct (layer, accel) pairs the single batch request priced.
    priced_pairs: int
    #: materialization result (None when the frontier is empty).
    sweep: SweepResult | None

    @property
    def best(self) -> dict | None:
        """The frontier row with the lowest materialized EDP.

        Ranked with :func:`repro.core.dse.best_ranked` —
        ``(edp_j_ms, pipe_ms)`` with first-seen tie-break, the trunk
        DSE's feasible-candidate ordering — over *real* rows, not proxy
        scores.
        """
        _, row = best_ranked(
            ((row["edp_j_ms"], row["pipe_ms"]), row) for row in self.rows)
        return row

    def stats(self) -> dict:
        """Deterministic search accounting for the frontier report."""
        pruned = sum(c.pruned for c in self.candidates)
        dominated = len(self.candidates) - pruned - len(self.frontier)
        return {
            "candidates": len(self.candidates),
            "pruned": pruned,
            "dominated": dominated,
            "frontier": len(self.frontier),
            "materialized": len(self.rows),
            "priced_pairs": self.priced_pairs,
            "materialized_fraction": round(
                len(self.rows) / len(self.candidates), 6),
        }

    def report(self) -> dict:
        """The deterministic Pareto frontier document (see
        :func:`repro.analysis.design_frontier_report`)."""
        from ..analysis import design_frontier_report
        return design_frontier_report(self)


class DesignSearch:
    """Search a :class:`DesignSpace` for its latency/energy frontier."""

    def __init__(self,
                 space: DesignSpace,
                 targets: DesignTargets | None = None,
                 workers: int = 1,
                 store_path=None,
                 engine: str = "auto"):
        self.space = space
        self.targets = targets or DesignTargets()
        #: process count for the frontier materialization sweep (the
        #: proxy phase is one closed-form batch and never forks).
        self.workers = workers
        #: plan store (directory path or ``http(s)://`` memo-server URL)
        #: warm-starting the materialization, exactly as ``sweep`` mode.
        self.store_path = store_path
        self.engine = engine

    def run(self) -> DesignSearchResult:
        scenarios = self.space.candidates()
        builds = [scenario.build() for scenario in scenarios]
        request = builds_request(builds)
        costs = price_batch(request, engine=self.engine)
        candidates = []
        for index, built in enumerate(builds):
            pipe_ms, energy_j = proxy_objectives(built, costs)
            candidates.append(DesignCandidate(
                index=index,
                scenario=built.scenario,
                proxy_pipe_ms=pipe_ms,
                proxy_energy_j=energy_j,
                pruned=not self.targets.admits(pipe_ms, energy_j)))
        kept = [c for c in candidates if not c.pruned]
        frontier = [kept[i] for i in pareto_indices(
            [(c.proxy_pipe_ms, c.proxy_energy_j) for c in kept])]
        rows: list[dict] = []
        sweep_result: SweepResult | None = None
        if frontier:
            sweep = ScenarioSweep([c.scenario for c in frontier],
                                  workers=self.workers,
                                  store_path=self.store_path)
            sweep_result = sweep.run()
            by_key = {row["key"]: row for row in sweep_result.rows}
            rows = [by_key[c.scenario.key] for c in frontier]
        return DesignSearchResult(
            space=self.space,
            targets=self.targets,
            candidates=candidates,
            frontier=frontier,
            rows=rows,
            priced_pairs=len(request),
            sweep=sweep_result)
