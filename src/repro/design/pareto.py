"""Pareto dominance over lower-is-better objective vectors.

Plain O(n^2) set arithmetic — design spaces are hundreds of candidates,
not millions — with the determinism rules the frontier report relies
on: the frontier preserves input order (stable, first-seen), and a
candidate whose objectives *tie* another's is not dominated by it
(dominance needs a strict improvement somewhere), so exact duplicates
all survive to the frontier rather than racing on enumeration order.
"""

from __future__ import annotations

from typing import Sequence

Point = Sequence[float]


def dominates(a: Point, b: Point) -> bool:
    """Whether ``a`` Pareto-dominates ``b`` (every objective at least as
    good, at least one strictly better; all objectives lower-is-better).
    """
    if len(a) != len(b):
        raise ValueError(
            f"objective vectors differ in length: {len(a)} vs {len(b)}")
    return all(x <= y for x, y in zip(a, b)) and \
        any(x < y for x, y in zip(a, b))


def pareto_indices(points: Sequence[Point]) -> list[int]:
    """Indices of the non-dominated points, in input order."""
    return [i for i, p in enumerate(points)
            if not any(dominates(q, p)
                       for j, q in enumerate(points) if j != i)]


def dominated_indices(points: Sequence[Point]) -> list[int]:
    """Indices of the dominated points, in input order."""
    frontier = set(pareto_indices(points))
    return [i for i in range(len(points)) if i not in frontier]
