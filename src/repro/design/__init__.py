"""Joint package-design search: rank cheaply, materialize the frontier.

The sweep engine (:mod:`repro.sweep`) prices the designs a user spells
out; this package *searches* them.  A :class:`DesignSpace` declares a
joint (quadrant composition x NoP topology x frequency/tile/dataflow x
DRAM) space with the sweep's own axis grammar, and a
:class:`DesignSearch` ranks every candidate with one batch-priced
closed-form proxy, prunes against latency/energy targets, keeps the
Pareto frontier, and materializes *only* the frontier into full sweep
rows — PR 1's rank-then-materialize trunk-DSE idiom generalized from
one quadrant to whole packages.
"""

from .pareto import dominated_indices, dominates, pareto_indices
from .search import (
    DesignCandidate,
    DesignSearch,
    DesignSearchResult,
    DesignTargets,
    proxy_objectives,
)
from .space import DesignSpace, axis_token

__all__ = [
    "DesignCandidate",
    "DesignSearch",
    "DesignSearchResult",
    "DesignSpace",
    "DesignTargets",
    "axis_token",
    "dominated_indices",
    "dominates",
    "pareto_indices",
    "proxy_objectives",
]
