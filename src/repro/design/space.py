"""Declared joint design spaces over the sweep's scenario axes.

A :class:`DesignSpace` is the search-side twin of a sweep grid: the same
eleven axes, the same token grammar (including partial-quadrant Het(k)
tokens like ``trunk:ws#4`` on the ``hetero`` axis), parsed through the
same :data:`~repro.sweep.scenario.AXIS_SPECS` single source of truth —
but held as a *declaration* (axis name -> candidate values) rather than
an expanded grid, so the search can report the space it covered and
enumerate candidates deterministically on demand.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sweep.scenario import AXIS_SPECS, Scenario, parse_grid_axes, \
    scenario_grid


def axis_token(name: str, value) -> str:
    """The CLI-grammar token for one axis value (report labels)."""
    if value is None:
        return "none"
    if name == "native_tile":
        return f"{value[0]}x{value[1]}"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True)
class DesignSpace:
    """A declared candidate-value set per scenario axis.

    ``axes`` maps canonical axis names (see :data:`AXIS_SPECS`) to their
    candidate values, held in :data:`AXIS_SPECS` declaration order
    regardless of construction order — two declarations of the same
    space enumerate, and report, identically.  Axes left undeclared stay
    at :func:`~repro.sweep.scenario.scenario_grid`'s defaults.
    """

    axes: tuple[tuple[str, tuple], ...]

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("DesignSpace needs at least one axis")
        names = [name for name, _ in self.axes]
        for name in names:
            if name not in AXIS_SPECS:
                raise ValueError(
                    f"unknown design axis {name!r}; "
                    f"known: {', '.join(sorted(AXIS_SPECS))}")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate design axis in {names}")
        for name, values in self.axes:
            if not values:
                raise ValueError(f"design axis {name!r} has no values")
        order = list(AXIS_SPECS)
        ordered = tuple(sorted(((name, tuple(values))
                                for name, values in self.axes),
                               key=lambda kv: order.index(kv[0])))
        object.__setattr__(self, "axes", ordered)

    @classmethod
    def from_axis_texts(cls, axis_texts: dict[str, str]) -> "DesignSpace":
        """Parse CLI-style axis declarations (``{"tolerance": "1,1.05"}``).

        Tokens go through :func:`parse_grid_axes` — the sweep CLI's own
        parser — so every value grammar (``none`` sentinels, ``16x16``
        tiles, topology and hetero tokens) behaves identically in
        ``sweep`` and ``design`` mode.
        """
        kwargs = parse_grid_axes(dict(axis_texts))
        by_kwarg = {spec.grid_kwarg: name
                    for name, spec in AXIS_SPECS.items()}
        return cls(axes=tuple(
            (by_kwarg[kwarg], tuple(values))
            for kwarg, values in kwargs.items()))

    def grid_kwargs(self) -> dict:
        """The declaration as :func:`scenario_grid` keyword arguments."""
        return {AXIS_SPECS[name].grid_kwarg: list(values)
                for name, values in self.axes}

    @property
    def size(self) -> int:
        """Cross-product cardinality (before any search pruning)."""
        n = 1
        for _, values in self.axes:
            n *= len(values)
        return n

    def candidates(self) -> list[Scenario]:
        """The full cross-product, in canonical (row-major) order.

        Delegates to :func:`scenario_grid`, so the enumeration order —
        and the duplicate-candidate check — is exactly the sweep
        engine's, and a candidate's index is a stable identity within
        this space.
        """
        return scenario_grid(**self.grid_kwargs())

    def to_dict(self) -> dict:
        """JSON-safe declaration (axis name -> CLI value tokens)."""
        return {name: [axis_token(name, v) for v in values]
                for name, values in self.axes}
