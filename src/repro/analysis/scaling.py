"""Workload scaling studies (extensions beyond the paper's evaluation).

The paper fixes the workload at 8 cameras, 720p, and a 12-frame queue.
These sweeps vary each knob and re-run the full scheduler, showing how the
MCM mapping responds: where the FE-bound base latency moves, when the
fusion stages reclaim the bottleneck, and how chiplet demand shifts.
"""

from __future__ import annotations

from ..arch import simba_package
from ..core.throughput import match_throughput
from ..workloads.pipeline import PipelineConfig, build_perception_workload

RESOLUTIONS = ((360, 640), (540, 960), (720, 1280), (1080, 1920))
CAMERA_COUNTS = (4, 6, 8)
FRAME_QUEUES = (6, 12, 18, 24)


def _run(config: PipelineConfig, npus: int = 1) -> dict:
    schedule = match_throughput(build_perception_workload(config),
                                simba_package(npus=npus))
    summary = schedule.summary()
    return {
        "base_ms": round(schedule.base_latency_s * 1e3, 1),
        "pipe_ms": round(summary["pipe_ms"], 1),
        "e2e_ms": round(summary["e2e_ms"], 1),
        "energy_j": round(summary["energy_j"], 3),
        "utilization_pct": round(summary["utilization"] * 100, 1),
    }


def resolution_sweep(resolutions=RESOLUTIONS) -> list[dict]:
    """Camera resolution drives the FE stage and thus Lat_base."""
    rows = []
    for hw in resolutions:
        config = PipelineConfig(input_hw=hw)
        rows.append({"resolution": f"{hw[0]}x{hw[1]}",
                     **_run(config)})
    return rows


def camera_sweep(counts=CAMERA_COUNTS) -> list[dict]:
    """Camera count scales the concurrent FE models and the fusion K/V."""
    rows = []
    for cams in counts:
        config = PipelineConfig(cameras=cams)
        rows.append({"cameras": cams, **_run(config)})
    return rows


def frame_queue_sweep(queues=FRAME_QUEUES) -> list[dict]:
    """Temporal queue depth scales T_FUSE, the paper's dominant stage."""
    rows = []
    for frames in queues:
        config = PipelineConfig(t_frames=frames)
        rows.append({"t_frames": frames, **_run(config)})
    return rows
