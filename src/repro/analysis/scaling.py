"""Scaling studies: workload knobs and chiplet-count scaling reports.

The paper fixes the workload at 8 cameras, 720p, and a 12-frame queue.
The workload sweeps below vary each knob and re-run the full scheduler,
showing how the MCM mapping responds: where the FE-bound base latency
moves, when the fusion stages reclaim the bottleneck, and how chiplet
demand shifts.

:func:`chiplet_scaling_rows` / :func:`chiplet_scaling_report` turn sweep
rows over the ``npus x workload x dram_gbps`` axes into the first-class
chiplet-count scaling report ("Chiplets on Wheels"-style): per
(workload, DRAM budget) column, the speedup and scaling efficiency of
adding NPU modules — and where an undersized DRAM interface flattens the
curve, because past that point the package streams weights faster than
LPDDR can deliver them.
"""

from __future__ import annotations

from typing import Sequence

from ..arch import simba_package
from ..core.throughput import match_throughput
from ..workloads.pipeline import PipelineConfig, build_perception_workload

RESOLUTIONS = ((360, 640), (540, 960), (720, 1280), (1080, 1920))
CAMERA_COUNTS = (4, 6, 8)
FRAME_QUEUES = (6, 12, 18, 24)


def _dram_label(dram_gbps: float | None) -> str:
    """Column label for one DRAM budget (None = detached/compute-only)."""
    return "unbounded" if dram_gbps is None else f"{dram_gbps:g} GB/s"


def chiplet_scaling_rows(rows: list[dict]) -> list[dict]:
    """Chiplet-count scaling table from ``npus x workload x dram`` rows.

    Each input row is one sweep row (see
    :func:`repro.sweep.runner.run_scenario`).  Output rows are grouped
    into (workload, DRAM budget) columns; within a column, ``speedup``
    is relative to the column's smallest package and
    ``scaling_efficiency`` divides that by the added compute
    (``npus / min npus``).  The output is a pure, deterministic function
    of the input rows — safe to ship as an artifact.
    """
    columns: dict[tuple, list[dict]] = {}
    for row in rows:
        key = (row["workload"], row.get("dram_gbps"), row.get("topology"),
               row.get("hetero"))
        columns.setdefault(key, []).append(row)
    out: list[dict] = []
    for (workload, dram_gbps, topology, hetero), col in sorted(
            columns.items(),
            key=lambda kv: (kv[0][0],
                            kv[0][1] is not None, kv[0][1] or 0.0,
                            kv[0][2] or "", kv[0][3] or "")):
        col = sorted(col, key=lambda r: r["npus"])
        base = col[0]
        for row in col:
            compute_pipe_ms = row.get("compute_pipe_ms", row["pipe_ms"])
            speedup = base["pipe_ms"] / row["pipe_ms"]
            added = row["npus"] / base["npus"]
            entry = {
                "workload": workload,
                "dram": _dram_label(dram_gbps),
                "dram_gbps": dram_gbps,
                "npus": row["npus"],
                "chiplets": row["used_chiplets"],
                "pipe_ms": round(row["pipe_ms"], 2),
                "compute_pipe_ms": round(compute_pipe_ms, 2),
                "steady_fps": round(1e3 / row["pipe_ms"], 2),
                "compute_fps": round(1e3 / compute_pipe_ms, 2),
                "speedup": round(speedup, 3),
                "scaling_efficiency": round(speedup / added, 3),
                "energy_j": round(row["energy_j"], 3),
                "dram_throttled": bool(row.get("dram_throttled", False)),
            }
            # Topology/hetero columns appear only when the axis was set
            # on the input rows, so default-grid reports stay
            # byte-identical.
            if topology is not None:
                entry["topology"] = topology
                entry["nop_avg_hops"] = round(row["nop_avg_hops"], 3)
            if hetero is not None:
                entry["hetero"] = hetero
                entry["package_composition"] = row["package_composition"]
                entry["trunk_utilization"] = round(
                    row["stage_utilization"]["TRUNKS"], 4)
            out.append(entry)
    return out


def chiplet_scaling_report(rows: list[dict]) -> dict:
    """The full scaling-report document built from sweep rows.

    Deterministic by construction (cache statistics and other
    placement-dependent counters are deliberately excluded): running the
    same grid twice — serially, in parallel, or streamed — produces the
    same bytes once serialized with sorted keys.
    """
    table = chiplet_scaling_rows(rows)
    throttled = [r for r in table if r["dram_throttled"]]
    # ``table`` is already in canonical column order, so first-occurrence
    # insertion order keeps dram_wall consistent with rows (sorting the
    # label strings would misplace budgets >= 10 GB/s).
    walls: dict[tuple, int] = {}
    for r in throttled:
        col = (r["workload"], r["dram"], r.get("topology"),
               r.get("hetero"))
        if col not in walls:
            walls[col] = r["npus"]
    axes = {
        "npus": sorted({r["npus"] for r in rows}),
        "workloads": sorted({r["workload"] for r in rows}),
        "dram_gbps": sorted(
            {r.get("dram_gbps") for r in rows
             if r.get("dram_gbps") is not None}) + (
                 ["unbounded"] if any(
                     r.get("dram_gbps") is None for r in rows) else []),
    }
    # The topology/hetero axes (and per-wall labels) appear only when
    # the input rows carry one, keeping the default document byte-stable.
    topologies = sorted({r["topology"] for r in table if "topology" in r})
    if topologies:
        axes["topologies"] = topologies
    heteros = sorted({r["hetero"] for r in table if "hetero" in r})
    if heteros:
        axes["heteros"] = heteros

    def _wall(col: tuple, n: int) -> dict:
        wl, dram, topology, hetero = col
        entry = {"workload": wl, "dram": dram, "first_throttled_npus": n}
        if topology is not None:
            entry["topology"] = topology
        if hetero is not None:
            entry["hetero"] = hetero
        return entry

    return {
        "axes": axes,
        "rows": table,
        "throttled_points": [
            {"workload": r["workload"], "dram": r["dram"],
             "npus": r["npus"], "steady_fps": r["steady_fps"],
             "compute_fps": r["compute_fps"],
             **({"topology": r["topology"]} if "topology" in r else {}),
             **({"hetero": r["hetero"]} if "hetero" in r else {})}
            for r in throttled
        ],
        "dram_wall": [_wall(col, n) for col, n in walls.items()],
    }


def _run(config: PipelineConfig, npus: int = 1) -> dict:
    schedule = match_throughput(build_perception_workload(config),
                                simba_package(npus=npus))
    summary = schedule.summary()
    return {
        "base_ms": round(schedule.base_latency_s * 1e3, 1),
        "pipe_ms": round(summary["pipe_ms"], 1),
        "e2e_ms": round(summary["e2e_ms"], 1),
        "energy_j": round(summary["energy_j"], 3),
        "utilization_pct": round(summary["utilization"] * 100, 1),
    }


def resolution_sweep(resolutions: Sequence[tuple[int, int]]
                     = RESOLUTIONS) -> list[dict]:
    """Camera resolution drives the FE stage and thus Lat_base."""
    rows = []
    for hw in resolutions:
        config = PipelineConfig(input_hw=hw)
        rows.append({"resolution": f"{hw[0]}x{hw[1]}",
                     **_run(config)})
    return rows


def camera_sweep(counts: Sequence[int] = CAMERA_COUNTS) -> list[dict]:
    """Camera count scales the concurrent FE models and the fusion K/V."""
    rows = []
    for cams in counts:
        config = PipelineConfig(cameras=cams)
        rows.append({"cameras": cams, **_run(config)})
    return rows


def frame_queue_sweep(queues: Sequence[int]
                      = FRAME_QUEUES) -> list[dict]:
    """Temporal queue depth scales T_FUSE, the paper's dominant stage."""
    rows = []
    for frames in queues:
        config = PipelineConfig(t_frames=frames)
        rows.append({"t_frames": frames, **_run(config)})
    return rows
