"""Per-layer cost tables: the raw data behind every figure.

Researchers extending the study usually want the full layer-by-layer cost
dump rather than the aggregated views; this produces it for any
accelerator, as plain dictionaries (JSON/CSV-friendly).
"""

from __future__ import annotations

from ..cost import AcceleratorConfig, evaluate
from ..workloads.graph import PerceptionWorkload


def layer_cost_table(workload: PerceptionWorkload,
                     accel: AcceleratorConfig,
                     compute_only: bool = False) -> list[dict]:
    """One row per layer: dims, MACs, latency, energy, utilization."""
    rows: list[dict] = []
    for stage in workload.stages:
        for group in stage.groups:
            for layer in group.layers:
                if compute_only and not layer.kind.is_compute:
                    continue
                cost = evaluate(layer, accel)
                rows.append({
                    "stage": stage.name,
                    "group": group.name,
                    "layer": layer.name,
                    "kind": layer.kind.value,
                    "plane": f"{layer.out_h}x{layer.out_w}",
                    "k": layer.k,
                    "c": layer.c,
                    "instances": group.instances,
                    "macs": layer.macs,
                    "latency_ms": round(cost.latency_s * 1e3, 4),
                    "energy_mj": round(cost.energy_j * 1e3, 4),
                    "utilization": round(cost.utilization, 4),
                    "engagement": round(cost.engagement, 4),
                    "bound": cost.bound,
                })
    return rows


def to_csv(rows: list[dict]) -> str:
    """Render a layer cost table as CSV text."""
    if not rows:
        return ""
    headers = list(rows[0].keys())
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(str(row[h]) for h in headers))
    return "\n".join(lines)
