"""Deterministic Pareto frontier reports for the design search.

The design-search twin of :mod:`repro.analysis.scaling`'s report
machinery: a pure function from a finished
:class:`~repro.design.search.DesignSearchResult` to a JSON-safe
document.  Candidate ordering is the space's canonical enumeration
order, metrics are rounded once here (so serial/parallel and cold/warm
runs serialize byte-identically), and everything machine-dependent —
cache hit rates, wall clocks, worker counts — is excluded by
construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..design.search import DesignSearchResult


def design_frontier_rows(result: "DesignSearchResult") -> list[dict]:
    """Frontier entries (proxy score + materialized row), in the
    space's canonical candidate order."""
    out = []
    for candidate, row in zip(result.frontier, result.rows):
        entry = {
            "index": candidate.index,
            "key": row["key"],
            "scenario": candidate.scenario.to_dict(),
            "proxy_pipe_ms": round(candidate.proxy_pipe_ms, 3),
            "proxy_energy_j": round(candidate.proxy_energy_j, 4),
            "pipe_ms": round(row["pipe_ms"], 2),
            "e2e_ms": round(row["e2e_ms"], 2),
            "steady_fps": round(1e3 / row["pipe_ms"], 2),
            "energy_j": round(row["energy_j"], 3),
            "edp_j_ms": round(row["edp_j_ms"], 2),
            "utilization": round(row["utilization"], 4),
            "chiplets": row["used_chiplets"],
        }
        # Axis-gated columns mirror the sweep rows: present only when
        # the axis is set, so homogeneous spaces stay byte-stable.
        if "package_composition" in row:
            entry["package_composition"] = row["package_composition"]
        if "trunk_label" in row:
            entry["trunk_label"] = row["trunk_label"]
            entry["trunk_edp_j_ms"] = round(row["trunk_edp_j_ms"], 2)
        out.append(entry)
    return out


def design_frontier_report(result: "DesignSearchResult") -> dict:
    """The full frontier document built from one search result.

    Deterministic by construction: axes come from the declared space,
    frontier rows from pure sweep pricing, and the search stats count
    work (candidates, pruned, dominated, materialized, priced pairs) —
    never caches or clocks.  Serializing with sorted keys yields the
    same bytes for any execution mode of the same search.
    """
    rows = design_frontier_rows(result)
    best = result.best
    return {
        "axes": result.space.to_dict(),
        "targets": {
            "pipe_ms": result.targets.pipe_ms,
            "energy_j": result.targets.energy_j,
        },
        "frontier": rows,
        "best": None if best is None else best["key"],
        "search": result.stats(),
    }


def design_frontier_table(report: dict) -> list[str]:
    """Human-readable frontier lines for the CLI (one per candidate)."""
    lines = []
    header = (f"{'key':<44s} {'pipe_ms':>8s} {'fps':>7s} "
              f"{'energy_j':>9s} {'edp':>8s} {'chiplets':>8s}")
    lines.append(header)
    lines.append("-" * len(header))
    for entry in report["frontier"]:
        marker = "*" if entry["key"] == report["best"] else " "
        lines.append(
            f"{entry['key']:<44s} {entry['pipe_ms']:>8.2f} "
            f"{entry['steady_fps']:>7.2f} {entry['energy_j']:>9.3f} "
            f"{entry['edp_j_ms']:>8.2f} {entry['chiplets']:>8d}{marker}")
    search = report["search"]
    lines.append(
        f"searched {search['candidates']} candidate(s): "
        f"{search['pruned']} pruned by targets, "
        f"{search['dominated']} dominated, "
        f"{search['materialized']} materialized "
        f"({search['priced_pairs']} pairs batch-priced)")
    return lines
