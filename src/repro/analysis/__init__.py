"""Workload/dataflow analyses backing the paper's Sec. III figures."""

from .affinity import FIG4_BLOCKS, LayerAffinity, affinity_blocks, \
    layer_affinity
from .breakdown import ComponentCost, component_breakdown, \
    fusion_latency_share
from .frontier import design_frontier_report, design_frontier_rows, \
    design_frontier_table
from .layer_table import layer_cost_table, to_csv
from .scaling import camera_sweep, chiplet_scaling_report, \
    chiplet_scaling_rows, frame_queue_sweep, resolution_sweep

__all__ = [
    "layer_cost_table",
    "to_csv",
    "chiplet_scaling_report",
    "chiplet_scaling_rows",
    "camera_sweep",
    "frame_queue_sweep",
    "resolution_sweep",
    "design_frontier_report",
    "design_frontier_rows",
    "design_frontier_table",
    "FIG4_BLOCKS",
    "LayerAffinity",
    "affinity_blocks",
    "layer_affinity",
    "ComponentCost",
    "component_breakdown",
    "fusion_latency_share",
]
