"""Fine-grained per-layer dataflow affinity analysis (paper Fig. 4).

For every layer we compute ``delta = value_OS - value_WS`` for latency and
energy; negative deltas mean ShiDianNao-like (output-stationary) affinity,
positive deltas NVDLA-like (weight-stationary) affinity — the paper's sign
convention.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cost import AcceleratorConfig, evaluate, nvdla_chiplet, \
    shidiannao_chiplet
from ..workloads.graph import PerceptionWorkload
from ..workloads.layers import Layer

#: Fig. 4 panels: (panel label, stage names included)
FIG4_BLOCKS = (
    ("FE+BFPN", ("FE_BFPN",)),
    ("S+T Attn Fusion", ("S_FUSE", "T_FUSE")),
    ("Trunks", ("TRUNKS",)),
)


@dataclass(frozen=True)
class LayerAffinity:
    """OS-vs-WS deltas for one layer."""

    layer: str
    group: str
    lat_os_ms: float
    lat_ws_ms: float
    energy_os_mj: float
    energy_ws_mj: float

    @property
    def delta_latency_ms(self) -> float:
        """Negative: OS-affine; positive: WS-affine (paper convention)."""
        return self.lat_os_ms - self.lat_ws_ms

    @property
    def delta_energy_mj(self) -> float:
        return self.energy_os_mj - self.energy_ws_mj


def layer_affinity(layer: Layer, group: str,
                   os_accel: AcceleratorConfig,
                   ws_accel: AcceleratorConfig) -> LayerAffinity:
    cost_os = evaluate(layer, os_accel)
    cost_ws = evaluate(layer, ws_accel)
    return LayerAffinity(
        layer=layer.name,
        group=group,
        lat_os_ms=cost_os.latency_s * 1e3,
        lat_ws_ms=cost_ws.latency_s * 1e3,
        energy_os_mj=cost_os.energy_j * 1e3,
        energy_ws_mj=cost_ws.energy_j * 1e3,
    )


def affinity_blocks(workload: PerceptionWorkload,
                    os_accel: AcceleratorConfig | None = None,
                    ws_accel: AcceleratorConfig | None = None,
                    compute_only: bool = True
                    ) -> dict[str, list[LayerAffinity]]:
    """Per-layer affinities grouped into the paper's three Fig. 4 panels."""
    os_accel = os_accel or shidiannao_chiplet()
    ws_accel = ws_accel or nvdla_chiplet()
    panels: dict[str, list[LayerAffinity]] = {}
    for label, stage_names in FIG4_BLOCKS:
        rows: list[LayerAffinity] = []
        for stage_name in stage_names:
            stage = workload.stage(stage_name)
            for group in stage.groups:
                for layer in group.layers:
                    if compute_only and not layer.kind.is_compute:
                        continue
                    rows.append(layer_affinity(layer, group.name,
                                               os_accel, ws_accel))
        panels[label] = rows
    return panels
