"""Coarse-grained component breakdown (paper Fig. 3, Sec. III-A).

Prices every perception component on a single 256-PE chiplet per dataflow,
mirroring the paper's latency/energy breakdown bars.  FE+BFPN is reported
per camera (the paper's Fig. 3 note: "evaluations for the FE+BFPN ... are
for a single camera and to be multiplied by the 8 cameras").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cost import AcceleratorConfig, chain_energy_j, chain_latency_s
from ..workloads.graph import PerceptionWorkload

#: component label -> (group names, count instances?)
_COMPONENTS = (
    ("FE+BFPN", ("FE_BFPN",), False),
    ("S_QKV", ("S_Q_PROJ", "S_KV_PROJ"), True),
    ("S_ATTN", ("S_ATTN",), True),
    ("S_FFN", ("S_FFN",), True),
    ("T_QKV", ("T_Q_PROJ", "T_KV_PROJ"), True),
    ("T_ATTN", ("T_ATTN",), True),
    ("T_FFN", ("T_FFN",), True),
    ("OCC_TR", ("OCC_TR",), True),
    ("LANE_TR", ("LANE_TR",), True),
    ("DET_TR", ("DET_TR",), True),
)


@dataclass(frozen=True)
class ComponentCost:
    """Latency/energy of one perception component on one chiplet."""

    component: str
    latency_ms: float
    energy_mj: float
    latency_share: float
    energy_share: float


def component_breakdown(workload: PerceptionWorkload,
                        accel: AcceleratorConfig) -> list[ComponentCost]:
    """Per-component single-chiplet costs for one dataflow."""
    raw = []
    for label, names, with_instances in _COMPONENTS:
        lat = 0.0
        energy = 0.0
        for name in names:
            group = workload.find_group(name)
            mult = group.instances if with_instances else 1
            lat += chain_latency_s(group.layers, accel) * mult
            energy += chain_energy_j(group.layers, accel) * mult
        raw.append((label, lat, energy))
    total_lat = sum(lat for _, lat, _ in raw)
    total_energy = sum(e for _, _, e in raw)
    return [
        ComponentCost(label, lat * 1e3, energy * 1e3,
                      lat / total_lat, energy / total_energy)
        for label, lat, energy in raw
    ]


def fusion_latency_share(breakdown: list[ComponentCost]) -> dict[str, float]:
    """S_FUSE and T_FUSE latency shares (paper: 25-28% and 52-54%)."""
    share = {"S_FUSE": 0.0, "T_FUSE": 0.0}
    for row in breakdown:
        if row.component.startswith("S_"):
            share["S_FUSE"] += row.latency_share
        elif row.component.startswith("T_"):
            share["T_FUSE"] += row.latency_share
    return share
