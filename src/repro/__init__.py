"""Reproduction of "Performance Implications of Multi-Chiplet Neural
Processing Units on Autonomous Driving Perception" (DATE 2025).

Public API tour:

* :mod:`repro.workloads` — layer IR and the Tesla-Autopilot-style
  perception pipeline builders (:func:`build_perception_workload`).
* :mod:`repro.cost` — the MAESTRO-like analytical cost model
  (:func:`evaluate`, accelerator presets).
* :mod:`repro.arch` — Simba-like MCM package and NoP cost model
  (:func:`simba_package`).
* :mod:`repro.core` — the paper's contribution: throughput-matching
  scheduler (:func:`match_throughput`), trunk DSE (:class:`TrunkDSE`),
  context-aware lane analysis.
* :mod:`repro.sim` — baseline engine simulation for Table II.
* :mod:`repro.experiments` — one driver per paper table/figure.
"""

from .arch import MCMPackage, NoPConfig, simba_package, transfer_cost
from .core import (
    Schedule,
    ThroughputMatcher,
    TrunkDSE,
    lane_context_sweep,
    match_throughput,
)
from .cost import (
    AcceleratorConfig,
    EnergyTable,
    evaluate,
    monolithic,
    nvdla_chiplet,
    shidiannao_chiplet,
    simba_chiplet,
)
from .sim import PerfReport, run_baselines, simulate_engines
from .workloads import (
    Layer,
    LayerGroup,
    PerceptionWorkload,
    PipelineConfig,
    build_perception_workload,
)

__version__ = "1.0.0"

__all__ = [
    "MCMPackage",
    "NoPConfig",
    "simba_package",
    "transfer_cost",
    "Schedule",
    "ThroughputMatcher",
    "TrunkDSE",
    "lane_context_sweep",
    "match_throughput",
    "AcceleratorConfig",
    "EnergyTable",
    "evaluate",
    "monolithic",
    "nvdla_chiplet",
    "shidiannao_chiplet",
    "simba_chiplet",
    "PerfReport",
    "run_baselines",
    "simulate_engines",
    "Layer",
    "LayerGroup",
    "PerceptionWorkload",
    "PipelineConfig",
    "build_perception_workload",
    "__version__",
]
