"""Performance report records and table rendering helpers."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PerfReport:
    """Headline metrics for one pipeline execution configuration."""

    label: str
    e2e_s: float
    pipe_s: float
    energy_j: float
    utilization: float

    @property
    def e2e_ms(self) -> float:
        return self.e2e_s * 1e3

    @property
    def pipe_ms(self) -> float:
        return self.pipe_s * 1e3

    @property
    def edp_j_ms(self) -> float:
        """Energy-delay product (J*ms) against the pipelining latency."""
        return self.energy_j * self.pipe_ms

    @property
    def throughput_fps(self) -> float:
        return 1.0 / self.pipe_s if self.pipe_s > 0 else float("inf")

    def row(self) -> dict:
        return {
            "config": self.label,
            "e2e_ms": round(self.e2e_ms, 1),
            "pipe_ms": round(self.pipe_ms, 1),
            "energy_j": round(self.energy_j, 3),
            "edp_j_ms": round(self.edp_j_ms, 1),
            "utilization_pct": round(self.utilization * 100, 2),
        }


def format_table(rows: list[dict], title: str | None = None) -> str:
    """Render a list of uniform dicts as an aligned ASCII table."""
    if not rows:
        return "(empty table)"
    headers = list(rows[0].keys())
    cells = [[str(r.get(h, "")) for h in headers] for r in rows]
    widths = [max(len(h), *(len(row[i]) for row in cells))
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
