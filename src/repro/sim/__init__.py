"""Pipeline performance simulation: MCM schedules and baseline engines."""

from .baselines import (
    LAYERWISE,
    STAGEWISE,
    baseline_arrangements,
    run_baselines,
    simulate_engines,
)
from .metrics import PerfReport, format_table
from .stream import FrameRecord, StreamResult, StreamSimulator, \
    stream_validate

__all__ = [
    "FrameRecord",
    "StreamResult",
    "StreamSimulator",
    "stream_validate",
    "LAYERWISE",
    "STAGEWISE",
    "baseline_arrangements",
    "run_baselines",
    "simulate_engines",
    "PerfReport",
    "format_table",
]
