"""Discrete-event simulation of a scheduled pipeline over a frame stream.

The analytical :class:`~repro.core.schedule.Schedule` predicts steady-state
pipelining latency as the busiest chiplet's per-frame busy time.  This
module *validates* that prediction by actually streaming frames through the
schedule: every (group, chiplet) job is executed in frame order against
chiplet availability and group dependencies, including NoP edge latencies
and pipeline-segment chaining.

Outputs per run:

* measured steady-state inter-departure time (the empirical pipe latency),
* per-frame end-to-end latencies (ramp-up until the bottleneck saturates),
* sustainable frame rate and whether a target camera rate (e.g. 30 FPS)
  is met,
* per-chiplet occupancy over the simulated window.

The event loop is deterministic: frames are admitted in order and each
chiplet serves jobs FIFO, so a simple time-propagation pass suffices (no
priority queue needed).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.schedule import GroupSchedule, Schedule
from ..core.sharding import MODE_PIPELINE


@dataclass(frozen=True)
class FrameRecord:
    """One frame's journey through the pipeline."""

    index: int
    arrival_s: float
    departure_s: float

    @property
    def latency_s(self) -> float:
        return self.departure_s - self.arrival_s


@dataclass(frozen=True)
class StreamResult:
    """Aggregate statistics of a streamed simulation."""

    frames: tuple[FrameRecord, ...]
    measured_pipe_s: float
    predicted_pipe_s: float
    steady_latency_s: float
    first_frame_latency_s: float
    sustainable_fps: float
    chiplet_occupancy: dict
    target_fps: float

    @property
    def meets_target_fps(self) -> bool:
        return self.sustainable_fps >= self.target_fps

    @property
    def prediction_error(self) -> float:
        """Relative error of the analytical pipe-latency prediction."""
        if self.measured_pipe_s == 0:
            return 0.0
        return abs(self.measured_pipe_s - self.predicted_pipe_s) \
            / self.measured_pipe_s


class StreamSimulator:
    """Stream frames through a schedule and measure what actually happens."""

    def __init__(self, schedule: Schedule, target_fps: float = 30.0):
        if target_fps <= 0:
            raise ValueError("target_fps must be positive")
        self.schedule = schedule
        self.target_fps = target_fps
        self._edge_latency = self._collect_edge_latencies()

    # ------------------------------------------------------------------

    def _collect_edge_latencies(self) -> dict[tuple[str, str], float]:
        return {(e.src_group, e.dst_group): e.latency_s
                for e in self.schedule.nop_edges()
                if e.src_group != e.dst_group}

    def _stage_links(self) -> dict[str, list[str]]:
        """(terminal, source) pairs across consecutive stages."""
        workload = self.schedule.workload
        links: dict[str, list[str]] = {}
        for prev, nxt in zip(workload.stages, workload.stages[1:]):
            dependents = {d for g in prev.groups for d in g.depends_on}
            terminals = [g.name for g in prev.groups
                         if g.name not in dependents]
            for g in nxt.groups:
                if not g.depends_on:
                    links[g.name] = terminals
        return links

    # ------------------------------------------------------------------

    def run(self, n_frames: int = 32,
            arrival_period_s: float | None = None) -> StreamResult:
        """Simulate ``n_frames`` admitted every ``arrival_period_s``.

        With the default back-to-back admission (period 0) the pipeline
        runs at full throughput and the measured inter-departure time is
        the empirical pipelining latency.
        """
        if n_frames < 2:
            raise ValueError("need at least 2 frames to measure throughput")
        if arrival_period_s is not None and arrival_period_s < 0:
            raise ValueError("arrival_period_s must be non-negative")
        # ``is None`` (not truthiness): an explicit period of 0.0 must stay
        # distinguishable from "no period given" for callers that compute
        # the period (a computed 0.0 means back-to-back on purpose).
        period = 0.0 if arrival_period_s is None else arrival_period_s
        schedule = self.schedule
        workload = schedule.workload
        stage_links = self._stage_links()

        chiplet_free: dict[int, float] = {
            c.chiplet_id: 0.0 for c in schedule.package.chiplets}
        busy_total: dict[int, float] = {cid: 0.0 for cid in chiplet_free}

        # DRAM is one more FIFO resource: each frame's weights and camera
        # inputs must stream through the interface before its first groups
        # can start, and the channel serves frames in order.  Without an
        # attached budget (dram_time 0) this is the seed behavior.
        dram_time = schedule.dram_time_s
        dram_free = 0.0

        frames: list[FrameRecord] = []
        for f in range(n_frames):
            arrival = f * period
            if dram_time:
                stream_start = max(arrival, dram_free)
                dram_free = stream_start + dram_time
                ready_at = dram_free
            else:
                ready_at = arrival
            finish: dict[str, float] = {}
            for stage in workload.stages:
                for group in stage.topo_order():
                    gs = schedule.groups[group.name]
                    deps = list(group.depends_on)
                    deps += stage_links.get(group.name, [])
                    ready = ready_at
                    for dep in deps:
                        edge = self._edge_latency.get((dep, group.name), 0.0)
                        ready = max(ready, finish[dep] + edge)
                    finish[group.name] = self._execute_group(
                        group.name, gs, ready, chiplet_free, busy_total)
            departure = max(finish.values())
            frames.append(FrameRecord(f, arrival, departure))

        # Keep at least two frames in the steady window so ``inter`` is
        # never empty (n_frames == 2 would otherwise silently measure 0).
        half = min(n_frames // 2, n_frames - 2)
        steady = frames[half:]
        inter = [b.departure_s - a.departure_s
                 for a, b in zip(steady, steady[1:])]
        measured_pipe = sum(inter) / len(inter)
        horizon = frames[-1].departure_s
        occupancy = {cid: (busy_total[cid] / horizon if horizon else 0.0)
                     for cid in busy_total}
        sustainable = 1.0 / measured_pipe if measured_pipe > 0 else float(
            "inf")
        return StreamResult(
            frames=tuple(frames),
            measured_pipe_s=measured_pipe,
            predicted_pipe_s=schedule.pipe_latency_s,
            steady_latency_s=steady[-1].latency_s,
            first_frame_latency_s=frames[0].latency_s,
            sustainable_fps=sustainable,
            chiplet_occupancy=occupancy,
            target_fps=self.target_fps,
        )

    def _execute_group(self, name: str, gs: GroupSchedule, ready: float,
                       chiplet_free: dict, busy_total: dict) -> float:
        """Run one group for one frame; returns its finish time."""
        if gs.host is not None:
            host_id = self.schedule.chiplets_of(name)[0]
            start = max(ready, chiplet_free[host_id])
            end = start + gs.plan.span_s
            chiplet_free[host_id] = end
            busy_total[host_id] += gs.plan.span_s
            return end

        ids = gs.chiplet_ids
        busys = gs.plan.per_chiplet_busy
        if gs.plan.mode == MODE_PIPELINE:
            # Segments chain within a frame; each (instance, segment)
            # chiplet serves frames FIFO.
            segments = gs.plan.segments
            instances = len(ids) // segments
            finish = ready
            for inst in range(instances):
                t = ready
                for seg in range(segments):
                    idx = inst * segments + seg
                    cid = ids[idx]
                    start = max(t, chiplet_free[cid])
                    t = start + busys[idx]
                    chiplet_free[cid] = t
                    busy_total[cid] += busys[idx]
                finish = max(finish, t)
            return finish

        # instances / rows / single: all chiplets work concurrently.
        finish = ready
        for cid, dur in zip(ids, busys):
            start = max(ready, chiplet_free[cid])
            end = start + dur
            chiplet_free[cid] = end
            busy_total[cid] += dur
            finish = max(finish, end)
        return finish


def stream_validate(schedule: Schedule, n_frames: int = 32,
                    target_fps: float = 30.0) -> StreamResult:
    """Convenience wrapper: stream frames and return the measurements."""
    return StreamSimulator(schedule, target_fps).run(n_frames)
