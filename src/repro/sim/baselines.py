"""Baseline NPU executors for the paper's Table II comparison.

The baselines run the same perception workload on conventional accelerator
arrangements with the *same total PE count* as the 36-chiplet MCM:

* one monolithic die with 9,216 PEs,
* two dies with 4,608 PEs each,
* four dies with 2,304 PEs each.

Each die is one *execution engine*: it executes one layer group instance at
a time with its native dataflow (the fixed 16x16 tile — see
``repro.cost.accelerator``), so extra PEs on a big die do not accelerate a
single layer.  Parallelism across engines comes from the pipelining scheme:

* **stagewise** — perception stages are assigned whole to engines
  (balanced by load); an input flows engine to engine.
* **layerwise** — group instances are list-scheduled greedily onto the
  earliest-free engine, letting independent instances (8 FE models,
  camera/frame shards) overlap.

Both schemes respect group dependencies.  Reported metrics mirror the
paper: E2E latency of one frame, steady-state pipelining latency (busiest
engine), energy per frame, and PE utilization (useful MACs over all PE
cycles in one pipe window).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cost import AcceleratorConfig, chain_energy_j, chain_latency_s, \
    monolithic
from ..workloads.graph import LayerGroup, PerceptionWorkload
from ..workloads.pipeline import build_perception_workload
from .metrics import PerfReport

STAGEWISE = "stagewise"
LAYERWISE = "layerwise"
_SCHEMES = (STAGEWISE, LAYERWISE)


@dataclass(frozen=True)
class _Task:
    """One group instance: the unit of baseline scheduling."""

    group: LayerGroup
    instance: int

    @property
    def key(self) -> tuple[str, int]:
        return (self.group.name, self.instance)


def _build_tasks(workload: PerceptionWorkload,
                 ) -> tuple[list[_Task], dict[str, list[str]]]:
    """Tasks plus group-level dependency map (incl. stage chaining)."""
    tasks: list[_Task] = []
    deps: dict[str, list[str]] = {}
    prev_terminals: list[str] = []
    for stage in workload.stages:
        dependents = {d for g in stage.groups for d in g.depends_on}
        sources = [g.name for g in stage.groups if not g.depends_on]
        for group in stage.topo_order():
            tasks.extend(_Task(group, i) for i in range(group.instances))
            group_deps = list(group.depends_on)
            if group.name in sources and prev_terminals:
                group_deps.extend(prev_terminals)
            deps[group.name] = group_deps
        prev_terminals = [g.name for g in stage.groups
                          if g.name not in dependents]
    return tasks, deps


def _stage_assignment(workload: PerceptionWorkload, n_engines: int,
                      accel: AcceleratorConfig) -> dict[str, int]:
    """Balanced stage-to-engine map (longest-processing-time greedy)."""
    loads = []
    for stage in workload.stages:
        total = sum(chain_latency_s(g.layers, accel) * g.instances
                    for g in stage.groups)
        loads.append((total, stage.name))
    loads.sort(reverse=True)
    engine_load = [0.0] * n_engines
    assignment: dict[str, int] = {}
    for load, name in loads:
        idx = min(range(n_engines), key=lambda i: engine_load[i])
        assignment[name] = idx
        engine_load[idx] += load
    return assignment


def simulate_engines(workload: PerceptionWorkload,
                     engines: list[AcceleratorConfig],
                     scheme: str,
                     label: str | None = None) -> PerfReport:
    """List-schedule the workload over ``engines`` and report metrics."""
    if scheme not in _SCHEMES:
        raise ValueError(f"unknown pipelining scheme {scheme!r}")
    if not engines:
        raise ValueError("at least one engine required")

    tasks, deps = _build_tasks(workload)
    durations = {g.name: {e: chain_latency_s(g.layers, eng)
                          for e, eng in enumerate(engines)}
                 for g in workload.all_groups()}

    stage_map = (_stage_assignment(workload, len(engines), engines[0])
                 if scheme == STAGEWISE else {})

    engine_free = [0.0] * len(engines)
    engine_busy = [0.0] * len(engines)
    group_finish: dict[str, float] = {}
    task_finish: dict[tuple[str, int], float] = {}

    for task in tasks:
        g = task.group
        ready = max((group_finish.get(d, 0.0) for d in deps[g.name]),
                    default=0.0)
        if scheme == STAGEWISE:
            engine = stage_map[g.stage]
        else:
            engine = min(range(len(engines)),
                         key=lambda e: (max(engine_free[e], ready),
                                        durations[g.name][e]))
        start = max(engine_free[engine], ready)
        duration = durations[g.name][engine]
        finish = start + duration
        engine_free[engine] = finish
        engine_busy[engine] += duration
        task_finish[task.key] = finish
        group_finish[g.name] = max(group_finish.get(g.name, 0.0), finish)

    e2e = max(task_finish.values())
    pipe = max(engine_busy)
    energy = 0.0
    # Energy is engine-independent across homogeneous baseline dies; price
    # each group on engine 0's configuration.
    for g in workload.all_groups():
        energy += chain_energy_j(g.layers, engines[0]) * g.instances

    total_pes = sum(e.pe_count for e in engines)
    freq = engines[0].frequency_hz
    utilization = workload.total_macs / (total_pes * pipe * freq)
    return PerfReport(
        label=label or f"{len(engines)}x{engines[0].pe_count}-{scheme}",
        e2e_s=e2e,
        pipe_s=pipe,
        energy_j=energy,
        utilization=utilization,
    )


def baseline_arrangements(total_pes: int = 9216,
                          dataflow: str = "os") -> dict[str, list]:
    """The paper's Table II die arrangements for a fixed PE budget."""
    return {
        f"1x{total_pes}": [monolithic(total_pes, dataflow)],
        f"2x{total_pes // 2}": [monolithic(total_pes // 2, dataflow)] * 2,
        f"4x{total_pes // 4}": [monolithic(total_pes // 4, dataflow)] * 4,
    }


def run_baselines(workload: PerceptionWorkload | None = None,
                  schemes: tuple[str, ...] = (STAGEWISE, LAYERWISE),
                  total_pes: int = 9216,
                  dataflow: str = "os") -> list[PerfReport]:
    """All baseline rows of Table II (the 36x256 row comes from the MCM)."""
    workload = workload or build_perception_workload()
    reports = []
    for scheme in schemes:
        for name, engines in baseline_arrangements(total_pes,
                                                   dataflow).items():
            reports.append(simulate_engines(
                workload, engines, scheme, label=f"{name}-{scheme}"))
    return reports
