"""Workload validation: structural diagnostics for layer graphs.

Catches authoring mistakes before they silently skew the cost analysis:
channel-width discontinuities inside a serial chain, dangling group
dependencies, shard-axis declarations that cannot hold, and stage wiring
that the scheduler's quadrant allocation cannot place.

``validate_workload`` returns a list of :class:`Diagnostic` records; an
empty list means the workload is well-formed.  ``check_workload`` raises
on any error-severity finding.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import LayerGroup, PerceptionWorkload
from .layers import LayerKind

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One validation finding."""

    severity: str
    location: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.location}: {self.message}"


class WorkloadValidationError(ValueError):
    """Raised by :func:`check_workload` when errors are present."""

    def __init__(self, diagnostics: list[Diagnostic]):
        self.diagnostics = diagnostics
        lines = "\n".join(str(d) for d in diagnostics)
        super().__init__(f"workload validation failed:\n{lines}")


#: layer kinds whose output channel count feeds the next layer's reduction
_CHANNEL_PRODUCERS = frozenset({
    LayerKind.CONV, LayerKind.DWCONV, LayerKind.DECONV, LayerKind.DENSE,
})
_CHANNEL_CONSUMERS = frozenset({
    LayerKind.CONV, LayerKind.DECONV, LayerKind.DENSE,
})


def _check_chain(group: LayerGroup) -> list[Diagnostic]:
    """Channel continuity along a serial layer chain.

    Attention matmuls (activation x activation) and vector ops legally
    break the weight-channel flow, so the check tracks the most recent
    channel-producing layer and only compares consumer reductions against
    it.
    """
    findings: list[Diagnostic] = []
    last_channels: int | None = None
    last_name = ""
    for layer in group.layers:
        if (layer.kind in _CHANNEL_CONSUMERS
                and not layer.weights_are_activations
                and last_channels is not None
                and layer.c != last_channels):
            findings.append(Diagnostic(
                WARNING, f"{group.name}/{layer.name}",
                f"reduction width {layer.c} does not match the {last_name} "
                f"output width {last_channels} (concat/residual inputs "
                f"must account for the difference)"))
        if layer.kind in _CHANNEL_PRODUCERS and \
                not layer.weights_are_activations:
            last_channels = layer.k
            last_name = layer.name
        elif layer.kind is LayerKind.CONCAT:
            last_channels = layer.k
            last_name = layer.name
        elif layer.kind is LayerKind.MATMUL:
            last_channels = layer.k
            last_name = layer.name
    return findings


def _check_group(group: LayerGroup) -> list[Diagnostic]:
    findings: list[Diagnostic] = []
    if group.row_shardable and group.instances == 1:
        narrow = min(layer.out_h if layer.out_h > 1 else layer.out_w
                     for layer in group.layers)
        if narrow < 2:
            findings.append(Diagnostic(
                WARNING, group.name,
                "declared row-shardable but the narrowest layer has a "
                "single row/token"))
    if group.pipeline_splittable and len(group.layers) < 2:
        findings.append(Diagnostic(
            ERROR, group.name,
            "declared pipeline-splittable with fewer than 2 layers"))
    return findings


def validate_workload(workload: PerceptionWorkload) -> list[Diagnostic]:
    """Collect all structural findings for a workload."""
    findings: list[Diagnostic] = []
    for stage in workload.stages:
        names = {g.name for g in stage.groups}
        for group in stage.groups:
            for dep in group.depends_on:
                if dep not in names:
                    findings.append(Diagnostic(
                        ERROR, f"{stage.name}/{group.name}",
                        f"depends on unknown group {dep!r}"))
            findings.extend(_check_group(group))
            findings.extend(_check_chain(group))
        try:
            stage.topo_order()
        except ValueError as exc:
            findings.append(Diagnostic(ERROR, stage.name, str(exc)))
    if len(workload.stages) > 4:
        findings.append(Diagnostic(
            ERROR, "workload",
            "more than 4 stages cannot map onto the quadrant allocation"))
    return findings


def check_workload(workload: PerceptionWorkload) -> None:
    """Raise :class:`WorkloadValidationError` on error-level findings."""
    findings = [d for d in validate_workload(workload)
                if d.severity == ERROR]
    if findings:
        raise WorkloadValidationError(findings)
