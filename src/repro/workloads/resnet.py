"""ResNet-18 feature extractor (FE) for one camera stream.

The paper (Sec. II-B, Stage 1) specifies a ResNet-18 per camera producing
four multiscale features on the 90x160 / 45x80 / 23x40 / 12x20 grid sequence
of a 720x1280 input.  We implement the standard ResNet-18 topology (stem +
four 2-block stages, channels 64/128/256/512) with the stem striding by 4 so
stage outputs land exactly on the paper's grids, plus an extra stride-2 P6
convolution for the 12x20 scale.
"""

from __future__ import annotations

from .layers import Layer, conv, eltwise

#: (stage name, channels, output plane) for the four residual stages.
RESNET18_STAGES = (
    ("layer1", 64, (180, 320)),
    ("layer2", 128, (90, 160)),
    ("layer3", 256, (45, 80)),
    ("layer4", 512, (23, 40)),
)

#: Multiscale taps fed to the BiFPN: (tap name, channels, plane).
FE_FEATURE_TAPS = (
    ("P3", 128, (90, 160)),
    ("P4", 256, (45, 80)),
    ("P5", 512, (23, 40)),
    ("P6", 512, (12, 20)),
)


def _basic_block(prefix: str, out_hw: tuple[int, int], k: int, c_in: int,
                 stride: int, **tags) -> list[Layer]:
    """One ResNet basic block (two 3x3 convs + shortcut add)."""
    layers = [
        conv(f"{prefix}.conv1", out_hw, k, c_in, r=3, stride=stride, **tags),
        conv(f"{prefix}.conv2", out_hw, k, k, r=3, stride=1, **tags),
    ]
    if stride != 1 or c_in != k:
        layers.append(
            conv(f"{prefix}.downsample", out_hw, k, c_in, r=1,
                 stride=stride, **tags))
    layers.append(eltwise(f"{prefix}.add", out_hw, k, **tags))
    return layers


def build_resnet18_fe(input_hw: tuple[int, int] = (720, 1280),
                      **tags) -> list[Layer]:
    """Layer chain of the per-camera ResNet-18 feature extractor.

    ``input_hw`` scales every plane proportionally; the default is the
    paper's 720p camera resolution.
    """
    sh, sw = input_hw[0] // 720, input_hw[1] // 1280
    if input_hw[0] % 720 or input_hw[1] % 1280:
        # Non-multiple resolutions are allowed: planes scale by ratio.
        sh = input_hw[0] / 720
        sw = input_hw[1] / 1280

    def plane(base: tuple[int, int]) -> tuple[int, int]:
        return max(1, round(base[0] * sh)), max(1, round(base[1] * sw))

    layers: list[Layer] = [
        conv("stem.conv", plane((180, 320)), 64, 3, r=7, stride=4, **tags),
    ]
    c_in = 64
    for name, k, out_hw in RESNET18_STAGES:
        hw = plane(out_hw)
        stride = 1 if name == "layer1" else 2
        layers += _basic_block(f"{name}.block1", hw, k, c_in, stride, **tags)
        layers += _basic_block(f"{name}.block2", hw, k, k, 1, **tags)
        c_in = k
    layers.append(
        conv("p6.conv", plane((12, 20)), 512, 512, r=3, stride=2, **tags))
    return layers
