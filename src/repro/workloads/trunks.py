"""Stage 4 trunks and heads: occupancy, lane prediction, detection.

All trunks consume the pooled ``20 x 80 x 300`` spatio-temporal grid
(Sec. II-B, Stage 4):

* **Occupancy network** — channel projection followed by four stride-2
  deconvolutions (16x upscale to 320x1280) and a semantic head.  Table III
  ablates the number of upsampling stages.
* **Lane prediction** — three levels of self-attention over grid queries,
  cross-attention to the camera tokens, FFN, and a per-level classifier.
  Context-aware computing (Fig. 11) prunes the *query* regions to a
  retained fraction; quadratic self-attention terms scale with the square
  of that fraction, cross/FFN terms linearly, and the camera-token K/V
  projection is unaffected.
* **Detection** — three independent heads (traffic / vehicle / pedestrian),
  each with class and box prediction networks of three convolutions plus a
  per-cell predictor.
"""

from __future__ import annotations

from .attention import attention_core, ffn, projection
from .graph import LayerGroup, Stage
from .layers import Layer, conv, deconv, dense


def build_occupancy_layers(token_grid: tuple[int, int] = (20, 80),
                           in_channels: int = 300,
                           channels: int = 90,
                           upsample_stages: int = 4,
                           semantic_classes: int = 18) -> list[Layer]:
    """Occupancy trunk layer chain with ``upsample_stages`` 2x deconvs."""
    if not 1 <= upsample_stages <= 6:
        raise ValueError("upsample_stages must be in [1, 6]")
    tags = {"stage": "TRUNKS", "group": "OCC_TR"}
    h, w = token_grid
    layers: list[Layer] = [
        dense("occ.proj", token_grid, channels, in_channels, **tags)]
    for i in range(1, upsample_stages + 1):
        h, w = h * 2, w * 2
        layers.append(
            deconv(f"occ.deconv{i}", (h, w), channels, channels, r=3,
                   stride=2, **tags))
    layers.append(
        conv("occ.head", (h, w), semantic_classes, channels, r=1, **tags))
    return layers


def build_lane_layers(token_grid: tuple[int, int] = (20, 80),
                      cameras: int = 8,
                      d_model: int = 352,
                      in_channels: int = 300,
                      levels: int = 3,
                      ffn_hidden: int = 1024,
                      context_fraction: float = 1.0) -> list[Layer]:
    """Lane prediction trunk with context-aware query pruning."""
    if not 0.0 < context_fraction <= 1.0:
        raise ValueError("context_fraction must be in (0, 1]")
    tags = {"stage": "TRUNKS", "group": "LANE_TR"}
    h, w = token_grid
    # Lane queries are a point *set* (one query per retained grid cell),
    # not an image plane: they fold flat across the PE array, so pruning
    # regions scales the work near-linearly (Fig. 11).
    n_queries = max(1, round(h * w * context_fraction))
    q_plane = (1, n_queries)
    cam_plane = (token_grid[0] * cameras, token_grid[1])
    n_cam_tokens = cam_plane[0] * cam_plane[1]

    layers: list[Layer] = [
        dense("lane.in_proj", q_plane, d_model, in_channels, **tags)]
    for lvl in range(1, levels + 1):
        p = f"lane.lvl{lvl}"
        # Self-attention among the retained queries (quadratic in f).
        layers.append(
            projection(f"{p}.self_qkv", q_plane, 3 * d_model, d_model,
                       **tags))
        layers += attention_core(f"{p}.self", q_plane, n_queries, d_model,
                                 **tags)
        # Cross-attention from queries to the (unpruned) camera tokens.
        layers.append(
            projection(f"{p}.cross_q", q_plane, d_model, d_model, **tags))
        layers.append(
            projection(f"{p}.cross_kv", cam_plane, 2 * d_model, d_model,
                       **tags))
        layers += attention_core(f"{p}.cross", q_plane, n_cam_tokens,
                                 d_model, **tags)
        layers += ffn(p, q_plane, d_model, ffn_hidden, **tags)
        layers.append(
            dense(f"{p}.classifier", q_plane, 64, d_model, **tags))
    return layers


def build_detection_layers(token_grid: tuple[int, int] = (20, 80),
                           in_channels: int = 300,
                           channels: int = 256) -> list[Layer]:
    """One detection head: class + box networks of 3 convs and predictors."""
    tags = {"stage": "TRUNKS", "group": "DET_TR"}
    layers: list[Layer] = []
    for net, preds in (("cls", 24), ("box", 16)):
        layers.append(conv(f"det.{net}.conv1", token_grid, channels,
                           in_channels, r=3, **tags))
        layers.append(conv(f"det.{net}.conv2", token_grid, channels,
                           channels, r=3, **tags))
        layers.append(conv(f"det.{net}.conv3", token_grid, channels,
                           channels, r=3, **tags))
        layers.append(dense(f"det.{net}.pred", token_grid, preds, channels,
                            **tags))
    return layers


def build_trunks(token_grid: tuple[int, int] = (20, 80),
                 cameras: int = 8,
                 in_channels: int = 300,
                 occ_channels: int = 90,
                 occ_stages: int = 4,
                 lane_levels: int = 3,
                 lane_d: int = 352,
                 lane_context: float = 0.6,
                 det_heads: int = 3) -> Stage:
    """Stage 4: the three trunk groups (independent branches)."""
    stage = Stage("TRUNKS")
    stage.add(LayerGroup(
        name="OCC_TR",
        layers=tuple(build_occupancy_layers(
            token_grid, in_channels, occ_channels, occ_stages)),
        stage="TRUNKS",
        pipeline_splittable=True,
    ))
    stage.add(LayerGroup(
        name="LANE_TR",
        layers=tuple(build_lane_layers(
            token_grid, cameras, lane_d, in_channels, lane_levels,
            context_fraction=lane_context)),
        stage="TRUNKS",
        pipeline_splittable=True,
    ))
    stage.add(LayerGroup(
        name="DET_TR",
        layers=tuple(build_detection_layers(token_grid, in_channels)),
        stage="TRUNKS",
        instances=det_heads,
        instance_axis="model",
    ))
    return stage
