"""Layer-level intermediate representation for perception workloads.

Every network in the Tesla-Autopilot-style perception pipeline (Fig. 2 of the
paper) is lowered to a sequence of :class:`Layer` records.  A layer captures
exactly the quantities the analytical cost model needs:

* the *output plane* ``(out_h, out_w)`` — the 2D tensor face that an
  output-stationary (ShiDianNao-like) accelerator maps spatially;
* the output channel count ``k`` and the reduction depth ``c`` — the dims a
  weight-stationary (NVDLA-like) accelerator maps spatially;
* the kernel extent ``r x s`` and stride;
* operand word counts (fp16 words) for traffic and energy analysis.

Attention blocks are decomposed into MATMUL/DENSE layers plus SOFTMAX vector
ops, mirroring the paper's layer-id-level analysis in Fig. 4.  Deconvolution
is modeled as zero-insertion followed by a dense convolution (``r*s`` MACs per
output pixel), which is how NVDLA-class engines execute it and which
reproduces the paper's Table III scaling.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Iterable

#: fp16 operand width used throughout the cost model.
BYTES_PER_WORD = 2


class LayerKind(enum.Enum):
    """Operator classes distinguished by the cost model."""

    CONV = "conv"
    DWCONV = "dwconv"
    DECONV = "deconv"
    DENSE = "dense"
    MATMUL = "matmul"
    POOL = "pool"
    ELTWISE = "eltwise"
    SOFTMAX = "softmax"
    CONCAT = "concat"
    MOVE = "move"

    @property
    def is_compute(self) -> bool:
        """True for MAC-array ops; False for vector/data-movement ops."""
        return self in _COMPUTE_KINDS


_COMPUTE_KINDS = frozenset(
    {LayerKind.CONV, LayerKind.DWCONV, LayerKind.DECONV, LayerKind.DENSE,
     LayerKind.MATMUL}
)


class ShardAxis(enum.Enum):
    """Axes along which the scheduler may shard a layer group (Sec. IV)."""

    INSTANCE = "instance"   # independent model/source copies (cameras, frames)
    ROW = "row"             # output-plane rows (convs, grid-token layers)
    PIPELINE = "pipeline"   # split a deep serial chain into pipeline segments


@dataclass(frozen=True)
class Layer:
    """A single operator instance with everything the cost model needs.

    Parameters mirror a convolution; other operator kinds reinterpret them:

    * DENSE / MATMUL: ``out_h x out_w`` is the output token plane, ``k`` the
      output feature count, ``c`` the reduction (inner) dimension and
      ``r = s = 1``.
    * DWCONV: ``c`` must be 1 (per-channel reduction is only ``r*s``).
    * POOL / ELTWISE / SOFTMAX / CONCAT / MOVE: no MACs; ``vector_elems``
      below derives the vector-unit workload from the output tensor.
    """

    name: str
    kind: LayerKind
    out_h: int
    out_w: int
    k: int
    c: int
    r: int = 1
    s: int = 1
    stride: int = 1
    #: True when the "weight" operand is itself an activation produced at
    #: runtime (attention score/context matmuls).  Such operands are never
    #: fetched from DRAM and cannot be pre-loaded.
    weights_are_activations: bool = False
    #: Free-form tags, e.g. {"group": "S_QKV", "stage": "S_FUSE"}.
    tags: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.out_h <= 0 or self.out_w <= 0:
            raise ValueError(f"{self.name}: output plane must be positive")
        if self.k <= 0 or self.c <= 0:
            raise ValueError(f"{self.name}: k and c must be positive")
        if self.r <= 0 or self.s <= 0 or self.stride <= 0:
            raise ValueError(f"{self.name}: kernel/stride must be positive")
        if self.kind is LayerKind.DWCONV and self.c != 1:
            raise ValueError(f"{self.name}: depthwise conv requires c == 1")

    def __hash__(self) -> int:
        # Layers are deep-frozen and hashed constantly: every evaluate()
        # memo probe and every plan-cache key hashes the layer chain.
        # Cache the structural hash per instance (same fields the
        # generated __eq__ compares; ``tags`` is excluded from both).
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.name, self.kind, self.out_h, self.out_w,
                      self.k, self.c, self.r, self.s, self.stride,
                      self.weights_are_activations))
            object.__setattr__(self, "_hash", h)
        return h

    # ------------------------------------------------------------------
    # Derived sizes (fp16 words)
    # ------------------------------------------------------------------

    @property
    def out_plane(self) -> int:
        """Number of output pixels/tokens in the 2D output face."""
        return self.out_h * self.out_w

    @property
    def macs(self) -> int:
        """Multiply-accumulate count.

        DECONV uses the zero-insertion model: the dense conv at output
        resolution performs ``r*s`` MACs per output pixel including the
        inserted zeros (no sparsity skipping), matching NVDLA-class engines.
        """
        if not self.kind.is_compute:
            return 0
        return self.out_plane * self.k * self.c * self.r * self.s

    @property
    def vector_elems(self) -> int:
        """Vector-unit element operations for non-MAC layers."""
        if self.kind.is_compute:
            return 0
        return self.out_plane * self.k

    @property
    def weight_words(self) -> int:
        """Words of the stationary/filter operand."""
        if not self.kind.is_compute:
            return 0
        if self.kind is LayerKind.DWCONV:
            return self.k * self.r * self.s
        return self.k * self.c * self.r * self.s

    @property
    def in_h(self) -> int:
        """Input plane height implied by the output plane and stride."""
        if self.kind is LayerKind.DECONV:
            return max(1, math.ceil(self.out_h / self.stride))
        return (self.out_h - 1) * self.stride + self.r

    @property
    def in_w(self) -> int:
        """Input plane width implied by the output plane and stride."""
        if self.kind is LayerKind.DECONV:
            return max(1, math.ceil(self.out_w / self.stride))
        return (self.out_w - 1) * self.stride + self.s

    @property
    def input_words(self) -> int:
        """Words of the streamed input operand."""
        if self.kind in (LayerKind.DENSE, LayerKind.MATMUL):
            return self.out_plane * self.c
        if self.kind in (LayerKind.CONV, LayerKind.DECONV):
            return self.c * self.in_h * self.in_w
        if self.kind is LayerKind.DWCONV:
            return self.k * self.in_h * self.in_w
        # Vector ops stream their output-sized operand(s).
        return self.out_plane * self.k

    @property
    def output_words(self) -> int:
        """Words of the produced output tensor."""
        return self.out_plane * self.k

    @property
    def output_bytes(self) -> int:
        return self.output_words * BYTES_PER_WORD

    # ------------------------------------------------------------------
    # Shard transforms (used by repro.core.sharding)
    # ------------------------------------------------------------------

    def split_rows(self, n: int, index: int) -> "Layer":
        """Return this layer restricted to the ``index``-th of ``n`` row bands.

        Row sharding divides the output plane height as evenly as possible;
        the cost model recomputes mapping efficiency on the shard, so
        speedups are naturally sub-linear when bands stop aligning with the
        16x16 dataflow tile.
        """
        if not 1 <= n <= self.out_h:
            raise ValueError(
                f"{self.name}: cannot split {self.out_h} rows {n} ways")
        if not 0 <= index < n:
            raise ValueError(f"shard index {index} out of range for n={n}")
        base, extra = divmod(self.out_h, n)
        rows = base + (1 if index < extra else 0)
        return replace(self, name=f"{self.name}@r{index}/{n}", out_h=rows)

    def scaled_plane(self, fraction: float) -> "Layer":
        """Return a copy with the output plane scaled by ``fraction``.

        Used by context-aware computing (Fig. 11): only the retained
        fraction of grid regions is processed.  Scaling applies to rows so
        plane geometry stays valid.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        rows = max(1, round(self.out_h * fraction))
        return replace(self, name=self.name, out_h=rows)


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------

def conv(name: str, out_hw: tuple[int, int], k: int, c: int, r: int = 3,
         s: int | None = None, stride: int = 1, **tags) -> Layer:
    """Dense 2D convolution producing a ``k x out_h x out_w`` tensor."""
    s = r if s is None else s
    return Layer(name, LayerKind.CONV, out_hw[0], out_hw[1], k, c, r, s,
                 stride, tags=tags)


def dwconv(name: str, out_hw: tuple[int, int], k: int, r: int = 3,
           stride: int = 1, **tags) -> Layer:
    """Depthwise convolution over ``k`` channels."""
    return Layer(name, LayerKind.DWCONV, out_hw[0], out_hw[1], k, 1, r, r,
                 stride, tags=tags)


def deconv(name: str, out_hw: tuple[int, int], k: int, c: int, r: int = 3,
           stride: int = 2, **tags) -> Layer:
    """Transposed convolution (zero-insertion model) upsampling by ``stride``."""
    return Layer(name, LayerKind.DECONV, out_hw[0], out_hw[1], k, c, r, r,
                 stride, tags=tags)


def dense(name: str, tokens_hw: tuple[int, int], k: int, c: int,
          **tags) -> Layer:
    """Linear layer applied across a plane of tokens (token-parallel GEMM)."""
    return Layer(name, LayerKind.DENSE, tokens_hw[0], tokens_hw[1], k, c,
                 tags=tags)


def matmul(name: str, tokens_hw: tuple[int, int], k: int, c: int,
           **tags) -> Layer:
    """Activation-by-activation matmul (attention scores/context)."""
    return Layer(name, LayerKind.MATMUL, tokens_hw[0], tokens_hw[1], k, c,
                 weights_are_activations=True, tags=tags)


def softmax(name: str, tokens_hw: tuple[int, int], k: int, **tags) -> Layer:
    """Row softmax over ``k`` attention logits per token."""
    return Layer(name, LayerKind.SOFTMAX, tokens_hw[0], tokens_hw[1], k, 1,
                 tags=tags)


def pool(name: str, out_hw: tuple[int, int], k: int, r: int = 3,
         stride: int = 2, **tags) -> Layer:
    """Max/avg pooling (vector op)."""
    return Layer(name, LayerKind.POOL, out_hw[0], out_hw[1], k, 1, r, r,
                 stride, tags=tags)


def eltwise(name: str, out_hw: tuple[int, int], k: int, **tags) -> Layer:
    """Element-wise add/activation (vector op)."""
    return Layer(name, LayerKind.ELTWISE, out_hw[0], out_hw[1], k, 1,
                 tags=tags)


def concat(name: str, out_hw: tuple[int, int], k: int, **tags) -> Layer:
    """Feature concatenation (data reshuffle on the vector path)."""
    return Layer(name, LayerKind.CONCAT, out_hw[0], out_hw[1], k, 1,
                 tags=tags)


def move(name: str, out_hw: tuple[int, int], k: int, **tags) -> Layer:
    """Pure data movement (e.g. camera-to-BEV lift/scatter): no MACs."""
    return Layer(name, LayerKind.MOVE, out_hw[0], out_hw[1], k, 1, tags=tags)


def total_macs(layers: Iterable[Layer]) -> int:
    """Sum of MACs over an iterable of layers."""
    return sum(layer.macs for layer in layers)
