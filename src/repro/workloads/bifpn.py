"""Bidirectional Feature Pyramid Network (BiFPN) blocks.

Stage 1 of the paper passes each camera's multiscale ResNet features through
two BiFPN blocks (EfficientDet-style) and fuses the result into the
per-camera 20x80x256 output of Fig. 2.  Fusion nodes use depthwise-separable
convolutions, matching EfficientDet's design.
"""

from __future__ import annotations

from .layers import Layer, concat, conv, dwconv, eltwise, pool
from .resnet import FE_FEATURE_TAPS

#: Channel width of every BiFPN node.
BIFPN_CHANNELS = 256


def _fusion_node(name: str, out_hw: tuple[int, int], **tags) -> list[Layer]:
    """One BiFPN fusion node: weighted add + separable conv."""
    return [
        eltwise(f"{name}.fuse", out_hw, BIFPN_CHANNELS, **tags),
        dwconv(f"{name}.dw", out_hw, BIFPN_CHANNELS, r=3, **tags),
        conv(f"{name}.pw", out_hw, BIFPN_CHANNELS, BIFPN_CHANNELS, r=1,
             **tags),
    ]


def build_lateral_convs(**tags) -> list[Layer]:
    """1x1 projections of the FE taps to the BiFPN channel width."""
    return [
        conv(f"lateral.{tap}", hw, BIFPN_CHANNELS, c, r=1, **tags)
        for tap, c, hw in FE_FEATURE_TAPS
    ]


def build_bifpn_block(index: int, **tags) -> list[Layer]:
    """One BiFPN block: top-down then bottom-up passes over P3..P6."""
    planes = {tap: hw for tap, _, hw in FE_FEATURE_TAPS}
    prefix = f"bifpn{index}"
    layers: list[Layer] = []
    # Top-down: P5', P4', P3out.
    for tap in ("P5", "P4", "P3"):
        layers += _fusion_node(f"{prefix}.td.{tap}", planes[tap], **tags)
    # Bottom-up: P4out, P5out, P6out.
    for tap in ("P4", "P5", "P6"):
        layers += _fusion_node(f"{prefix}.bu.{tap}", planes[tap], **tags)
    return layers


def build_output_head(out_hw: tuple[int, int] = (20, 80),
                      out_channels: int = 256, **tags) -> list[Layer]:
    """Pool the pyramid onto the per-camera token grid and fuse scales."""
    n_scales = len(FE_FEATURE_TAPS)
    return [
        pool("head.pool", out_hw, BIFPN_CHANNELS * n_scales, r=3, stride=2,
             **tags),
        concat("head.concat", out_hw, BIFPN_CHANNELS * n_scales, **tags),
        conv("head.fuse", out_hw, out_channels, BIFPN_CHANNELS * n_scales,
             r=1, **tags),
    ]


def build_fe_bfpn(fe_layers: list[Layer], n_blocks: int = 2,
                  **tags) -> list[Layer]:
    """Full per-camera Stage-1 chain: FE + laterals + BiFPN + output head."""
    layers = list(fe_layers)
    layers += build_lateral_convs(**tags)
    for i in range(n_blocks):
        layers += build_bifpn_block(i, **tags)
    layers += build_output_head(**tags)
    return layers
