"""Building blocks for the transformer attention modules.

The paper decomposes every attention module into three blocks that its
scheduler treats as sharding units (Sec. II-B, Fig. 4): QKV projection,
attention core (two matrix multiplications around a softmax), and the
feed-forward network.  These helpers emit the corresponding layers.
"""

from __future__ import annotations

from .layers import Layer, dense, matmul, softmax


def projection(name: str, tokens_hw: tuple[int, int], d_out: int, d_in: int,
               **tags) -> Layer:
    """A Q/K/V linear projection over a token plane."""
    return dense(name, tokens_hw, d_out, d_in, **tags)


def attention_core(prefix: str, tokens_hw: tuple[int, int], window: int,
                   d_model: int, **tags) -> list[Layer]:
    """Scores + softmax + context for windowed attention.

    Each query token attends to ``window`` keys (the paper's fusion modules
    gather a bounded candidate set per grid cell rather than full
    quadratic attention, which would dwarf every other latency in the
    pipeline).
    """
    return [
        matmul(f"{prefix}.scores", tokens_hw, window, d_model, **tags),
        softmax(f"{prefix}.softmax", tokens_hw, window, **tags),
        matmul(f"{prefix}.context", tokens_hw, d_model, window, **tags),
    ]


def ffn(prefix: str, tokens_hw: tuple[int, int], d_model: int, hidden: int,
        **tags) -> list[Layer]:
    """Two-layer feed-forward network over a token plane."""
    return [
        dense(f"{prefix}.ffn1", tokens_hw, hidden, d_model, **tags),
        dense(f"{prefix}.ffn2", tokens_hw, d_model, hidden, **tags),
    ]
