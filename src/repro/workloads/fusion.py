"""Spatial (S_FUSE) and temporal (T_FUSE) fusion stages.

Stage 2 fuses the 8 camera feature sets onto a shared BEV attention grid
(the paper's Sec. IV-B works on the 200x80x256 grid); Stage 3 fuses the
current grid with a queue of N=12 previous representations.  Both are
transformer modules decomposed into QKV projection / attention / FFN groups
— the units the paper's scheduler shards (Figs. 6 and 7).

Camera-indexed work (K/V projections, the spatial FFN the paper shards
"per two FE+BFPNs") carries ``instances=8``; frame-indexed work in T_FUSE
carries ``instances=12`` ("each temporal frame is processed independently
on a separate chiplet" is the paper's sharding exhaustion point).
"""

from __future__ import annotations

from .attention import attention_core, ffn, projection
from .graph import LayerGroup, Stage
from .layers import dense, move, pool


def build_spatial_fusion(grid: tuple[int, int] = (200, 80),
                         cameras: int = 8,
                         d_model: int = 384,
                         d_in: int = 384,
                         window: int = 800,
                         ffn_hidden: int = 1152) -> Stage:
    """Stage 2: multi-camera spatial fusion transformer.

    ``d_in`` is the per-token input width: 256 camera feature channels
    concatenated with 128 ray/positional encoding channels (a standard
    camera-to-BEV lifting practice; the paper's text gives only the 256
    feature channels).
    """
    stage = Stage("S_FUSE")
    tags = {"stage": "S_FUSE"}

    stage.add(LayerGroup(
        name="S_LIFT",
        layers=(move("s_lift", grid, 256, group="S_LIFT", **tags),),
        stage="S_FUSE",
        instances=cameras,
        instance_axis="camera",
    ))
    stage.add(LayerGroup(
        name="S_Q_PROJ",
        layers=(projection("s_q_proj", grid, d_model, d_in,
                           group="S_QKV", **tags),),
        stage="S_FUSE",
    ))
    stage.add(LayerGroup(
        name="S_KV_PROJ",
        layers=(
            projection("s_k_proj", grid, d_model, d_in, group="S_QKV",
                       **tags),
            projection("s_v_proj", grid, d_model, d_in, group="S_QKV",
                       **tags),
        ),
        stage="S_FUSE",
        instances=cameras,
        instance_axis="camera",
        depends_on=("S_LIFT",),
    ))
    stage.add(LayerGroup(
        name="S_ATTN",
        layers=tuple(attention_core("s_attn", grid, window, d_model,
                                    group="S_ATTN", **tags)),
        stage="S_FUSE",
        depends_on=("S_Q_PROJ", "S_KV_PROJ"),
    ))
    stage.add(LayerGroup(
        name="S_FFN",
        layers=tuple(ffn("s", grid, d_model, ffn_hidden, group="S_FFN",
                         **tags)),
        stage="S_FUSE",
        instances=cameras,
        instance_axis="camera",
        depends_on=("S_ATTN",),
    ))
    return stage


def build_temporal_fusion(grid: tuple[int, int] = (200, 80),
                          frames: int = 12,
                          d_model: int = 384,
                          window_per_frame: int = 120,
                          ffn_hidden: int = 1536,
                          token_grid: tuple[int, int] = (20, 80),
                          out_channels: int = 300) -> Stage:
    """Stage 3: temporal fusion over an N-frame feature queue.

    The fused output is pooled and projected to the paper's
    ``1 x 20 x 80 x 300`` trunk input tensor.
    """
    stage = Stage("T_FUSE")
    tags = {"stage": "T_FUSE"}

    stage.add(LayerGroup(
        name="T_Q_PROJ",
        layers=(projection("t_q_proj", grid, d_model, d_model,
                           group="T_QKV", **tags),),
        stage="T_FUSE",
    ))
    stage.add(LayerGroup(
        name="T_KV_PROJ",
        layers=(
            projection("t_k_proj", grid, d_model, d_model, group="T_QKV",
                       **tags),
            projection("t_v_proj", grid, d_model, d_model, group="T_QKV",
                       **tags),
        ),
        stage="T_FUSE",
        instances=frames,
        instance_axis="frame",
    ))
    stage.add(LayerGroup(
        name="T_ATTN",
        layers=tuple(attention_core("t_attn", grid,
                                    window_per_frame * frames, d_model,
                                    group="T_ATTN", **tags)),
        stage="T_FUSE",
        depends_on=("T_Q_PROJ", "T_KV_PROJ"),
    ))
    stage.add(LayerGroup(
        name="T_FFN",
        layers=tuple(ffn("t", grid, d_model, ffn_hidden, group="T_FFN",
                         **tags)),
        stage="T_FUSE",
        instances=frames,
        instance_axis="frame",
        depends_on=("T_ATTN",),
    ))
    stage.add(LayerGroup(
        name="T_POOL",
        layers=(
            pool("t_pool", token_grid, d_model, r=3, stride=2,
                 group="T_POOL", **tags),
            dense("t_out_proj", token_grid, out_channels, d_model,
                  group="T_POOL", **tags),
        ),
        stage="T_FUSE",
        depends_on=("T_FFN",),
    ))
    return stage
