"""Assembly of the full Tesla-Autopilot-style perception pipeline (Fig. 2).

:class:`PipelineConfig` centralizes every workload dimension; the defaults
are the calibrated values documented in DESIGN.md Sec. 3, chosen so that the
paper's own latency arithmetic (stage shares, single-chiplet block
latencies, Lat_base) is reproduced by the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .bifpn import build_fe_bfpn
from .fusion import build_spatial_fusion, build_temporal_fusion
from .graph import LayerGroup, PerceptionWorkload, Stage
from .resnet import build_resnet18_fe
from .trunks import build_trunks

#: Canonical stage names, in pipeline order.
STAGE_FE = "FE_BFPN"
STAGE_S = "S_FUSE"
STAGE_T = "T_FUSE"
STAGE_TR = "TRUNKS"
STAGE_ORDER = (STAGE_FE, STAGE_S, STAGE_T, STAGE_TR)


@dataclass(frozen=True)
class PipelineConfig:
    """All workload dimensions of the perception pipeline."""

    cameras: int = 8
    input_hw: tuple[int, int] = (720, 1280)
    #: BEV attention grid used by the fusion transformers (paper Sec. IV-B).
    grid: tuple[int, int] = (200, 80)
    #: pooled token grid consumed by the trunks (paper Fig. 2).
    token_grid: tuple[int, int] = (20, 80)
    bifpn_blocks: int = 2
    fusion_d: int = 384
    fusion_d_in: int = 384
    s_window: int = 800
    s_ffn_hidden: int = 1152
    t_frames: int = 12
    t_window_per_frame: int = 120
    t_ffn_hidden: int = 1536
    trunk_channels: int = 300
    occ_channels: int = 90
    occ_stages: int = 4
    lane_levels: int = 3
    lane_d: int = 352
    #: fraction of grid regions the lane trunk processes (Fig. 11); the
    #: paper's context-aware computing default is ~60%.
    lane_context: float = 0.6
    det_heads: int = 3
    fps: float = 30.0

    def with_lane_context(self, fraction: float) -> "PipelineConfig":
        return replace(self, lane_context=fraction)

    def with_occ_stages(self, stages: int) -> "PipelineConfig":
        return replace(self, occ_stages=stages)


def build_fe_stage(config: PipelineConfig) -> Stage:
    """Stage 1: eight concurrent FE+BFPN models (one per camera)."""
    fe_layers = build_resnet18_fe(config.input_hw, stage=STAGE_FE,
                                  group="FE_BFPN")
    chain = build_fe_bfpn(fe_layers, config.bifpn_blocks, stage=STAGE_FE,
                          group="FE_BFPN")
    stage = Stage(STAGE_FE)
    stage.add(LayerGroup(
        name="FE_BFPN",
        layers=tuple(chain),
        stage=STAGE_FE,
        instances=config.cameras,
        instance_axis="camera",
        row_shardable=False,       # deep conv chain: only pipeline splits
        pipeline_splittable=True,
    ))
    return stage


def build_perception_workload(
        config: PipelineConfig | None = None) -> PerceptionWorkload:
    """Build the complete four-stage perception workload."""
    config = config or PipelineConfig()
    stages = [
        build_fe_stage(config),
        build_spatial_fusion(
            grid=config.grid,
            cameras=config.cameras,
            d_model=config.fusion_d,
            d_in=config.fusion_d_in,
            window=config.s_window,
            ffn_hidden=config.s_ffn_hidden,
        ),
        build_temporal_fusion(
            grid=config.grid,
            frames=config.t_frames,
            d_model=config.fusion_d,
            window_per_frame=config.t_window_per_frame,
            ffn_hidden=config.t_ffn_hidden,
            token_grid=config.token_grid,
            out_channels=config.trunk_channels,
        ),
        build_trunks(
            token_grid=config.token_grid,
            cameras=config.cameras,
            in_channels=config.trunk_channels,
            occ_channels=config.occ_channels,
            occ_stages=config.occ_stages,
            lane_levels=config.lane_levels,
            lane_d=config.lane_d,
            lane_context=config.lane_context,
            det_heads=config.det_heads,
        ),
    ]
    return PerceptionWorkload(stages=stages)
