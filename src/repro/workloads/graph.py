"""Layer groups, stages, and the group-level dependency graph.

The paper's scheduler (Sec. IV) never reasons about single layers in
isolation: it shards *blocks* — a whole FE+BFPN model, the QKV projection of
a fusion module, an FFN, a trunk — across chiplets.  We mirror that with
:class:`LayerGroup` (a serial chain of layers with optional independent
parallel instances, e.g. 8 cameras) organized into :class:`Stage` objects
(the paper's four perception stages) with group-level dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from .layers import Layer, total_macs


@dataclass(frozen=True)
class LayerGroup:
    """A schedulable block: a serial layer chain with parallel instances.

    ``instances`` counts independent copies of the chain that operate on
    different data (cameras for the FE stage and spatial-fusion K/V/FFN,
    temporal frames for T_FUSE).  The scheduler can distribute instances
    across chiplets without any intra-layer surgery; once instances are
    exhausted it falls back to row sharding or pipeline partitioning.
    """

    name: str
    layers: tuple[Layer, ...]
    stage: str
    instances: int = 1
    instance_axis: str = "model"
    depends_on: tuple[str, ...] = ()
    #: whether output-plane row sharding is legal for this group's layers
    row_shardable: bool = True
    #: whether the serial chain may be cut into pipeline segments (deep FE)
    pipeline_splittable: bool = False

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"group {self.name}: empty layer chain")
        if self.instances < 1:
            raise ValueError(f"group {self.name}: instances must be >= 1")

    def __hash__(self) -> int:
        # Groups key the shared plan cache; the structural hash walks the
        # whole layer chain, so cache it per instance (the fields mirror
        # the generated __eq__).
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.name, self.layers, self.stage, self.instances,
                      self.instance_axis, self.depends_on,
                      self.row_shardable, self.pipeline_splittable))
            object.__setattr__(self, "_hash", h)
        return h

    @property
    def macs_per_instance(self) -> int:
        return total_macs(self.layers)

    @property
    def total_macs(self) -> int:
        return self.macs_per_instance * self.instances

    @property
    def output_layer(self) -> Layer:
        return self.layers[-1]

    @property
    def output_bytes_per_instance(self) -> int:
        return self.output_layer.output_bytes

    def with_layers(self, layers: tuple[Layer, ...]) -> "LayerGroup":
        return replace(self, layers=layers)


@dataclass
class Stage:
    """One of the four perception stages; an ordered set of layer groups."""

    name: str
    groups: list[LayerGroup] = field(default_factory=list)

    def add(self, group: LayerGroup) -> LayerGroup:
        if any(g.name == group.name for g in self.groups):
            raise ValueError(f"duplicate group name {group.name!r}")
        self.groups.append(group)
        return group

    def group(self, name: str) -> LayerGroup:
        for g in self.groups:
            if g.name == name:
                return g
        raise KeyError(f"no group {name!r} in stage {self.name}")

    def replace_group(self, group: LayerGroup) -> None:
        for i, g in enumerate(self.groups):
            if g.name == group.name:
                self.groups[i] = group
                return
        raise KeyError(f"no group {group.name!r} in stage {self.name}")

    @property
    def total_macs(self) -> int:
        return sum(g.total_macs for g in self.groups)

    def topo_order(self) -> list[LayerGroup]:
        """Groups in dependency order (raises on cycles/unknown deps)."""
        by_name = {g.name: g for g in self.groups}
        order: list[LayerGroup] = []
        state: dict[str, int] = {}  # 0 unseen, 1 visiting, 2 done

        def visit(name: str) -> None:
            mark = state.get(name, 0)
            if mark == 2:
                return
            if mark == 1:
                raise ValueError(f"dependency cycle through group {name!r}")
            state[name] = 1
            for dep in by_name[name].depends_on:
                if dep in by_name:  # cross-stage deps resolved by Pipeline
                    visit(dep)
            state[name] = 2
            order.append(by_name[name])

        for g in self.groups:
            visit(g.name)
        return order

    def critical_path(self, span_of: Callable[[LayerGroup], float],
                      ) -> float:
        """Longest path through the group DAG.

        ``span_of(group) -> float`` supplies each group's (possibly sharded)
        execution span.  Groups without intra-stage dependencies run
        concurrently, which is how 8 FE models or the Q/K/V projections
        overlap.
        """
        finish: dict[str, float] = {}
        for g in self.topo_order():
            start = max(
                (finish[d] for d in g.depends_on if d in finish), default=0.0)
            finish[g.name] = start + span_of(g)
        return max(finish.values(), default=0.0)


@dataclass
class PerceptionWorkload:
    """The full 4-stage perception pipeline as schedulable stages."""

    stages: list[Stage]

    def stage(self, name: str) -> Stage:
        for s in self.stages:
            if s.name == name:
                return s
        raise KeyError(f"no stage {name!r}")

    @property
    def stage_names(self) -> list[str]:
        return [s.name for s in self.stages]

    def all_groups(self) -> list[LayerGroup]:
        return [g for s in self.stages for g in s.groups]

    def all_layers(self) -> list[Layer]:
        return [layer for g in self.all_groups() for layer in g.layers]

    @property
    def total_macs(self) -> int:
        return sum(s.total_macs for s in self.stages)

    def find_group(self, name: str) -> LayerGroup:
        for g in self.all_groups():
            if g.name == name:
                return g
        raise KeyError(f"no group {name!r} in workload")

    def replace_group(self, group: LayerGroup) -> None:
        for s in self.stages:
            if any(g.name == group.name for g in s.groups):
                s.replace_group(group)
                return
        raise KeyError(f"no group {group.name!r} in workload")
