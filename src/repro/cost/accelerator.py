"""Accelerator configuration records and standard presets.

A :class:`AcceleratorConfig` describes one *execution engine*: a Simba-like
256-PE chiplet, or a large monolithic die used by the paper's baselines
(Table II).  Crucially, the engine's *dataflow* carries a fixed native
spatial tile (16x16 = 256 MACs, the Simba chiplet array and the extent
hard-coded in MAESTRO's dataflow descriptions); a die with more PEs does not
map a single layer wider than that tile.  This reproduces the paper's central
finding: monolithic scaling leaves PEs idle, and chiplet-level parallelism
must be created by the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .energy import ENERGY_28NM, EnergyTable

#: Dataflow style identifiers.
OUTPUT_STATIONARY = "os"
WEIGHT_STATIONARY = "ws"
#: Eyeriss-like row stationary — not used by the paper (it restricts the
#: study to OS/WS "given their proven superiority over other accelerator
#: types"); we implement it so that claim can be checked, see
#: ``benchmarks/bench_ablation_dataflows.py``.
ROW_STATIONARY = "rs"

#: Every dataflow style the cost model implements (sweep axis domain).
DATAFLOW_STYLES = (OUTPUT_STATIONARY, WEIGHT_STATIONARY, ROW_STATIONARY)
_STYLES = DATAFLOW_STYLES


@dataclass(frozen=True)
class AcceleratorConfig:
    """A single DNN execution engine.

    Attributes
    ----------
    pe_count:
        Total multiply-accumulate units on the die.
    dataflow:
        ``"os"`` (ShiDianNao-like output stationary) or ``"ws"``
        (NVDLA-like weight stationary).
    native_tile:
        Spatial extent the dataflow maps per layer, as (rows, cols).
        Faithful to the 16x16 Simba chiplet PE array.
    gb_words_per_cycle:
        Global-buffer-to-array bandwidth (words per cycle).
    pe_cache_words:
        Per-PE operand register file capacity; bounds input reuse across the
        output-channel loop for output-stationary engines.
    reduction_drain_cycles:
        Cycles to drain the cross-PE partial-sum accumulation per output
        vector pass (weight-stationary engines only).  Calibrated to 10,
        which reproduces the paper's MAESTRO-reported OS-over-WS latency
        gap (6.85x) to within 0.2% on the full perception workload.
    vector_lanes:
        SIMD lanes for non-MAC ops (softmax, pooling, elementwise).
    gb_bytes:
        Global buffer capacity.
    """

    name: str
    pe_count: int
    dataflow: str = OUTPUT_STATIONARY
    frequency_hz: float = 2.0e9
    native_tile: tuple[int, int] = (16, 16)
    gb_words_per_cycle: int = 32
    pe_cache_words: int = 1024
    reduction_drain_cycles: int = 10
    vector_lanes: int = 16
    gb_bytes: int = 2 * 1024 * 1024
    energy: EnergyTable = ENERGY_28NM

    def __hash__(self) -> int:
        # Accelerator configs ride in every evaluate()/plan-cache key;
        # cache the structural hash (fields mirror the generated __eq__).
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.name, self.pe_count, self.dataflow,
                      self.frequency_hz, self.native_tile,
                      self.gb_words_per_cycle, self.pe_cache_words,
                      self.reduction_drain_cycles, self.vector_lanes,
                      self.gb_bytes, self.energy))
            object.__setattr__(self, "_hash", h)
        return h

    def __post_init__(self) -> None:
        if self.dataflow not in _STYLES:
            raise ValueError(f"unknown dataflow style {self.dataflow!r}")
        if self.pe_count < self.native_pes:
            raise ValueError(
                f"{self.name}: pe_count {self.pe_count} smaller than native "
                f"tile {self.native_tile}")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.gb_words_per_cycle <= 0:
            raise ValueError("global buffer bandwidth must be positive")

    @property
    def native_pes(self) -> int:
        return self.native_tile[0] * self.native_tile[1]

    @property
    def peak_macs_per_s(self) -> float:
        """Peak throughput assuming every PE is busy each cycle."""
        return self.pe_count * self.frequency_hz

    def with_dataflow(self, dataflow: str) -> "AcceleratorConfig":
        return replace(self, dataflow=dataflow,
                       name=f"{self.name}[{dataflow}]")

    def with_overrides(self,
                       dataflow: str | None = None,
                       frequency_hz: float | None = None,
                       native_tile: tuple[int, int] | None = None,
                       ) -> "AcceleratorConfig":
        """Copy with hardware axes overridden; ``None`` keeps a field.

        The name is kept on purpose: an override changes *parameters* of
        the same engine, and every field participates in equality,
        hashing, and the plan store's content hash — so two configs that
        differ only in frequency (or dataflow: per-quadrant heterogeneous
        packages override it on one quadrant's chiplets) never share a
        plan entry, while an explicit override equal to the default stays
        identical to the unmodified preset (and keeps its cached plans).
        """
        overrides: dict = {}
        if dataflow is not None:
            overrides["dataflow"] = dataflow
        if frequency_hz is not None:
            overrides["frequency_hz"] = frequency_hz
        if native_tile is not None:
            overrides["native_tile"] = tuple(native_tile)
        if not overrides:
            return self
        return replace(self, **overrides)

    @property
    def hw_token(self) -> str:
        """Compact hardware description: ``ws@1.2`` / ``os@2/8x8`` form.

        The dataflow and clock always appear; the native tile only when
        it differs from the 16x16 Simba array.  Used by package
        composition strings (heterogeneous sweep rows and reports).
        """
        token = f"{self.dataflow}@{self.frequency_hz / 1e9:g}"
        if self.native_tile != (16, 16):
            token += f"/{self.native_tile[0]}x{self.native_tile[1]}"
        return token


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------

def simba_chiplet(dataflow: str = OUTPUT_STATIONARY,
                  name: str | None = None) -> AcceleratorConfig:
    """One Simba-like 256-PE accelerator chiplet at 2 GHz (Sec. III)."""
    if name is None:
        name = f"simba-chiplet-{dataflow}"
    return AcceleratorConfig(name=name, pe_count=256, dataflow=dataflow)


def shidiannao_chiplet() -> AcceleratorConfig:
    """ShiDianNao-like output-stationary 256-PE chiplet."""
    return simba_chiplet(OUTPUT_STATIONARY, "shidiannao-256")


def nvdla_chiplet() -> AcceleratorConfig:
    """NVDLA-like weight-stationary 256-PE chiplet."""
    return simba_chiplet(WEIGHT_STATIONARY, "nvdla-256")


def eyeriss_chiplet() -> AcceleratorConfig:
    """Eyeriss-like row-stationary 256-PE chiplet (extension)."""
    return simba_chiplet(ROW_STATIONARY, "eyeriss-256")


def monolithic(pe_count: int,
               dataflow: str = OUTPUT_STATIONARY) -> AcceleratorConfig:
    """A single large die with ``pe_count`` PEs (Table II baselines).

    The die keeps the chiplet's native dataflow tile; extra PEs only help
    via engine-level parallelism, which the baseline executors model.
    """
    return AcceleratorConfig(
        name=f"monolithic-{pe_count}-{dataflow}",
        pe_count=pe_count,
        dataflow=dataflow,
        # A bigger die gets a proportionally wider global-buffer port and
        # a proportionally larger buffer; neither rescues a fixed dataflow.
        gb_words_per_cycle=max(32, 32 * pe_count // 256),
        gb_bytes=2 * 1024 * 1024 * max(1, pe_count // 256),
    )
