"""Analytical DNN accelerator cost model (MAESTRO stand-in)."""

from .accelerator import (
    DATAFLOW_STYLES,
    OUTPUT_STATIONARY,
    WEIGHT_STATIONARY,
    AcceleratorConfig,
    monolithic,
    nvdla_chiplet,
    shidiannao_chiplet,
    simba_chiplet,
)
from .dataflow import MappingAnalysis, map_layer
from .energy import ENERGY_28NM, EnergyTable
from .model import (
    LayerCost,
    chain_cycles,
    chain_energy_j,
    chain_latency_s,
    clear_cache,
    evaluate,
)

__all__ = [
    "DATAFLOW_STYLES",
    "OUTPUT_STATIONARY",
    "WEIGHT_STATIONARY",
    "AcceleratorConfig",
    "monolithic",
    "nvdla_chiplet",
    "shidiannao_chiplet",
    "simba_chiplet",
    "MappingAnalysis",
    "map_layer",
    "ENERGY_28NM",
    "EnergyTable",
    "LayerCost",
    "chain_cycles",
    "chain_energy_j",
    "chain_latency_s",
    "clear_cache",
    "evaluate",
]
