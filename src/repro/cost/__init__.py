"""Analytical DNN accelerator cost model (MAESTRO stand-in)."""

from .accelerator import (
    DATAFLOW_STYLES,
    OUTPUT_STATIONARY,
    WEIGHT_STATIONARY,
    AcceleratorConfig,
    eyeriss_chiplet,
    monolithic,
    nvdla_chiplet,
    shidiannao_chiplet,
    simba_chiplet,
)
from .batch import (
    HAVE_NUMPY,
    PricingRequest,
    builds_request,
    price_batch,
    price_chain,
    seed_pairs,
)
from .dataflow import MappingAnalysis, map_layer
from .energy import ENERGY_28NM, EnergyTable
from .model import (
    LayerCost,
    cached_cost,
    chain_cycles,
    chain_energy_j,
    chain_latency_s,
    clear_cache,
    evaluate,
    seed_cache,
)

__all__ = [
    "HAVE_NUMPY",
    "PricingRequest",
    "builds_request",
    "price_batch",
    "price_chain",
    "seed_pairs",
    "cached_cost",
    "seed_cache",
    "DATAFLOW_STYLES",
    "OUTPUT_STATIONARY",
    "WEIGHT_STATIONARY",
    "AcceleratorConfig",
    "eyeriss_chiplet",
    "monolithic",
    "nvdla_chiplet",
    "shidiannao_chiplet",
    "simba_chiplet",
    "MappingAnalysis",
    "map_layer",
    "ENERGY_28NM",
    "EnergyTable",
    "LayerCost",
    "chain_cycles",
    "chain_energy_j",
    "chain_latency_s",
    "clear_cache",
    "evaluate",
]
