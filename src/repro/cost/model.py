"""Layer and group cost evaluation (latency, energy, utilization).

``evaluate(layer, accel)`` is the single entry point the rest of the system
uses; results are memoized since the scheduler re-prices layers many times
while sharding.  The memo is an explicit table (not ``functools.lru_cache``)
so :mod:`repro.cost.batch` can *pre-seed* it with vectorized batch-pricing
results — seeded entries are exactly equal to what ``evaluate`` would have
computed, so callers cannot tell the difference except in the counters
(``seeded`` tracks how many entries arrived via :func:`seed_cache`).
Latency follows a roofline:

``cycles = max(compute_cycles, gb_words / gb_words_per_cycle)``

Energy sums per-access costs over the operand traffic derived by the
dataflow mapper, plus DRAM energy for streaming true (non-activation) filter
weights once per frame.

Two utilization views are reported, and the distinction carries the paper's
Table II argument:

* ``utilization`` — useful MACs over *all* PE-cycles of the engine.  A
  monolithic 9,216-PE die running a 256-wide dataflow collapses here.
* ``engagement`` — useful MACs over the *native tile's* PE-cycles, i.e. how
  well the layer fills the dataflow's own extent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, NamedTuple

from ..workloads.layers import Layer
from .accelerator import AcceleratorConfig
from .dataflow import MappingAnalysis, map_layer
from .energy import PJ_TO_J


@dataclass(frozen=True)
class LayerCost:
    """Performance of one layer on one engine."""

    layer_name: str
    cycles: int
    latency_s: float
    energy_j: float
    macs: int
    utilization: float
    engagement: float
    bound: str  # "compute" | "bandwidth" | "vector"
    gb_words: int
    accum_words: int
    dram_words: int

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3


class CacheInfo(NamedTuple):
    """``functools.lru_cache``-shaped counter snapshot, plus ``seeded``."""

    hits: int
    misses: int
    maxsize: int | None
    currsize: int
    #: entries that arrived via :func:`seed_cache` (batch pre-seeding)
    #: rather than a first-touch ``evaluate`` miss.
    seeded: int = 0


#: the process-wide (layer, accel) -> LayerCost memo behind evaluate().
_MEMO: dict[tuple[Layer, AcceleratorConfig], LayerCost] = {}
_HITS = 0
_MISSES = 0
_SEEDED = 0


def evaluate(layer: Layer, accel: AcceleratorConfig) -> LayerCost:
    """Price one layer on one engine (memoized process-wide)."""
    global _HITS, _MISSES
    cost = _MEMO.get((layer, accel))
    if cost is not None:
        _HITS += 1
        return cost
    _MISSES += 1
    if layer.kind.is_compute:
        cost = _evaluate_compute(layer, accel)
    else:
        cost = _evaluate_vector(layer, accel)
    _MEMO[(layer, accel)] = cost
    return cost


def cached_cost(layer: Layer,
                accel: AcceleratorConfig) -> LayerCost | None:
    """Peek the memo without touching the hit/miss counters.

    Batch pricing uses this to skip pairs that are already resident
    before building a matrix, so pre-seeding never re-prices work.
    """
    return _MEMO.get((layer, accel))


def seed_cache(costs: Mapping[tuple[Layer, AcceleratorConfig],
                              LayerCost]) -> int:
    """Pre-populate the ``evaluate`` memo with batch-priced results.

    Entries already resident are left untouched (they are identical by
    the batch/scalar exact-equality contract — see
    :mod:`repro.cost.batch`); returns how many entries were inserted.
    Seeded insertions are counted separately from misses so sweep
    reports can tell "priced by the batch matrix" from "priced by a
    first-touch scalar call".
    """
    global _SEEDED
    added = 0
    for key, cost in costs.items():
        if key not in _MEMO:
            _MEMO[key] = cost
            added += 1
    _SEEDED += added
    return added


def _cache_info() -> CacheInfo:
    """``evaluate.cache_info()``: lru_cache-compatible counter snapshot."""
    return CacheInfo(hits=_HITS, misses=_MISSES, maxsize=None,
                     currsize=len(_MEMO), seeded=_SEEDED)


def _cache_clear() -> None:
    """``evaluate.cache_clear()``: drop the memo and reset all counters."""
    global _HITS, _MISSES, _SEEDED
    _MEMO.clear()
    _HITS = 0
    _MISSES = 0
    _SEEDED = 0


# lru_cache-compatible surface: every existing caller (stats, benches,
# tests) keeps working against the seedable explicit memo.
evaluate.cache_info = _cache_info  # type: ignore[attr-defined]
evaluate.cache_clear = _cache_clear  # type: ignore[attr-defined]


def _evaluate_compute(layer: Layer, accel: AcceleratorConfig) -> LayerCost:
    mapping: MappingAnalysis = map_layer(layer, accel)
    e = accel.energy

    traffic_cycles = -(-mapping.gb_words // accel.gb_words_per_cycle)
    cycles = max(mapping.compute_cycles, traffic_cycles)
    bound = "compute" if cycles == mapping.compute_cycles else "bandwidth"

    # True filter weights stream from DRAM once per frame; activation
    # "weights" (attention matmuls) are produced on-package.
    dram_words = 0 if layer.weights_are_activations else layer.weight_words

    energy_pj = (
        layer.macs * e.mac_pj
        + mapping.gb_words * e.gb_pj_word
        + mapping.accum_words * e.accum_pj_word
        + dram_words * e.dram_pj_word
    )

    latency = cycles / accel.frequency_hz
    return LayerCost(
        layer_name=layer.name,
        cycles=cycles,
        latency_s=latency,
        energy_j=energy_pj * PJ_TO_J,
        macs=layer.macs,
        utilization=layer.macs / (cycles * accel.pe_count),
        engagement=mapping.engagement,
        bound=bound,
        gb_words=mapping.gb_words,
        accum_words=mapping.accum_words,
        dram_words=dram_words,
    )


def _evaluate_vector(layer: Layer, accel: AcceleratorConfig) -> LayerCost:
    e = accel.energy
    elems = layer.vector_elems
    cycles = max(1, -(-elems // accel.vector_lanes))
    gb_words = layer.input_words + layer.output_words
    energy_pj = elems * e.vector_pj + gb_words * e.gb_pj_word
    return LayerCost(
        layer_name=layer.name,
        cycles=cycles,
        latency_s=cycles / accel.frequency_hz,
        energy_j=energy_pj * PJ_TO_J,
        macs=0,
        utilization=0.0,
        engagement=0.0,
        bound="vector",
        gb_words=gb_words,
        accum_words=0,
        dram_words=0,
    )


# ----------------------------------------------------------------------
# Aggregates used throughout the scheduler and simulator
# ----------------------------------------------------------------------

def chain_latency_s(layers: Iterable[Layer],
                    accel: AcceleratorConfig) -> float:
    """Serial latency of a layer chain on one engine."""
    return sum(evaluate(layer, accel).latency_s for layer in layers)


def chain_energy_j(layers: Iterable[Layer],
                   accel: AcceleratorConfig) -> float:
    """Total energy of a layer chain on one engine."""
    return sum(evaluate(layer, accel).energy_j for layer in layers)


def chain_cycles(layers: Iterable[Layer],
                 accel: AcceleratorConfig) -> int:
    """Serial cycle count of a layer chain on one engine."""
    return sum(evaluate(layer, accel).cycles for layer in layers)


def clear_cache() -> None:
    """Drop the memoized cost table (mainly for tests/ablations)."""
    evaluate.cache_clear()
