"""Per-access energy tables for the analytical cost model.

The constants model a 28 nm design point in the spirit of Simba scaled from
its 16 nm silicon (the paper scales Simba microarchitecture parameters "to
28 nm", Sec. IV-D).  Energies are per fp16 word unless stated otherwise.

The absolute values matter less than their ratios: the global-buffer-to-MAC
ratio (50:1) determines how strongly operand reuse differentiates the two
dataflow styles, and it is calibrated so that the weight-stationary style
shows the paper's conv-layer energy advantage while attention layers remain
output-stationary-affine (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.layers import BYTES_PER_WORD


@dataclass(frozen=True)
class EnergyTable:
    """Energy per elementary action, in picojoules."""

    #: one 16-bit multiply-accumulate, including local register traffic
    mac_pj: float = 0.6
    #: one word read/written at the chiplet global buffer
    gb_pj_word: float = 30.0
    #: one word at the dedicated psum accumulation buffer (WS engines)
    accum_pj_word: float = 2.0
    #: one word transferred to/from package DRAM (LPDDR4-class)
    dram_pj_word: float = 160.0
    #: one element processed on the vector/SIMD path
    vector_pj: float = 0.3
    #: NoP ground-referenced signaling energy per *bit* per hop (paper value)
    nop_pj_bit: float = 2.04

    @property
    def nop_pj_word(self) -> float:
        """NoP energy per fp16 word per hop."""
        return self.nop_pj_bit * BYTES_PER_WORD * 8

    def scaled(self, factor: float) -> "EnergyTable":
        """Return a uniformly technology-scaled copy (for ablations)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return EnergyTable(
            mac_pj=self.mac_pj * factor,
            gb_pj_word=self.gb_pj_word * factor,
            accum_pj_word=self.accum_pj_word * factor,
            dram_pj_word=self.dram_pj_word * factor,
            vector_pj=self.vector_pj * factor,
            nop_pj_bit=self.nop_pj_bit * factor,
        )


#: Default 28 nm-scaled table used by all presets.
ENERGY_28NM = EnergyTable()

PJ_TO_J = 1e-12
