"""Dataflow mapping analysis: spatial engagement, cycles, and buffer traffic.

This is the data-centric core of the MAESTRO stand-in.  For each (layer,
accelerator) pair we derive:

* how the dataflow tiles the layer onto its native spatial extent,
* how many compute cycles the temporal loops take,
* how many words each operand moves at the global buffer (reuse analysis).

Two dataflow styles are implemented, matching the paper's Sec. III setup:

**Output stationary (ShiDianNao-like).**  The output plane is tiled 2D onto
the array; each PE owns one output pixel and temporally accumulates over
``k * c * r * s``.  Partial sums never move.  The filter operand is
re-fetched from the global buffer once per tile position; input activations
are cached in the PE register file across the output-channel loop when they
fit.  Pure 1D token sets (plane height 1) fold across the whole array.

**Weight stationary (NVDLA-like).**  The (K, C) filter face is tiled onto
the array; the output plane streams temporally.  Weights are fetched once;
input activations are served once from the conv buffer (NVDLA CBUF semantics:
reuse across the full K loop); partial sums traverse PEs and pay a
sequential accumulation drain per output vector pass
(:attr:`AcceleratorConfig.reduction_drain_cycles`) plus spill traffic to the
accumulation buffer whenever the reduction spans multiple C tiles.

The drain term is the calibrated mechanism behind the paper's Fig. 3/4
observation that the OS dataflow is uniformly faster (6.85x geomean): with
``r*s = 9`` convolutions it costs ~(9+8)/9 = 1.9x, while attention layers
(``r = s = 1``) degrade to ~9x — which is exactly the affinity split the
paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workloads.layers import Layer, LayerKind
from .accelerator import (
    OUTPUT_STATIONARY,
    ROW_STATIONARY,
    WEIGHT_STATIONARY,
    AcceleratorConfig,
)


@dataclass(frozen=True)
class MappingAnalysis:
    """Result of mapping one compute layer onto one engine."""

    #: number of sequential spatial passes (tile positions / filter tiles)
    passes: int
    #: compute cycles for the whole layer (excludes bandwidth stalls)
    compute_cycles: int
    #: average fraction of the native tile's PEs doing useful work
    engagement: float
    #: global-buffer words moved per operand
    weight_gb_words: int
    input_gb_words: int
    output_gb_words: int
    #: psum spill words at the accumulation buffer (WS only)
    accum_words: int

    @property
    def gb_words(self) -> int:
        return self.weight_gb_words + self.input_gb_words + self.output_gb_words


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _plane_tiles(layer: Layer, tile: tuple[int, int]) -> tuple[int, float]:
    """Tile the output plane; return (positions, engagement).

    2D planes tile as ceil(h/th) * ceil(w/tw); 1D token rows (h == 1) fold
    across the full native extent since they carry no 2D adjacency to
    preserve.
    """
    th, tw = tile
    pes = th * tw
    if layer.out_h == 1:
        positions = _ceil_div(layer.out_w, pes)
    else:
        positions = _ceil_div(layer.out_h, th) * _ceil_div(layer.out_w, tw)
    engagement = layer.out_plane / (positions * pes)
    return positions, engagement


def map_output_stationary(layer: Layer,
                          accel: AcceleratorConfig) -> MappingAnalysis:
    """ShiDianNao-like mapping of a compute layer."""
    positions, engagement = _plane_tiles(layer, accel.native_tile)
    work_per_pixel = layer.k * layer.c * layer.r * layer.s
    compute_cycles = positions * work_per_pixel

    # Filter operand re-fetched once per tile position.
    weight_gb = layer.weight_words * positions

    # Inputs cached per-PE across the K loop when the per-pixel receptive
    # field fits the PE register file; otherwise re-fetched per K chunk.
    footprint = layer.c * layer.r * layer.s
    if layer.kind is LayerKind.DWCONV:
        rereads = 1
    else:
        rereads = min(layer.k, _ceil_div(footprint, accel.pe_cache_words))
    input_gb = layer.input_words * rereads

    return MappingAnalysis(
        passes=positions,
        compute_cycles=compute_cycles,
        engagement=engagement,
        weight_gb_words=weight_gb,
        input_gb_words=input_gb,
        output_gb_words=layer.output_words,
        accum_words=0,
    )


def map_weight_stationary(layer: Layer,
                          accel: AcceleratorConfig) -> MappingAnalysis:
    """NVDLA-like mapping of a compute layer."""
    th, tw = accel.native_tile
    pes = th * tw
    if layer.kind is LayerKind.DWCONV:
        # No cross-channel reduction: K channels spread over the whole array.
        passes = _ceil_div(layer.k, pes)
        engagement = layer.k / (passes * pes)
        c_tiles = 1
        drain = 0  # each PE accumulates privately; nothing crosses PEs
    else:
        k_tiles = _ceil_div(layer.k, th)
        c_tiles = _ceil_div(layer.c, tw)
        passes = k_tiles * c_tiles
        engagement = (layer.k * layer.c) / (passes * pes)
        drain = accel.reduction_drain_cycles

    work_per_pass = layer.out_plane * (layer.r * layer.s + drain)
    compute_cycles = passes * work_per_pass

    # Weights loaded once; inputs served once from the conv buffer (reused
    # across the K loop and the r*s window); outputs written once.  Partial
    # sums spill to the accumulation buffer for every extra C tile.
    accum = 2 * layer.output_words * (c_tiles - 1)

    return MappingAnalysis(
        passes=passes,
        compute_cycles=compute_cycles,
        engagement=engagement,
        weight_gb_words=layer.weight_words,
        input_gb_words=layer.input_words,
        output_gb_words=layer.output_words,
        accum_words=accum,
    )


def map_row_stationary(layer: Layer,
                       accel: AcceleratorConfig) -> MappingAnalysis:
    """Eyeriss-like mapping (extension beyond the paper's OS/WS pair).

    Each PE performs a 1D row convolution: the array's row axis holds the
    ``r`` filter rows (folded across output channels when ``r`` is small),
    the column axis holds a tile of output rows.  Partial sums accumulate
    vertically across the ``r`` rows of a fold.

    With ``r = s = 1`` (attention/linear layers) the row dimension carries
    no reuse and the mapping degenerates to an output-tiled scheme with
    extra weight re-fetches — which is exactly why the paper's workload
    mix favours the OS/WS pair.
    """
    th, tw = accel.native_tile
    if layer.kind is LayerKind.DWCONV:
        # One channel behaves like k-fold rows of an ordinary conv.
        folds = max(1, th // layer.r)
        k_groups = _ceil_div(layer.k, folds)
        passes = _ceil_div(layer.out_h, tw) * k_groups
        work_per_pass = layer.out_w * layer.s
        engaged = (layer.k * layer.r * min(layer.out_h, tw)
                   / (passes * th * tw / _ceil_div(layer.out_h, tw)))
        engagement = min(1.0, engaged / max(1, k_groups))
        accum = 2 * layer.output_words * (layer.r - 1)
        compute = passes * work_per_pass
    else:
        folds = max(1, th // layer.r)
        k_groups = _ceil_div(layer.k, folds)
        row_tiles = _ceil_div(layer.out_h, tw)
        passes = row_tiles * k_groups
        # Per pass: every output column, kernel column, input channel.
        work_per_pass = layer.out_w * layer.s * layer.c
        compute = passes * work_per_pass
        useful = layer.macs
        engagement = min(1.0, useful / (compute * th * tw))
        accum = 2 * layer.output_words * (layer.r - 1)

    weight_rereads = _ceil_div(layer.out_h, tw)
    return MappingAnalysis(
        passes=passes,
        compute_cycles=compute,
        engagement=max(engagement, 1e-9),
        weight_gb_words=layer.weight_words * weight_rereads,
        input_gb_words=layer.input_words * max(1, k_groups // 4),
        output_gb_words=layer.output_words,
        accum_words=accum,
    )


_MAPPERS = {
    OUTPUT_STATIONARY: map_output_stationary,
    WEIGHT_STATIONARY: map_weight_stationary,
    ROW_STATIONARY: map_row_stationary,
}


def map_layer(layer: Layer, accel: AcceleratorConfig) -> MappingAnalysis:
    """Dispatch to the engine's dataflow mapper (compute layers only)."""
    if not layer.kind.is_compute:
        raise ValueError(
            f"{layer.name}: {layer.kind} is not a MAC-array layer")
    return _MAPPERS[accel.dataflow](layer, accel)
