"""Vectorized batch pricing of (layer, accelerator) pairs.

The scalar entry point :func:`repro.cost.model.evaluate` prices one layer
on one engine per call; design-space sweeps price thousands of such pairs,
one Python mapper call at a time.  This module splits "enumerate
candidates" from "price candidates":

* :class:`PricingRequest` collects the *distinct* ``(layer, accel)`` pairs
  a scenario grid will price — walked through ``Scenario.build()``, the
  single package-construction path — deduplicated up front;
* :func:`price_batch` evaluates a request as one ``layers x
  candidate-configs`` matrix of closed-form roofline/energy arithmetic:
  pairs are bucketed per accelerator config (all accel fields are scalar
  constants within a bucket) and per dataflow, and each bucket's columns
  (tile positions, compute cycles, operand traffic, roofline cycles,
  energy) are computed as whole-array expressions;
* :func:`seed_pairs` / :func:`price_chain` push batch results into the
  ``evaluate`` memo (:func:`repro.cost.model.seed_cache`), so planner
  inner loops become cache hits instead of mapper calls.

Two engines produce the matrix:

* **numpy** (optional dev dependency — see ``requirements-dev.txt``):
  whole-array int64/float64 arithmetic.  This is the only module allowed
  to import numpy (repro-lint rule R6); the deterministic scalar core
  stays stdlib-only.
* **scalar fallback** (pure stdlib): loops the same closed forms the
  scalar evaluator uses, through the same request/result plumbing.

**Exact-equality contract.**  Both engines return :class:`LayerCost`
records *exactly equal* — same bytes after JSON serialization — to what
scalar ``evaluate()`` computes.  The numpy path replicates the scalar
arithmetic expression-for-expression in the same order: integer work
(ceil-divisions, products, the roofline ``max``) runs in int64, float
work (energy sums, latency) elementwise in float64 with the scalar
code's left-to-right association, and the two single-op ``int / int``
true divisions (``engagement``, ``utilization``) are deliberately done
per element in Python — CPython rounds those exactly from the integer
operands, which a float64 pre-conversion could not guarantee for
products beyond 2**53.  Equality holds whenever every integer
intermediate fits int64, which covers the model's domain by orders of
magnitude; ``tests/test_pricing.py`` locks the contract with property
tests and a frozen fixture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from ..workloads.layers import Layer, LayerKind
from .accelerator import (
    OUTPUT_STATIONARY,
    ROW_STATIONARY,
    WEIGHT_STATIONARY,
    AcceleratorConfig,
)
from .energy import PJ_TO_J
from .model import (
    LayerCost,
    _evaluate_compute,
    _evaluate_vector,
    cached_cost,
    seed_cache,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..sweep.scenario import Scenario

try:  # the one sanctioned numpy import (repro-lint rule R6)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via engine="scalar"
    _np = None

#: whether the vectorized engine is available in this environment.
HAVE_NUMPY = _np is not None

#: below this many pairs the numpy fixed costs outweigh the vector win.
_NUMPY_MIN_PAIRS = 8

#: one (layer, accel) pricing candidate.
Pair = tuple[Layer, AcceleratorConfig]


@dataclass(frozen=True)
class PricingRequest:
    """A deduplicated, order-preserving set of pricing candidates."""

    pairs: tuple[Pair, ...]

    def __len__(self) -> int:
        return len(self.pairs)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Pair]) -> "PricingRequest":
        """Build a request from raw pairs, deduplicating in first-seen
        order (the order :func:`price_batch` results come back in)."""
        seen: dict[Pair, None] = {}
        for pair in pairs:
            seen.setdefault(pair)
        return cls(pairs=tuple(seen))

    @classmethod
    def from_scenarios(cls,
                       scenarios: Iterable["Scenario"]) -> "PricingRequest":
        """Walk a scenario grid and collect every distinct pair its
        schedulers will price at chain granularity.

        Each scenario is materialized through ``Scenario.build()`` (the
        single package-construction path), contributing its workload's
        layers crossed with the package's distinct chiplet configs, plus
        the trunk-DSE candidate engines when the scenario sets a
        ``het_ws_budget``.  Row-shard bands are deliberately absent: the
        planner derives them per feasible shard count, and
        ``core.sharding`` batch-prices them at that point.
        """
        pairs: list[Pair] = []
        for scenario in scenarios:
            pairs.extend(scenario_pairs(scenario))
        return cls.from_pairs(pairs)


def _trunk_accels(scenario: "Scenario") -> tuple[AcceleratorConfig, ...]:
    """The trunk DSE's candidate engines for one scenario (if it runs)."""
    if scenario.het_ws_budget is None:
        return ()
    from .accelerator import nvdla_chiplet, shidiannao_chiplet
    trunk_ghz, trunk_tile = scenario.trunk_hw()
    freq = None if trunk_ghz is None else trunk_ghz * 1e9
    return (
        shidiannao_chiplet().with_overrides(frequency_hz=freq,
                                            native_tile=trunk_tile),
        nvdla_chiplet().with_overrides(frequency_hz=freq,
                                       native_tile=trunk_tile),
    )


def build_pairs(built,
                extra_accels: Sequence[AcceleratorConfig] = (),
                ) -> list[Pair]:
    """All chain-granularity pairs one materialized scenario prices.

    ``built`` is a ``ScenarioBuild``: its workload's layers are crossed
    with the package's distinct per-chiplet configs (one for homogeneous
    packages, one per overridden quadrant otherwise) and any
    ``extra_accels`` (trunk-DSE candidates).
    """
    accels: dict[AcceleratorConfig, None] = {}
    for chiplet in built.package.chiplets:
        accels.setdefault(chiplet.accel)
    for accel in extra_accels:
        accels.setdefault(accel)
    layers = built.workload.all_layers()
    return [(layer, accel) for accel in accels for layer in layers]


def scenario_pairs(scenario: "Scenario", built=None) -> list[Pair]:
    """Chain-granularity pairs one scenario's schedulers will price.

    The sweep worker's pre-seed hook: pass the ``ScenarioBuild`` it
    already holds as ``built`` to skip a redundant ``Scenario.build()``.
    """
    if built is None:
        built = scenario.build()
    return build_pairs(built, _trunk_accels(scenario))


def builds_request(builds: Iterable) -> PricingRequest:
    """One deduplicated request across many materialized scenarios.

    The design-batch path (:mod:`repro.design`): callers that already
    hold every candidate's ``ScenarioBuild`` collect the whole batch's
    distinct pairs into a *single* request, so one :func:`price_batch`
    call prices an entire design space — candidates sharing a workload
    or chiplet config are priced once, not once per candidate.
    """
    pairs: list[Pair] = []
    for built in builds:
        pairs.extend(build_pairs(built, _trunk_accels(built.scenario)))
    return PricingRequest.from_pairs(pairs)


# ----------------------------------------------------------------------
# Batch evaluation
# ----------------------------------------------------------------------

def price_batch(request: "PricingRequest | Iterable[Pair]",
                engine: str = "auto") -> dict[Pair, LayerCost]:
    """Price every pair of a request; returns ``pair -> LayerCost``.

    ``engine`` selects the matrix backend: ``"numpy"`` (vectorized,
    requires the optional dependency), ``"scalar"`` (pure-stdlib
    fallback), or ``"auto"`` (numpy when available and the batch is
    large enough to amortize array setup).  Both engines return results
    exactly equal to scalar :func:`repro.cost.model.evaluate`; the memo
    and its counters are never touched — use :func:`seed_pairs` to push
    results into it.
    """
    if not isinstance(request, PricingRequest):
        request = PricingRequest.from_pairs(request)
    pairs = request.pairs
    if engine not in ("auto", "numpy", "scalar"):
        raise ValueError(
            f"unknown pricing engine {engine!r}; "
            f"expected auto, numpy, or scalar")
    if engine == "numpy" and not HAVE_NUMPY:
        raise RuntimeError(
            "pricing engine 'numpy' requested but numpy is not "
            "installed (see requirements-dev.txt); use engine='auto' "
            "for the stdlib fallback")
    use_numpy = (engine == "numpy"
                 or (engine == "auto" and HAVE_NUMPY
                     and len(pairs) >= _NUMPY_MIN_PAIRS))
    if use_numpy:
        costs = _price_numpy(pairs)
    else:
        costs = [_price_one(layer, accel) for layer, accel in pairs]
    return dict(zip(pairs, costs))


def _price_one(layer: Layer, accel: AcceleratorConfig) -> LayerCost:
    """Scalar fallback: the evaluator's own closed forms, uncached."""
    if layer.kind.is_compute:
        return _evaluate_compute(layer, accel)
    return _evaluate_vector(layer, accel)


def seed_pairs(pairs: Iterable[Pair], engine: str = "auto") -> int:
    """Batch-price the not-yet-memoized pairs and seed the memo.

    Returns how many entries were inserted.  Already-resident pairs are
    skipped before pricing, so repeated seeding is idempotent and never
    duplicates mapper work.
    """
    pending = [pair for pair in dict.fromkeys(pairs)
               if cached_cost(*pair) is None]
    if not pending:
        return 0
    return seed_cache(price_batch(pending, engine=engine))


def price_chain(layers: Iterable[Layer], accel: AcceleratorConfig,
                engine: str = "auto") -> int:
    """Seed the memo for a layer chain on one engine (planner hook)."""
    return seed_pairs([(layer, accel) for layer in layers], engine=engine)


# ----------------------------------------------------------------------
# numpy engine
# ----------------------------------------------------------------------

def _fast_cost(fields: dict) -> LayerCost:
    """Construct a LayerCost without the frozen-dataclass ``__init__``.

    A frozen dataclass pays one ``object.__setattr__`` per field; batch
    assembly builds thousands of records, so the field dict is installed
    directly.  The result is indistinguishable from a constructed one
    (same ``__dict__``, same generated ``__eq__``/``__hash__``).
    """
    cost = LayerCost.__new__(LayerCost)
    cost.__dict__.update(fields)
    return cost


#: per-layer integer features, extracted once per distinct layer.
_FeatureRow = tuple


def _features(layer: Layer) -> _FeatureRow:
    return (layer.name, layer.out_h, layer.out_w, layer.out_plane,
            layer.k, layer.c, layer.r, layer.s, layer.macs,
            layer.weight_words, layer.input_words, layer.output_words,
            layer.vector_elems,
            layer.kind is LayerKind.DWCONV,
            layer.weights_are_activations,
            layer.kind.is_compute)


def _cdiv(a, b):
    """Elementwise ceiling division (matches the scalar ``-(-a // b)``)."""
    return -(-a // b)


def _price_numpy(pairs: Sequence[Pair]) -> list[LayerCost]:
    """Vectorized pricing: bucket by accel config, evaluate per bucket.

    The inner loop runs once per pair, so its memo/bucket lookups go
    through an ``id()``-keyed fast path (int hashes) before falling back
    to the structural ``Layer``/``AcceleratorConfig``-keyed memos —
    structural hashing at this call volume dominates the batch wall
    clock.  Both levels are needed: ``Scenario.build()`` materializes
    fresh but equal objects per scenario, so the structural level
    deduplicates feature extraction across scenarios while the id level
    absorbs the repeats within one.  ``pairs`` keeps every object alive
    for the duration of the call, so ids cannot be reused.
    """
    rows_by_id: dict[int, _FeatureRow] = {}
    rows_by_layer: dict[Layer, _FeatureRow] = {}
    bucket_by_id: dict[int, tuple[list[int], list[_FeatureRow]]] = {}
    buckets: dict[AcceleratorConfig, tuple[list[int], list[_FeatureRow]]] = {}
    for index, (layer, accel) in enumerate(pairs):
        bucket = bucket_by_id.get(id(accel))
        if bucket is None:
            bucket = bucket_by_id[id(accel)] = buckets.setdefault(
                accel, ([], []))
        indices, rows = bucket
        row = rows_by_id.get(id(layer))
        if row is None:
            row = rows_by_layer.get(layer)
            if row is None:
                row = rows_by_layer[layer] = _features(layer)
            rows_by_id[id(layer)] = row
        indices.append(index)
        rows.append(row)
    results: list[LayerCost | None] = [None] * len(pairs)
    for accel, (indices, rows) in buckets.items():
        compute_idx = [i for i, row in zip(indices, rows) if row[15]]
        compute_rows = [row for row in rows if row[15]]
        vector_idx = [i for i, row in zip(indices, rows) if not row[15]]
        vector_rows = [row for row in rows if not row[15]]
        if compute_rows:
            for i, cost in zip(compute_idx,
                               _numpy_compute(compute_rows, accel)):
                results[i] = cost
        if vector_rows:
            for i, cost in zip(vector_idx,
                               _numpy_vector(vector_rows, accel)):
                results[i] = cost
    return results  # type: ignore[return-value]


def _columns(rows: Sequence[_FeatureRow]):
    """Transpose feature rows into int64 columns (plus name/bool lists)."""
    cols = list(zip(*rows))
    ints = {name: _np.asarray(cols[i], dtype=_np.int64)
            for i, name in ((1, "out_h"), (2, "out_w"), (3, "out_plane"),
                            (4, "k"), (5, "c"), (6, "r"), (7, "s"),
                            (8, "macs"), (9, "weight_words"),
                            (10, "input_words"), (11, "output_words"),
                            (12, "vector_elems"))}
    return list(cols[0]), ints, _np.asarray(cols[13]), list(cols[14])


def _numpy_vector(rows: Sequence[_FeatureRow],
                  accel: AcceleratorConfig) -> list[LayerCost]:
    """Vector-path layers: ``_evaluate_vector`` as array expressions."""
    names, f, _, _ = _columns(rows)
    e = accel.energy
    elems = f["vector_elems"]
    cycles = _np.maximum(1, _cdiv(elems, accel.vector_lanes))
    gb_words = f["input_words"] + f["output_words"]
    energy_pj = elems * e.vector_pj + gb_words * e.gb_pj_word
    energy_j = (energy_pj * PJ_TO_J).tolist()
    latency = (cycles / accel.frequency_hz).tolist()
    return [
        _fast_cost({"layer_name": name, "cycles": cy, "latency_s": lat,
                    "energy_j": en, "macs": 0, "utilization": 0.0,
                    "engagement": 0.0, "bound": "vector", "gb_words": gb,
                    "accum_words": 0, "dram_words": 0})
        for name, cy, lat, en, gb in zip(
            names, cycles.tolist(), latency, energy_j, gb_words.tolist())
    ]


def _numpy_compute(rows: Sequence[_FeatureRow],
                   accel: AcceleratorConfig) -> list[LayerCost]:
    """Compute-path layers: mapper + roofline/energy as array expressions."""
    names, f, dw, wact = _columns(rows)
    th, tw = accel.native_tile
    pes = th * tw
    if accel.dataflow == OUTPUT_STATIONARY:
        mapped = _map_os(f, dw, accel, th, tw, pes)
    elif accel.dataflow == WEIGHT_STATIONARY:
        mapped = _map_ws(f, dw, accel, th, tw, pes)
    elif accel.dataflow == ROW_STATIONARY:
        mapped = _map_rs(f, dw, th, tw)
    else:  # pragma: no cover - AcceleratorConfig validates dataflow
        raise ValueError(f"unknown dataflow style {accel.dataflow!r}")
    compute_cycles, engagement, weight_gb, input_gb, accum = mapped
    e = accel.energy

    gb_words = weight_gb + input_gb + f["output_words"]
    traffic_cycles = _cdiv(gb_words, accel.gb_words_per_cycle)
    cycles = _np.maximum(compute_cycles, traffic_cycles)
    compute_bound = (cycles == compute_cycles).tolist()
    dram_words = _np.where(_np.asarray(wact), 0, f["weight_words"])
    energy_pj = (
        f["macs"] * e.mac_pj
        + gb_words * e.gb_pj_word
        + accum * e.accum_pj_word
        + dram_words * e.dram_pj_word
    )
    energy_j = (energy_pj * PJ_TO_J).tolist()
    latency = (cycles / accel.frequency_hz).tolist()

    pe_count = accel.pe_count
    return [
        _fast_cost({
            "layer_name": name,
            "cycles": cy,
            "latency_s": lat,
            "energy_j": en,
            "macs": m,
            # Single-op int/int division in Python: exactly the scalar
            # evaluator's rounding, even past 2**53.
            "utilization": m / (cy * pe_count),
            "engagement": eng,
            "bound": "compute" if cb else "bandwidth",
            "gb_words": gb,
            "accum_words": ac,
            "dram_words": dr,
        })
        for name, cy, lat, en, m, cb, eng, gb, ac, dr in zip(
            names, cycles.tolist(), latency, energy_j, f["macs"].tolist(),
            compute_bound, engagement, gb_words.tolist(), accum.tolist(),
            dram_words.tolist())
    ]


def _map_os(f, dw, accel: AcceleratorConfig, th: int, tw: int, pes: int):
    """``map_output_stationary`` over columns."""
    positions = _np.where(
        f["out_h"] == 1,
        _cdiv(f["out_w"], pes),
        _cdiv(f["out_h"], th) * _cdiv(f["out_w"], tw))
    compute_cycles = positions * (f["k"] * f["c"] * f["r"] * f["s"])
    weight_gb = f["weight_words"] * positions
    footprint = f["c"] * f["r"] * f["s"]
    rereads = _np.where(
        dw, 1,
        _np.minimum(f["k"], _cdiv(footprint, accel.pe_cache_words)))
    input_gb = f["input_words"] * rereads
    accum = _np.zeros(len(positions), dtype=_np.int64)
    plane = f["out_plane"].tolist()
    den = (positions * pes).tolist()
    engagement = [plane[i] / den[i] for i in range(len(plane))]
    return compute_cycles, engagement, weight_gb, input_gb, accum


def _map_ws(f, dw, accel: AcceleratorConfig, th: int, tw: int, pes: int):
    """``map_weight_stationary`` over columns."""
    c_tiles = _np.where(dw, 1, _cdiv(f["c"], tw))
    passes = _np.where(dw,
                       _cdiv(f["k"], pes),
                       _cdiv(f["k"], th) * c_tiles)
    drain = _np.where(dw, 0, accel.reduction_drain_cycles)
    work_per_pass = f["out_plane"] * (f["r"] * f["s"] + drain)
    compute_cycles = passes * work_per_pass
    accum = 2 * f["output_words"] * (c_tiles - 1)
    num = _np.where(dw, f["k"], f["k"] * f["c"]).tolist()
    den = (passes * pes).tolist()
    engagement = [num[i] / den[i] for i in range(len(num))]
    return compute_cycles, engagement, f["weight_words"], f["input_words"], \
        accum


def _map_rs(f, dw, th: int, tw: int):
    """``map_row_stationary`` over columns."""
    folds = _np.maximum(1, th // f["r"])
    k_groups = _cdiv(f["k"], folds)
    row_tiles = _cdiv(f["out_h"], tw)
    passes = row_tiles * k_groups
    work_per_pass = _np.where(dw,
                              f["out_w"] * f["s"],
                              f["out_w"] * f["s"] * f["c"])
    compute_cycles = passes * work_per_pass
    accum = 2 * f["output_words"] * (f["r"] - 1)
    weight_gb = f["weight_words"] * row_tiles
    input_gb = f["input_words"] * _np.maximum(1, k_groups // 4)

    # The engagement chains mix int/int divisions with float min/max;
    # run them per element in Python, in the scalar mapper's exact order.
    dw_l = dw.tolist()
    k_l, r_l = f["k"].tolist(), f["r"].tolist()
    out_h_l, macs_l = f["out_h"].tolist(), f["macs"].tolist()
    passes_l, row_tiles_l = passes.tolist(), row_tiles.tolist()
    k_groups_l, compute_l = k_groups.tolist(), compute_cycles.tolist()
    engagement = []
    for i in range(len(dw_l)):
        if dw_l[i]:
            engaged = (k_l[i] * r_l[i] * min(out_h_l[i], tw)
                       / (passes_l[i] * th * tw / row_tiles_l[i]))
            eng = min(1.0, engaged / max(1, k_groups_l[i]))
        else:
            eng = min(1.0, macs_l[i] / (compute_l[i] * th * tw))
        engagement.append(max(eng, 1e-9))
    return compute_cycles, engagement, weight_gb, input_gb, accum
