"""Disk-backed, versioned plan store shared across sweep processes.

The process-wide :class:`~repro.core.plancache.PlanCache` makes a single
process fast; this module makes the *fleet* fast.  A :class:`PlanStore` is a
directory of immutable shard files that any number of concurrent sweep
workers (or successive runs) can read and extend without locks:

* **Keys are content hashes.**  ``plan_key_hash`` canonicalizes the frozen
  ``(group, n_chiplets, accel, mode)`` lookup tuple — via the same
  ``group_to_dict``/``accel_to_dict`` views ``repro.io.serialize`` uses for
  artifacts — into sorted JSON and takes its SHA-256.  Two processes that
  price the same group on the same accelerator produce the same key, no
  matter how the objects were constructed.
* **Entries are exact.**  Values are ``plan_to_record`` dumps of the
  computed :class:`~repro.core.sharding.GroupPlan` (or ``null`` for
  infeasible probes, which the cache memoizes too).  JSON floats round-trip
  via ``repr``, so a store-served plan is bit-identical to a freshly
  computed one and warm rows serialize byte-for-byte like cold rows.
* **Writes are atomic and content-addressed.**  A flush serializes its
  entries to one shard, writes it to a temp file in the store directory,
  and ``os.replace``-renames it to ``plans-<digest>.json``.  Readers never
  observe a partial shard; two workers flushing identical content collide
  on the same name with the same bytes, which is harmless.
* **A schema version stamps every shard.**  Bump :data:`SCHEMA_VERSION`
  whenever the cost model, the ``GroupPlan`` fields, or the key payload
  change meaning; ``load`` then ignores stale shards (and corrupted or
  truncated files), so an outdated store degrades to a cold start instead
  of serving wrong plans.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import uuid
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..cost import AcceleratorConfig
    from ..workloads.graph import LayerGroup
    from .sharding import GroupPlan

#: Store layout / cost-model revision.  Shards stamped with a different
#: version are ignored on load (stale stores invalidate themselves).
SCHEMA_VERSION = 1

#: shard filename pattern: plans-<content digest>.json
_SHARD_PREFIX = "plans-"
_SHARD_SUFFIX = ".json"


def _group_fragment(group: "LayerGroup") -> str:
    """Canonical JSON fragment of one group (sorted keys, compact)."""
    from ..io.serialize import group_to_dict
    return json.dumps(group_to_dict(group), sort_keys=True,
                      separators=(",", ":"))


def _accel_fragment(accel: "AcceleratorConfig") -> str:
    """Canonical JSON fragment of one accelerator config."""
    from ..io.serialize import accel_to_dict
    return json.dumps(accel_to_dict(accel), sort_keys=True,
                      separators=(",", ":"))


def _compose_key_text(group_json: str, n: int, accel_json: str,
                      mode: str, context: str | None = None) -> str:
    """The canonical key payload, composed from pre-serialized fragments.

    Equivalent to ``json.dumps({"accel": ..., "group": ..., "mode": ...,
    "n": ...}, sort_keys=True, separators=(",", ":"))`` — the field names
    are already in sorted order here.  A non-``None`` planning context
    (e.g. a non-mesh NoP topology kind) adds a ``"context"`` field; the
    default omits it, so every hash minted before contexts existed stays
    byte-identical and old store shards remain addressable.
    """
    if context is None:
        return (f'{{"accel":{accel_json},"group":{group_json},'
                f'"mode":{json.dumps(mode)},"n":{n}}}')
    return (f'{{"accel":{accel_json},"context":{json.dumps(context)},'
            f'"group":{group_json},"mode":{json.dumps(mode)},"n":{n}}}')


def content_digest(payload) -> str:
    """SHA-256 content hash of any JSON-serializable payload.

    Canonical form: sorted-key, compact-separator JSON — the same
    canonicalization :func:`plan_key_hash` applies to plan keys.  This is
    the one general-purpose hashing entry point for the rest of the
    system (delta-sweeps fingerprint scenarios with it); hashing stays
    confined to this module per repro-lint rule R2.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def plan_key_hash(group: "LayerGroup", n: int, accel: "AcceleratorConfig",
                  mode: str, context: str | None = None) -> str:
    """SHA-256 content hash of one plan-cache key.

    Canonical form: sorted-key JSON over the serialized group, the chiplet
    count, the serialized accelerator, and the mode string — via the same
    ``group_to_dict``/``accel_to_dict`` views artifacts use.  Layer
    ``tags`` are excluded (they are excluded from ``Layer`` equality too);
    everything cost-relevant — including ``weights_are_activations`` — is
    part of the serialized views.  ``context`` scopes the key to a
    planning context (today: the package's non-mesh NoP topology kind
    and/or its per-quadrant hetero composition, as composed by
    ``Scenario.plan_context``), so e.g. torus-planned entries never
    collide with mesh entries, and heterogeneous-package entries never
    collide with homogeneous ones.
    """
    # Imports inside the serialize helpers are lazy: repro.io.serialize
    # imports from repro.core, so a module-level import would cycle
    # during package initialization.
    text = _compose_key_text(_group_fragment(group), n,
                             _accel_fragment(accel), mode, context)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class PlanKeyMemo:
    """Memoized :func:`plan_key_hash` for one store or client instance.

    Keys hash the serialized ``(group, n, accel, mode, context)`` tuple;
    the memo keeps one canonical JSON fragment per group/accel object so
    repeated lookups of the same structural key hash the payload once.
    Both the disk-backed :class:`PlanStore` and the networked
    :class:`~repro.serve.client.RemoteStoreClient` front their lookups
    with one of these — hashing itself stays confined to this module per
    repro-lint rule R2, so the wire protocol and the disk layout can
    never disagree about a key.
    """

    def __init__(self) -> None:
        self._hash_memo: dict = {}
        # Fragment memos: a group/accel serializes once per memo
        # instance, not once per (n, mode) key that references it.
        self._group_fragments: dict = {}
        self._accel_fragments: dict = {}

    def key_hash(self, group: "LayerGroup", n: int,
                 accel: "AcceleratorConfig", mode: str,
                 context: str | None = None) -> str:
        """Memoized :func:`plan_key_hash` for this instance."""
        memo_key = (group, n, accel, mode, context)
        cached = self._hash_memo.get(memo_key)
        if cached is None:
            group_json = self._group_fragments.get(group)
            if group_json is None:
                group_json = _group_fragment(group)
                self._group_fragments[group] = group_json
            accel_json = self._accel_fragments.get(accel)
            if accel_json is None:
                accel_json = _accel_fragment(accel)
                self._accel_fragments[accel] = accel_json
            text = _compose_key_text(group_json, n, accel_json, mode,
                                     context)
            cached = hashlib.sha256(text.encode("utf-8")).hexdigest()
            self._hash_memo[memo_key] = cached
        return cached


class PlanStore(PlanKeyMemo):
    """A directory of atomic, content-addressed plan shards.

    Safe for concurrent use by independent processes: loads only see
    complete shards, flushes never overwrite foreign data, and no file is
    ever modified in place.  One instance additionally memoizes key hashes
    per ``(group, n, accel, mode)`` tuple (see :class:`PlanKeyMemo`) so
    repeated lookups of the same structural key hash the payload once.
    """

    def __init__(self, path: str | pathlib.Path,
                 schema_version: int = SCHEMA_VERSION) -> None:
        super().__init__()
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.schema_version = schema_version
        #: files ignored by the last load(): list of (path, reason) pairs,
        #: reason in {"corrupt", "schema"}.
        self.skipped_files: list[tuple[pathlib.Path, str]] = []

    def shard_files(self) -> list[pathlib.Path]:
        """All shard files currently in the store, sorted by name."""
        return sorted(self.path.glob(f"{_SHARD_PREFIX}*{_SHARD_SUFFIX}"))

    def skipped_manifest(self) -> list[dict]:
        """:attr:`skipped_files` as sorted, JSON-ready records.

        Shaped for sweep summaries and CLI reports — file *names* only
        (the store directory is the caller's context; embedding absolute
        paths would make the manifest machine-dependent).
        """
        return [{"file": shard.name, "reason": reason}
                for shard, reason in sorted(
                    self.skipped_files, key=lambda pair: pair[0].name)]

    # ------------------------------------------------------------------

    def load_records(self) -> dict[str, Optional[dict]]:
        """Read every valid shard into a raw ``key hash -> record`` table.

        Values are the JSON plan records exactly as persisted (``None``
        for memoized-infeasible probes) with no ``GroupPlan``
        deserialization — the shape the memo server traffics in.  The
        same tolerance contract as :meth:`load` applies: corrupted files
        and foreign-schema shards are skipped into
        :attr:`skipped_files`, never fatal.
        """
        records: dict[str, Optional[dict]] = {}
        self.skipped_files = []
        for shard in self.shard_files():
            try:
                payload = json.loads(shard.read_text())
            except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                self.skipped_files.append((shard, "corrupt"))
                continue
            if (not isinstance(payload, dict)
                    or payload.get("schema") != self.schema_version
                    or not isinstance(payload.get("entries"), dict)):
                self.skipped_files.append((shard, "schema"))
                continue
            records.update(payload["entries"])
        return records

    def load(self) -> dict[str, Optional["GroupPlan"]]:
        """Read every valid shard into a ``key hash -> plan`` table.

        Corrupted/truncated files and shards from another schema version
        are skipped (recorded in :attr:`skipped_files`), never fatal: a
        bad store degrades to a cold start.
        """
        from ..io.serialize import plan_from_record
        entries: dict[str, Optional["GroupPlan"]] = {}
        self.skipped_files = []
        for shard in self.shard_files():
            try:
                payload = json.loads(shard.read_text())
            except (OSError, UnicodeDecodeError, json.JSONDecodeError):
                self.skipped_files.append((shard, "corrupt"))
                continue
            if (not isinstance(payload, dict)
                    or payload.get("schema") != self.schema_version
                    or not isinstance(payload.get("entries"), dict)):
                self.skipped_files.append((shard, "schema"))
                continue
            try:
                entries.update({
                    key: None if record is None else plan_from_record(record)
                    for key, record in payload["entries"].items()
                })
            except (KeyError, TypeError):
                self.skipped_files.append((shard, "corrupt"))
        return entries

    def flush(self, entries: dict[str, Optional["GroupPlan"]],
              ) -> pathlib.Path | None:
        """Atomically persist ``entries`` as one new shard.

        Returns the shard path, or None when there is nothing to write.
        The shard name is a digest of its content, so concurrent flushes
        of the same entries from different workers are idempotent.
        """
        from ..io.serialize import plan_to_record
        return self.flush_records({
            key: None if plan is None else plan_to_record(plan)
            for key, plan in entries.items()
        })

    def flush_records(self, records: dict[str, Optional[dict]],
                      ) -> pathlib.Path | None:
        """Atomically persist raw JSON ``records`` as one new shard.

        The raw-record twin of :meth:`flush` (same digest-named shard,
        same temp-file + ``os.replace`` dance) for callers — the memo
        server — that hold wire records rather than ``GroupPlan``
        objects.
        """
        if not records:
            return None
        payload = {
            "schema": self.schema_version,
            "entries": dict(records),
        }
        text = json.dumps(payload, sort_keys=True)
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]
        shard = self.path / f"{_SHARD_PREFIX}{digest}{_SHARD_SUFFIX}"
        if shard.exists():
            return shard  # identical content already persisted
        # PID + UUID only name the *temp* file (uniqueness under
        # concurrent flushes); the shard name and content stay pure
        # functions of the entries.
        unique = f"{os.getpid()}.{uuid.uuid4().hex}"  # repro-lint: disable=R1
        tmp = self.path / f".{_SHARD_PREFIX}{digest}.{unique}.tmp"
        tmp.write_text(text)
        os.replace(tmp, shard)
        return shard

    def compact(self) -> pathlib.Path | None:
        """Merge every valid shard into one and remove the merged sources.

        Bounds the file count after many incremental flushes.  Concurrent
        readers are safe (the merged shard lands atomically before the
        sources disappear, and duplicate entries are identical by key);
        invalid files are left in place for inspection.
        """
        sources = self.shard_files()
        entries = self.load()
        if not entries:
            return None
        skipped = {path for path, _ in self.skipped_files}
        merged = self.flush(entries)
        for shard in sources:
            if shard != merged and shard not in skipped:
                try:
                    shard.unlink()
                except OSError:  # pragma: no cover - concurrent compaction
                    pass
        return merged
