"""Context-aware computing analysis for the lane trunk (paper Fig. 11).

Tesla's lane prediction only processes relevant grid regions (the paper's
Sec. V-C).  This module sweeps the retained-context fraction and prices the
lane trunk on one chiplet, reporting latency, energy, and whether the
pipelining-latency constraint is met — the paper finds ~60% context keeps
the trunk under the 82 ms threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cost import AcceleratorConfig, chain_energy_j, chain_latency_s, \
    shidiannao_chiplet
from ..workloads.trunks import build_lane_layers

#: the paper's Fig. 11 sweep points (% context retained)
DEFAULT_FRACTIONS = (1.0, 0.9, 0.75, 0.6, 0.5, 0.4, 0.25, 0.1)


@dataclass(frozen=True)
class LaneContextPoint:
    """Lane trunk cost at one retained-context fraction."""

    fraction: float
    latency_ms: float
    energy_j: float
    meets_constraint: bool


def lane_context_sweep(fractions=DEFAULT_FRACTIONS,
                       accel: AcceleratorConfig | None = None,
                       threshold_s: float = 0.0937,
                       **lane_kwargs) -> list[LaneContextPoint]:
    """Price the lane trunk across context fractions on one chiplet."""
    accel = accel or shidiannao_chiplet()
    points = []
    for f in fractions:
        layers = build_lane_layers(context_fraction=f, **lane_kwargs)
        lat = chain_latency_s(layers, accel)
        points.append(LaneContextPoint(
            fraction=f,
            latency_ms=lat * 1e3,
            energy_j=chain_energy_j(layers, accel),
            meets_constraint=lat <= threshold_s,
        ))
    return points


def min_feasible_fraction(points: list[LaneContextPoint]) -> float:
    """Largest retained fraction meeting the constraint (0 if none)."""
    feasible = [p.fraction for p in points if p.meets_constraint]
    return max(feasible) if feasible else 0.0
