"""Algorithm 1: nested greedy throughput matching (the paper's Sec. IV).

The matcher allocates chiplets to the four perception stages (one mesh
quadrant each), establishes the base pipelining latency from the FE+BFPN
stage (Sec. IV-A), then repeatedly relieves bottlenecks by data sharding:

* **Phase "match"** (the paper's outer/inner loops): every stage whose pipe
  latency exceeds ``tolerance * Lat_base`` shards its bottleneck group one
  step at a time within the stage's quadrant budget.
* **Phase "global"**: while the global bottleneck group can still be
  sharded inside its stage budget, do so.  This is what extends sharding
  when two NPUs are active (Fig. 10): T_FUSE exhausts its 12-frame
  sharding, FE+BFPN is partitioned into two pipeline segments, and the
  spatial projections split further.
* **Phase "absorb"** (the paper's surplus reallocation, line 13-14):
  leftover quadrant chiplets are granted to the stage-local bottleneck
  groups even when the stage already meets the target — e.g. the spatial
  FFN's four-fold sharding in Fig. 6.

Every decision is appended to :attr:`Schedule.trace`, which reproduces the
step plot of Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch import DramBudget, MCMPackage, simba_package
from ..cost import AcceleratorConfig
from ..workloads.graph import LayerGroup, PerceptionWorkload
from ..workloads.pipeline import build_perception_workload
from .placement import default_stage_quadrants, place
from .schedule import GroupSchedule, Schedule, TraceStep
from .sharding import GroupPlan, next_shard_step, plan_group

#: hard cap on algorithm iterations (safety against pathological configs)
_MAX_STEPS = 1000


@dataclass
class _State:
    """Mutable algorithm state shared by the phases."""

    workload: PerceptionWorkload
    package: MCMPackage
    stage_quadrants: dict[str, tuple[int, ...]]
    accel_of: dict[str, AcceleratorConfig]
    plans: dict[str, GroupPlan]
    colocated: dict[str, str]
    capacity: dict[str, int]
    trace: list[TraceStep]
    step: int = 0

    def __post_init__(self) -> None:
        # Colocated groups keep their 1-chiplet plans for the whole run,
        # so each host's extra span is a constant: sum it once instead of
        # rescanning the colocation map on every effective_pipe call
        # (which record() issues for every group on every trace step).
        self._hosted_extra: dict[str, float] = {}
        for guest, host in self.colocated.items():
            self._hosted_extra[host] = (self._hosted_extra.get(host, 0.0)
                                        + self.plans[guest].span_s)

    def stage_of(self, group_name: str) -> str:
        return self.workload.find_group(group_name).stage

    def used(self, stage_name: str) -> int:
        return sum(
            self.plans[g.name].n_chiplets
            for g in self.workload.stage(stage_name).groups
            if g.name not in self.colocated)

    def budget_left(self, stage_name: str) -> int:
        return self.capacity[stage_name] - self.used(stage_name)

    def total_budget_left(self) -> int:
        return sum(self.budget_left(s.name) for s in self.workload.stages)

    def effective_pipe(self, group: LayerGroup) -> float:
        """Group pipe latency plus any colocated spans it hosts."""
        pipe = self.plans[group.name].pipe_latency_s
        extra = self._hosted_extra.get(group.name)
        return pipe if extra is None else pipe + extra

    def global_pipe_s(self) -> float:
        return max(self.effective_pipe(g)
                   for s in self.workload.stages for g in s.groups
                   if g.name not in self.colocated)

    def record(self, phase: str, action: str, group: str) -> None:
        self.step += 1
        self.trace.append(TraceStep(
            step=self.step,
            phase=phase,
            action=action,
            group=group,
            n_chiplets=self.plans[group].n_chiplets,
            pipe_latency_ms=self.global_pipe_s() * 1e3,
            chiplets_remaining=self.total_budget_left(),
        ))


class ThroughputMatcher:
    """Nested greedy throughput matching over an MCM package."""

    def __init__(self,
                 workload: PerceptionWorkload | None = None,
                 package: MCMPackage | None = None,
                 tolerance: float = 1.05,
                 colocate_threshold_s: float = 0.005,
                 dram: DramBudget | None = None,
                 dram_bytes_per_frame: int = 0,
                 plan_context: str | None = None):
        if tolerance < 1.0:
            raise ValueError("tolerance must be >= 1.0")
        if dram_bytes_per_frame < 0:
            raise ValueError("dram_bytes_per_frame must be non-negative")
        self.workload = workload or build_perception_workload()
        self.package = package or simba_package()
        self.tolerance = tolerance
        self.colocate_threshold_s = colocate_threshold_s
        # Plan-cache/store keying context: None on the seed mesh (keys
        # stay byte-stable), the topology kind otherwise — plans priced
        # under one topology are never served to another.  An explicit
        # ``plan_context`` widens the scope further (a Scenario passes
        # its combined topology + per-quadrant-hetero context, so
        # heterogeneous rows never share store shards with homogeneous
        # ones); ``None`` keeps the topology-derived default.
        self.plan_context = (plan_context if plan_context is not None
                             else self.package.topology.plan_context)
        # DRAM is accounting-only: the sharding decisions are unchanged
        # (streaming more weights is not relieved by more chiplets), but
        # the returned Schedule's steady-state metrics are throttled by
        # the budget.  None keeps the seed compute-only behavior.
        self.dram = dram
        self.dram_bytes_per_frame = dram_bytes_per_frame

    # ------------------------------------------------------------------

    def run(self) -> Schedule:
        state = self._initial_state()
        base = self._base_latency(state)
        target = self.tolerance * base

        self._phase_match(state, target)
        self._phase_global(state)
        self._phase_absorb(state)

        alloc = {name: plan.n_chiplets for name, plan in state.plans.items()
                 if name not in state.colocated}
        assignment = place(self.workload, self.package, alloc,
                           state.stage_quadrants, state.colocated)
        groups = {}
        for stage in self.workload.stages:
            for g in stage.groups:
                if g.name in state.colocated:
                    groups[g.name] = GroupSchedule(
                        plan=state.plans[g.name], chiplet_ids=(),
                        host=state.colocated[g.name])
                else:
                    groups[g.name] = GroupSchedule(
                        plan=state.plans[g.name],
                        chiplet_ids=assignment[g.name])
        return Schedule(
            package=self.package,
            workload=self.workload,
            stage_quadrants=state.stage_quadrants,
            groups=groups,
            tolerance=self.tolerance,
            base_latency_s=base,
            trace=state.trace,
            dram=self.dram,
            dram_bytes_per_frame=self.dram_bytes_per_frame,
        )

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _initial_state(self) -> _State:
        stage_quadrants = default_stage_quadrants(self.workload, self.package)
        accel_of: dict[str, AcceleratorConfig] = {}
        capacity: dict[str, int] = {}
        for stage in self.workload.stages:
            quads = stage_quadrants[stage.name]
            accel_of[stage.name] = self.package.quadrant(quads[0])[0].accel
            capacity[stage.name] = sum(
                self.package.quadrant_capacity(q) for q in quads)

        colocated = self._find_colocated(accel_of)
        plans: dict[str, GroupPlan] = {}
        for si, stage in enumerate(self.workload.stages):
            accel = accel_of[stage.name]
            allocatable = [g for g in stage.groups
                           if g.name not in colocated]
            used = 0
            for idx, g in enumerate(stage.groups):
                if g.name in colocated:
                    plans[g.name] = plan_group(g, 1, accel,
                                               self.plan_context)
                    continue
                n = 1
                if si == 0 and g.instances > 1:
                    # The FE stage starts with one chiplet per concurrent
                    # model (Sec. IV-A: "at least 8 chiplets need to be
                    # initially allocated"), but never starves the
                    # stage's remaining groups of their first chiplet.
                    reserved = sum(1 for other in allocatable
                                   if other.name != g.name
                                   and other.name not in plans)
                    avail = capacity[stage.name] - used - reserved
                    n = max(1, min(g.instances, avail))
                plans[g.name] = plan_group(g, n, accel, self.plan_context)
                used += plans[g.name].n_chiplets
        state = _State(
            workload=self.workload,
            package=self.package,
            stage_quadrants=stage_quadrants,
            accel_of=accel_of,
            plans=plans,
            colocated=colocated,
            capacity=capacity,
            trace=[],
        )
        for stage in self.workload.stages:
            for g in stage.groups:
                if g.name not in colocated:
                    state.record("init", "allocate", g.name)
        return state

    def _find_colocated(self, accel_of) -> dict[str, str]:
        """Tiny groups ride on a consumer's (else a producer's) chiplet."""
        colocated: dict[str, str] = {}
        for stage in self.workload.stages:
            for g in stage.groups:
                plan = plan_group(g, 1, accel_of[stage.name],
                                  self.plan_context)
                if plan.span_s >= self.colocate_threshold_s:
                    continue
                consumers = [h for h in stage.groups
                             if g.name in h.depends_on]
                host = None
                for cand in consumers + [
                        self.workload.find_group(d) for d in g.depends_on]:
                    if cand.stage != g.stage:
                        # A host in another stage lives on another
                        # quadrant's (possibly different, per-quadrant
                        # heterogeneous) hardware, which would mis-price
                        # the hosted span; dependencies are intra-stage
                        # in every current workload, so this never
                        # triggers today.
                        continue
                    if cand.name not in colocated:
                        host = cand.name
                        break
                if host is not None:
                    colocated[g.name] = host
        return colocated

    def _base_latency(self, state: _State) -> float:
        """Lat_base: the FE+BFPN stage's pipelining latency (Sec. IV-A)."""
        first = self.workload.stages[0]
        return max(state.effective_pipe(g) for g in first.groups
                   if g.name not in state.colocated)

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _shard_once(self, state: _State, group: LayerGroup,
                    phase: str) -> bool:
        """Try one sharding step of ``group``; returns True on success."""
        stage_name = group.stage
        current = state.plans[group.name]
        max_n = current.n_chiplets + state.budget_left(stage_name)
        plan = next_shard_step(group, current.n_chiplets, max_n,
                               state.accel_of[stage_name], current=current,
                               context=self.plan_context)
        if plan is None:
            return False
        state.plans[group.name] = plan
        state.record(phase, "shard", group.name)
        return True

    def _phase_match(self, state: _State, target: float) -> None:
        """Stage-local matching to the base pipelining latency."""
        for stage in self.workload.stages[1:]:
            for _ in range(_MAX_STEPS):
                groups = [g for g in stage.groups
                          if g.name not in state.colocated]
                bottleneck = max(groups, key=state.effective_pipe)
                if state.effective_pipe(bottleneck) <= target:
                    break
                if not self._shard_once(state, bottleneck, "match"):
                    break

    def _phase_global(self, state: _State) -> None:
        """Reduce the global bottleneck while budgets allow."""
        blocked: set[str] = set()
        for _ in range(_MAX_STEPS):
            candidates = [g for s in self.workload.stages for g in s.groups
                          if g.name not in state.colocated
                          and g.name not in blocked]
            if not candidates:
                break
            bottleneck = max(candidates, key=state.effective_pipe)
            if state.effective_pipe(bottleneck) < state.global_pipe_s():
                break  # true bottleneck is unshardable
            if not self._shard_once(state, bottleneck, "global"):
                blocked.add(bottleneck.name)

    def _phase_absorb(self, state: _State) -> None:
        """Grant leftover quadrant chiplets to stage-local bottlenecks."""
        for stage in self.workload.stages:
            blocked: set[str] = set()
            for _ in range(_MAX_STEPS):
                if state.budget_left(stage.name) <= 0:
                    break
                groups = [g for g in stage.groups
                          if g.name not in state.colocated
                          and g.name not in blocked]
                if not groups:
                    break
                bottleneck = max(groups, key=state.effective_pipe)
                if not self._shard_once(state, bottleneck, "absorb"):
                    blocked.add(bottleneck.name)


def match_throughput(workload: PerceptionWorkload | None = None,
                     package: MCMPackage | None = None,
                     tolerance: float = 1.05,
                     dram: DramBudget | None = None,
                     dram_bytes_per_frame: int = 0) -> Schedule:
    """Convenience wrapper: run Algorithm 1 with defaults."""
    return ThroughputMatcher(workload, package, tolerance,
                             dram=dram,
                             dram_bytes_per_frame=dram_bytes_per_frame).run()
