"""NoP-aware placement of scheduled groups onto mesh coordinates.

The paper observes (Sec. IV-D) that large feature-map producers must sit
close to their consumers to bound NoP overheads.  We use a deterministic
greedy placement: stages own their quadrants; groups are placed in
dependency order, and each chiplet is chosen to minimize hop distance to
the group's already-placed producers (falling back to the previous stage's
chiplets for stage-entry groups), with a mild contiguity bonus so sharded
groups stay clustered.
"""

from __future__ import annotations

from ..arch import MCMPackage
from ..workloads.graph import PerceptionWorkload


def default_stage_quadrants(workload: PerceptionWorkload,
                            package: MCMPackage) -> dict[str, tuple[int, ...]]:
    """Uniform stage-to-quadrant partition (Sec. IV: one stage per quadrant).

    With multiple NPU modules on the package, each stage receives its
    quadrant in every module (the paper's Sec. V-B doubles every stage's
    chiplet budget, including the trunks).
    """
    n_stages = len(workload.stages)
    quadrants_per_module = 4
    if n_stages > quadrants_per_module:
        raise ValueError("more stages than quadrants per module")
    mapping: dict[str, tuple[int, ...]] = {}
    for i, stage in enumerate(workload.stages):
        mapping[stage.name] = tuple(
            i + quadrants_per_module * m for m in range(package.npus))
    return mapping


def place(workload: PerceptionWorkload,
          package: MCMPackage,
          alloc: dict[str, int],
          stage_quadrants: dict[str, tuple[int, ...]],
          colocated: dict[str, str]) -> dict[str, tuple[int, ...]]:
    """Assign ``alloc[group]`` chiplet ids to every non-colocated group."""
    assignment: dict[str, tuple[int, ...]] = {}
    prev_stage_ids: list[int] = []
    for stage in workload.stages:
        cells = [c.chiplet_id
                 for q in stage_quadrants[stage.name]
                 for c in package.quadrant(q)]
        free = sorted(cells)
        placed_this_stage: list[int] = []
        for group in stage.topo_order():
            if group.name in colocated:
                continue
            n = alloc.get(group.name, 0)
            if n <= 0:
                raise ValueError(f"group {group.name} has no chiplets")
            if n > len(free):
                raise ValueError(
                    f"stage {stage.name}: not enough chiplets for "
                    f"{group.name} (need {n}, have {len(free)})")
            anchors = [cid for dep in group.depends_on
                       for cid in assignment.get(dep, ())]
            if not anchors:
                anchors = prev_stage_ids
            chosen: list[int] = []
            for _ in range(n):
                def score(cid: int) -> tuple[float, int]:
                    to_anchor = (min(package.hops(cid, a) for a in anchors)
                                 if anchors else 0.0)
                    to_peers = (min(package.hops(cid, p) for p in chosen)
                                if chosen else 0.0)
                    return (to_anchor + 0.5 * to_peers, cid)

                best = min(free, key=score)
                free.remove(best)
                chosen.append(best)
            assignment[group.name] = tuple(chosen)
            placed_this_stage.extend(chosen)
        prev_stage_ids = placed_this_stage
    return assignment
