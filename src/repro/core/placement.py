"""NoP-aware placement of scheduled groups onto mesh coordinates.

The paper observes (Sec. IV-D) that large feature-map producers must sit
close to their consumers to bound NoP overheads.  We use a deterministic
greedy placement: stages own their quadrants; groups are placed in
dependency order, and each chiplet is chosen to minimize hop distance to
the group's already-placed producers (falling back to the previous stage's
chiplets for stage-entry groups), with a mild contiguity bonus so sharded
groups stay clustered.
"""

from __future__ import annotations

from ..arch import MCMPackage
from ..workloads.graph import PerceptionWorkload


def default_stage_quadrants(workload: PerceptionWorkload,
                            package: MCMPackage) -> dict[str, tuple[int, ...]]:
    """Uniform stage-to-quadrant partition (Sec. IV: one stage per quadrant).

    With multiple NPU modules on the package, each stage receives its
    quadrant in every module (the paper's Sec. V-B doubles every stage's
    chiplet budget, including the trunks).
    """
    n_stages = len(workload.stages)
    quadrants_per_module = 4
    if n_stages > quadrants_per_module:
        raise ValueError("more stages than quadrants per module")
    mapping: dict[str, tuple[int, ...]] = {}
    for i, stage in enumerate(workload.stages):
        mapping[stage.name] = tuple(
            i + quadrants_per_module * m for m in range(package.npus))
    return mapping


def place(workload: PerceptionWorkload,
          package: MCMPackage,
          alloc: dict[str, int],
          stage_quadrants: dict[str, tuple[int, ...]],
          colocated: dict[str, str]) -> dict[str, tuple[int, ...]]:
    """Assign ``alloc[group]`` chiplet ids to every non-colocated group."""
    assignment: dict[str, tuple[int, ...]] = {}
    prev_stage_ids: list[int] = []
    xs = [package.chiplet(c).x for c in range(len(package))]
    ys = [package.chiplet(c).y for c in range(len(package))]
    # All hop geometry routes through the package topology: the anchor
    # distance map and the peer-distance term below are wraparound-aware
    # on a torus and identical to the seed L1 math on the open mesh.
    topo = package.topology
    peer_hops = topo.hops
    for stage in workload.stages:
        cells = [c.chiplet_id
                 for q in stage_quadrants[stage.name]
                 for c in package.quadrant(q)]
        free = sorted(cells)
        placed_this_stage: list[int] = []
        for group in stage.topo_order():
            if group.name in colocated:
                continue
            n = alloc.get(group.name, 0)
            if n <= 0:
                raise ValueError(f"group {group.name} has no chiplets")
            if n > len(free):
                raise ValueError(
                    f"stage {stage.name}: not enough chiplets for "
                    f"{group.name} (need {n}, have {len(free)})")
            anchors = [cid for dep in group.depends_on
                       for cid in assignment.get(dep, ())]
            if not anchors:
                anchors = prev_stage_ids
            # The anchor term of the score is fixed for the whole group
            # and the peer term is a running minimum over the chiplets
            # chosen so far, so precompute the former (one multi-source
            # BFS over the mesh) and update the latter incrementally:
            # O(cells + n * free) per group instead of
            # O(n * free * (anchors + chosen)).  Scores (and the cid
            # tie-break) are identical to scoring from scratch.
            inf = float("inf")
            anchor_d: dict[int, float]
            if anchors:
                hop_map = topo.min_hop_map(
                    [(xs[a], ys[a]) for a in anchors])
                anchor_d = {cid: hop_map[xs[cid]][ys[cid]] for cid in free}
            else:
                anchor_d = {cid: 0.0 for cid in free}
            peer_d = {cid: inf for cid in free}
            # ``free`` stays sorted, so keeping the first strictly
            # smaller score reproduces the (score, cid) tie-break.  The
            # peer-distance refresh and the next pick's argmin share one
            # pass over the free list.
            best = free[0]
            best_score = None
            for cid in free:
                score = anchor_d[cid]
                if best_score is None or score < best_score:
                    best, best_score = cid, score
            free.remove(best)
            chosen = [best]
            while len(chosen) < n:
                last = (xs[best], ys[best])
                nxt = free[0]
                nxt_score = None
                for cid in free:
                    d = peer_hops((xs[cid], ys[cid]), last)
                    if d < peer_d[cid]:
                        peer_d[cid] = d
                    score = anchor_d[cid] + 0.5 * peer_d[cid]
                    if nxt_score is None or score < nxt_score:
                        nxt, nxt_score = cid, score
                best = nxt
                free.remove(best)
                chosen.append(best)
            assignment[group.name] = tuple(chosen)
            placed_this_stage.extend(chosen)
        prev_stage_ids = placed_this_stage
    return assignment
