"""Sharding transforms and per-group chiplet plans (paper Sec. IV).

The scheduler shards work at *group* granularity, in three legal ways that
mirror the paper's moves:

* **instances** — distribute independent model/data copies (8 cameras,
  12 temporal frames, 3 detector heads) across chiplets.  The paper's
  T_FUSE FFN exhausts this mode at 12 ("each temporal frame is processed
  independently on a separate chiplet").
* **rows** — split every layer's output plane into bands, one chiplet per
  band (the paper's data sharding of fusion projections).  The cost model
  re-prices each band, so speedups degrade naturally once bands stop
  aligning with the dataflow's 16-wide tile.
* **pipeline** — cut a deep serial chain into contiguous segments that form
  a chiplet pipeline (the paper partitions FE+BFPN "into two pipelining
  stages at the fourth convolutional ResNet-18 block").

``plan_group`` evaluates the best mode for a given chiplet count and
returns a :class:`GroupPlan` with per-chiplet busy times (pipe-latency
contributions), the single-frame span, and energy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cost import AcceleratorConfig, chain_energy_j, chain_latency_s, evaluate
from ..workloads.graph import LayerGroup
from ..workloads.layers import Layer
from .plancache import MODE_BEST, get_plan_cache

#: shard mode identifiers
MODE_SINGLE = "single"
MODE_INSTANCES = "instances"
MODE_ROWS = "rows"
MODE_PIPELINE = "pipeline"


@dataclass(frozen=True)
class GroupPlan:
    """How one layer group runs on ``n_chiplets`` chiplets."""

    group_name: str
    n_chiplets: int
    mode: str
    #: busy seconds per frame for each assigned chiplet (len == n_chiplets)
    per_chiplet_busy: tuple[float, ...]
    #: seconds for one frame to traverse the group (compute only)
    span_s: float
    energy_j: float
    macs: int
    #: pipeline mode only: number of segments per instance
    segments: int = 1

    @property
    def pipe_latency_s(self) -> float:
        """The group's contribution to steady-state pipeline latency."""
        return max(self.per_chiplet_busy)


def split_plane(layer: Layer, n: int, index: int) -> Layer:
    """Split a layer's output plane into ``n`` bands and take band ``index``.

    2D planes split along rows; 1D token sets (``out_h == 1``) split along
    the token axis.
    """
    if layer.out_h > 1:
        return layer.split_rows(n, index)
    if not 1 <= n <= layer.out_w:
        raise ValueError(
            f"{layer.name}: cannot split {layer.out_w} tokens {n} ways")
    base, extra = divmod(layer.out_w, n)
    cols = base + (1 if index < extra else 0)
    return replace(layer, name=f"{layer.name}@c{index}/{n}", out_w=cols)


def max_row_shards(group: LayerGroup) -> int:
    """Largest legal row-shard factor (bounded by the narrowest layer)."""
    return min(
        l.out_h if l.out_h > 1 else l.out_w for l in group.layers)


def _balanced_segments(latencies: list[float], k: int) -> list[int]:
    """Contiguous min-max partition of a latency chain into ``k`` segments.

    Returns segment boundaries as a list of start indices (length k).
    Uses dynamic programming; chains are at most a few hundred layers.
    """
    n = len(latencies)
    if k >= n:
        return list(range(n))[:k] if k <= n else list(range(n))
    prefix = [0.0]
    for lat in latencies:
        prefix.append(prefix[-1] + lat)

    inf = float("inf")
    # cost[j][i]: min possible max-segment over first i layers in j segments
    cost = [[inf] * (n + 1) for _ in range(k + 1)]
    cut = [[0] * (n + 1) for _ in range(k + 1)]
    cost[0][0] = 0.0
    for j in range(1, k + 1):
        for i in range(j, n + 1):
            for m in range(j - 1, i):
                seg = prefix[i] - prefix[m]
                val = max(cost[j - 1][m], seg)
                if val < cost[j][i]:
                    cost[j][i] = val
                    cut[j][i] = m
    bounds = []
    i = n
    for j in range(k, 0, -1):
        m = cut[j][i]
        bounds.append(m)
        i = m
    return sorted(bounds)


def _instance_counts(instances: int, n: int) -> list[int]:
    base, extra = divmod(instances, n)
    return [base + (1 if j < extra else 0) for j in range(n)]


def _plan_single(group: LayerGroup, accel: AcceleratorConfig) -> GroupPlan:
    per_instance = chain_latency_s(group.layers, accel)
    busy = per_instance * group.instances
    return GroupPlan(
        group_name=group.name,
        n_chiplets=1,
        mode=MODE_SINGLE,
        per_chiplet_busy=(busy,),
        span_s=busy,
        energy_j=chain_energy_j(group.layers, accel) * group.instances,
        macs=group.total_macs,
    )


def _plan_instances(group: LayerGroup, n: int,
                    accel: AcceleratorConfig) -> GroupPlan | None:
    if group.instances < 2 or n > group.instances:
        return None
    per_instance = chain_latency_s(group.layers, accel)
    counts = _instance_counts(group.instances, n)
    busy = tuple(c * per_instance for c in counts)
    return GroupPlan(
        group_name=group.name,
        n_chiplets=n,
        mode=MODE_INSTANCES,
        per_chiplet_busy=busy,
        span_s=busy[0],
        energy_j=chain_energy_j(group.layers, accel) * group.instances,
        macs=group.total_macs,
    )


def _plan_rows(group: LayerGroup, n: int,
               accel: AcceleratorConfig) -> GroupPlan | None:
    if not group.row_shardable or group.instances != 1:
        return None
    if n > max_row_shards(group):
        return None
    busy = []
    energy = 0.0
    for idx in range(n):
        shard = [split_plane(l, n, idx) for l in group.layers]
        busy.append(chain_latency_s(shard, accel))
        energy += chain_energy_j(shard, accel)
    return GroupPlan(
        group_name=group.name,
        n_chiplets=n,
        mode=MODE_ROWS,
        per_chiplet_busy=tuple(busy),
        span_s=max(busy),
        energy_j=energy,
        macs=group.total_macs,
    )


def _plan_pipeline(group: LayerGroup, n: int,
                   accel: AcceleratorConfig) -> GroupPlan | None:
    if not group.pipeline_splittable:
        return None
    if n % group.instances != 0:
        return None
    k = n // group.instances
    if k < 2 or k > len(group.layers):
        return None
    lats = [evaluate(l, accel).latency_s for l in group.layers]
    bounds = _balanced_segments(lats, k)
    seg_lat = []
    for si, start in enumerate(bounds):
        end = bounds[si + 1] if si + 1 < len(bounds) else len(lats)
        seg_lat.append(sum(lats[start:end]))
    busy = tuple(seg_lat) * group.instances
    return GroupPlan(
        group_name=group.name,
        n_chiplets=n,
        mode=MODE_PIPELINE,
        per_chiplet_busy=busy,
        span_s=sum(seg_lat),
        energy_j=chain_energy_j(group.layers, accel) * group.instances,
        macs=group.total_macs,
        segments=k,
    )


def _compute_plan_group(group: LayerGroup, n: int,
                        accel: AcceleratorConfig) -> GroupPlan | None:
    """Uncached best-plan computation (the cache's compute callback)."""
    if n == 1:
        return _plan_single(group, accel)
    candidates = [
        plan for plan in (
            _plan_instances(group, n, accel),
            _plan_rows(group, n, accel),
            _plan_pipeline(group, n, accel),
        ) if plan is not None
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda p: (p.pipe_latency_s, p.span_s))


def plan_group(group: LayerGroup, n: int,
               accel: AcceleratorConfig) -> GroupPlan | None:
    """Best plan for running ``group`` on exactly ``n`` chiplets.

    Returns None when no shard mode can use ``n`` chiplets.  Results are
    served from the process-wide :class:`~repro.core.plancache.PlanCache`,
    so every caller (matcher, DSE, sweeps) shares one memo table.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    return get_plan_cache().get_or_compute(
        group, n, accel, MODE_BEST,
        lambda: _compute_plan_group(group, n, accel))


def next_shard_step(group: LayerGroup, n: int, max_n: int,
                    accel: AcceleratorConfig,
                    current: GroupPlan | None = None) -> GroupPlan | None:
    """Smallest n' > n (<= max_n) that strictly reduces pipe latency.

    This is the inner-loop move of Algorithm 1: one sharding step of the
    bottleneck group.  Chiplet counts that cannot help (e.g. 5 chiplets for
    8 instances, no better than 4) are skipped.

    ``current`` lets a caller that already holds the plan for ``n`` (the
    matcher always does) skip re-deriving it; when omitted it is served
    from the shared plan cache.  The guard below checks the group and
    chiplet count; a :class:`GroupPlan` does not record its accelerator,
    so pricing ``current`` under the same ``accel`` as this call is the
    caller's responsibility.
    """
    if current is None:
        current = plan_group(group, n, accel)
    elif current.n_chiplets != n or current.group_name != group.name:
        raise ValueError(
            f"current plan is for {current.group_name!r} on "
            f"{current.n_chiplets} chiplets, not {group.name!r} on {n}")
    if current is None:
        return None
    for n_next in range(n + 1, max_n + 1):
        plan = plan_group(group, n_next, accel)
        if plan is not None and plan.pipe_latency_s < current.pipe_latency_s:
            return plan
    return None
