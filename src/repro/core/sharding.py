"""Sharding transforms and per-group chiplet plans (paper Sec. IV).

The scheduler shards work at *group* granularity, in three legal ways that
mirror the paper's moves:

* **instances** — distribute independent model/data copies (8 cameras,
  12 temporal frames, 3 detector heads) across chiplets.  The paper's
  T_FUSE FFN exhausts this mode at 12 ("each temporal frame is processed
  independently on a separate chiplet").
* **rows** — split every layer's output plane into bands, one chiplet per
  band (the paper's data sharding of fusion projections).  The cost model
  re-prices each band, so speedups degrade naturally once bands stop
  aligning with the dataflow's 16-wide tile.
* **pipeline** — cut a deep serial chain into contiguous segments that form
  a chiplet pipeline (the paper partitions FE+BFPN "into two pipelining
  stages at the fourth convolutional ResNet-18 block").

``plan_group`` evaluates the best mode for a given chiplet count and
returns a :class:`GroupPlan` with per-chiplet busy times (pipe-latency
contributions), the single-frame span, and energy.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..cost import AcceleratorConfig, chain_energy_j, chain_latency_s, evaluate
from ..cost.batch import price_chain, seed_pairs
from ..workloads.graph import LayerGroup
from ..workloads.layers import Layer
from .plancache import MODE_BEST, get_plan_cache

#: shard mode identifiers
MODE_SINGLE = "single"
MODE_INSTANCES = "instances"
MODE_ROWS = "rows"
MODE_PIPELINE = "pipeline"


@dataclass(frozen=True)
class GroupPlan:
    """How one layer group runs on ``n_chiplets`` chiplets."""

    group_name: str
    n_chiplets: int
    mode: str
    #: busy seconds per frame for each assigned chiplet (len == n_chiplets)
    per_chiplet_busy: tuple[float, ...]
    #: seconds for one frame to traverse the group (compute only)
    span_s: float
    energy_j: float
    macs: int
    #: pipeline mode only: number of segments per instance
    segments: int = 1

    @property
    def pipe_latency_s(self) -> float:
        """The group's contribution to steady-state pipeline latency."""
        return max(self.per_chiplet_busy)


def split_plane(layer: Layer, n: int, index: int) -> Layer:
    """Split a layer's output plane into ``n`` bands and take band ``index``.

    2D planes split along rows; 1D token sets (``out_h == 1``) split along
    the token axis.
    """
    if layer.out_h > 1:
        return layer.split_rows(n, index)
    if not 1 <= n <= layer.out_w:
        raise ValueError(
            f"{layer.name}: cannot split {layer.out_w} tokens {n} ways")
    base, extra = divmod(layer.out_w, n)
    cols = base + (1 if index < extra else 0)
    return replace(layer, name=f"{layer.name}@c{index}/{n}", out_w=cols)


def max_row_shards(group: LayerGroup) -> int:
    """Largest legal row-shard factor (bounded by the narrowest layer)."""
    return min(
        layer.out_h if layer.out_h > 1 else layer.out_w
        for layer in group.layers)


def _balanced_segments(latencies: list[float], k: int) -> list[int]:
    """Contiguous min-max partition of a latency chain into ``k`` segments.

    Returns segment boundaries as a list of start indices (length k).
    Implemented as a parametric binary search over the max-segment bound
    (feasibility checked by a greedy O(n) packing), which replaces the
    former O(k*n^2) dynamic program: the bound is bisected to float
    adjacency, so the returned partition's max segment is the exact
    optimum, in O(n log(sum/ulp)) time.
    """
    n = len(latencies)
    if k >= n:
        return list(range(n))

    def segments_needed(bound: float) -> int:
        """Fewest contiguous segments with every segment sum <= bound."""
        count, acc = 1, 0.0
        for lat in latencies:
            if acc + lat > bound:
                count += 1
                acc = lat
            else:
                acc += lat
        return count

    # Feasibility is monotone in the bound: bisect [max, sum] down to
    # adjacent floats, leaving ``hi`` as the smallest feasible bound.
    lo, hi = max(latencies), sum(latencies)
    if segments_needed(lo) <= k:
        best = lo
    else:
        while True:
            mid = (lo + hi) / 2
            if not lo < mid < hi:
                break
            if segments_needed(mid) <= k:
                hi = mid
            else:
                lo = mid
        best = hi

    # Re-pack greedily under the optimal bound, forcing early cuts when
    # the remaining layers are only just enough to keep every remaining
    # segment non-empty (a forced single-layer segment is <= max <= best).
    bounds = [0]
    acc = 0.0
    for i, lat in enumerate(latencies):
        if i > 0 and len(bounds) < k and (
                n - i == k - len(bounds) or acc + lat > best):
            bounds.append(i)
            acc = lat
        else:
            acc += lat
    return bounds


def _instance_counts(instances: int, n: int) -> list[int]:
    base, extra = divmod(instances, n)
    return [base + (1 if j < extra else 0) for j in range(n)]


def _plan_single(group: LayerGroup, accel: AcceleratorConfig) -> GroupPlan:
    price_chain(group.layers, accel)
    per_instance = chain_latency_s(group.layers, accel)
    busy = per_instance * group.instances
    return GroupPlan(
        group_name=group.name,
        n_chiplets=1,
        mode=MODE_SINGLE,
        per_chiplet_busy=(busy,),
        span_s=busy,
        energy_j=chain_energy_j(group.layers, accel) * group.instances,
        macs=group.total_macs,
    )


def _plan_instances(group: LayerGroup, n: int,
                    accel: AcceleratorConfig) -> GroupPlan | None:
    if group.instances < 2 or n > group.instances:
        return None
    price_chain(group.layers, accel)
    per_instance = chain_latency_s(group.layers, accel)
    counts = _instance_counts(group.instances, n)
    busy = tuple(c * per_instance for c in counts)
    return GroupPlan(
        group_name=group.name,
        n_chiplets=n,
        mode=MODE_INSTANCES,
        per_chiplet_busy=busy,
        span_s=busy[0],
        energy_j=chain_energy_j(group.layers, accel) * group.instances,
        macs=group.total_macs,
    )


def _plan_rows(group: LayerGroup, n: int,
               accel: AcceleratorConfig) -> GroupPlan | None:
    if not group.row_shardable or group.instances != 1:
        return None
    if n > max_row_shards(group):
        return None
    # Splitting a plane of S rows n ways yields only two distinct band
    # shapes — S % n bands of S//n + 1 rows, the rest of S//n — so it
    # suffices to price <= 2 bands per layer and assemble the n chain
    # sums arithmetically, instead of pricing all n chains.  Summation
    # runs in the same (layer, then shard-index) order as pricing each
    # chain would, so the resulting plan is bit-identical.  All band
    # shapes are derived first and priced as one batch matrix; the
    # evaluate() calls below are then memo hits.
    shapes = []
    for layer in group.layers:
        size = layer.out_h if layer.out_h > 1 else layer.out_w
        extra = size % n
        big = split_plane(layer, n, 0) if extra else None
        small = split_plane(layer, n, extra)
        shapes.append((extra, big, small))
    seed_pairs((band, accel) for _, big, small in shapes
               for band in (big, small) if band is not None)
    bands = [(extra,
              evaluate(big, accel) if big is not None else None,
              evaluate(small, accel))
             for extra, big, small in shapes]
    busy = []
    energy = 0.0
    for idx in range(n):
        chain = [big if idx < extra else small
                 for extra, big, small in bands]
        busy.append(sum(c.latency_s for c in chain))
        energy += sum(c.energy_j for c in chain)
    return GroupPlan(
        group_name=group.name,
        n_chiplets=n,
        mode=MODE_ROWS,
        per_chiplet_busy=tuple(busy),
        span_s=max(busy),
        energy_j=energy,
        macs=group.total_macs,
    )


def _plan_pipeline(group: LayerGroup, n: int,
                   accel: AcceleratorConfig) -> GroupPlan | None:
    if not group.pipeline_splittable:
        return None
    if n % group.instances != 0:
        return None
    k = n // group.instances
    if k < 2 or k > len(group.layers):
        return None
    price_chain(group.layers, accel)
    lats = [evaluate(layer, accel).latency_s for layer in group.layers]
    bounds = _balanced_segments(lats, k)
    seg_lat = []
    for si, start in enumerate(bounds):
        end = bounds[si + 1] if si + 1 < len(bounds) else len(lats)
        seg_lat.append(sum(lats[start:end]))
    busy = tuple(seg_lat) * group.instances
    return GroupPlan(
        group_name=group.name,
        n_chiplets=n,
        mode=MODE_PIPELINE,
        per_chiplet_busy=busy,
        span_s=sum(seg_lat),
        energy_j=chain_energy_j(group.layers, accel) * group.instances,
        macs=group.total_macs,
        segments=k,
    )


def _compute_plan_group(group: LayerGroup, n: int,
                        accel: AcceleratorConfig) -> GroupPlan | None:
    """Uncached best-plan computation (the cache's compute callback)."""
    if n == 1:
        return _plan_single(group, accel)
    candidates = [
        plan for plan in (
            _plan_instances(group, n, accel),
            _plan_rows(group, n, accel),
            _plan_pipeline(group, n, accel),
        ) if plan is not None
    ]
    if not candidates:
        return None
    return min(candidates, key=lambda p: (p.pipe_latency_s, p.span_s))


def plan_group(group: LayerGroup, n: int,
               accel: AcceleratorConfig,
               context: str | None = None) -> GroupPlan | None:
    """Best plan for running ``group`` on exactly ``n`` chiplets.

    Returns None when no shard mode can use ``n`` chiplets.  Results are
    served from the process-wide :class:`~repro.core.plancache.PlanCache`,
    so every caller (matcher, DSE, sweeps) shares one memo table.
    ``context`` scopes the cache/store key to a planning context (the
    package's non-mesh NoP topology kind); today's plans are
    topology-independent, but the conservative keying means entries can
    never leak across topologies once planning becomes NoP-aware.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    return get_plan_cache().get_or_compute(
        group, n, accel, MODE_BEST,
        lambda: _compute_plan_group(group, n, accel),
        context=context)


def next_shard_step(group: LayerGroup, n: int, max_n: int,
                    accel: AcceleratorConfig,
                    current: GroupPlan | None = None,
                    context: str | None = None) -> GroupPlan | None:
    """Smallest n' > n (<= max_n) that strictly reduces pipe latency.

    This is the inner-loop move of Algorithm 1: one sharding step of the
    bottleneck group.  Chiplet counts that cannot help (e.g. 5 chiplets for
    8 instances, no better than 4) are skipped.

    ``current`` lets a caller that already holds the plan for ``n`` (the
    matcher always does) skip re-deriving it; when omitted it is served
    from the shared plan cache.  The guard below checks the group and
    chiplet count; a :class:`GroupPlan` does not record its accelerator,
    so pricing ``current`` under the same ``accel`` as this call is the
    caller's responsibility.
    """
    if current is None:
        current = plan_group(group, n, accel, context)
    elif current.n_chiplets != n or current.group_name != group.name:
        raise ValueError(
            f"current plan is for {current.group_name!r} on "
            f"{current.n_chiplets} chiplets, not {group.name!r} on {n}")
    if current is None:
        return None
    for n_next in range(n + 1, max_n + 1):
        plan = plan_group(group, n_next, accel, context)
        if plan is not None and plan.pipe_latency_s < current.pipe_latency_s:
            return plan
    return None
