"""End-to-end heterogeneous scheduling: Algorithm 1 + trunk DSE combined.

The paper evaluates heterogeneous integration only inside the trunk
quadrant (Table I).  This module composes the full flow a deployment would
use: run throughput matching for the first three stages on the
output-stationary package, run the trunk DSE to pick the heterogeneous
trunk mapping under the resulting latency constraint, then emit a single
package + schedule view with the WS chiplets physically placed in the
trunk quadrant.

Since the per-quadrant hetero axis landed, this flow is one composition
of the general mechanism rather than a special case: the WS cells come
from :func:`repro.arch.quadrants.hetero_cells` (the same corner-preferring
selection whole-quadrant overrides use, restricted to the Het(k) budget)
and the mixed package from :meth:`MCMPackage.with_accels` — the single
mixed-package construction primitive behind
:class:`~repro.arch.quadrants.QuadrantOverrides` too.  A full-quadrant
budget (``ws_chiplets == 9`` on the single-NPU package) produces exactly
the package layout of ``QuadrantOverrides.parse("trunk:ws")``: the Table I
composition through the generic path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch import MCMPackage, hetero_cells, simba_package
from ..cost import nvdla_chiplet
from ..workloads.graph import PerceptionWorkload
from ..workloads.pipeline import build_perception_workload
from .dse import TrunkConfig, TrunkDSE
from .schedule import Schedule
from .throughput import ThroughputMatcher


@dataclass(frozen=True)
class HeterogeneousResult:
    """Joint result of the matcher and the heterogeneous trunk DSE."""

    schedule: Schedule
    trunk_config: TrunkConfig
    package: MCMPackage

    @property
    def pipe_latency_s(self) -> float:
        """Pipeline latency including the DSE-mapped trunks."""
        return max(self.schedule.pipe_latency_s,
                   self.trunk_config.pipe_ms / 1e3)

    @property
    def energy_j(self) -> float:
        """Per-frame energy with the heterogeneous trunk mapping.

        The matcher's trunk energy is replaced by the DSE's.
        """
        trunk_energy = sum(
            self.schedule.groups[g.name].plan.energy_j
            for g in self.schedule.workload.stage("TRUNKS").groups)
        return (self.schedule.energy_j - trunk_energy
                + self.trunk_config.energy_j)

    @property
    def energy_saving_j(self) -> float:
        return self.schedule.energy_j - self.energy_j


def schedule_heterogeneous(
        workload: PerceptionWorkload | None = None,
        ws_chiplets: int = 2,
        tolerance: float = 1.05,
        npus: int = 1) -> HeterogeneousResult:
    """Full heterogeneous flow: match stages 1-3, DSE the trunks.

    ``ws_chiplets`` selects the Het(k) configuration (0 gives the OS-only
    package; the paper studies k in {2, 4}).
    """
    workload = workload or build_perception_workload()
    base_package = simba_package(npus=npus)
    matcher = ThroughputMatcher(workload, base_package, tolerance)
    schedule = matcher.run()

    trunk_stage = workload.stage("TRUNKS")
    l_cstr = tolerance * schedule.base_latency_s
    dse = TrunkDSE(stage=trunk_stage, l_cstr_s=l_cstr,
                   chiplets=sum(base_package.quadrant_capacity(q)
                                for q in schedule.stage_quadrants["TRUNKS"]))
    trunk_config = dse.search(ws_chiplets)

    package = base_package
    if ws_chiplets > 0:
        cells = hetero_cells(base_package,
                             schedule.stage_quadrants["TRUNKS"],
                             ws_chiplets)
        package = base_package.with_accels(
            {c.chiplet_id: nvdla_chiplet() for c in cells})
    return HeterogeneousResult(
        schedule=schedule,
        trunk_config=trunk_config,
        package=package,
    )
