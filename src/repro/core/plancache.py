"""Process-wide memoization of group plans.

Every layer of the search stack re-prices ``(group, n_chiplets, accel)``
candidates: :func:`~repro.core.sharding.plan_group` inside the throughput
matcher's inner loop, :func:`~repro.core.sharding.next_shard_step` while
probing shard counts, and :class:`~repro.core.dse.TrunkDSE` while
brute-forcing Table I.  Until PR 1 each of those kept (at best) a private
cache, so a design-space sweep re-computed identical plans once per caller.

:class:`PlanCache` is the single shared table.  Keys are
``(group, n, accel, mode, context)`` — all frozen dataclasses or strings,
so hashing is structural: two scenarios that price the same group on the
same accelerator hit the same entry even across independent
``ThroughputMatcher``/``TrunkDSE`` instances.  ``mode`` distinguishes the
"best over all shard modes" entry produced by ``plan_group`` (``"best"``)
from any future mode-pinned lookups; ``context`` scopes entries to a
planning context — the package's non-mesh NoP topology kind and/or its
per-quadrant hetero composition (``Scenario.plan_context`` composes
both; ``None`` for the seed homogeneous mesh) — so plans computed under
one topology or package composition are never served to another.

The cache also keeps hit/miss counters.  Sweep reports surface them next to
``Schedule.summary()`` metrics so cache-effectiveness regressions in the
hot path show up in benchmark artifacts, not just in wall time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..cost import AcceleratorConfig
    from ..workloads.graph import LayerGroup
    from .sharding import GroupPlan

#: cache key mode for "best plan over all shard modes" (plan_group output)
MODE_BEST = "best"


@runtime_checkable
class PlanStoreLike(Protocol):
    """The store surface :class:`PlanCache` layers underneath itself.

    :class:`~repro.core.planstore.PlanStore` (disk shards) and
    :class:`~repro.serve.client.RemoteStoreClient` (networked memo
    server) both satisfy it, so ``attach_store`` accepts either
    interchangeably: same warm-start, same dirty-entry flush, same
    content-hash keying, same hit accounting.
    """

    @property
    def path(self) -> object:
        """Attach identity: a directory path (disk) or a URL (remote)."""
        ...

    def load(self) -> dict[str, Optional["GroupPlan"]]:
        """Every currently stored entry, keyed by content hash."""
        ...

    def flush(self, entries: dict[str, Optional["GroupPlan"]]) -> object:
        """Persist newly computed ``entries``; return value is opaque."""
        ...

    def key_hash(self, group: "LayerGroup", n: int,
                 accel: "AcceleratorConfig", mode: str,
                 context: str | None = None) -> str:
        """Content hash of one plan-cache key (memoized per instance)."""
        ...


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of one cache's counters."""

    hits: int
    misses: int
    entries: int
    #: how many of the hits were first served from an attached
    #: :class:`~repro.core.planstore.PlanStore` (0 when none is attached).
    store_hits: int = 0
    #: entries pre-seeded by batch pricing (:mod:`repro.cost.batch`)
    #: rather than computed on a first-touch miss; 0 for the plan cache,
    #: which has no seeding path.
    seeded: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        """Plain-dict form for reports (sorted, JSON-safe).

        ``seeded`` appears only when nonzero, so plan-cache payloads —
        and every artifact produced before batch seeding existed — stay
        byte-stable.
        """
        out = {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self.entries,
            "store_hits": self.store_hits,
            "hit_rate": round(self.hit_rate, 4),
        }
        if self.seeded:
            out["seeded"] = self.seeded
        return out

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        """Counter delta between two snapshots (entries from ``self``)."""
        return CacheStats(hits=self.hits - other.hits,
                          misses=self.misses - other.misses,
                          entries=self.entries,
                          store_hits=self.store_hits - other.store_hits,
                          seeded=self.seeded - other.seeded)

    def __add__(self, other: "CacheStats") -> "CacheStats":
        """Order-independent merge of per-worker counters."""
        return CacheStats(hits=self.hits + other.hits,
                          misses=self.misses + other.misses,
                          entries=max(self.entries, other.entries),
                          store_hits=self.store_hits + other.store_hits,
                          seeded=self.seeded + other.seeded)


class PlanCache:
    """Memoized ``(group, n, accel, mode) -> GroupPlan | None`` table.

    ``None`` results (no shard mode can use ``n`` chiplets) are cached too:
    infeasible probes are exactly what ``next_shard_step`` produces in bulk.
    A lock keeps the counters coherent if callers ever share a cache across
    threads; the computation itself runs outside the lock, so a rare
    duplicate compute is possible but results are identical by construction.

    A :class:`~repro.core.planstore.PlanStore` can be layered underneath
    with :meth:`attach_store`: in-memory misses then consult the store's
    loaded entries (by content hash) before computing, and every newly
    computed entry is staged for :meth:`flush_to_store`.  The disk layer is
    invisible to callers — stored plans deserialize bit-identical to
    computed ones.
    """

    def __init__(self) -> None:
        self._table: dict = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._store: Optional[PlanStoreLike] = None
        #: content-hash -> plan entries loaded from the attached store
        self._loaded: dict = {}
        #: entries computed since the last flush, keyed by content hash
        self._dirty: dict = {}
        self._store_hits = 0
        # Interning tables: every group/accel object is swapped for one
        # canonical instance before keying the table, so key-tuple
        # comparisons inside dict probes short-circuit on identity
        # instead of deep-comparing whole layer chains.  The by-id level
        # makes repeat lookups with the same object O(1).
        self._intern: dict = {}
        self._intern_by_id: dict = {}

    def __len__(self) -> int:
        return len(self._table)

    #: cap on the by-id fast-path map: one entry per *object* probed, so
    #: unbounded sweeps would otherwise pin every scenario's dead groups.
    _INTERN_BY_ID_CAP = 8192

    def _canonical(self, obj):
        """One canonical instance per structurally-equal object.

        Caller must hold the lock.  The by-id fast path keeps a strong
        reference to the seen object, so its id cannot be recycled while
        the entry exists; the map is cleared when it hits its cap (the
        structural ``_intern`` table — bounded by distinct content —
        re-seeds it at one deep comparison per live object).
        """
        entry = self._intern_by_id.get(id(obj))
        if entry is not None and entry[0] is obj:
            return entry[1]
        canonical = self._intern.setdefault(obj, obj)
        if len(self._intern_by_id) >= self._INTERN_BY_ID_CAP:
            self._intern_by_id.clear()
        self._intern_by_id[id(obj)] = (obj, canonical)
        return canonical

    @property
    def store(self) -> Optional[PlanStoreLike]:
        """The attached plan store, if any."""
        return self._store

    def attach_store(self, store: PlanStoreLike) -> int:
        """Warm-start from ``store`` and stage future misses for flushing.

        Returns the number of entries loaded from disk.  Existing
        in-memory entries stay valid (and take precedence — they are the
        same plans by construction); only plans computed *after* attaching
        are staged for :meth:`flush_to_store`.
        """
        entries = store.load()
        with self._lock:
            self._store = store
            self._loaded = entries
            self._dirty = {}
        return len(entries)

    def detach_store(self) -> Optional[PlanStoreLike]:
        """Drop the store layer (unflushed entries are discarded)."""
        with self._lock:
            store, self._store = self._store, None
            self._loaded = {}
            self._dirty = {}
        return store

    def flush_to_store(self) -> int:
        """Persist entries computed since the last flush; returns count."""
        with self._lock:
            store, dirty = self._store, self._dirty
            if store is None or not dirty:
                return 0
            self._dirty = {}
        store.flush(dirty)
        with self._lock:
            self._loaded.update(dirty)
        return len(dirty)

    def get_or_compute(
            self,
            group: "LayerGroup",
            n: int,
            accel: "AcceleratorConfig",
            mode: str,
            compute: Callable[[], Optional["GroupPlan"]],
            context: str | None = None,
    ) -> Optional["GroupPlan"]:
        """Return the cached plan for the key, computing it on first use.

        ``context`` scopes the key to a planning context (the package's
        non-mesh NoP topology kind); ``None`` — the seed mesh — keeps the
        key (and any store content hash) identical to pre-context runs.
        """
        with self._lock:
            group = self._canonical(group)
            accel = self._canonical(accel)
            key = (group, n, accel, mode, context)
            if key in self._table:
                self._hits += 1
                return self._table[key]
            store = self._store
        # Hash outside the lock (pure CPU); only needed with a store.
        key_hash = (store.key_hash(group, n, accel, mode, context)
                    if store is not None else None)
        with self._lock:
            if key in self._table:  # raced with another thread
                self._hits += 1
                return self._table[key]
            if key_hash is not None and key_hash in self._loaded:
                plan = self._loaded[key_hash]
                self._table[key] = plan
                self._hits += 1
                self._store_hits += 1
                return plan
            self._misses += 1
        plan = compute()
        with self._lock:
            self._table[key] = plan
            if key_hash is not None:
                self._dirty[key_hash] = plan
        return plan

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              entries=len(self._table),
                              store_hits=self._store_hits)

    def clear(self) -> None:
        """Drop all entries and reset the counters.

        An attached store stays attached with its loaded entries intact
        (they mirror immutable disk state); staged-but-unflushed entries
        are dropped along with the table.
        """
        with self._lock:
            self._table.clear()
            self._dirty.clear()
            self._intern.clear()
            self._intern_by_id.clear()
            self._hits = 0
            self._misses = 0
            self._store_hits = 0


#: the process-wide cache shared by plan_group / next_shard_step /
#: ThroughputMatcher / TrunkDSE (one per worker process in a sweep).
_GLOBAL_CACHE = PlanCache()


def get_plan_cache() -> PlanCache:
    """The process-wide plan cache."""
    return _GLOBAL_CACHE


def plan_cache_stats() -> CacheStats:
    """Snapshot of the process-wide cache counters."""
    return _GLOBAL_CACHE.stats()


def clear_plan_cache() -> None:
    """Reset the process-wide cache (benchmarks / cold-start measurement)."""
    _GLOBAL_CACHE.clear()
