"""Process-wide memoization of group plans.

Every layer of the search stack re-prices ``(group, n_chiplets, accel)``
candidates: :func:`~repro.core.sharding.plan_group` inside the throughput
matcher's inner loop, :func:`~repro.core.sharding.next_shard_step` while
probing shard counts, and :class:`~repro.core.dse.TrunkDSE` while
brute-forcing Table I.  Until PR 1 each of those kept (at best) a private
cache, so a design-space sweep re-computed identical plans once per caller.

:class:`PlanCache` is the single shared table.  Keys are
``(group, n, accel, mode)`` — all frozen dataclasses or strings, so hashing
is structural: two scenarios that price the same group on the same
accelerator hit the same entry even across independent
``ThroughputMatcher``/``TrunkDSE`` instances.  ``mode`` distinguishes the
"best over all shard modes" entry produced by ``plan_group`` (``"best"``)
from any future mode-pinned lookups.

The cache also keeps hit/miss counters.  Sweep reports surface them next to
``Schedule.summary()`` metrics so cache-effectiveness regressions in the
hot path show up in benchmark artifacts, not just in wall time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..cost import AcceleratorConfig
    from ..workloads.graph import LayerGroup
    from .sharding import GroupPlan

#: cache key mode for "best plan over all shard modes" (plan_group output)
MODE_BEST = "best"


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of one cache's counters."""

    hits: int
    misses: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> dict:
        """Plain-dict form for reports (sorted, JSON-safe)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": self.entries,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        """Counter delta between two snapshots (entries from ``self``)."""
        return CacheStats(hits=self.hits - other.hits,
                          misses=self.misses - other.misses,
                          entries=self.entries)

    def __add__(self, other: "CacheStats") -> "CacheStats":
        """Order-independent merge of per-worker counters."""
        return CacheStats(hits=self.hits + other.hits,
                          misses=self.misses + other.misses,
                          entries=max(self.entries, other.entries))


class PlanCache:
    """Memoized ``(group, n, accel, mode) -> GroupPlan | None`` table.

    ``None`` results (no shard mode can use ``n`` chiplets) are cached too:
    infeasible probes are exactly what ``next_shard_step`` produces in bulk.
    A lock keeps the counters coherent if callers ever share a cache across
    threads; the computation itself runs outside the lock, so a rare
    duplicate compute is possible but results are identical by construction.
    """

    def __init__(self) -> None:
        self._table: dict = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def __len__(self) -> int:
        return len(self._table)

    def get_or_compute(
            self,
            group: "LayerGroup",
            n: int,
            accel: "AcceleratorConfig",
            mode: str,
            compute: Callable[[], Optional["GroupPlan"]],
    ) -> Optional["GroupPlan"]:
        """Return the cached plan for the key, computing it on first use."""
        key = (group, n, accel, mode)
        with self._lock:
            if key in self._table:
                self._hits += 1
                return self._table[key]
            self._misses += 1
        plan = compute()
        with self._lock:
            self._table[key] = plan
        return plan

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              entries=len(self._table))

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._table.clear()
            self._hits = 0
            self._misses = 0


#: the process-wide cache shared by plan_group / next_shard_step /
#: ThroughputMatcher / TrunkDSE (one per worker process in a sweep).
_GLOBAL_CACHE = PlanCache()


def get_plan_cache() -> PlanCache:
    """The process-wide plan cache."""
    return _GLOBAL_CACHE


def plan_cache_stats() -> CacheStats:
    """Snapshot of the process-wide cache counters."""
    return _GLOBAL_CACHE.stats()


def clear_plan_cache() -> None:
    """Reset the process-wide cache (benchmarks / cold-start measurement)."""
    _GLOBAL_CACHE.clear()
