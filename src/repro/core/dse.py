"""Design-space exploration for the trunks stage (paper Sec. IV-C).

The trunk quadrant hosts three diverse models (occupancy, lane prediction,
detection) on 9 chiplets.  The paper brute-forces the mapping and considers
heterogeneous integration: Het(2) and Het(4) embed 2 or 4 weight-stationary
(NVDLA-like) chiplets among the output-stationary ones, scoring

``score(config) = -EDP   if no chiplet violates the pipe constraint L_cstr``
``score(config) = -inf   otherwise``

We enumerate all chiplet partitions across the three trunk models and all
model-to-dataflow assignments compatible with the WS chiplet budget, pricing
every candidate with the cost model.  The search reproduces the paper's
finding that the WS chiplets gravitate to the detection trunk (conv-heavy,
weight-stationary-affine) and buy energy/EDP reductions at unchanged E2E.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, TypeVar

from ..cost import AcceleratorConfig, nvdla_chiplet, shidiannao_chiplet
from ..workloads.graph import Stage
from ..workloads.trunks import build_trunks
from .sharding import GroupPlan, plan_group

_T = TypeVar("_T")


def best_ranked(
        candidates: Iterable[tuple[tuple | None, _T]],
) -> tuple[tuple | None, _T | None]:
    """First-seen minimum over ``(rank, payload)`` candidates.

    The rank-then-materialize selection loop shared by the trunk DSE and
    the package-design search (:mod:`repro.design`): candidates with a
    ``None`` rank are unpriceable and skipped, ties keep the *first*
    candidate seen (strict ``<``), and only the winning payload — never a
    fully-evaluated object per candidate — flows back to the caller.
    Returns ``(None, None)`` when nothing ranked.
    """
    best_rank: tuple | None = None
    best_payload: _T | None = None
    for rank, payload in candidates:
        if rank is None:
            continue
        if best_rank is None or rank < best_rank:
            best_rank = rank
            best_payload = payload
    return best_rank, best_payload


@dataclass(frozen=True)
class TrunkConfig:
    """One candidate mapping of the trunk models onto the quadrant."""

    label: str
    ws_chiplets: int
    #: model name -> (chiplet count, dataflow style)
    alloc: dict
    e2e_ms: float
    pipe_ms: float
    energy_j: float
    edp_j_ms: float
    model_energy_j: dict
    model_pipe_ms: dict
    feasible: bool

    @property
    def score(self) -> float:
        return -self.edp_j_ms if self.feasible else float("-inf")


class TrunkDSE:
    """Brute-force trunk mapping search with heterogeneous options."""

    def __init__(self,
                 stage: Stage | None = None,
                 os_accel: AcceleratorConfig | None = None,
                 ws_accel: AcceleratorConfig | None = None,
                 l_cstr_s: float = 0.0937,
                 chiplets: int = 9,
                 allow_sharding: bool = False,
                 plan_context: str | None = None):
        self.stage = stage or build_trunks()
        self.os_accel = os_accel or shidiannao_chiplet()
        self.ws_accel = ws_accel or nvdla_chiplet()
        self.l_cstr_s = l_cstr_s
        self.chiplets = chiplets
        #: plan-cache/store keying context (the package's non-mesh NoP
        #: topology kind).  The DSE itself is topology-agnostic, but the
        #: context keeps its plans scoped exactly like the matcher's, so
        #: e.g. a torus sweep never flushes store shards a mesh sweep
        #: could be served from.
        self.plan_context = plan_context
        #: the paper maps trunk models whole (Fig. 8): a model's chiplet
        #: count is bounded by its independent instances.  Set
        #: ``allow_sharding=True`` for the free-form ablation.
        self.allow_sharding = allow_sharding
        #: name-keyed view over the process-wide PlanCache: structural
        #: (group, n, accel) hashing happens once per distinct key here,
        #: the brute-force loops below then pay only a string-tuple lookup.
        self._plan_view: dict[tuple[str, int, str], GroupPlan | None] = {}

    # ------------------------------------------------------------------

    def _plan(self, group_name: str, n: int, style: str) -> GroupPlan | None:
        # plan_group memoizes through the process-wide PlanCache, so
        # identical (group, n, accel) candidates are priced once across
        # all TrunkDSE instances and sweep scenarios in this process.
        key = (group_name, n, style)
        if key not in self._plan_view:
            group = self.stage.group(group_name)
            accel = self.os_accel if style == "os" else self.ws_accel
            self._plan_view[key] = plan_group(group, n, accel,
                                              self.plan_context)
        return self._plan_view[key]

    def _partitions(self):
        """All chiplet count assignments (each model >= 1, total <= budget)."""
        groups = list(self.stage.groups)
        caps = []
        for g in groups:
            cap = self.chiplets - (len(groups) - 1)
            if not self.allow_sharding:
                cap = min(cap, g.instances)
            caps.append(cap)
        for counts in itertools.product(
                *(range(1, cap + 1) for cap in caps)):
            if sum(counts) <= self.chiplets:
                yield dict(zip((g.name for g in groups), counts))

    def _styles(self, counts: dict, ws_budget: int):
        """Model-to-dataflow assignments honouring the WS chiplet budget.

        Models assigned WS must fit on the ``ws_budget`` WS chiplets and the
        remaining models on the OS chiplets; WS chiplets may idle (the
        search decides how much of the heterogeneous capacity is useful).
        """
        names = list(counts)
        os_budget = self.chiplets - ws_budget
        for ws_set in itertools.chain.from_iterable(
                itertools.combinations(names, r)
                for r in range(len(names) + 1)):
            ws_used = sum(counts[m] for m in ws_set)
            os_used = sum(counts[m] for m in names if m not in ws_set)
            if ws_used <= ws_budget and os_used <= os_budget:
                yield {m: ("ws" if m in ws_set else "os") for m in names}

    def _evaluate(self, counts: dict, styles: dict,
                  label: str, ws_budget: int) -> TrunkConfig | None:
        plans: dict[str, GroupPlan] = {}
        for name, n in counts.items():
            plan = self._plan(name, n, styles[name])
            if plan is None:
                return None
            plans[name] = plan
        pipe = max(p.pipe_latency_s for p in plans.values())
        e2e = max(p.span_s for p in plans.values())
        energy = sum(p.energy_j for p in plans.values())
        # The paper's Table I computes the trunk EDP against the stage's
        # end-to-end latency (0.185 J x 91.2 ms = 16.9 for the OS column).
        return TrunkConfig(
            label=label,
            ws_chiplets=ws_budget,
            alloc={m: (counts[m], styles[m]) for m in counts},
            e2e_ms=e2e * 1e3,
            pipe_ms=pipe * 1e3,
            energy_j=energy,
            edp_j_ms=energy * e2e * 1e3,
            model_energy_j={m: plans[m].energy_j for m in plans},
            model_pipe_ms={m: plans[m].pipe_latency_s * 1e3 for m in plans},
            feasible=pipe <= self.l_cstr_s,
        )

    def _rank(self, counts: dict, styles: dict) -> tuple | None:
        """Cheap ranking key for one candidate (no TrunkConfig built).

        Feasible candidates rank as ``(0, edp_j_ms, pipe_ms)``, infeasible
        as ``(1, pipe_ms)`` — the same ordering (including first-seen tie
        breaking via strict comparison) the full-object search used, at a
        fraction of the per-candidate cost.  This loop is where ``table()``
        spends its time, so candidates are scored with plain arithmetic
        and only the winner is materialized.
        """
        pipe = 0.0
        e2e = 0.0
        energy = 0.0
        for name, n in counts.items():
            plan = self._plan(name, n, styles[name])
            if plan is None:
                return None
            if plan.pipe_latency_s > pipe:
                pipe = plan.pipe_latency_s
            if plan.span_s > e2e:
                e2e = plan.span_s
            energy += plan.energy_j
        if pipe <= self.l_cstr_s:
            return (0, energy * e2e * 1e3, pipe * 1e3)
        return (1, pipe * 1e3)

    def search(self, ws_budget: int, label: str | None = None) -> TrunkConfig:
        """Best configuration for a given WS chiplet count.

        Feasible configurations are ranked by EDP; when none meets the
        constraint (the paper's WS-only column), the minimum-pipe-latency
        configuration is reported instead.
        """
        if not 0 <= ws_budget <= self.chiplets:
            raise ValueError("ws_budget out of range")
        label = label or (f"Het({ws_budget})" if 0 < ws_budget < self.chiplets
                          else ("WS" if ws_budget else "OS"))
        _, best_cand = best_ranked(
            (self._rank(counts, styles), (counts, styles))
            for counts in self._partitions()
            for styles in self._styles(counts, ws_budget))
        if best_cand is None:
            raise RuntimeError("trunk DSE found no valid configuration")
        best = self._evaluate(*best_cand, label, ws_budget)
        assert best is not None  # its plans were all priceable in _rank
        return best

    def table(self, het_budgets: tuple[int, ...] = (2, 4)) -> list[TrunkConfig]:
        """The paper's Table I: OS, WS, then heterogeneous columns."""
        results = [self.search(0, "OS"), self.search(self.chiplets, "WS")]
        for k in het_budgets:
            results.append(self.search(k))
        return results
