"""Schedule representation and end-to-end performance accounting.

A :class:`Schedule` binds every layer group of the perception workload to a
set of chiplets (via a :class:`~repro.core.sharding.GroupPlan`) and prices
the result:

* **pipe latency** — steady-state pipelining latency: the busiest chiplet's
  per-frame busy time (the paper's "Pipe Lat").
* **E2E latency** — one frame's traversal of the whole pipeline: the sum of
  per-stage critical paths plus NoP transfer latencies (the paper's
  "E2E Lat").
* **energy / EDP** — compute + NoP energy per frame; EDP uses pipe latency
  (this matches the paper's Figs. 5-8 and the 36x256 row of Table II; see
  EXPERIMENTS.md for the one column where the paper's EDP arithmetic is
  not self-consistent).
* **utilization** — useful MACs over all package PE-cycles inside one pipe
  window (steady state).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch import DramBudget, MCMPackage, NoPTransfer, transfer_cost
from ..workloads.graph import LayerGroup, PerceptionWorkload
from .sharding import GroupPlan


@dataclass(frozen=True)
class GroupSchedule:
    """A planned group bound to physical chiplets."""

    plan: GroupPlan
    chiplet_ids: tuple[int, ...]
    #: when set, this tiny group is colocated on the named group's chiplet
    host: str | None = None


@dataclass(frozen=True)
class TraceStep:
    """One decision of the throughput-matching algorithm (for Fig. 10)."""

    step: int
    phase: str
    action: str
    group: str
    n_chiplets: int
    pipe_latency_ms: float
    chiplets_remaining: int


@dataclass(frozen=True)
class NoPEdge:
    """Aggregate NoP traffic between two groups (or inside one pipeline)."""

    src_group: str
    dst_group: str
    payload_bytes: int
    #: mean hop count over the edge's source chiplets
    hops: float
    latency_s: float
    energy_j: float
    #: worst single route (max per-source hop count) on this edge
    max_hops: int = 0


@dataclass
class Schedule:
    """A complete mapping of the perception workload onto an MCM package."""

    package: MCMPackage
    workload: PerceptionWorkload
    stage_quadrants: dict[str, tuple[int, ...]]
    groups: dict[str, GroupSchedule]
    tolerance: float
    base_latency_s: float
    trace: list[TraceStep] = field(default_factory=list)
    #: optional DRAM interface attached to the schedule.  When set, the
    #: steady-state accounting treats DRAM as one more pipeline resource
    #: that must stream ``dram_bytes_per_frame`` per frame: an undersized
    #: budget throttles :attr:`pipe_latency_s` (and everything derived
    #: from it) instead of living in a detached report.  ``None`` keeps
    #: the seed compute-only accounting bit-for-bit.
    dram: DramBudget | None = None
    #: per-frame DRAM traffic (streamed weights + camera inputs); see
    #: :func:`repro.arch.dram.workload_dram_bytes`.
    dram_bytes_per_frame: int = 0
    # Memos for the derived metrics below.  A Schedule is immutable once
    # the matcher returns it, and summary()/e2e accounting re-derive the
    # same NoP edges and busy map several times per call without these.
    _edge_memo: dict = field(default_factory=dict, init=False, repr=False,
                             compare=False)
    _hop_map_memo: dict = field(default_factory=dict, init=False,
                                repr=False, compare=False)
    _nop_edges_memo: list | None = field(default=None, init=False,
                                         repr=False, compare=False)
    _pipe_latency_memo: float | None = field(default=None, init=False,
                                             repr=False, compare=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def group_schedule(self, name: str) -> GroupSchedule:
        return self.groups[name]

    def chiplets_of(self, name: str) -> tuple[int, ...]:
        """Physical chiplets of a group, resolving colocation chains."""
        seen: set[str] = set()
        gs = self.groups[name]
        while gs.host is not None:
            if name in seen:
                raise ValueError(f"colocation cycle through {name!r}")
            seen.add(name)
            name = gs.host
            gs = self.groups[name]
        if seen:
            return gs.chiplet_ids[:1]
        return gs.chiplet_ids

    @property
    def used_chiplets(self) -> set[int]:
        used: set[int] = set()
        for name in self.groups:
            used.update(self.chiplets_of(name))
        return used

    # ------------------------------------------------------------------
    # Steady-state metrics
    # ------------------------------------------------------------------

    def chiplet_busy(self) -> dict[int, float]:
        """Per-frame busy seconds for every chiplet."""
        busy: dict[int, float] = {c.chiplet_id: 0.0 for c in
                                  self.package.chiplets}
        for name, gs in self.groups.items():
            if gs.host is not None:
                busy[self.chiplets_of(name)[0]] += gs.plan.span_s
            else:
                for cid, t in zip(gs.chiplet_ids, gs.plan.per_chiplet_busy):
                    busy[cid] += t
        return busy

    @property
    def compute_pipe_latency_s(self) -> float:
        """Steady-state pipe latency from compute alone (busiest chiplet)."""
        if self._pipe_latency_memo is None:
            self._pipe_latency_memo = max(self.chiplet_busy().values())
        return self._pipe_latency_memo

    # ------------------------------------------------------------------
    # DRAM steady-state accounting
    # ------------------------------------------------------------------

    @property
    def dram_time_s(self) -> float:
        """Per-frame DRAM streaming time under the attached budget."""
        if self.dram is None:
            return 0.0
        return self.dram.stream_time_s(self.dram_bytes_per_frame)

    @property
    def dram_throttled(self) -> bool:
        """True when DRAM, not compute, sets the steady-state frame rate."""
        return self.dram_time_s > self.compute_pipe_latency_s

    @property
    def dram_energy_j(self) -> float:
        """Per-frame DRAM access energy under the attached budget."""
        if self.dram is None:
            return 0.0
        return self.dram.stream_energy_j(self.dram_bytes_per_frame)

    @property
    def dram_bw_utilization(self) -> float:
        """Fraction of the DRAM budget consumed at the steady-state rate."""
        pipe = self.pipe_latency_s
        if self.dram is None or pipe == 0:
            return 0.0
        return self.dram_time_s / pipe

    @property
    def pipe_latency_s(self) -> float:
        """Steady-state pipe latency: compute, throttled by DRAM if attached.

        DRAM serves frames like one more FIFO pipeline resource, so the
        steady-state inter-departure time is the slower of the busiest
        chiplet and the per-frame DRAM stream (validated by
        :class:`~repro.sim.stream.StreamSimulator`).
        """
        return max(self.compute_pipe_latency_s, self.dram_time_s)

    # ------------------------------------------------------------------
    # NoP traffic
    # ------------------------------------------------------------------

    def _group_output_bytes(self, group: LayerGroup) -> int:
        return group.output_bytes_per_instance * group.instances

    def _edge(self, src: str, dst: str) -> NoPEdge:
        """Price the transfer of src's output into dst's chiplets."""
        memo = self._edge_memo.get((src, dst))
        if memo is not None:
            return memo
        src_group = self.workload.find_group(src)
        payload = self._group_output_bytes(src_group)
        src_ids = self.chiplets_of(src)
        dst_ids = self.chiplets_of(dst)
        per_src = payload / max(1, len(src_ids))
        # One distance map from the destination set prices every source
        # chiplet's nearest-hop count in O(mesh cells), replacing the
        # former O(src * dst) pairwise minimum (same hop values by
        # construction).  The map comes from the package topology, so
        # torus wraparound shortens routes here without touching the
        # pricing code.  Several edges often share a destination set,
        # so the map is memoized per destination tuple.
        hop_map = self._hop_map_memo.get(dst_ids)
        if hop_map is None:
            hop_map = self.package.topology.min_hop_map(
                [(c.x, c.y) for c in map(self.package.chiplet, dst_ids)])
            self._hop_map_memo[dst_ids] = hop_map
        total_lat = 0.0
        total_energy = 0.0
        hop_sum = 0.0
        worst_hops = 0
        by_hops: dict[int, NoPTransfer] = {}  # few distinct hop counts
        for sid in src_ids:
            chiplet = self.package.chiplet(sid)
            hops = hop_map[chiplet.x][chiplet.y]
            t = by_hops.get(hops)
            if t is None:
                t = transfer_cost(int(per_src), hops, self.package.nop)
                by_hops[hops] = t
            total_lat = max(total_lat, t.latency_s)
            total_energy += t.energy_j
            hop_sum += hops
            if hops > worst_hops:
                worst_hops = hops
        edge = NoPEdge(src, dst, payload, hop_sum / max(1, len(src_ids)),
                       total_lat, total_energy, worst_hops)
        self._edge_memo[(src, dst)] = edge
        return edge

    def _pipeline_internal_edge(self, name: str) -> NoPEdge | None:
        gs = self.groups[name]
        if gs.plan.segments < 2:
            return None
        group = self.workload.find_group(name)
        # Hand-off tensor between segments approximated by the group's
        # per-instance output size, once per extra segment, over one hop
        # (segments are placed adjacently).  Instances pipeline in
        # parallel, so the serialization *latency* per hop is one
        # instance's tensor (pricing the whole group's output here
        # over-counted it by ``instances``x), while the *energies* of the
        # concurrent per-instance transfers are additive.
        payload = group.output_bytes_per_instance
        hops = gs.plan.segments - 1
        t = transfer_cost(payload, 1, self.package.nop)
        return NoPEdge(name, name, payload * hops * group.instances, 1.0,
                       t.latency_s * hops,
                       t.energy_j * hops * group.instances, 1)

    def nop_edges(self) -> list[NoPEdge]:
        """All inter-group and pipeline-internal NoP transfers."""
        if self._nop_edges_memo is not None:
            return self._nop_edges_memo
        edges: list[NoPEdge] = []
        for stage in self.workload.stages:
            for group in stage.groups:
                for dep in group.depends_on:
                    edges.append(self._edge(dep, group.name))
                internal = self._pipeline_internal_edge(group.name)
                if internal is not None:
                    edges.append(internal)
        # Stage boundary transfers: terminal groups feed the next stage's
        # source groups.
        for prev, nxt in zip(self.workload.stages, self.workload.stages[1:]):
            dependents = {d for g in prev.groups for d in g.depends_on}
            terminals = [g for g in prev.groups if g.name not in dependents]
            sources = [g for g in nxt.groups if not g.depends_on]
            for t in terminals:
                for s in sources:
                    edges.append(self._edge(t.name, s.name))
        self._nop_edges_memo = edges
        return edges

    @property
    def nop_latency_s(self) -> float:
        return sum(e.latency_s for e in self.nop_edges())

    @property
    def nop_energy_j(self) -> float:
        return sum(e.energy_j for e in self.nop_edges())

    @property
    def nop_avg_hops(self) -> float:
        """Mean hop count across all NoP transfers (edges weighted equally).

        The headline topology metric: wraparound links must *demonstrably*
        shorten routes, and this is where it shows.  Not part of
        :meth:`summary` so default artifacts stay byte-stable; the sweep
        runner adds it to rows when the topology axis is set.
        """
        edges = self.nop_edges()
        if not edges:
            return 0.0
        return sum(e.hops for e in edges) / len(edges)

    @property
    def nop_max_hops(self) -> int:
        """Worst single route (per-source hop count) over all transfers."""
        return max((e.max_hops for e in self.nop_edges()), default=0)

    # ------------------------------------------------------------------
    # End-to-end metrics
    # ------------------------------------------------------------------

    def stage_span_s(self, stage_name: str, include_nop: bool = True) -> float:
        """Critical path of one stage (one frame), including intra-stage NoP."""
        stage = self.workload.stage(stage_name)
        edge_lat: dict[tuple[str, str], float] = {}
        if include_nop:
            for g in stage.groups:
                for dep in g.depends_on:
                    edge_lat[(dep, g.name)] = self._edge(dep, g.name).latency_s
        finish: dict[str, float] = {}
        for g in stage.topo_order():
            start = 0.0
            for dep in g.depends_on:
                start = max(start,
                            finish.get(dep, 0.0)
                            + edge_lat.get((dep, g.name), 0.0))
            gs = self.groups[g.name]
            span = gs.plan.span_s
            internal = self._pipeline_internal_edge(g.name)
            if include_nop and internal is not None:
                span += internal.latency_s
            finish[g.name] = start + span
        return max(finish.values(), default=0.0)

    @property
    def e2e_latency_s(self) -> float:
        total = 0.0
        for stage in self.workload.stages:
            total += self.stage_span_s(stage.name)
        # Stage hand-off transfers.
        for prev, nxt in zip(self.workload.stages, self.workload.stages[1:]):
            dependents = {d for g in prev.groups for d in g.depends_on}
            terminals = [g for g in prev.groups if g.name not in dependents]
            sources = [g for g in nxt.groups if not g.depends_on]
            worst = 0.0
            for t in terminals:
                for s in sources:
                    worst = max(worst, self._edge(t.name, s.name).latency_s)
            total += worst
        return total

    @property
    def compute_energy_j(self) -> float:
        return sum(gs.plan.energy_j for gs in self.groups.values())

    @property
    def energy_j(self) -> float:
        return self.compute_energy_j + self.nop_energy_j + self.dram_energy_j

    @property
    def edp_j_ms(self) -> float:
        """Energy-delay product in J*ms, delay = pipe latency (paper)."""
        return self.energy_j * self.pipe_latency_s * 1e3

    @property
    def utilization(self) -> float:
        """Useful MACs over package PE-cycles in one steady-state window.

        Each chiplet contributes cycles at its *own* clock: heterogeneous
        packages (the paper's Het(2)/Het(4)) may mix accelerator
        frequencies, so assuming chiplet 0's clock for the whole package
        mis-reports utilization whenever the mix is not uniform.
        """
        window = self.pipe_latency_s
        pe_cycles = sum(c.accel.pe_count * c.accel.frequency_hz * window
                        for c in self.package.chiplets)
        return self.workload.total_macs / pe_cycles

    def stage_utilization(self) -> dict[str, float]:
        """Useful MACs over PE-cycles per stage's quadrant set.

        The per-quadrant view behind the package number: each stage's
        groups execute on its own quadrants, whose chiplets contribute
        cycles at their *own* clock — so on a per-quadrant heterogeneous
        package this shows which quadrant's hardware is the good (or
        poor) match for its stage, where :attr:`utilization` only
        reports the blend.  Every value is in ``(0, 1]`` in exact
        arithmetic: a chiplet cannot execute more MACs per cycle than
        its native tile holds, nor be busy longer than the window.
        """
        window = self.pipe_latency_s
        out: dict[str, float] = {}
        for stage in self.workload.stages:
            chiplets = [c for q in self.stage_quadrants[stage.name]
                        for c in self.package.quadrant(q)]
            pe_cycles = sum(c.accel.pe_count * c.accel.frequency_hz * window
                            for c in chiplets)
            out[stage.name] = stage.total_macs / pe_cycles
        return out

    def summary(self) -> dict:
        """Headline metrics as a plain dict (used by experiments/CLI).

        DRAM entries appear only when a budget is attached, so summaries
        (and every artifact built from them) are unchanged for schedules
        produced without a DRAM axis.
        """
        out = {
            "e2e_ms": self.e2e_latency_s * 1e3,
            "pipe_ms": self.pipe_latency_s * 1e3,
            "energy_j": self.energy_j,
            "edp_j_ms": self.edp_j_ms,
            "utilization": self.utilization,
            "nop_latency_ms": self.nop_latency_s * 1e3,
            "nop_energy_j": self.nop_energy_j,
            "used_chiplets": len(self.used_chiplets),
        }
        if self.dram is not None:
            out["compute_pipe_ms"] = self.compute_pipe_latency_s * 1e3
            out["dram_ms"] = self.dram_time_s * 1e3
            out["dram_bw_util"] = self.dram_bw_utilization
            out["dram_energy_j"] = self.dram_energy_j
            out["dram_throttled"] = self.dram_throttled
        return out
