"""The paper's core contribution: throughput-matching scheduler and DSE."""

from .context import (
    DEFAULT_FRACTIONS,
    LaneContextPoint,
    lane_context_sweep,
    min_feasible_fraction,
)
from .dse import TrunkConfig, TrunkDSE, best_ranked
from .hetero import HeterogeneousResult, schedule_heterogeneous
from .placement import default_stage_quadrants, place
from .plancache import (
    CacheStats,
    PlanCache,
    PlanStoreLike,
    clear_plan_cache,
    get_plan_cache,
    plan_cache_stats,
)
from .planstore import SCHEMA_VERSION, PlanKeyMemo, PlanStore, plan_key_hash
from .schedule import GroupSchedule, NoPEdge, Schedule, TraceStep
from .sharding import (
    MODE_INSTANCES,
    MODE_PIPELINE,
    MODE_ROWS,
    MODE_SINGLE,
    GroupPlan,
    max_row_shards,
    next_shard_step,
    plan_group,
    split_plane,
)
from .throughput import ThroughputMatcher, match_throughput

__all__ = [
    "DEFAULT_FRACTIONS",
    "LaneContextPoint",
    "lane_context_sweep",
    "min_feasible_fraction",
    "TrunkConfig",
    "TrunkDSE",
    "best_ranked",
    "HeterogeneousResult",
    "schedule_heterogeneous",
    "CacheStats",
    "PlanCache",
    "PlanStoreLike",
    "clear_plan_cache",
    "get_plan_cache",
    "plan_cache_stats",
    "SCHEMA_VERSION",
    "PlanKeyMemo",
    "PlanStore",
    "plan_key_hash",
    "default_stage_quadrants",
    "place",
    "GroupSchedule",
    "NoPEdge",
    "Schedule",
    "TraceStep",
    "GroupPlan",
    "MODE_SINGLE",
    "MODE_INSTANCES",
    "MODE_ROWS",
    "MODE_PIPELINE",
    "max_row_shards",
    "next_shard_step",
    "plan_group",
    "split_plane",
    "ThroughputMatcher",
    "match_throughput",
]
