"""Serialization and report generation."""

from .report import generate_report
from .serialize import (
    accel_to_dict,
    group_to_dict,
    layer_to_dict,
    plan_from_record,
    plan_to_dict,
    plan_to_record,
    save_schedule,
    save_sweep,
    schedule_to_dict,
    workload_to_dict,
)

__all__ = [
    "generate_report",
    "accel_to_dict",
    "group_to_dict",
    "layer_to_dict",
    "plan_from_record",
    "plan_to_dict",
    "plan_to_record",
    "save_schedule",
    "save_sweep",
    "schedule_to_dict",
    "workload_to_dict",
]
