"""JSON-safe serialization of workloads, plans, and schedules.

Schedules are the unit downstream tooling wants to persist (e.g. to diff
scheduler versions or feed a floorplanning flow).  The dictionaries emitted
here are pure built-in types, stable across runs, and documented field by
field so external consumers do not need this package to read them.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import TYPE_CHECKING

from ..core.schedule import Schedule
from ..core.sharding import GroupPlan
from ..cost import AcceleratorConfig
from ..workloads.graph import LayerGroup, PerceptionWorkload
from ..workloads.layers import Layer

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from ..sweep.runner import SweepResult


def layer_to_dict(layer: Layer) -> dict:
    """One layer: dimensions, kind, and derived sizes."""
    return {
        "name": layer.name,
        "kind": layer.kind.value,
        "out_h": layer.out_h,
        "out_w": layer.out_w,
        "k": layer.k,
        "c": layer.c,
        "r": layer.r,
        "s": layer.s,
        "stride": layer.stride,
        "weights_are_activations": layer.weights_are_activations,
        "macs": layer.macs,
        "weight_words": layer.weight_words,
        "output_words": layer.output_words,
    }


def group_to_dict(group: LayerGroup) -> dict:
    """One layer group with its scheduling attributes."""
    return {
        "name": group.name,
        "stage": group.stage,
        "instances": group.instances,
        "instance_axis": group.instance_axis,
        "depends_on": list(group.depends_on),
        "row_shardable": group.row_shardable,
        "pipeline_splittable": group.pipeline_splittable,
        "total_macs": group.total_macs,
        "layers": [layer_to_dict(layer) for layer in group.layers],
    }


def workload_to_dict(workload: PerceptionWorkload) -> dict:
    """The full perception workload as nested dictionaries."""
    return {
        "stages": [
            {"name": s.name, "groups": [group_to_dict(g) for g in s.groups]}
            for s in workload.stages
        ],
        "total_macs": workload.total_macs,
    }


def accel_to_dict(accel: AcceleratorConfig) -> dict:
    """One accelerator config (nested energy table included), JSON-safe."""
    payload = dataclasses.asdict(accel)
    payload["native_tile"] = list(accel.native_tile)
    return payload


def plan_to_record(plan: GroupPlan) -> dict:
    """Exact round-trip form of a :class:`GroupPlan` (plan-store entries).

    Unlike :func:`plan_to_dict` (a report view in milliseconds), this keeps
    every dataclass field verbatim in its native unit, so
    ``plan_from_record(plan_to_record(p)) == p`` holds bit-for-bit — JSON
    floats serialize via ``repr`` and round-trip exactly.
    """
    return {
        "group_name": plan.group_name,
        "n_chiplets": plan.n_chiplets,
        "mode": plan.mode,
        "per_chiplet_busy": list(plan.per_chiplet_busy),
        "span_s": plan.span_s,
        "energy_j": plan.energy_j,
        "macs": plan.macs,
        "segments": plan.segments,
    }


def plan_from_record(record: dict) -> GroupPlan:
    """Inverse of :func:`plan_to_record`."""
    return GroupPlan(
        group_name=record["group_name"],
        n_chiplets=record["n_chiplets"],
        mode=record["mode"],
        per_chiplet_busy=tuple(record["per_chiplet_busy"]),
        span_s=record["span_s"],
        energy_j=record["energy_j"],
        macs=record["macs"],
        segments=record["segments"],
    )


def plan_to_dict(plan: GroupPlan) -> dict:
    """One group plan: chiplet count, mode, and per-chiplet timing."""
    return {
        "group": plan.group_name,
        "n_chiplets": plan.n_chiplets,
        "mode": plan.mode,
        "segments": plan.segments,
        "pipe_latency_ms": plan.pipe_latency_s * 1e3,
        "span_ms": plan.span_s * 1e3,
        "energy_j": plan.energy_j,
        "per_chiplet_busy_ms": [t * 1e3 for t in plan.per_chiplet_busy],
    }


def schedule_to_dict(schedule: Schedule) -> dict:
    """A complete schedule: mapping, metrics, NoP edges, and trace."""
    return {
        "package": {
            "name": schedule.package.name,
            "mesh": [schedule.package.mesh_w, schedule.package.mesh_h],
            "total_pes": schedule.package.total_pes,
            "npus": schedule.package.npus,
        },
        "tolerance": schedule.tolerance,
        "base_latency_ms": schedule.base_latency_s * 1e3,
        "stage_quadrants": {k: list(v)
                            for k, v in schedule.stage_quadrants.items()},
        "groups": {
            name: {
                "plan": plan_to_dict(gs.plan),
                "chiplets": list(gs.chiplet_ids),
                "host": gs.host,
            }
            for name, gs in schedule.groups.items()
        },
        "metrics": schedule.summary(),
        "nop_edges": [
            {
                "src": e.src_group,
                "dst": e.dst_group,
                "payload_bytes": e.payload_bytes,
                "hops": e.hops,
                "latency_ms": e.latency_s * 1e3,
                "energy_mj": e.energy_j * 1e3,
            }
            for e in schedule.nop_edges()
        ],
        "trace": [
            {
                "step": t.step,
                "phase": t.phase,
                "action": t.action,
                "group": t.group,
                "n_chiplets": t.n_chiplets,
                "pipe_latency_ms": t.pipe_latency_ms,
                "chiplets_remaining": t.chiplets_remaining,
            }
            for t in schedule.trace
        ],
    }


def save_schedule(schedule: Schedule, path: str | pathlib.Path) -> None:
    """Write a schedule dump as pretty-printed JSON."""
    payload = schedule_to_dict(schedule)
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def save_sweep(result: "SweepResult", path: str | pathlib.Path) -> None:
    """Write a :class:`~repro.sweep.runner.SweepResult` as stable JSON.

    The ``rows`` list is the deterministic payload (identical between the
    serial and parallel paths); ``summary`` carries run metadata and the
    aggregated plan-cache counters.
    """
    pathlib.Path(path).write_text(
        json.dumps(result.to_dict(), indent=2, sort_keys=True) + "\n")
