"""Experiment fig11: lane trunk under context-aware computing (Fig. 11)."""

from __future__ import annotations

from ..core import lane_context_sweep, min_feasible_fraction
from ..cost import chain_latency_s, shidiannao_chiplet
from ..sim.metrics import format_table
from ..viz import hbar_chart
from ..workloads import build_perception_workload


def run(threshold_s: float | None = None) -> dict:
    if threshold_s is None:
        # The constraint is the FE+BFPN base pipelining latency with the
        # scheduler's 5% tolerance (the paper's dashed 82 ms line).
        workload = build_perception_workload()
        fe = workload.stage("FE_BFPN").groups[0]
        threshold_s = 1.05 * chain_latency_s(fe.layers, shidiannao_chiplet())
    points = lane_context_sweep(threshold_s=threshold_s)
    return {
        "threshold_ms": round(threshold_s * 1e3, 2),
        "points": [
            {
                "context_pct": round(p.fraction * 100),
                "latency_ms": round(p.latency_ms, 2),
                "energy_mj": round(p.energy_j * 1e3, 2),
                "meets_constraint": p.meets_constraint,
            }
            for p in points
        ],
        "min_feasible_context_pct": round(
            min_feasible_fraction(points) * 100),
    }


def render(result: dict | None = None) -> str:
    result = result or run()
    parts = [format_table(result["points"],
                          "Fig. 11: lane trunk context sweep")]
    parts.append(hbar_chart(
        [(f"{p['context_pct']}%", p["latency_ms"])
         for p in result["points"]],
        title="lane latency vs retained context", unit=" ms"))
    parts.append(
        f"threshold {result['threshold_ms']} ms; largest feasible context "
        f"{result['min_feasible_context_pct']}% (paper: ~60%)")
    return "\n".join(parts)
