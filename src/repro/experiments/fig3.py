"""Experiment fig3: component latency/energy breakdown, OS vs WS (Fig. 3)."""

from __future__ import annotations

from ..analysis import component_breakdown, fusion_latency_share
from ..cost import nvdla_chiplet, shidiannao_chiplet
from ..sim.metrics import format_table
from ..viz import hbar_chart
from ..workloads import PipelineConfig, build_perception_workload


def run(config: PipelineConfig | None = None) -> dict:
    """Breakdown per dataflow plus the paper's headline speedup ratio."""
    workload = build_perception_workload(config)
    accels = {"shidiannao_os": shidiannao_chiplet(),
              "nvdla_ws": nvdla_chiplet()}
    out: dict = {"components": {}, "fusion_share": {}}
    totals = {}
    for name, accel in accels.items():
        rows = component_breakdown(workload, accel)
        out["components"][name] = [
            {
                "component": r.component,
                "latency_ms": round(r.latency_ms, 2),
                "energy_mj": round(r.energy_mj, 2),
                "latency_share_pct": round(r.latency_share * 100, 1),
            }
            for r in rows
        ]
        out["fusion_share"][name] = {
            k: round(v * 100, 1)
            for k, v in fusion_latency_share(rows).items()}
        # Pipeline-weighted totals: FE+BFPN is reported per camera in the
        # table (as in the paper's Fig. 3) but contributes 8 concurrent
        # models to the pipeline, so the aggregate ratio weights it by 8.
        cameras = (config or PipelineConfig()).cameras
        totals[name] = {
            "latency_ms": sum(
                r.latency_ms * (cameras if r.component == "FE+BFPN" else 1)
                for r in rows),
            "energy_mj": sum(
                r.energy_mj * (cameras if r.component == "FE+BFPN" else 1)
                for r in rows),
        }
    out["os_speedup_over_ws"] = round(
        totals["nvdla_ws"]["latency_ms"]
        / totals["shidiannao_os"]["latency_ms"], 2)
    out["ws_energy_gain_over_os"] = round(
        totals["shidiannao_os"]["energy_mj"]
        / totals["nvdla_ws"]["energy_mj"], 3)
    return out


def render(result: dict | None = None) -> str:
    result = result or run()
    parts = []
    for name, rows in result["components"].items():
        parts.append(format_table(rows, f"Fig. 3 breakdown — {name}"))
        parts.append(hbar_chart(
            [(r["component"], r["latency_ms"]) for r in rows],
            title=f"latency breakdown ({name})", unit=" ms"))
        parts.append(f"fusion latency shares: {result['fusion_share'][name]}")
    parts.append(
        f"OS speedup over WS (paper: 6.85x): "
        f"{result['os_speedup_over_ws']}x")
    parts.append(
        f"WS energy gain over OS: {result['ws_energy_gain_over_os']}x")
    return "\n\n".join(parts)
