"""Experiment table1: heterogeneous trunk integration (Table I)."""

from __future__ import annotations

from ..core import TrunkDSE
from ..cost import chain_latency_s, shidiannao_chiplet
from ..sim.metrics import format_table
from ..workloads import build_perception_workload


def run(l_cstr_s: float | None = None) -> dict:
    if l_cstr_s is None:
        workload = build_perception_workload()
        fe = workload.stage("FE_BFPN").groups[0]
        l_cstr_s = 1.05 * chain_latency_s(fe.layers, shidiannao_chiplet())
    dse = TrunkDSE(l_cstr_s=l_cstr_s)
    configs = dse.table()
    base = configs[0]  # OS-only column
    rows = []
    for cfg in configs:
        rows.append({
            "config": cfg.label,
            "e2e_ms": round(cfg.e2e_ms, 1),
            "pipe_ms": round(cfg.pipe_ms, 1),
            "energy_j": round(cfg.energy_j, 4),
            "edp_j_ms": round(cfg.edp_j_ms, 2),
            "d_energy_pct": round((cfg.energy_j / base.energy_j - 1) * 100,
                                  1),
            "d_edp_pct": round((cfg.edp_j_ms / base.edp_j_ms - 1) * 100, 1),
            "feasible": cfg.feasible,
            "alloc": {m: f"{n}x{s}" for m, (n, s) in cfg.alloc.items()},
        })
    det_os = base.model_energy_j["DET_TR"]
    het2 = next(c for c in configs if c.label == "Het(2)")
    det_het = het2.model_energy_j["DET_TR"]
    return {
        "l_cstr_ms": round(l_cstr_s * 1e3, 1),
        "rows": rows,
        # The paper reports DET_TR independently achieving a 35% energy
        # reduction once the WS chiplets take it over.
        "det_energy_reduction_pct": round((1 - det_het / det_os) * 100, 1),
    }


def render(result: dict | None = None) -> str:
    result = result or run()
    flat = [{k: (str(v) if k == "alloc" else v) for k, v in r.items()}
            for r in result["rows"]]
    parts = [format_table(flat, "Table I: heterogeneous trunk integration")]
    parts.append(
        f"L_cstr = {result['l_cstr_ms']} ms; DET_TR energy reduction on WS "
        f"chiplets: {result['det_energy_reduction_pct']}% (paper: 35%)")
    return "\n".join(parts)
