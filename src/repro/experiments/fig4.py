"""Experiment fig4: per-layer OS/WS affinity deltas (Fig. 4)."""

from __future__ import annotations

from ..analysis import affinity_blocks
from ..sim.metrics import format_table
from ..workloads import PipelineConfig, build_perception_workload


def run(config: PipelineConfig | None = None) -> dict:
    workload = build_perception_workload(config)
    panels = affinity_blocks(workload)
    out: dict = {"panels": {}, "summary": {}}
    for label, rows in panels.items():
        out["panels"][label] = [
            {
                "layer": r.layer,
                "group": r.group,
                "delta_latency_ms": round(r.delta_latency_ms, 3),
                "delta_energy_mj": round(r.delta_energy_mj, 4),
            }
            for r in rows
        ]
        n = len(rows)
        out["summary"][label] = {
            "layers": n,
            "os_latency_affine_pct": round(
                100 * sum(r.delta_latency_ms < 0 for r in rows) / n, 1),
            "ws_energy_affine_pct": round(
                100 * sum(r.delta_energy_mj > 0 for r in rows) / n, 1),
        }
    return out


def render(result: dict | None = None) -> str:
    result = result or run()
    parts = []
    for label, stats in result["summary"].items():
        parts.append(f"Fig. 4 panel {label!r}: {stats}")
    # Show the fusion panel rows (the paper's bottleneck analysis).
    parts.append(format_table(result["panels"]["S+T Attn Fusion"][:12],
                              "S+T fusion layer deltas (first 12)"))
    return "\n".join(parts)
