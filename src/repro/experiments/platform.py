"""Experiment platform: end-to-end platform validation (extension).

Beyond the paper's artifacts: cross-check the analytical schedule with the
discrete-event stream simulator, verify the package DRAM budget at the
camera rate, and quantify the end-to-end benefit of heterogeneous trunk
integration — the three checks a deployment study would demand.
"""

from __future__ import annotations

from ..arch import dram_report
from ..core import match_throughput, schedule_heterogeneous
from ..sim import stream_validate
from ..sweep.scenario import Scenario
from ..workloads import PipelineConfig, build_perception_workload


def run(config: PipelineConfig | None = None) -> dict:
    if config is None:
        # Canonical workload + package via Scenario.build(), the shared
        # construction path (identical hardware to the former hand-rolled
        # simba_package() call).
        built = Scenario().build()
        config, workload = built.config, built.workload
        schedule = built.schedule()
    else:
        workload = build_perception_workload(config)
        schedule = match_throughput(workload, Scenario().package())

    des = stream_validate(schedule, n_frames=32, target_fps=config.fps)
    dram = dram_report(workload, config)
    het = schedule_heterogeneous(ws_chiplets=2)

    return {
        "des": {
            "predicted_pipe_ms": round(des.predicted_pipe_s * 1e3, 2),
            "measured_pipe_ms": round(des.measured_pipe_s * 1e3, 2),
            "prediction_error_pct": round(des.prediction_error * 100, 2),
            "sustainable_fps": round(des.sustainable_fps, 1),
            "meets_target_fps": des.meets_target_fps,
        },
        "dram": {
            "demand_gbps": round(dram.demand_bytes_per_s / 1e9, 2),
            "budget_gbps": round(dram.bandwidth_bytes_per_s / 1e9, 1),
            "utilization_pct": round(dram.bandwidth_utilization * 100, 1),
            "sustainable": dram.sustainable,
        },
        "hetero": {
            "energy_saving_mj": round(het.energy_saving_j * 1e3, 2),
            "pipe_ms": round(het.pipe_latency_s * 1e3, 2),
            "det_on": het.trunk_config.alloc["DET_TR"][1],
        },
    }


def render(result: dict | None = None) -> str:
    result = result or run()
    des, dram, het = result["des"], result["dram"], result["hetero"]
    return "\n".join([
        "Platform validation (extension)",
        f"  DES: predicted {des['predicted_pipe_ms']} ms vs measured "
        f"{des['measured_pipe_ms']} ms "
        f"(error {des['prediction_error_pct']}%), "
        f"{des['sustainable_fps']} FPS sustainable "
        f"(target met: {des['meets_target_fps']})",
        f"  DRAM: {dram['demand_gbps']} GB/s demand of "
        f"{dram['budget_gbps']} GB/s budget "
        f"({dram['utilization_pct']}%), sustainable: {dram['sustainable']}",
        f"  Het(2): saves {het['energy_saving_mj']} mJ/frame at "
        f"{het['pipe_ms']} ms pipe; detection on "
        f"{het['det_on'].upper()} chiplets",
    ])
