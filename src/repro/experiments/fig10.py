"""Experiment fig10: Algorithm 1 scaling to two active NPUs (Fig. 10).

The paper scales the scheduler to 72 chiplets (2 x 6x6 Simba MCMs) and
plots the pipelining latency after every sharding step.  We run the matcher
on the dual package and report the decision trace plus the single-vs-dual
comparison (the paper: 87 ms -> 41.1 ms, "almost 2x").
"""

from __future__ import annotations

from ..core import match_throughput
from ..sim.metrics import format_table
from ..sweep.scenario import Scenario
from ..viz import step_plot
from ..workloads import PipelineConfig, build_perception_workload


def run(config: PipelineConfig | None = None) -> dict:
    if config is None:
        # Canonical workload: the packages come from Scenario.build(),
        # the same construction path sweeps and the CLI use.
        single = Scenario(npus=1).build().schedule()
        dual = Scenario(npus=2).build().schedule()
    else:
        single = match_throughput(build_perception_workload(config),
                                  Scenario(npus=1).package())
        dual = match_throughput(build_perception_workload(config),
                                Scenario(npus=2).package())
    trace = [
        {
            "step": t.step,
            "phase": t.phase,
            "group": t.group,
            "n_chiplets": t.n_chiplets,
            "pipe_ms": round(t.pipe_latency_ms, 2),
            "chiplets_remaining": t.chiplets_remaining,
        }
        for t in dual.trace if t.phase != "init"
    ]
    return {
        "trace": trace,
        "single_pipe_ms": round(single.pipe_latency_s * 1e3, 2),
        "dual_pipe_ms": round(dual.pipe_latency_s * 1e3, 2),
        "speedup": round(single.pipe_latency_s / dual.pipe_latency_s, 2),
        "dual_summary": {k: round(v, 3) for k, v in dual.summary().items()},
    }


def render(result: dict | None = None) -> str:
    result = result or run()
    parts = [format_table(result["trace"],
                          "Fig. 10: dual-NPU sharding trace")]
    points = [(f"{t['group']}->{t['n_chiplets']}", t["pipe_ms"])
              for t in result["trace"] if t["phase"] == "global"]
    if points:
        parts.append(step_plot(points,
                               "pipe latency after each global step"))
    parts.append(
        f"pipe latency: {result['single_pipe_ms']} ms (1 NPU) -> "
        f"{result['dual_pipe_ms']} ms (2 NPUs), "
        f"{result['speedup']}x (paper: 87 -> 41.1, ~2x)")
    return "\n".join(parts)
