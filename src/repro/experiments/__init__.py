"""Experiment drivers: one module per paper table/figure.

Each module exposes ``run() -> dict`` (structured results) and
``render(result) -> str`` (the human-readable table).  Benchmarks and the
CLI are thin wrappers over these.
"""

from . import fig3, fig4, fig5to8, fig9, fig10, fig11, platform, scaling, \
    table1, table2, table3

ALL_EXPERIMENTS = {
    "fig3": fig3,
    "fig4": fig4,
    "fig5to8": fig5to8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "platform": platform,
    "scaling": scaling,
}

__all__ = ["ALL_EXPERIMENTS"] + list(ALL_EXPERIMENTS)
