"""Experiment table2: chiplet arrangements vs our MCM schedule (Table II)."""

from __future__ import annotations

from ..arch import simba_package
from ..core import match_throughput
from ..sim import LAYERWISE, STAGEWISE, run_baselines
from ..sim.metrics import PerfReport, format_table
from ..workloads import PipelineConfig, build_perception_workload


def run(config: PipelineConfig | None = None) -> dict:
    workload = build_perception_workload(config)
    reports = run_baselines(workload, schemes=(STAGEWISE, LAYERWISE))

    mcm_workload = build_perception_workload(config)
    schedule = match_throughput(mcm_workload, simba_package())
    mcm = PerfReport(
        label="36x256-ours",
        e2e_s=schedule.e2e_latency_s,
        pipe_s=schedule.pipe_latency_s,
        energy_j=schedule.energy_j,
        utilization=schedule.utilization,
    )
    rows = [r.row() for r in reports] + [mcm.row()]

    best_baseline_pipe = min(r.pipe_s for r in reports)
    mono = next(r for r in reports if r.label.startswith("1x"))
    return {
        "rows": rows,
        # The abstract's headline claims:
        "pipe_reduction_vs_best_baseline_pct": round(
            (1 - mcm.pipe_s / best_baseline_pipe) * 100, 1),
        "utilization_gain_vs_monolithic": round(
            mcm.utilization / mono.utilization, 1),
        "energy_overhead_vs_monolithic_pct": round(
            (mcm.energy_j / mono.energy_j - 1) * 100, 1),
        "mcm_nop_energy_j": round(schedule.nop_energy_j, 4),
    }


def render(result: dict | None = None) -> str:
    result = result or run()
    parts = [format_table(result["rows"], "Table II: arrangements")]
    parts.append(
        f"pipe-latency reduction vs best baseline: "
        f"{result['pipe_reduction_vs_best_baseline_pct']}% (paper: 82%); "
        f"utilization gain vs monolithic: "
        f"{result['utilization_gain_vs_monolithic']}x (paper: 2.8x); "
        f"energy overhead vs monolithic: "
        f"{result['energy_overhead_vs_monolithic_pct']}% (paper: +10.9%)")
    return "\n".join(parts)
