"""Experiment fig9: NoP data-movement costs across stages 1-3 (Fig. 9)."""

from __future__ import annotations

from ..arch import simba_package
from ..core import match_throughput
from ..sim.metrics import format_table
from ..workloads import PipelineConfig, build_perception_workload

#: groups whose outbound traffic the paper plots (stages 1-3)
_FIG9_SOURCES = ("FE_BFPN", "S_Q_PROJ", "S_KV_PROJ", "S_ATTN", "S_FFN",
                 "T_Q_PROJ", "T_KV_PROJ", "T_ATTN", "T_FFN")


def run(config: PipelineConfig | None = None) -> dict:
    workload = build_perception_workload(config)
    schedule = match_throughput(workload, simba_package())
    edges = []
    for e in schedule.nop_edges():
        if e.src_group in _FIG9_SOURCES:
            edges.append({
                "src": e.src_group,
                "dst": e.dst_group,
                "payload_mb": round(e.payload_bytes / 1e6, 2),
                "hops": round(e.hops, 1),
                "latency_ms": round(e.latency_s * 1e3, 3),
                "energy_mj": round(e.energy_j * 1e3, 3),
            })
    compute_ms = schedule.e2e_latency_s * 1e3 - schedule.nop_latency_s * 1e3
    total_nop_ms = sum(e["latency_ms"] for e in edges)
    return {
        "edges": edges,
        "total_nop_latency_ms": round(total_nop_ms, 2),
        "compute_latency_ms": round(compute_ms, 1),
        # The paper's conclusion: NoP costs sit >= 2 orders of magnitude
        # below compute costs.
        "compute_to_nop_ratio": round(compute_ms / max(total_nop_ms, 1e-9),
                                      1),
    }


def render(result: dict | None = None) -> str:
    result = result or run()
    parts = [format_table(result["edges"], "Fig. 9: NoP transfers")]
    parts.append(
        f"total NoP latency: {result['total_nop_latency_ms']} ms; "
        f"compute latency: {result['compute_latency_ms']} ms; "
        f"ratio {result['compute_to_nop_ratio']}x")
    return "\n".join(parts)
