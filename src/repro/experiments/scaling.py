"""Experiment scaling: chiplet-count scaling report (extension).

The headline artifact the ROADMAP calls out a la "Chiplets on Wheels":
sweep ``npus x workload x dram_gbps`` through the scenario-sweep engine
and report, per (workload, DRAM budget) column, how pipelining latency
scales with package size — including where an undersized DRAM interface
flattens the curve.  The default grid pairs the unbounded column with a
6 GB/s budget (DRAM wall appears once two NPUs outrun the interface) and
a 2 GB/s budget (every package size is memory-bound), so the report
always exhibits at least one DRAM-throttled point.

Everything runs through :class:`~repro.sweep.runner.ScenarioSweep`, so
the plan store/cache amortize the per-``npus`` plans across the DRAM
axis for free (DRAM throttling is accounting-only and reuses identical
group plans), and the emitted document is a deterministic function of
the grid.

A ``topologies`` axis (e.g. ``("mesh", "torus")``) adds the NoP
topology to the column structure plus per-row ``topology`` /
``nop_avg_hops`` columns; a ``heteros`` axis (e.g. ``(None,
"trunk:ws")``) likewise adds the per-quadrant package composition plus
``hetero`` / ``package_composition`` / ``trunk_utilization`` columns.
The defaults (both axes unset) keep the document byte-identical to the
PR 3 report.  See docs/TOPOLOGY.md and docs/HETERO.md.
"""

from __future__ import annotations

import pathlib
from typing import Sequence

from ..analysis.scaling import chiplet_scaling_report
from ..sim.metrics import format_table
from ..sweep.runner import ScenarioSweep
from ..sweep.scenario import scenario_grid
from ..viz import sparkline

#: default grid: package sizes x DRAM budgets (see module docstring).
DEFAULT_NPUS = (1, 2, 4)
DEFAULT_DRAM_GBPS = (None, 6.0, 2.0)
DEFAULT_WORKLOADS = ("default",)
#: default topology axis: unset = the seed open mesh (byte-stable
#: report); pass e.g. ("mesh", "torus") for the NoP-topology columns.
DEFAULT_TOPOLOGIES = (None,)
#: default hetero axis: unset = homogeneous packages (byte-stable
#: report); pass e.g. (None, "trunk:ws") for per-quadrant columns.
DEFAULT_HETEROS = (None,)


def run(npus: Sequence[int] = DEFAULT_NPUS,
        dram_gbps: Sequence[float | None] = DEFAULT_DRAM_GBPS,
        workloads: Sequence[str] = DEFAULT_WORKLOADS,
        topologies: Sequence[str | None] = DEFAULT_TOPOLOGIES,
        heteros: Sequence[str | None] = DEFAULT_HETEROS,
        workers: int = 1,
        store_path: str | pathlib.Path | None = None) -> dict:
    """Run the scaling grid and build the report document."""
    grid = scenario_grid(npus=tuple(npus), workloads=tuple(workloads),
                         dram_gbps=tuple(dram_gbps),
                         topologies=tuple(topologies),
                         heteros=tuple(heteros))
    result = ScenarioSweep(grid, workers=workers,
                           store_path=store_path).run()
    return chiplet_scaling_report(result.rows)


def render(result: dict | None = None) -> str:
    """Human-readable scaling report (table + per-column curves)."""
    result = result or run()
    has_topology = any("topology" in r for r in result["rows"])
    has_hetero = any("hetero" in r for r in result["rows"])
    display = []
    for r in result["rows"]:
        shown = {
            "workload": r["workload"],
            "dram": r["dram"],
        }
        if has_topology:
            shown["topology"] = r.get("topology") or "mesh"
        if has_hetero:
            shown["hetero"] = r.get("hetero") or "-"
        shown.update({
            "npus": r["npus"],
            "chiplets": r["chiplets"],
            "pipe_ms": r["pipe_ms"],
            "fps": r["steady_fps"],
            "speedup": r["speedup"],
            "efficiency": r["scaling_efficiency"],
            "throttled": "DRAM" if r["dram_throttled"] else "-",
        })
        if has_topology:
            shown["avg_hops"] = r.get("nop_avg_hops", "-")
        if has_hetero:
            shown["trunk_util"] = r.get("trunk_utilization", "-")
        display.append(shown)
    axes_label = "npus x workload x DRAM budget"
    if has_topology:
        axes_label += " x topology"
    if has_hetero:
        axes_label += " x hetero"
    parts = [format_table(
        display, f"Chiplet-count scaling ({axes_label})")]

    curves: dict[tuple, list] = {}
    for r in result["rows"]:
        label = r["dram"]
        if "topology" in r:
            label = f"{label}/{r['topology']}"
        if "hetero" in r:
            label = f"{label}/{r['hetero']}"
        curves.setdefault((r["workload"], label), []).append(r["speedup"])
    for (workload, dram), speedups in sorted(curves.items()):
        parts.append(f"  {workload:>12s} @ {dram:<10s} "
                     f"speedup {sparkline(speedups)}  "
                     f"{' -> '.join(f'{s:g}x' for s in speedups)}")
    for wall in result["dram_wall"]:
        parts.append(
            f"  DRAM wall: {wall['workload']} @ {wall['dram']} stops "
            f"scaling at {wall['first_throttled_npus']} NPU(s) — the "
            f"package streams weights faster than DRAM can deliver them")
    if not result["throttled_points"]:
        parts.append("  no DRAM-throttled points in this grid")
    return "\n".join(parts)
