"""Experiment table3: occupancy trunk upsampling scaling (Table III).

E2E latency is the whole occupancy chain on one chiplet; pipe latency is
the maximum single layer (the trunk internally pipelined at layer
granularity, which is how the paper's pipe column behaves).  The paper's
observation: latency grows superlinearly with each added 2x upsampling
stage and the final stage contributes ~75%.
"""

from __future__ import annotations

from ..cost import chain_latency_s, evaluate, shidiannao_chiplet
from ..sim.metrics import format_table
from ..workloads import build_occupancy_layers

#: upsampling factors ablated by the paper
FACTORS = (1, 2, 3, 4)  # 2x, 4x, 8x, 16x


def run() -> dict:
    accel = shidiannao_chiplet()
    rows = []
    base_e2e = base_pipe = None
    for stages in FACTORS:
        layers = build_occupancy_layers(upsample_stages=stages)
        e2e = chain_latency_s(layers, accel) * 1e3
        pipe = max(evaluate(layer, accel).latency_s for layer in layers) * 1e3
        if base_e2e is None:
            base_e2e, base_pipe = e2e, pipe
        rows.append({
            "upsampling": f"[{2 ** stages}X,{2 ** stages}Y]",
            "e2e_ms": round(e2e, 2),
            "e2e_ratio": round(e2e / base_e2e, 2),
            "pipe_ms": round(pipe, 2),
            "pipe_ratio": round(pipe / base_pipe, 2),
        })
    full = build_occupancy_layers(upsample_stages=4)
    costs = [evaluate(layer, accel).latency_s for layer in full]
    last_deconv = costs[-2]  # final deconv sits before the semantic head
    return {
        "rows": rows,
        "final_stage_share_pct": round(100 * last_deconv / sum(costs), 1),
    }


def render(result: dict | None = None) -> str:
    result = result or run()
    parts = [format_table(result["rows"],
                          "Table III: occupancy upsampling scaling")]
    parts.append(
        f"final upsampling layer share: {result['final_stage_share_pct']}% "
        f"(paper: ~75%)")
    return "\n".join(parts)
