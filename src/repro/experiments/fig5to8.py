"""Experiment fig5to8: per-stage quadrant mappings and metrics (Figs. 5-8).

Runs Algorithm 1 on the 6x6 package and reports, for each perception
stage: the chiplet mapping (group -> chiplets/mode), E2E latency, pipe
latency, energy, and EDP — the annotation boxes of the paper's Figs. 5-8.
"""

from __future__ import annotations

from ..arch import simba_package
from ..core import Schedule, match_throughput
from ..sim.metrics import format_table
from ..viz import render_floorplan
from ..workloads import PipelineConfig, build_perception_workload


def stage_report(schedule: Schedule, stage_name: str) -> dict:
    """Stage-local metrics mirroring a Fig. 5-8 annotation box."""
    stage = schedule.workload.stage(stage_name)
    stage_chiplets: set[int] = set()
    energy = 0.0
    mapping = {}
    for g in stage.groups:
        gs = schedule.groups[g.name]
        energy += gs.plan.energy_j
        stage_chiplets.update(schedule.chiplets_of(g.name))
        mapping[g.name] = {
            "chiplets": gs.plan.n_chiplets if gs.host is None else 0,
            "mode": gs.plan.mode if gs.host is None else f"on {gs.host}",
        }
    busy = schedule.chiplet_busy()
    pipe = max(busy[c] for c in stage_chiplets)
    intra_nop = [e for e in schedule.nop_edges()
                 if e.src_group in mapping and e.dst_group in mapping]
    energy += sum(e.energy_j for e in intra_nop)
    e2e = schedule.stage_span_s(stage_name)
    return {
        "stage": stage_name,
        "e2e_ms": round(e2e * 1e3, 2),
        "pipe_ms": round(pipe * 1e3, 2),
        "energy_j": round(energy, 4),
        "edp_j_ms": round(energy * pipe * 1e3, 2),
        "chiplets": len(stage_chiplets),
        "mapping": mapping,
    }


def run(config: PipelineConfig | None = None, npus: int = 1) -> dict:
    workload = build_perception_workload(config)
    schedule = match_throughput(workload, simba_package(npus=npus))
    stages = [stage_report(schedule, s.name) for s in workload.stages]
    return {
        "stages": stages,
        "base_latency_ms": round(schedule.base_latency_s * 1e3, 2),
        "overall": {k: round(v, 3) for k, v in schedule.summary().items()},
        "floorplan": render_floorplan(schedule),
    }


def render(result: dict | None = None) -> str:
    result = result or run()
    rows = [{k: v for k, v in s.items() if k != "mapping"}
            for s in result["stages"]]
    parts = [format_table(rows, "Figs. 5-8: stage mappings on the 6x6 MCM")]
    for s in result["stages"]:
        parts.append(f"{s['stage']} mapping: {s['mapping']}")
    parts.append(f"Lat_base = {result['base_latency_ms']} ms "
                 f"(paper: 82.7 ms); overall = {result['overall']}")
    parts.append(result["floorplan"])
    return "\n".join(parts)
