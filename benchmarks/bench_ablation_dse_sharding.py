"""Ablation: free-form trunk sharding vs the paper's whole-model mapping.

The paper maps trunk models whole (Fig. 8).  Allowing the DSE to also
row-shard and pipeline the trunks shows how much pipe latency that leaves
on the table — an extension beyond the paper's search space.
"""

from conftest import save_artifact

from repro.core import TrunkDSE
from repro.sim.metrics import format_table


def _sweep():
    rows = []
    for allow, label in ((False, "whole-model (paper)"),
                         (True, "free sharding (ours)")):
        for ws in (0, 2):
            cfg = TrunkDSE(allow_sharding=allow).search(ws)
            rows.append({
                "search_space": label,
                "ws_chiplets": ws,
                "pipe_ms": round(cfg.pipe_ms, 1),
                "e2e_ms": round(cfg.e2e_ms, 1),
                "energy_mj": round(cfg.energy_j * 1e3, 2),
                "edp_j_ms": round(cfg.edp_j_ms, 2),
            })
    return rows


def test_ablation_dse_sharding(benchmark, artifact_dir):
    rows = benchmark(_sweep)
    save_artifact(artifact_dir, "ablation_dse_sharding",
                  format_table(rows, "Ablation: trunk DSE search space"))
    whole = next(r for r in rows
                 if r["search_space"].startswith("whole") and
                 r["ws_chiplets"] == 0)
    free = next(r for r in rows
                if r["search_space"].startswith("free") and
                r["ws_chiplets"] == 0)
    assert free["pipe_ms"] <= whole["pipe_ms"]
