"""Benchmark table2: chiplet arrangements comparison (paper Table II)."""

from conftest import save_artifact

from repro.cost import clear_cache
from repro.experiments import table2


def test_table2_arrangements(benchmark, artifact_dir):
    def run():
        clear_cache()
        return table2.run()

    result = benchmark(run)
    save_artifact(artifact_dir, "table2_baselines", table2.render(result))
    benchmark.extra_info["pipe_reduction_pct"] = \
        result["pipe_reduction_vs_best_baseline_pct"]
    benchmark.extra_info["utilization_gain"] = \
        result["utilization_gain_vs_monolithic"]
    assert 75 < result["pipe_reduction_vs_best_baseline_pct"] < 92
