"""Benchmark: the design search's rank-cheap / materialize-frontier economics.

Locks the tentpole claim of ``chiplet-npu design``: over a joint
package-design space of 200+ candidates, the search materializes full
sweep rows for **at most half** the cross-product (in practice a few
percent — only the proxy-Pareto frontier), and the frontier report is
byte-identical between a cold run and a plan-store-warm rerun.

The space deliberately includes axes the roofline proxy cannot see
(tolerance, NoP and DRAM bandwidth): candidates differing only there
tie on proxy score, all survive to materialization, and the *real*
sweep rows separate them — the economics gate below holds anyway.

Results land in ``BENCH_design.json`` and are gated against the
committed baseline by ``compare_baselines.py``.
"""

import json
import time

from repro.core import clear_plan_cache
from repro.cost import clear_cache
from repro.design import DesignSearch, DesignSpace, DesignTargets
from repro.sweep import clear_trunk_memo

#: 8-axis joint space, 2 values each = 256 candidates.
AXIS_TEXTS = {
    "tolerance": "1.0,1.05",
    "nop_gbps": "25,100",
    "npus": "1,2",
    "workload": "default,lores",
    "dataflow": "os,ws",
    "frequency_ghz": "1.0,2.0",
    "native_tile": "16x16,8x8",
    "dram_gbps": "none,6",
}
TARGETS = DesignTargets(pipe_ms=200.0)


def _cold_process_state() -> None:
    clear_cache()
    clear_plan_cache()
    clear_trunk_memo()


def _timed_search(space, store_path):
    _cold_process_state()
    start = time.perf_counter()
    result = DesignSearch(space, TARGETS, store_path=store_path).run()
    return time.perf_counter() - start, result


def test_design_search_materializes_at_most_half(benchmark, artifact_dir,
                                                 tmp_path):
    space = DesignSpace.from_axis_texts(AXIS_TEXTS)
    store = tmp_path / "planstore"

    # Cold: empty store — the frontier rows are priced from scratch and
    # flushed.  Warm: same search, plans served back from the store.
    cold_s, cold = _timed_search(space, store)
    warm_s, warm = _timed_search(space, store)
    benchmark.pedantic(lambda: _timed_search(space, store),
                       rounds=1, iterations=1)

    cold_doc = json.dumps(cold.report(), indent=2, sort_keys=True)
    warm_doc = json.dumps(warm.report(), indent=2, sort_keys=True)
    stats = cold.stats()
    payload = {
        "candidates": stats["candidates"],
        "pruned": stats["pruned"],
        "dominated": stats["dominated"],
        "frontier": stats["frontier"],
        "materialized": stats["materialized"],
        "materialized_fraction": stats["materialized_fraction"],
        "priced_pairs": stats["priced_pairs"],
        "frontier_byte_identical": cold_doc == warm_doc,
        "warm_plan_cache": warm.sweep.summary()["plan_cache"],
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 2),
    }
    (artifact_dir / "BENCH_design.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # Work-based invariants hold on any machine: a 200+-candidate joint
    # space, at most half of it ever reaching the scheduler, and a
    # report that does not care about store temperature.
    assert payload["candidates"] >= 200
    assert payload["frontier_byte_identical"]
    assert 0 < payload["materialized"] <= 0.5 * payload["candidates"]
    assert payload["materialized"] == len(cold.rows) == stats["frontier"]
    assert warm.sweep.cache_stats.misses == 0
    # No wall-clock gate here: the search's claim is the work economics
    # (one batch request, frontier-only materialization), and with only
    # a few percent of the space ever reaching the scheduler, the warm
    # delta is too small to assert against shared-runner noise.  The
    # measured times still land in the artifact.
