"""Benchmark table3: occupancy trunk upsampling sweep (paper Table III)."""

from conftest import save_artifact

from repro.cost import clear_cache
from repro.experiments import table3


def test_table3_occupancy_scaling(benchmark, artifact_dir):
    def run():
        clear_cache()
        return table3.run()

    result = benchmark(run)
    save_artifact(artifact_dir, "table3_occupancy", table3.render(result))
    ratios = [r["e2e_ratio"] for r in result["rows"]]
    benchmark.extra_info["e2e_ratios"] = ratios
    assert 50 < ratios[-1] < 90  # paper: 87.6x from 2x to 16x upsampling
