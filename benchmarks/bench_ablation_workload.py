"""Ablation: workload scaling sweeps (resolution, cameras, frame queue).

Extensions beyond the paper's fixed 8-camera / 720p / 12-frame workload.
"""

from conftest import save_artifact

from repro.analysis import camera_sweep, frame_queue_sweep, resolution_sweep
from repro.cost import clear_cache
from repro.sim.metrics import format_table


def test_ablation_resolution(benchmark, artifact_dir):
    def run():
        clear_cache()
        return resolution_sweep()

    rows = benchmark(run)
    save_artifact(artifact_dir, "ablation_resolution",
                  format_table(rows, "Ablation: camera resolution"))
    # Higher resolution -> heavier FE -> larger base pipelining latency.
    bases = [r["base_ms"] for r in rows]
    assert all(a <= b + 1e-6 for a, b in zip(bases, bases[1:]))


def test_ablation_cameras(benchmark, artifact_dir):
    def run():
        clear_cache()
        return camera_sweep()

    rows = benchmark(run)
    save_artifact(artifact_dir, "ablation_cameras",
                  format_table(rows, "Ablation: camera count"))
    energies = [r["energy_j"] for r in rows]
    assert all(a < b for a, b in zip(energies, energies[1:]))


def test_ablation_frame_queue(benchmark, artifact_dir):
    def run():
        clear_cache()
        return frame_queue_sweep()

    rows = benchmark(run)
    save_artifact(artifact_dir, "ablation_frame_queue",
                  format_table(rows, "Ablation: temporal queue depth"))
    by_frames = {r["t_frames"]: r for r in rows}
    # Deeper temporal queues grow T_FUSE work (energy strictly up).
    assert by_frames[24]["energy_j"] > by_frames[6]["energy_j"]
