"""Benchmark: sweep-engine reuse inside the chiplet-scaling report.

The scaling report prices ``len(npus) x len(dram_gbps)`` scenarios, but
the DRAM axis is accounting-only (identical group plans) and the package
sizes share most of their ``(group, n, accel)`` plan keys — so the whole
3-point npus report must cost less than **2x** one cold scenario at the
largest package size.  Without the shared plan cache the report would
cost ~``len(grid)``x; this locks the amortization claim per-PR.

Also asserts the report artifact invariants: deterministic bytes across
two runs and at least one DRAM-throttled point in the default grid.

Results land in ``BENCH_scaling.json`` so the perf trajectory is
machine-readable.
"""

import json
import os
import time

from repro.core import clear_plan_cache
from repro.cost import clear_cache
from repro.experiments import scaling
from repro.sweep import Scenario, clear_trunk_memo, run_scenario

NPUS = (1, 2, 4)
DRAM_GBPS = (None, 6.0, 2.0)


def _cold_process_state() -> None:
    clear_cache()
    clear_plan_cache()
    clear_trunk_memo()


def _timed(fn):
    """Best-of-2 cold timing (each run resets every process-wide memo)."""
    best, result = float("inf"), None
    for _ in range(2):
        _cold_process_state()
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_scaling_report_reuses_sweep_plans(benchmark, artifact_dir):
    single_s, _ = _timed(lambda: run_scenario(Scenario(npus=max(NPUS))))
    report_s, report = _timed(
        lambda: scaling.run(npus=NPUS, dram_gbps=DRAM_GBPS))
    benchmark.pedantic(
        lambda: _timed(lambda: scaling.run(npus=NPUS,
                                           dram_gbps=DRAM_GBPS)),
        rounds=1, iterations=1)

    report_again = scaling.run(npus=NPUS, dram_gbps=DRAM_GBPS)
    deterministic = (json.dumps(report, sort_keys=True)
                     == json.dumps(report_again, sort_keys=True))

    payload = {
        "npus": list(NPUS),
        "dram_gbps": [d if d is not None else "unbounded"
                      for d in DRAM_GBPS],
        "grid_scenarios": len(NPUS) * len(DRAM_GBPS),
        "cold_single_s": round(single_s, 4),
        "report_s": round(report_s, 4),
        "report_over_single": round(report_s / single_s, 2),
        "deterministic": deterministic,
        "throttled_points": len(report["throttled_points"]),
        "dram_wall": report["dram_wall"],
    }
    (artifact_dir / "BENCH_scaling.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # Work-based invariants hold on any machine.
    assert deterministic
    assert payload["throttled_points"] > 0, report
    assert report["dram_wall"], report
    # The wall-clock ratio is asserted strictly by default; CI shared
    # runners set SWEEP_BENCH_STRICT=0 (load noise), the measured ratio
    # still lands in the artifact.
    if os.environ.get("SWEEP_BENCH_STRICT", "1") != "0":
        assert report_s < 2.0 * single_s, (
            f"9-scenario scaling report cost {report_s / single_s:.2f}x "
            f"a cold single run (report {report_s:.3f} s, single "
            f"{single_s:.3f} s) — plan reuse regressed")
