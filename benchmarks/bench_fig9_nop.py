"""Benchmark fig9: NoP data-movement analysis (paper Fig. 9)."""

from conftest import save_artifact

from repro.cost import clear_cache
from repro.experiments import fig9


def test_fig9_nop_costs(benchmark, artifact_dir):
    def run():
        clear_cache()
        return fig9.run()

    result = benchmark(run)
    save_artifact(artifact_dir, "fig9_nop", fig9.render(result))
    benchmark.extra_info["compute_to_nop_ratio"] = \
        result["compute_to_nop_ratio"]
    assert result["compute_to_nop_ratio"] > 50
