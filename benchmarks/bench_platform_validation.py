"""Benchmark platform: DES validation + DRAM budget + hetero end-to-end."""

from conftest import save_artifact

from repro.cost import clear_cache
from repro.experiments import platform


def test_platform_validation(benchmark, artifact_dir):
    def run():
        clear_cache()
        return platform.run()

    result = benchmark(run)
    save_artifact(artifact_dir, "platform_validation",
                  platform.render(result))
    assert result["des"]["prediction_error_pct"] < 2.0
    assert result["dram"]["sustainable"]
    assert result["hetero"]["energy_saving_mj"] > 0
