"""Gate CI on committed bench baselines (benches-as-baselines).

The benchmarks under ``benchmarks/`` emit machine-readable
``BENCH_*.json`` artifacts into ``results/``; this script compares them
against the committed copies in ``benchmarks/baselines/`` and fails the
build when a tracked metric regresses beyond its stated tolerance:

* **invariant metrics** (``exact``) must match the baseline exactly —
  row byte-identity flags, warm-miss counts, deterministic-report flags,
  DRAM-wall positions.  These are work-based properties that hold on any
  machine; any drift is a real regression (or an intentional change that
  must re-baseline via ``--update``).
* **wall-clock ratios** carry a generous tolerance because shared CI
  runners are noisy: a higher-is-better ratio (warm-from-disk speedup)
  may degrade to ``tolerance x baseline`` (default 0.4, i.e. keep at
  least 40% of the committed speedup); a lower-is-better ratio
  (``report_over_single``) may inflate to ``tolerance x baseline``
  (default 2.5x).  The measured values still land in the uploaded
  artifacts for per-PR inspection.

Usage::

    PYTHONPATH=src python benchmarks/compare_baselines.py
    python benchmarks/compare_baselines.py --results results \
        --baselines benchmarks/baselines
    python benchmarks/compare_baselines.py --update   # re-baseline

A baseline file without a fresh result fails the run (the bench stopped
emitting); a fresh result without a baseline is reported but does not
fail (a new bench not yet locked).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import shutil
import sys
from dataclasses import dataclass

HERE = pathlib.Path(__file__).resolve().parent
DEFAULT_RESULTS = HERE.parent / "results"
DEFAULT_BASELINES = HERE / "baselines"


@dataclass(frozen=True)
class Gate:
    """One tracked metric and how it may move relative to the baseline."""

    #: dotted path into the BENCH json (e.g. "warm_plan_cache.misses")
    path: str
    #: "exact" | "min_ratio" (>= tol * baseline) | "max_ratio" (<= tol *)
    kind: str
    tolerance: float | None = None

    def check(self, current, baseline) -> tuple[bool, str]:
        """Return (ok, human-readable constraint)."""
        if self.kind == "exact":
            return current == baseline, f"== {baseline!r}"
        if self.kind == "min_ratio":
            floor = self.tolerance * baseline
            return current >= floor, (
                f">= {floor:.3g} ({self.tolerance:g} x baseline "
                f"{baseline:g})")
        if self.kind == "max_ratio":
            ceil = self.tolerance * baseline
            return current <= ceil, (
                f"<= {ceil:.3g} ({self.tolerance:g} x baseline "
                f"{baseline:g})")
        raise ValueError(f"unknown gate kind {self.kind!r}")


#: tracked metrics per BENCH artifact.
CHECKS: dict[str, list[Gate]] = {
    "BENCH_planstore.json": [
        Gate("rows_byte_identical", "exact"),
        Gate("warm_plan_cache.misses", "exact"),
        Gate("grid_scenarios", "exact"),
        Gate("speedup", "min_ratio", 0.4),
    ],
    "BENCH_design.json": [
        Gate("candidates", "exact"),
        Gate("frontier", "exact"),
        Gate("materialized", "exact"),
        Gate("materialized_fraction", "exact"),
        Gate("priced_pairs", "exact"),
        Gate("frontier_byte_identical", "exact"),
        Gate("warm_plan_cache.misses", "exact"),
    ],
    "BENCH_pricing.json": [
        Gate("rows_byte_identical", "exact"),
        Gate("pairs", "exact"),
        Gate("numpy", "exact"),
        Gate("speedup", "min_ratio", 0.4),
    ],
    "BENCH_scaling.json": [
        Gate("deterministic", "exact"),
        Gate("throttled_points", "exact"),
        Gate("dram_wall", "exact"),
        Gate("grid_scenarios", "exact"),
        Gate("report_over_single", "max_ratio", 2.5),
    ],
    "BENCH_serving.json": [
        Gate("rows_byte_identical", "exact"),
        Gate("warm_remote_plan_cache.misses", "exact"),
        Gate("grid_scenarios", "exact"),
        # the warm runs are tens of milliseconds, so the ratio is the
        # noisiest tracked metric; the band is correspondingly wide.
        Gate("remote_over_disk", "max_ratio", 4.0),
    ],
}


def dig(payload: dict, path: str):
    """Resolve a dotted path inside a loaded BENCH document."""
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            raise KeyError(path)
        node = node[part]
    return node


def compare_file(name: str, results_dir: pathlib.Path,
                 baselines_dir: pathlib.Path) -> list[str]:
    """Compare one artifact; returns failure messages (empty = pass)."""
    baseline_path = baselines_dir / name
    current_path = results_dir / name
    gates = CHECKS.get(name)
    if not gates:
        # A committed baseline with no registered gates would otherwise
        # count as passing while gating nothing.
        return [f"{name}: baseline has no registered gates in CHECKS "
                f"(add them to compare_baselines.py)"]
    if not current_path.exists():
        return [f"{name}: no fresh result at {current_path} "
                f"(bench stopped emitting?)"]
    baseline = json.loads(baseline_path.read_text())
    current = json.loads(current_path.read_text())
    failures = []
    for gate in gates:
        try:
            base_value = dig(baseline, gate.path)
        except KeyError:
            failures.append(f"{name}: baseline lacks {gate.path!r} "
                            f"(re-baseline with --update)")
            continue
        try:
            value = dig(current, gate.path)
        except KeyError:
            failures.append(f"{name}: result lacks {gate.path!r}")
            continue
        ok, constraint = gate.check(value, base_value)
        verdict = "ok" if ok else "FAIL"
        print(f"  [{verdict:>4s}] {name}:{gate.path} = {value!r} "
              f"(need {constraint})")
        if not ok:
            failures.append(
                f"{name}: {gate.path} = {value!r} violates {constraint}")
    return failures


def update_baselines(results_dir: pathlib.Path,
                     baselines_dir: pathlib.Path) -> int:
    baselines_dir.mkdir(parents=True, exist_ok=True)
    copied = 0
    for name in sorted(CHECKS):
        src = results_dir / name
        if not src.exists():
            print(f"  skip {name}: no fresh result to promote")
            continue
        shutil.copyfile(src, baselines_dir / name)
        print(f"  re-baselined {name}")
        copied += 1
    return 0 if copied else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", type=pathlib.Path,
                        default=DEFAULT_RESULTS,
                        help="directory with fresh BENCH_*.json artifacts")
    parser.add_argument("--baselines", type=pathlib.Path,
                        default=DEFAULT_BASELINES,
                        help="directory with committed baselines")
    parser.add_argument("--update", action="store_true",
                        help="copy fresh results over the baselines "
                             "instead of comparing")
    args = parser.parse_args(argv)

    if args.update:
        return update_baselines(args.results, args.baselines)

    baselines = sorted(p.name for p in args.baselines.glob("BENCH_*.json")) \
        if args.baselines.is_dir() else []
    if not baselines:
        print(f"no baselines under {args.baselines}; nothing to gate",
              file=sys.stderr)
        return 1

    failures: list[str] = []
    for name in baselines:
        failures.extend(compare_file(name, args.results, args.baselines))
    for fresh in sorted(args.results.glob("BENCH_*.json")):
        if fresh.name not in baselines:
            print(f"  [note] {fresh.name} has no baseline yet "
                  f"(lock it with --update)")

    if failures:
        print(f"\n{len(failures)} baseline regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(baselines)} bench artifact(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
