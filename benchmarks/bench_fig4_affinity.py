"""Benchmark fig4: per-layer OS/WS affinity deltas (paper Fig. 4)."""

from conftest import save_artifact

from repro.cost import clear_cache
from repro.experiments import fig4


def test_fig4_affinity(benchmark, artifact_dir):
    def run():
        clear_cache()
        return fig4.run()

    result = benchmark(run)
    save_artifact(artifact_dir, "fig4_affinity", fig4.render(result))
    fusion = result["summary"]["S+T Attn Fusion"]
    benchmark.extra_info["fusion_os_latency_affine_pct"] = \
        fusion["os_latency_affine_pct"]
    assert fusion["os_latency_affine_pct"] == 100.0
