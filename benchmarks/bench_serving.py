"""Benchmark: warm sweeps through the networked memo server.

Locks the serving layer's overhead claim: a sweep that warm-starts from
a ``chiplet-npu serve`` memo server over HTTP must stay within a small
tolerance band of the same sweep warm-starting from the disk-backed
store (``remote_over_disk``), with byte-identical rows, a warm miss
count of 0, and the server's p50/p99 latency per request class recorded
in the artifact (TPU-paper style: percentiles, not just throughput).

The cold/warm protocol mirrors ``bench_planstore.py``: every timed run
starts from cold in-process caches, so the only difference between the
disk and remote runs is the transport the plans arrive through.

Results land in ``BENCH_serving.json`` so the serving-overhead
trajectory is machine-readable from this PR onward.
"""

import json
import os
import time

from repro.core import clear_plan_cache
from repro.cost import clear_cache
from repro.serve import MemoServer
from repro.sweep import ScenarioSweep, clear_trunk_memo, scenario_grid

#: a planning-diverse but serving-bound grid: the timed warm runs spend
#: their time loading/flushing plans, which is the path under test.
GRID_KWARGS = dict(
    tolerances=(1.0, 1.05),
    workloads=("default", "hires"),
    npus=(2,),
)


def _cold_process_state() -> None:
    clear_cache()
    clear_plan_cache()
    clear_trunk_memo()


def _timed_run(grid, store_path):
    _cold_process_state()
    start = time.perf_counter()
    result = ScenarioSweep(grid, store_path=store_path).run()
    return time.perf_counter() - start, result


def test_warm_remote_sweep_tracks_warm_disk(benchmark, artifact_dir,
                                            tmp_path):
    grid = scenario_grid(**GRID_KWARGS)

    # Disk reference: cold run populates the store, warm best-of-2.
    disk_store = tmp_path / "planstore"
    _, disk_cold = _timed_run(grid, disk_store)
    disk1_s, disk_warm = _timed_run(grid, disk_store)
    disk2_s, _ = _timed_run(grid, disk_store)
    disk_s = min(disk1_s, disk2_s)

    with MemoServer(tmp_path / "served") as server:
        cold_s, remote_cold = _timed_run(grid, server.url)
        remote1_s, remote_warm = _timed_run(grid, server.url)
        remote2_s, _ = _timed_run(grid, server.url)
        remote_s = min(remote1_s, remote2_s)
        benchmark.pedantic(lambda: _timed_run(grid, server.url),
                           rounds=1, iterations=1)
        percentiles = server.latency.report()

    payload = {
        "grid_scenarios": len(grid),
        "cold_remote_s": round(cold_s, 4),
        "warm_remote_s": round(remote_s, 4),
        "warm_disk_s": round(disk_s, 4),
        "remote_over_disk": round(remote_s / disk_s, 2),
        "warm_remote_plan_cache": remote_warm.summary()["plan_cache"],
        "request_percentiles": percentiles,
        "rows_byte_identical":
            remote_cold.rows_json() == remote_warm.rows_json()
            == disk_cold.rows_json() == disk_warm.rows_json(),
    }
    (artifact_dir / "BENCH_serving.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # Work-based invariants hold on any machine: the warm remote run
    # recomputes nothing, rows are byte-identical across every
    # transport, and the server observed every request class the sweep
    # exercises with nearest-rank percentiles in order.
    assert payload["rows_byte_identical"]
    assert remote_warm.cache_stats.misses == 0
    assert remote_warm.cache_stats.store_hits > 0
    assert remote_cold.cache_stats.misses > 0
    for request_class in ("batch_get", "batch_put"):
        summary = percentiles[request_class]
        assert summary["count"] > 0
        assert summary["p50_ms"] <= summary["p99_ms"]
    # The wall-clock band is asserted strictly by default; CI shared
    # runners set SWEEP_BENCH_STRICT=0 because load noise can eat the
    # margin — the measured ratio still lands in the artifact and is
    # gated (generously) by compare_baselines.py.
    if os.environ.get("SWEEP_BENCH_STRICT", "1") != "0":
        assert remote_s <= 2.0 * disk_s, (
            f"remote warm sweep cost {remote_s / disk_s:.2f}x the disk "
            f"warm sweep (remote {remote_s:.3f} s, disk {disk_s:.3f} s)")
