"""Benchmark: vectorized batch pricing vs the scalar evaluate loop.

Locks the tentpole claim of the batch pricing core: pricing a scenario
grid's distinct ``(layer, accel)`` pairs as one matrix
(:func:`repro.cost.batch.price_batch`) must be at least 2x faster than
the equivalent scalar ``evaluate()`` loop, with results byte-identical
to the scalar path (the exact-equality contract the pricing tests lock
field-for-field).

The candidate set is extracted the way delta-sweeps and the sweep
workers do — ``PricingRequest.from_scenarios`` over a 3-axis grid
(workload variant x dataflow style x native tile) — so the benchmark
measures the matrix the production pre-seeding actually builds.

Results land in ``BENCH_pricing.json`` and are gated against the
committed baseline by ``compare_baselines.py``.
"""

import dataclasses
import json
import os
import time

from repro.cost import (
    HAVE_NUMPY,
    PricingRequest,
    clear_cache,
    evaluate,
    price_batch,
)
from repro.sweep import WORKLOAD_VARIANTS, scenario_grid

#: 3-axis extraction grid: every workload variant, both package-wide
#: dataflow styles, and two native-tile shapes.
GRID_KWARGS = dict(
    workloads=tuple(sorted(WORKLOAD_VARIANTS)),
    dataflows=(None, "ws"),
    native_tiles=(None, (8, 32)),
)


def _costs_doc(request, costs) -> str:
    """Canonical serialization of a pricing run, in request order."""
    return json.dumps(
        [dataclasses.asdict(costs[pair]) for pair in request.pairs],
        sort_keys=True)


def _timed(fn):
    """Best-of-2 wall clock plus the (identical) return value."""
    start = time.perf_counter()
    value = fn()
    first_s = time.perf_counter() - start
    start = time.perf_counter()
    fn()
    return min(first_s, time.perf_counter() - start), value


def test_batch_pricing_is_2x_faster(benchmark, artifact_dir):
    request = PricingRequest.from_scenarios(scenario_grid(**GRID_KWARGS))

    def scalar_run():
        # The pre-batch status quo: one cold scalar evaluate() per pair
        # (clearing the memo makes every call do mapper work and a memo
        # insert, exactly like the first toucher of each pair in a cold
        # sweep).
        clear_cache()
        return {pair: evaluate(*pair) for pair in request.pairs}

    def batch_run():
        return price_batch(request, engine="auto")

    scalar_s, scalar_costs = _timed(scalar_run)
    batch_s, batch_costs = _timed(batch_run)
    benchmark.pedantic(batch_run, rounds=1, iterations=1)

    byte_identical = (_costs_doc(request, scalar_costs)
                      == _costs_doc(request, batch_costs))
    payload = {
        "pairs": len(request),
        "numpy": HAVE_NUMPY,
        "scalar_ms": round(scalar_s * 1e3, 3),
        "batch_ms": round(batch_s * 1e3, 3),
        "speedup": round(scalar_s / batch_s, 2),
        "rows_byte_identical": byte_identical,
    }
    (artifact_dir / "BENCH_pricing.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # Work-based invariants hold on any machine: both engines price the
    # same request to byte-identical results.
    assert byte_identical
    assert len(scalar_costs) == len(batch_costs) == len(request)
    # The wall-clock ratio is asserted strictly by default; CI shared
    # runners set SWEEP_BENCH_STRICT=0 because load noise can eat the
    # margin there — the measured speedup still lands in the artifact.
    if os.environ.get("SWEEP_BENCH_STRICT", "1") != "0":
        assert scalar_s >= 2.0 * batch_s, (
            f"batch pricing bought only {scalar_s / batch_s:.2f}x "
            f"(scalar {scalar_s * 1e3:.1f} ms, "
            f"batch {batch_s * 1e3:.1f} ms)")
