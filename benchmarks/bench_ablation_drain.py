"""Ablation: the WS reduction-drain calibration knob.

DESIGN.md Sec. 2 documents the cross-PE accumulation drain as the mechanism
behind the paper's OS-over-WS latency gap.  This ablation sweeps it and
reports the aggregate speedup, demonstrating the calibration point (10
cycles -> ~6.9x, the paper's 6.85x).
"""

import dataclasses

from conftest import save_artifact

from repro.cost import chain_latency_s, clear_cache, simba_chiplet
from repro.sim.metrics import format_table
from repro.workloads import build_perception_workload

DRAINS = (0, 4, 8, 10, 16)


def _sweep():
    workload = build_perception_workload()
    rows = []
    for drain in DRAINS:
        clear_cache()
        os_acc = dataclasses.replace(simba_chiplet("os"),
                                     reduction_drain_cycles=drain)
        ws_acc = dataclasses.replace(simba_chiplet("ws"),
                                     reduction_drain_cycles=drain)
        lat_os = sum(chain_latency_s(g.layers, os_acc) * g.instances
                     for g in workload.all_groups())
        lat_ws = sum(chain_latency_s(g.layers, ws_acc) * g.instances
                     for g in workload.all_groups())
        rows.append({
            "drain_cycles": drain,
            "os_total_ms": round(lat_os * 1e3, 1),
            "ws_total_ms": round(lat_ws * 1e3, 1),
            "ws_over_os": round(lat_ws / lat_os, 2),
        })
    clear_cache()
    return rows


def test_ablation_reduction_drain(benchmark, artifact_dir):
    rows = benchmark(_sweep)
    save_artifact(artifact_dir, "ablation_drain",
                  format_table(rows, "Ablation: WS reduction drain"))
    ratios = {r["drain_cycles"]: r["ws_over_os"] for r in rows}
    assert ratios[0] < ratios[16]          # drain drives the gap
    assert 6.0 < ratios[10] < 7.5          # calibrated point, paper 6.85x
