"""Benchmark fig5-8: Algorithm 1 stage mappings on the 6x6 MCM."""

from conftest import save_artifact

from repro.cost import clear_cache
from repro.experiments import fig5to8


def test_fig5to8_stage_mappings(benchmark, artifact_dir):
    def run():
        clear_cache()
        return fig5to8.run()

    result = benchmark(run)
    save_artifact(artifact_dir, "fig5to8_stage_maps",
                  fig5to8.render(result))
    benchmark.extra_info["base_latency_ms"] = result["base_latency_ms"]
    assert 80 < result["base_latency_ms"] < 100  # paper: 82.7 ms
