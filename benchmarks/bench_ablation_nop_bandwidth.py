"""Ablation: NoP link bandwidth sensitivity.

The paper concludes NoP overheads sit far below compute.  We sweep the link
bandwidth to find where that stops holding — i.e. how much slower the
interconnect could get before the scheduling conclusions change.  The sweep
is driven by the :class:`~repro.sweep.ScenarioSweep` engine.
"""

from conftest import save_artifact

from repro.core import clear_plan_cache
from repro.cost import clear_cache
from repro.sim.metrics import format_table
from repro.sweep import ScenarioSweep, scenario_grid

BANDWIDTHS_GBPS = (12.5, 25, 50, 100, 200)


def _sweep():
    # Cold-start both caches so the benchmark times scheduler work (and
    # the reported stats show real per-sweep hit rates), not warm lookups.
    clear_cache()
    clear_plan_cache()
    result = ScenarioSweep(
        scenario_grid(nop_gbps=BANDWIDTHS_GBPS)).run()
    rows = [{
        "nop_gbps": r["nop_gbps"],
        "nop_latency_ms": round(r["nop_latency_ms"], 2),
        "e2e_ms": round(r["e2e_ms"], 1),
        "nop_share_pct": round(
            100 * r["nop_latency_ms"] / r["e2e_ms"], 2),
    } for r in result.rows]
    return rows, result.summary()["plan_cache"]


def test_ablation_nop_bandwidth(benchmark, artifact_dir):
    rows, cache = benchmark(_sweep)
    save_artifact(artifact_dir, "ablation_nop_bandwidth",
                  format_table(rows, "Ablation: NoP bandwidth")
                  + f"\nplan cache: {cache}")
    shares = {r["nop_gbps"]: r["nop_share_pct"] for r in rows}
    assert shares[100] < 3.0     # paper's conclusion at 100 GB/s
    assert shares[12.5] > shares[200]
