"""Ablation: NoP link bandwidth sensitivity.

The paper concludes NoP overheads sit far below compute.  We sweep the link
bandwidth to find where that stops holding — i.e. how much slower the
interconnect could get before the scheduling conclusions change.
"""

from conftest import save_artifact

from repro.arch import NoPConfig, simba_package
from repro.core import match_throughput
from repro.sim.metrics import format_table
from repro.workloads import build_perception_workload

BANDWIDTHS_GBPS = (12.5, 25, 50, 100, 200)


def _sweep():
    rows = []
    for bw in BANDWIDTHS_GBPS:
        nop = NoPConfig(bandwidth_bytes_per_s=bw * 1e9)
        schedule = match_throughput(
            build_perception_workload(), simba_package(nop=nop))
        rows.append({
            "nop_gbps": bw,
            "nop_latency_ms": round(schedule.nop_latency_s * 1e3, 2),
            "e2e_ms": round(schedule.e2e_latency_s * 1e3, 1),
            "nop_share_pct": round(
                100 * schedule.nop_latency_s / schedule.e2e_latency_s, 2),
        })
    return rows


def test_ablation_nop_bandwidth(benchmark, artifact_dir):
    rows = benchmark(_sweep)
    save_artifact(artifact_dir, "ablation_nop_bandwidth",
                  format_table(rows, "Ablation: NoP bandwidth"))
    shares = {r["nop_gbps"]: r["nop_share_pct"] for r in rows}
    assert shares[100] < 3.0     # paper's conclusion at 100 GB/s
    assert shares[12.5] > shares[200]
