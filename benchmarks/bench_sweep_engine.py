"""Benchmark: shared plan cache and the parallel scenario-sweep engine.

Two claims are locked here:

* a warm process-wide :class:`~repro.core.plancache.PlanCache` makes a
  *fresh* ``TrunkDSE`` instance's ``table()`` at least 2x faster than the
  cold path (pre-PR, each instance owned a private cache that died with
  it, so every sweep scenario re-priced identical plans);
* a >= 50-scenario :class:`~repro.sweep.ScenarioSweep` grid run in
  parallel produces byte-identical serialized rows to the serial path.
"""

import json
import os
import time

from conftest import save_artifact

from repro.core import TrunkDSE, clear_plan_cache, plan_cache_stats
from repro.cost import clear_cache
from repro.sweep import ScenarioSweep, scenario_grid


def _table_seconds() -> float:
    start = time.perf_counter()
    TrunkDSE(allow_sharding=True).table()
    return time.perf_counter() - start


def test_plan_cache_halves_trunk_table_time(benchmark, artifact_dir):
    # Cold: both the layer-cost cache and the plan cache start empty, the
    # state every fresh worker process (and the pre-PR code on every DSE
    # instance) pays.  Best-of-3 on each side for timer stability.
    cold_times = []
    for _ in range(3):
        clear_cache()
        clear_plan_cache()
        cold_times.append(_table_seconds())
    cold = min(cold_times)
    stats_cold = plan_cache_stats()

    # Warm: fresh TrunkDSE instances served by the shared PlanCache.
    warm = min(_table_seconds() for _ in range(3))
    stats_warm = plan_cache_stats()
    benchmark(_table_seconds)

    save_artifact(
        artifact_dir, "sweep_engine_plan_cache",
        "\n".join([
            "Shared PlanCache: TrunkDSE.table() cold vs warm",
            f"cold_s  {cold:.4f}  (cache after: {stats_cold.to_dict()})",
            f"warm_s  {warm:.4f}  (cache after: {stats_warm.to_dict()})",
            f"speedup {cold / warm:.2f}x",
        ]))
    # Work-based invariants hold on any machine: the warm runs must be
    # served entirely from the shared cache (no new plan computations).
    assert stats_warm.hits > stats_cold.hits, "warm run never hit the cache"
    assert stats_warm.misses == stats_cold.misses, (
        "warm TrunkDSE instances recomputed plans behind the cache")
    # The wall-clock ratio is asserted strictly by default; CI shared
    # runners set SWEEP_BENCH_STRICT=0 because load noise can eat the
    # margin there — the ratio still lands in the uploaded artifact.
    if os.environ.get("SWEEP_BENCH_STRICT", "1") != "0":
        assert cold >= 2.0 * warm, (
            f"shared plan cache bought only {cold / warm:.2f}x "
            f"(cold {cold * 1e3:.2f} ms, warm {warm * 1e3:.2f} ms)")


def test_parallel_sweep_matches_serial(benchmark, artifact_dir):
    grid = scenario_grid(
        tolerances=(1.0, 1.05, 1.2),
        nop_gbps=(None, 50.0),
        npus=(1, 2),
        workloads=("default", "quad-camera"),
        het_ws_budgets=(None, 2, 4),
    )
    assert len(grid) >= 50

    serial = ScenarioSweep(grid, workers=1).run()
    parallel = benchmark.pedantic(
        lambda: ScenarioSweep(grid, workers=4).run(),
        rounds=1, iterations=1)

    assert serial.rows_json() == parallel.rows_json()
    stats = parallel.summary()["plan_cache"]
    save_artifact(
        artifact_dir, "sweep_engine_parallel",
        "\n".join([
            f"Scenario sweep determinism ({len(grid)} scenarios)",
            "serial rows sha == parallel rows sha: True",
            f"plan cache (parallel run): {json.dumps(stats)}",
        ]))
    # The shared cache must be doing real work across the grid.
    assert stats["hits"] > stats["misses"]
