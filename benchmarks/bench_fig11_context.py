"""Benchmark fig11: context-aware lane computing sweep (paper Fig. 11)."""

from conftest import save_artifact

from repro.cost import clear_cache
from repro.experiments import fig11


def test_fig11_context_sweep(benchmark, artifact_dir):
    def run():
        clear_cache()
        return fig11.run()

    result = benchmark(run)
    save_artifact(artifact_dir, "fig11_context", fig11.render(result))
    benchmark.extra_info["min_feasible_context_pct"] = \
        result["min_feasible_context_pct"]
    assert 50 <= result["min_feasible_context_pct"] <= 75  # paper: ~60%
