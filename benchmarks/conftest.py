"""Benchmark helpers: artifact output directory."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(directory: pathlib.Path, name: str, text: str) -> None:
    (directory / f"{name}.txt").write_text(text + "\n")
