"""Benchmark fig10: Algorithm 1 scaling to two NPUs (paper Fig. 10)."""

from conftest import save_artifact

from repro.cost import clear_cache
from repro.experiments import fig10


def test_fig10_dual_npu_scaling(benchmark, artifact_dir):
    def run():
        clear_cache()
        return fig10.run()

    result = benchmark(run)
    save_artifact(artifact_dir, "fig10_scaling", fig10.render(result))
    benchmark.extra_info["speedup"] = result["speedup"]
    assert 1.7 < result["speedup"] < 2.3  # paper: ~2x
