"""Benchmark fig3: component breakdown on OS/WS chiplets (paper Fig. 3)."""

from conftest import save_artifact

from repro.cost import clear_cache
from repro.experiments import fig3


def test_fig3_breakdown(benchmark, artifact_dir):
    def run():
        clear_cache()  # measure the full analysis, not the memo table
        return fig3.run()

    result = benchmark(run)
    save_artifact(artifact_dir, "fig3_breakdown", fig3.render(result))
    benchmark.extra_info["os_speedup_over_ws"] = \
        result["os_speedup_over_ws"]
    assert 5.5 < result["os_speedup_over_ws"] < 8.5  # paper: 6.85x
