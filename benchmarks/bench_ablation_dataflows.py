"""Ablation: third dataflow style (row stationary) vs the paper's OS/WS.

The paper restricts its study to output- and weight-stationary dataflows
"given their proven superiority over other accelerator types".  We check
that premise with an Eyeriss-like row-stationary engine on the same
perception workload.
"""

from conftest import save_artifact

from repro.cost import chain_energy_j, chain_latency_s, clear_cache
from repro.cost.accelerator import (
    eyeriss_chiplet,
    nvdla_chiplet,
    shidiannao_chiplet,
)
from repro.sim.metrics import format_table
from repro.workloads import build_perception_workload

ACCELS = (
    ("shidiannao-os", shidiannao_chiplet),
    ("nvdla-ws", nvdla_chiplet),
    ("eyeriss-rs", eyeriss_chiplet),
)


def _sweep():
    workload = build_perception_workload()
    rows = []
    for name, factory in ACCELS:
        clear_cache()
        accel = factory()
        lat = sum(chain_latency_s(g.layers, accel) * g.instances
                  for g in workload.all_groups())
        energy = sum(chain_energy_j(g.layers, accel) * g.instances
                     for g in workload.all_groups())
        rows.append({
            "dataflow": name,
            "total_latency_ms": round(lat * 1e3, 1),
            "total_energy_j": round(energy, 3),
        })
    clear_cache()
    return rows


def test_ablation_dataflow_styles(benchmark, artifact_dir):
    rows = benchmark(_sweep)
    save_artifact(artifact_dir, "ablation_dataflows",
                  format_table(rows, "Ablation: dataflow styles"))
    by_name = {r["dataflow"]: r for r in rows}
    # OS dominates RS in both metrics on this workload mix, supporting
    # the paper's restriction to the OS/WS pair.
    assert (by_name["shidiannao-os"]["total_latency_ms"]
            < by_name["eyeriss-rs"]["total_latency_ms"])
    assert (by_name["shidiannao-os"]["total_energy_j"]
            <= by_name["eyeriss-rs"]["total_energy_j"])
