"""Benchmark table1: heterogeneous trunk DSE (paper Table I)."""

from conftest import save_artifact

from repro.cost import clear_cache
from repro.experiments import table1


def test_table1_heterogeneous_trunks(benchmark, artifact_dir):
    def run():
        clear_cache()
        return table1.run()

    result = benchmark(run)
    save_artifact(artifact_dir, "table1_hetero", table1.render(result))
    rows = {r["config"]: r for r in result["rows"]}
    benchmark.extra_info["het2_d_energy_pct"] = rows["Het(2)"][
        "d_energy_pct"]
    assert rows["Het(2)"]["d_energy_pct"] < 0
    assert not rows["WS"]["feasible"]
