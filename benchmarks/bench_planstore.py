"""Benchmark: warm-from-disk sweeps via the shared plan store.

Locks the cross-process amortization claim of the plan store: a sweep
whose worker processes warm-start from a populated ``PlanStore`` must be
at least 3x faster than the same sweep run cold (empty store, cold
caches), with byte-identical rows and a warm plan-cache miss count of 0.

The grid maximizes planning diversity per scenario (every workload
variant, a large chiplet-count package a la "Chiplets on Wheels", and a
heterogeneous trunk budget), which is exactly the regime the store is
for: every scenario's plans are priced once ever, then served from disk
to every later worker and run.

Results land in ``BENCH_planstore.json`` so the perf trajectory is
machine-readable from this PR onward.
"""

import json
import os
import time

from repro.core import clear_plan_cache
from repro.cost import clear_cache
from repro.sweep import (
    WORKLOAD_VARIANTS,
    ScenarioSweep,
    clear_trunk_memo,
    scenario_grid,
)

#: planning-heavy grid: all variants x a big package x het trunk budgets.
GRID_KWARGS = dict(
    workloads=tuple(sorted(WORKLOAD_VARIANTS)),
    npus=(8,),
    het_ws_budgets=(None, 6),
)
WORKERS = 2


def _cold_process_state() -> None:
    """Reset every per-process memo the sweep workers inherit via fork."""
    clear_cache()
    clear_plan_cache()
    clear_trunk_memo()


def _timed_run(grid, store_path):
    _cold_process_state()
    start = time.perf_counter()
    result = ScenarioSweep(grid, workers=WORKERS,
                           store_path=store_path).run()
    return time.perf_counter() - start, result


def test_warm_from_disk_sweep_is_3x_faster(benchmark, artifact_dir,
                                           tmp_path):
    grid = scenario_grid(**GRID_KWARGS)

    # Cold: empty store, cold caches — every plan priced from scratch.
    # Best-of-2 against separate stores for timer stability; the second
    # cold run populates the store the warm runs read.
    cold1_s, _ = _timed_run(grid, tmp_path / "planstore-scratch")
    store = tmp_path / "planstore"
    cold2_s, cold = _timed_run(grid, store)
    cold_s = min(cold1_s, cold2_s)
    # Warm: same grid, fresh worker processes, plans served from disk.
    warm1_s, warm = _timed_run(grid, store)
    warm2_s, _ = _timed_run(grid, store)
    warm_s = min(warm1_s, warm2_s)
    benchmark.pedantic(lambda: _timed_run(grid, store),
                       rounds=1, iterations=1)

    payload = {
        "grid_scenarios": len(grid),
        "workers": WORKERS,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(cold_s / warm_s, 2),
        "cold_plan_cache": cold.summary()["plan_cache"],
        "warm_plan_cache": warm.summary()["plan_cache"],
        "warm_layer_cost_cache": warm.summary()["layer_cost_cache"],
        "rows_byte_identical": cold.rows_json() == warm.rows_json(),
    }
    (artifact_dir / "BENCH_planstore.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # Work-based invariants hold on any machine: the warm run recomputes
    # nothing (0 misses, all first-touch lookups served from the store)
    # and streams back byte-identical rows.
    assert payload["rows_byte_identical"]
    assert warm.cache_stats.misses == 0
    assert warm.cache_stats.store_hits > 0
    assert cold.cache_stats.misses > 0
    # The wall-clock ratio is asserted strictly by default; CI shared
    # runners set SWEEP_BENCH_STRICT=0 because load noise can eat the
    # margin there — the measured speedup still lands in the artifact.
    if os.environ.get("SWEEP_BENCH_STRICT", "1") != "0":
        assert cold_s >= 3.0 * warm_s, (
            f"warm-from-disk bought only {cold_s / warm_s:.2f}x "
            f"(cold {cold_s:.3f} s, warm {warm_s:.3f} s)")
