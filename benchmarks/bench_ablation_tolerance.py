"""Ablation: Algorithm 1 tolerance coefficient sweep.

The paper's Algorithm 1 takes a tolerance coefficient as input but never
ablates it.  We sweep it to show the trade-off between chiplet usage and
how tightly stages match the base pipelining latency.  The sweep is driven
by the :class:`~repro.sweep.ScenarioSweep` engine, so the rows come with
shared plan-cache statistics.
"""

from conftest import save_artifact

from repro.core import clear_plan_cache
from repro.cost import clear_cache
from repro.sim.metrics import format_table
from repro.sweep import ScenarioSweep, scenario_grid

TOLERANCES = (1.0, 1.05, 1.1, 1.2, 1.4)


def _sweep():
    # Cold-start both caches so the benchmark times scheduler work (and
    # the reported stats show real per-sweep hit rates), not warm lookups.
    clear_cache()
    clear_plan_cache()
    result = ScenarioSweep(scenario_grid(tolerances=TOLERANCES)).run()
    rows = [{
        "tolerance": r["tolerance"],
        "pipe_ms": round(r["pipe_ms"], 2),
        "e2e_ms": round(r["e2e_ms"], 1),
        "edp_j_ms": round(r["edp_j_ms"], 1),
        "used_chiplets": r["used_chiplets"],
        "shard_steps": r["shard_steps"],
    } for r in result.rows]
    return rows, result.summary()["plan_cache"]


def test_ablation_tolerance(benchmark, artifact_dir):
    rows, cache = benchmark(_sweep)
    save_artifact(artifact_dir, "ablation_tolerance",
                  format_table(rows, "Ablation: Algorithm 1 tolerance")
                  + f"\nplan cache: {cache}")
    # The pipe latency is FE-bound on 36 chiplets regardless of tolerance.
    pipes = [r["pipe_ms"] for r in rows]
    assert max(pipes) - min(pipes) < 0.2 * min(pipes)
