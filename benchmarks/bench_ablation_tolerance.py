"""Ablation: Algorithm 1 tolerance coefficient sweep.

The paper's Algorithm 1 takes a tolerance coefficient as input but never
ablates it.  We sweep it to show the trade-off between chiplet usage and
how tightly stages match the base pipelining latency.
"""

from conftest import save_artifact

from repro.arch import simba_package
from repro.core import ThroughputMatcher
from repro.sim.metrics import format_table
from repro.workloads import build_perception_workload

TOLERANCES = (1.0, 1.05, 1.1, 1.2, 1.4)


def _sweep():
    rows = []
    for tol in TOLERANCES:
        schedule = ThroughputMatcher(
            build_perception_workload(), simba_package(),
            tolerance=tol).run()
        summary = schedule.summary()
        rows.append({
            "tolerance": tol,
            "pipe_ms": round(summary["pipe_ms"], 2),
            "e2e_ms": round(summary["e2e_ms"], 1),
            "edp_j_ms": round(summary["edp_j_ms"], 1),
            "used_chiplets": summary["used_chiplets"],
            "shard_steps": sum(t.action == "shard" for t in schedule.trace),
        })
    return rows


def test_ablation_tolerance(benchmark, artifact_dir):
    rows = benchmark(_sweep)
    save_artifact(artifact_dir, "ablation_tolerance",
                  format_table(rows, "Ablation: Algorithm 1 tolerance"))
    # The pipe latency is FE-bound on 36 chiplets regardless of tolerance.
    pipes = [r["pipe_ms"] for r in rows]
    assert max(pipes) - min(pipes) < 0.2 * min(pipes)
