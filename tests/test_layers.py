"""Unit tests for the layer IR (repro.workloads.layers)."""

import pytest

from repro.workloads.layers import (
    BYTES_PER_WORD,
    Layer,
    LayerKind,
    concat,
    conv,
    deconv,
    dense,
    dwconv,
    eltwise,
    matmul,
    move,
    pool,
    softmax,
    total_macs,
)


class TestConstruction:
    def test_conv_constructor_fields(self):
        layer = conv("c", (180, 320), 64, 3, r=7, stride=4)
        assert layer.kind is LayerKind.CONV
        assert (layer.out_h, layer.out_w) == (180, 320)
        assert (layer.k, layer.c, layer.r, layer.s) == (64, 3, 7, 7)
        assert layer.stride == 4

    def test_tags_are_stored_but_not_part_of_identity(self):
        a = conv("c", (8, 8), 4, 4, stage="X")
        b = conv("c", (8, 8), 4, 4, stage="Y")
        assert a.tags["stage"] == "X"
        assert a == b  # tags excluded from equality
        assert hash(a) == hash(b)

    def test_rejects_nonpositive_plane(self):
        with pytest.raises(ValueError):
            Layer("bad", LayerKind.CONV, 0, 10, 4, 4)

    def test_rejects_nonpositive_channels(self):
        with pytest.raises(ValueError):
            Layer("bad", LayerKind.CONV, 4, 4, 0, 4)

    def test_depthwise_requires_c_equal_one(self):
        with pytest.raises(ValueError):
            Layer("bad", LayerKind.DWCONV, 4, 4, 16, 3)

    def test_matmul_weights_are_activations(self):
        layer = matmul("m", (10, 10), 64, 32)
        assert layer.weights_are_activations
        assert not dense("d", (10, 10), 64, 32).weights_are_activations


class TestDerivedSizes:
    def test_conv_macs(self):
        layer = conv("c", (180, 320), 64, 64, r=3)
        assert layer.macs == 180 * 320 * 64 * 64 * 9

    def test_dense_macs(self):
        layer = dense("d", (200, 80), 384, 384)
        assert layer.macs == 200 * 80 * 384 * 384

    def test_dwconv_macs_has_no_channel_reduction(self):
        layer = dwconv("dw", (90, 160), 256, r=3)
        assert layer.macs == 90 * 160 * 256 * 9

    def test_deconv_uses_zero_insertion_model(self):
        # r*s MACs per output pixel, including inserted zeros.
        layer = deconv("d", (40, 160), 90, 90, r=3, stride=2)
        assert layer.macs == 40 * 160 * 90 * 90 * 9

    def test_vector_ops_have_no_macs(self):
        for layer in (pool("p", (10, 10), 64), eltwise("e", (10, 10), 64),
                      softmax("s", (10, 10), 64), concat("c", (10, 10), 64),
                      move("m", (10, 10), 64)):
            assert layer.macs == 0
            assert layer.vector_elems == 100 * 64

    def test_weight_words(self):
        assert conv("c", (8, 8), 64, 32, r=3).weight_words == 64 * 32 * 9
        assert dwconv("dw", (8, 8), 64, r=3).weight_words == 64 * 9
        assert dense("d", (8, 8), 64, 32).weight_words == 64 * 32
        assert pool("p", (8, 8), 64).weight_words == 0

    def test_input_plane_accounts_for_stride_and_kernel(self):
        layer = conv("c", (90, 160), 128, 64, r=3, stride=2)
        assert layer.in_h == 89 * 2 + 3
        assert layer.in_w == 159 * 2 + 3

    def test_deconv_input_plane_is_downsampled(self):
        layer = deconv("d", (40, 160), 90, 90, stride=2)
        assert (layer.in_h, layer.in_w) == (20, 80)

    def test_output_bytes_fp16(self):
        layer = dense("d", (20, 80), 256, 300)
        assert layer.output_bytes == 20 * 80 * 256 * BYTES_PER_WORD

    def test_total_macs_helper(self):
        layers = [conv("a", (8, 8), 4, 4), dense("b", (8, 8), 4, 4)]
        assert total_macs(layers) == sum(l.macs for l in layers)


class TestShardTransforms:
    def test_split_rows_partitions_height(self):
        layer = conv("c", (20, 80), 64, 64)
        shards = [layer.split_rows(3, i) for i in range(3)]
        assert sum(s.out_h for s in shards) == 20
        assert {s.out_w for s in shards} == {80}

    def test_split_rows_validates_bounds(self):
        layer = conv("c", (4, 4), 4, 4)
        with pytest.raises(ValueError):
            layer.split_rows(5, 0)
        with pytest.raises(ValueError):
            layer.split_rows(2, 2)

    def test_scaled_plane_rounds_rows(self):
        layer = dense("d", (20, 80), 64, 64)
        assert layer.scaled_plane(0.6).out_h == 12
        assert layer.scaled_plane(1.0).out_h == 20

    def test_scaled_plane_rejects_bad_fraction(self):
        layer = dense("d", (20, 80), 64, 64)
        with pytest.raises(ValueError):
            layer.scaled_plane(0.0)
        with pytest.raises(ValueError):
            layer.scaled_plane(1.5)
