"""Property-based tests (hypothesis) for core invariants."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import transfer_cost
from repro.core.sharding import _balanced_segments, plan_group, split_plane
from repro.cost import evaluate, nvdla_chiplet, shidiannao_chiplet
from repro.workloads import conv, dense
from repro.workloads.graph import LayerGroup

OS = shidiannao_chiplet()
WS = nvdla_chiplet()

dims = st.integers(min_value=1, max_value=64)
planes = st.integers(min_value=1, max_value=300)
kernels = st.sampled_from([1, 3, 5, 7])


@st.composite
def conv_layers(draw):
    return conv(
        "c",
        (draw(planes), draw(planes)),
        draw(dims) * 4,
        draw(dims),
        r=draw(kernels),
        stride=draw(st.sampled_from([1, 2])),
    )


@st.composite
def dense_layers(draw):
    return dense("d", (draw(planes), draw(planes)), draw(dims) * 4,
                 draw(dims) * 4)


class TestCostInvariants:
    @given(layer=st.one_of(conv_layers(), dense_layers()))
    @settings(max_examples=60, deadline=None)
    def test_cycles_lower_bounded_by_ideal(self, layer):
        # No dataflow can beat MACs / native PEs cycles.
        for accel in (OS, WS):
            cost = evaluate(layer, accel)
            assert cost.cycles * accel.native_pes >= layer.macs

    @given(layer=st.one_of(conv_layers(), dense_layers()))
    @settings(max_examples=60, deadline=None)
    def test_energy_exceeds_mac_floor(self, layer):
        for accel in (OS, WS):
            floor = layer.macs * accel.energy.mac_pj * 1e-12
            assert evaluate(layer, accel).energy_j >= floor

    @given(layer=st.one_of(conv_layers(), dense_layers()))
    @settings(max_examples=60, deadline=None)
    def test_utilization_and_engagement_bounded(self, layer):
        for accel in (OS, WS):
            cost = evaluate(layer, accel)
            assert 0.0 < cost.utilization <= 1.0
            assert 0.0 < cost.engagement <= 1.0


class TestShardingInvariants:
    @given(layer=st.one_of(conv_layers(), dense_layers()),
           n=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_split_plane_partitions_work(self, layer, n):
        limit = layer.out_h if layer.out_h > 1 else layer.out_w
        if n > limit:
            return
        shards = [split_plane(layer, n, i) for i in range(n)]
        assert sum(s.out_plane for s in shards) == layer.out_plane
        assert sum(s.macs for s in shards) == layer.macs

    @given(rows=st.integers(min_value=16, max_value=200),
           n=st.integers(min_value=2, max_value=6),
           instances=st.sampled_from([1, 4, 8, 12]))
    @settings(max_examples=40, deadline=None)
    def test_plans_preserve_macs_and_never_slow_span(self, rows, n,
                                                     instances):
        group = LayerGroup(
            name="g",
            layers=(dense("l", (rows, 64), 128, 128),),
            stage="S",
            instances=instances,
            row_shardable=True,
            pipeline_splittable=False,
        )
        single = plan_group(group, 1, OS)
        plan = plan_group(group, n, OS)
        if plan is None:
            return
        assert plan.macs == group.total_macs
        assert plan.span_s <= single.span_s + 1e-12
        assert plan.pipe_latency_s <= single.pipe_latency_s + 1e-12
        assert len(plan.per_chiplet_busy) == plan.n_chiplets


class TestSegmentsInvariants:
    @given(lats=st.lists(st.floats(min_value=0.01, max_value=10.0),
                         min_size=2, max_size=10),
           k=st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_balanced_segments_optimal_minmax(self, lats, k):
        k = min(k, len(lats))
        bounds = _balanced_segments(lats, k)
        assert bounds[0] == 0
        assert len(bounds) == k
        segs = [sum(lats[a:b])
                for a, b in zip(bounds, bounds[1:] + [len(lats)])]
        best = min(
            max(sum(lats[a:b]) for a, b in
                zip((0,) + cuts, cuts + (len(lats),)))
            for cuts in itertools.combinations(range(1, len(lats)), k - 1)
        ) if k > 1 else sum(lats)
        assert max(segs) <= best + 1e-9


class TestNoPInvariants:
    @given(payload=st.integers(min_value=0, max_value=10**9),
           hops=st.integers(min_value=0, max_value=12))
    @settings(max_examples=80, deadline=None)
    def test_transfer_monotone(self, payload, hops):
        t = transfer_cost(payload, hops)
        assert t.latency_s >= 0 and t.energy_j >= 0
        bigger = transfer_cost(payload + 1024, hops)
        assert bigger.latency_s >= t.latency_s
        assert bigger.energy_j >= t.energy_j
        if payload > 0:
            further = transfer_cost(payload, hops + 1)
            assert further.latency_s >= t.latency_s
            assert further.energy_j >= t.energy_j
