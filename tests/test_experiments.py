"""Reproduction-band tests: every paper table/figure driver.

Each test asserts the *shape* the paper reports — who wins, by roughly what
factor, where crossovers fall — per the reproduction contract in
EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    fig3,
    fig4,
    fig5to8,
    fig9,
    fig10,
    fig11,
    table1,
    table2,
    table3,
)


@pytest.fixture(scope="module")
def results():
    return {name: mod.run() for name, mod in ALL_EXPERIMENTS.items()}


class TestFig3:
    def test_os_speedup_band(self, results):
        # Paper: 6.85x OS speedup over WS across the workloads.
        assert 5.5 < results["fig3"]["os_speedup_over_ws"] < 8.5

    def test_fusion_shares(self, results):
        shares = results["fig3"]["fusion_share"]["shidiannao_os"]
        assert 20 < shares["S_FUSE"] < 33   # paper: 25-28%
        assert 42 < shares["T_FUSE"] < 60   # paper: 52-54%

    def test_fe_per_camera_latency(self, results):
        rows = {r["component"]: r
                for r in results["fig3"]["components"]["shidiannao_os"]}
        assert 80 < rows["FE+BFPN"]["latency_ms"] < 100  # paper: 82.7 ms


class TestFig4:
    def test_fusion_fully_os_affine(self, results):
        summary = results["fig4"]["summary"]["S+T Attn Fusion"]
        assert summary["os_latency_affine_pct"] == 100.0
        assert summary["ws_energy_affine_pct"] == 0.0

    def test_fe_tradeoff(self, results):
        summary = results["fig4"]["summary"]["FE+BFPN"]
        assert summary["os_latency_affine_pct"] > 50
        assert summary["ws_energy_affine_pct"] > 50


class TestFig5to8:
    def test_stage_pipe_latencies_below_base(self, results):
        base = results["fig5to8"]["base_latency_ms"]
        for stage in results["fig5to8"]["stages"]:
            assert stage["pipe_ms"] <= base * 1.05 + 1e-6

    def test_every_quadrant_used(self, results):
        for stage in results["fig5to8"]["stages"]:
            assert 8 <= stage["chiplets"] <= 9

    def test_paper_mapping_shapes(self, results):
        stages = {s["stage"]: s for s in results["fig5to8"]["stages"]}
        assert stages["S_FUSE"]["mapping"]["S_FFN"]["chiplets"] == 4
        assert stages["T_FUSE"]["mapping"]["T_FFN"]["chiplets"] == 6


class TestFig9:
    def test_nop_two_orders_below_compute(self, results):
        # Paper: NoP costs "at least two orders of magnitude less than the
        # computational costs" — we require >= 50x with our bigger
        # BEV-grid tensors.
        assert results["fig9"]["compute_to_nop_ratio"] > 50

    def test_qkv_outputs_are_the_heavy_edges(self, results):
        edges = results["fig9"]["edges"]
        heaviest = max(edges, key=lambda e: e["latency_ms"])
        assert any(tag in heaviest["src"]
                   for tag in ("KV_PROJ", "FFN", "QKV"))


class TestFig10:
    def test_dual_npu_speedup(self, results):
        assert 1.7 < results["fig10"]["speedup"] < 2.3  # paper: ~2x

    def test_trace_contains_paper_moves(self, results):
        trace = results["fig10"]["trace"]
        moves = {(t["group"], t["n_chiplets"]) for t in trace}
        assert ("T_FFN", 12) in moves      # frame sharding exhausted
        assert ("FE_BFPN", 16) in moves    # FE two-way pipeline partition

    def test_trace_pipe_nonincreasing_after_match(self, results):
        pipes = [t["pipe_ms"] for t in results["fig10"]["trace"]]
        assert all(a >= b - 1e-6 for a, b in zip(pipes, pipes[1:]))


class TestTable1:
    def test_ws_column_catastrophic(self, results):
        rows = {r["config"]: r for r in results["table1"]["rows"]}
        assert rows["WS"]["e2e_ms"] > 4 * rows["OS"]["e2e_ms"]
        assert not rows["WS"]["feasible"]

    def test_het_energy_and_edp_reductions(self, results):
        rows = {r["config"]: r for r in results["table1"]["rows"]}
        for label in ("Het(2)", "Het(4)"):
            assert rows[label]["d_energy_pct"] < 0
            assert rows[label]["d_edp_pct"] < 0
            assert abs(rows[label]["e2e_ms"] - rows["OS"]["e2e_ms"]) \
                <= 0.02 * rows["OS"]["e2e_ms"]

    def test_det_energy_reduction_band(self, results):
        assert 10 < results["table1"]["det_energy_reduction_pct"] < 45


class TestTable2:
    def test_headline_throughput_claim(self, results):
        # Abstract: "82% ... increase in throughput" (pipe-latency
        # reduction vs the best conventional baseline).
        red = results["table2"]["pipe_reduction_vs_best_baseline_pct"]
        assert 75 < red < 92

    def test_mcm_beats_everything(self, results):
        rows = {r["config"]: r for r in results["table2"]["rows"]}
        ours = rows["36x256-ours"]
        for name, row in rows.items():
            if name != "36x256-ours":
                assert ours["pipe_ms"] < row["pipe_ms"]
                assert ours["utilization_pct"] > row["utilization_pct"]

    def test_mcm_pays_nop_energy(self, results):
        rows = {r["config"]: r for r in results["table2"]["rows"]}
        assert (rows["36x256-ours"]["energy_j"]
                > rows["1x9216-stagewise"]["energy_j"])

    def test_monolithic_e2e_band(self, results):
        rows = {r["config"]: r for r in results["table2"]["rows"]}
        assert 1600 < rows["1x9216-stagewise"]["e2e_ms"] < 2100  # paper 1.8s


class TestTable3:
    def test_superlinear_upsampling_scaling(self, results):
        rows = results["table3"]["rows"]
        ratios = [r["e2e_ratio"] for r in rows]
        assert ratios[0] == 1.0
        assert 3.0 < ratios[1] < 5.0      # paper: 4.10x
        assert 12.0 < ratios[2] < 22.0    # paper: 20.72x
        assert 50.0 < ratios[3] < 90.0    # paper: 87.59x

    def test_final_layer_dominates(self, results):
        # Paper: the last upsampling layer contributes ~75% of latency.
        assert 65 < results["table3"]["final_stage_share_pct"] < 85


class TestFig11:
    def test_crossover_at_sixty_percent(self, results):
        assert 50 <= results["fig11"]["min_feasible_context_pct"] <= 75

    def test_full_context_over_threshold(self, results):
        points = {p["context_pct"]: p for p in results["fig11"]["points"]}
        assert not points[100]["meets_constraint"]
        assert points[10]["meets_constraint"]


class TestRenderers:
    def test_every_experiment_renders(self, results):
        for name, mod in ALL_EXPERIMENTS.items():
            text = mod.render(results[name])
            assert isinstance(text, str) and len(text) > 50
