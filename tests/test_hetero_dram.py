"""Tests for heterogeneous end-to-end scheduling and DRAM accounting."""

import pytest

from repro.arch import (
    DramBudget,
    camera_input_bytes,
    dram_report,
    weight_stream_bytes,
)
from repro.core import schedule_heterogeneous


class TestHeterogeneousFlow:
    @pytest.fixture(scope="class")
    def het2(self):
        return schedule_heterogeneous(ws_chiplets=2)

    def test_package_carries_ws_chiplets(self, het2):
        ws = [c for c in het2.package.chiplets if c.dataflow == "ws"]
        assert len(ws) == 2
        trunk_quads = het2.schedule.stage_quadrants["TRUNKS"]
        assert all(c.quadrant in trunk_quads for c in ws)

    def test_het_saves_energy_end_to_end(self, het2):
        assert het2.energy_saving_j > 0
        assert het2.energy_j < het2.schedule.energy_j

    def test_pipe_latency_not_degraded(self, het2):
        # The DSE enforces the latency constraint, so the FE-bound pipe
        # latency must survive heterogeneous integration.
        assert het2.pipe_latency_s == pytest.approx(
            het2.schedule.pipe_latency_s)

    def test_os_only_variant_keeps_homogeneous_package(self):
        result = schedule_heterogeneous(ws_chiplets=0)
        assert all(c.dataflow == "os" for c in result.package.chiplets)
        assert result.trunk_config.ws_chiplets == 0

    def test_detection_lands_on_ws(self, het2):
        assert het2.trunk_config.alloc["DET_TR"][1] == "ws"


class TestDram:
    def test_camera_bytes(self):
        # 8 cameras x 3 x 720 x 1280 x 2 bytes.
        assert camera_input_bytes() == 8 * 3 * 720 * 1280 * 2

    def test_weight_stream_excludes_attention_operands(self, workload):
        total = weight_stream_bytes(workload)
        assert total > 0
        # Attention score/context matrices are produced on package and
        # never hit DRAM: removing them from the count changes nothing.
        matmul_words = sum(
            l.weight_words * g.instances
            for g in workload.all_groups() for l in g.layers
            if l.weights_are_activations)
        assert matmul_words > 0  # they exist...
        # ...but were already excluded from the DRAM stream.

    def test_fsd_lpddr4_sustains_30fps(self, workload):
        report = dram_report(workload)
        assert report.sustainable
        assert report.bandwidth_utilization < 0.5
        assert report.max_fps > 60

    def test_tight_budget_fails(self, workload):
        report = dram_report(workload,
                             budget=DramBudget(bandwidth_bytes_per_s=5e9))
        assert not report.sustainable

    def test_energy_positive_and_scaled(self, workload):
        report = dram_report(workload)
        assert report.energy_j > 0
        # DRAM energy stays a small fraction of the ~0.8 J compute budget.
        assert report.energy_j < 0.2

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            DramBudget(bandwidth_bytes_per_s=0)
