"""Tests for workload structural validation."""

import pytest

from repro.workloads import conv, dense
from repro.workloads.graph import LayerGroup, PerceptionWorkload, Stage
from repro.workloads.validate import (
    ERROR,
    WARNING,
    WorkloadValidationError,
    check_workload,
    validate_workload,
)


def _workload(groups, stage_name="S"):
    stage = Stage(stage_name)
    for g in groups:
        stage.add(g)
    return PerceptionWorkload(stages=[stage])


class TestValidation:
    def test_default_pipeline_has_no_errors(self, workload):
        errors = [d for d in validate_workload(workload)
                  if d.severity == ERROR]
        assert errors == []
        check_workload(workload)  # must not raise

    def test_unknown_dependency_flagged(self):
        wl = _workload([LayerGroup(
            name="g", layers=(conv("c", (8, 8), 16, 16),), stage="S",
            depends_on=("ghost",))])
        findings = validate_workload(wl)
        assert any(d.severity == ERROR and "ghost" in d.message
                   for d in findings)
        with pytest.raises(WorkloadValidationError):
            check_workload(wl)

    def test_channel_discontinuity_warned(self):
        wl = _workload([LayerGroup(
            name="g",
            layers=(conv("a", (8, 8), 32, 16), conv("b", (8, 8), 64, 99)),
            stage="S")])
        findings = validate_workload(wl)
        assert any(d.severity == WARNING and "reduction width" in d.message
                   for d in findings)

    def test_attention_matmuls_do_not_trip_channel_check(self, workload):
        # The real fusion stages interleave matmuls/softmax with linears;
        # none of that is a channel error.
        warnings = [d for d in validate_workload(workload)
                    if "S_ATTN" in d.location or "T_ATTN" in d.location]
        assert warnings == []

    def test_degenerate_pipeline_split_is_error(self):
        wl = _workload([LayerGroup(
            name="g", layers=(conv("c", (8, 8), 16, 16),), stage="S",
            pipeline_splittable=True)])
        with pytest.raises(WorkloadValidationError):
            check_workload(wl)

    def test_single_row_shardable_warned(self):
        wl = _workload([LayerGroup(
            name="g", layers=(dense("d", (1, 1), 16, 16),), stage="S",
            row_shardable=True)])
        findings = validate_workload(wl)
        assert any("row-shardable" in d.message for d in findings)

    def test_too_many_stages_rejected(self):
        stages = []
        for i in range(5):
            s = Stage(f"S{i}")
            s.add(LayerGroup(name=f"g{i}",
                             layers=(conv("c", (8, 8), 16, 16),),
                             stage=f"S{i}"))
            stages.append(s)
        wl = PerceptionWorkload(stages=stages)
        with pytest.raises(WorkloadValidationError):
            check_workload(wl)

    def test_diagnostic_str(self):
        from repro.workloads.validate import Diagnostic
        d = Diagnostic(ERROR, "loc", "boom")
        assert str(d) == "[error] loc: boom"
