"""Tests for terminal visualization (floorplans, charts)."""

import pytest

from repro.viz import (
    chiplet_labels,
    hbar_chart,
    render_floorplan,
    render_quadrant,
    sparkline,
    step_plot,
)


class TestFloorplan:
    def test_mesh_dimensions(self, schedule36):
        text = render_floorplan(schedule36)
        lines = text.splitlines()
        borders = [l for l in lines if l.startswith("+")]
        assert len(borders) == schedule36.package.mesh_h + 1

    def test_all_fe_instances_visible(self, schedule36):
        text = render_floorplan(schedule36)
        for i in range(8):
            assert f"FE{i}" in text

    def test_labels_cover_used_chiplets(self, schedule36):
        labels = chiplet_labels(schedule36)
        assert set(labels) == schedule36.used_chiplets

    def test_busy_annotations_optional(self, schedule36):
        with_busy = render_floorplan(schedule36, show_busy=True)
        without = render_floorplan(schedule36, show_busy=False)
        assert "ms" in with_busy
        assert len(without.splitlines()) < len(with_busy.splitlines())

    def test_quadrant_view(self, schedule36):
        text = render_quadrant(schedule36, "T_FUSE")
        assert "tFF" in text
        assert "T_FUSE" in text


class TestCharts:
    def test_hbar_scales_to_peak(self):
        text = hbar_chart([("a", 10.0), ("b", 5.0)], width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_hbar_empty(self):
        assert "empty" in hbar_chart([])

    def test_step_plot_has_marker_per_point(self):
        text = step_plot([("s1", 80.0), ("s2", 40.0)], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert all("o" in l for l in lines[1:])

    def test_sparkline_range(self):
        line = sparkline([1.0, 2.0, 3.0, 2.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[2] == "█"

    def test_sparkline_constant_and_empty(self):
        assert sparkline([]) == ""
        assert sparkline([5.0, 5.0]) == "▁▁"


class TestChartNumbers:
    def test_hbar_values_rendered(self):
        text = hbar_chart([("x", 12.345)], unit=" ms")
        assert "12.35 ms" in text

    def test_zero_peak_handled(self):
        text = hbar_chart([("x", 0.0), ("y", 0.0)])
        assert "#" not in text
