"""Tests for the benches-as-baselines CI gate (benchmarks/compare_baselines).

The comparator is plain stdlib and lives outside the package (it must run
before anything is importable in CI), so load it by path.
"""

import importlib.util
import json
import pathlib
import sys

import pytest

_MODULE_PATH = (pathlib.Path(__file__).resolve().parent.parent
                / "benchmarks" / "compare_baselines.py")


@pytest.fixture(scope="module")
def comparator():
    spec = importlib.util.spec_from_file_location(
        "compare_baselines", _MODULE_PATH)
    module = importlib.util.module_from_spec(spec)
    # dataclasses resolves the module's postponed annotations through
    # sys.modules, so the by-path load must register itself first.
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        yield module
    finally:
        sys.modules.pop(spec.name, None)


def _write(directory, name, payload):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / name).write_text(json.dumps(payload))


PLANSTORE_OK = {
    "rows_byte_identical": True,
    "warm_plan_cache": {"misses": 0},
    "grid_scenarios": 16,
    "speedup": 3.3,
}


class TestGates:
    def test_exact_gate(self, comparator):
        gate = comparator.Gate("x", "exact")
        assert gate.check(True, True)[0]
        assert not gate.check(False, True)[0]
        assert gate.check([1, 2], [1, 2])[0]

    def test_ratio_gates(self, comparator):
        floor = comparator.Gate("x", "min_ratio", 0.4)
        assert floor.check(1.4, 3.3)[0]
        assert not floor.check(1.2, 3.3)[0]
        ceil = comparator.Gate("x", "max_ratio", 2.5)
        assert ceil.check(4.0, 1.76)[0]
        assert not ceil.check(4.5, 1.76)[0]

    def test_dig_dotted_paths(self, comparator):
        assert comparator.dig({"a": {"b": 3}}, "a.b") == 3
        with pytest.raises(KeyError):
            comparator.dig({"a": {}}, "a.b")


class TestMain:
    def test_passes_when_within_tolerance(self, comparator, tmp_path,
                                          capsys):
        _write(tmp_path / "baselines", "BENCH_planstore.json", PLANSTORE_OK)
        _write(tmp_path / "results", "BENCH_planstore.json",
               {**PLANSTORE_OK, "speedup": 2.0})
        rc = comparator.main(["--results", str(tmp_path / "results"),
                              "--baselines", str(tmp_path / "baselines")])
        assert rc == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_fails_on_invariant_regression(self, comparator, tmp_path,
                                           capsys):
        _write(tmp_path / "baselines", "BENCH_planstore.json", PLANSTORE_OK)
        broken = {**PLANSTORE_OK, "rows_byte_identical": False,
                  "warm_plan_cache": {"misses": 7}}
        _write(tmp_path / "results", "BENCH_planstore.json", broken)
        rc = comparator.main(["--results", str(tmp_path / "results"),
                              "--baselines", str(tmp_path / "baselines")])
        assert rc == 1
        err = capsys.readouterr().err
        assert "rows_byte_identical" in err
        assert "warm_plan_cache.misses" in err

    def test_fails_on_speed_regression_beyond_tolerance(self, comparator,
                                                        tmp_path, capsys):
        _write(tmp_path / "baselines", "BENCH_planstore.json", PLANSTORE_OK)
        _write(tmp_path / "results", "BENCH_planstore.json",
               {**PLANSTORE_OK, "speedup": 1.0})  # < 0.4 * 3.3
        rc = comparator.main(["--results", str(tmp_path / "results"),
                              "--baselines", str(tmp_path / "baselines")])
        assert rc == 1
        assert "speedup" in capsys.readouterr().err

    def test_fails_when_result_missing(self, comparator, tmp_path, capsys):
        _write(tmp_path / "baselines", "BENCH_planstore.json", PLANSTORE_OK)
        (tmp_path / "results").mkdir()
        rc = comparator.main(["--results", str(tmp_path / "results"),
                              "--baselines", str(tmp_path / "baselines")])
        assert rc == 1
        assert "no fresh result" in capsys.readouterr().err

    def test_fails_on_ungated_baseline(self, comparator, tmp_path, capsys):
        # A committed baseline that CHECKS does not know about must fail
        # loudly instead of silently gating nothing.
        _write(tmp_path / "baselines", "BENCH_planstore.json", PLANSTORE_OK)
        _write(tmp_path / "baselines", "BENCH_mystery.json", {"x": 1})
        _write(tmp_path / "results", "BENCH_planstore.json", PLANSTORE_OK)
        rc = comparator.main(["--results", str(tmp_path / "results"),
                              "--baselines", str(tmp_path / "baselines")])
        assert rc == 1
        assert "no registered gates" in capsys.readouterr().err

    def test_fails_without_any_baselines(self, comparator, tmp_path,
                                         capsys):
        (tmp_path / "results").mkdir()
        rc = comparator.main(["--results", str(tmp_path / "results"),
                              "--baselines", str(tmp_path / "baselines")])
        assert rc == 1
        assert "no baselines" in capsys.readouterr().err

    def test_unlocked_result_is_note_not_failure(self, comparator,
                                                 tmp_path, capsys):
        _write(tmp_path / "baselines", "BENCH_planstore.json", PLANSTORE_OK)
        _write(tmp_path / "results", "BENCH_planstore.json", PLANSTORE_OK)
        _write(tmp_path / "results", "BENCH_new.json", {"anything": 1})
        rc = comparator.main(["--results", str(tmp_path / "results"),
                              "--baselines", str(tmp_path / "baselines")])
        assert rc == 0
        assert "no baseline yet" in capsys.readouterr().out

    def test_update_promotes_results(self, comparator, tmp_path, capsys):
        _write(tmp_path / "results", "BENCH_planstore.json", PLANSTORE_OK)
        rc = comparator.main(["--results", str(tmp_path / "results"),
                              "--baselines", str(tmp_path / "baselines"),
                              "--update"])
        assert rc == 0
        promoted = json.loads(
            (tmp_path / "baselines" / "BENCH_planstore.json").read_text())
        assert promoted == PLANSTORE_OK

    def test_committed_baselines_have_all_tracked_paths(self, comparator):
        """The committed seed baselines must carry every gated metric."""
        baselines = _MODULE_PATH.parent / "baselines"
        for name, gates in comparator.CHECKS.items():
            payload = json.loads((baselines / name).read_text())
            for gate in gates:
                comparator.dig(payload, gate.path)  # raises if missing
