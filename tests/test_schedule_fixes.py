"""Regression tests for the PR 1 schedule/stream accounting fixes."""

from dataclasses import replace

import pytest

from repro.arch import simba_package, transfer_cost
from repro.cost import shidiannao_chiplet
from repro.sim.stream import StreamSimulator


class TestHeterogeneousUtilization:
    """utilization must use each chiplet's own clock, not chiplet 0's."""

    def test_homogeneous_matches_single_frequency_formula(self, schedule36):
        pkg = schedule36.package
        freq = pkg.chiplets[0].accel.frequency_hz
        expected = schedule36.workload.total_macs / (
            pkg.total_pes * schedule36.pipe_latency_s * freq)
        assert schedule36.utilization == pytest.approx(expected)

    def test_mixed_frequencies_use_per_chiplet_clocks(self, schedule36):
        # Halve the clock of the chiplet-0 corner: the old formula read
        # chiplet 0's frequency for the *whole* package and would halve
        # the reported PE-cycles; the fix only removes that chiplet's own
        # contribution.
        slow = replace(shidiannao_chiplet(), frequency_hz=1.0e9)
        het_pkg = simba_package().with_dataflow_at([(0, 0)], slow)
        het = replace(schedule36, package=het_pkg)

        window = het.pipe_latency_s
        expected_cycles = sum(
            c.accel.pe_count * c.accel.frequency_hz * window
            for c in het_pkg.chiplets)
        assert het.utilization == pytest.approx(
            het.workload.total_macs / expected_cycles)

        buggy = het.workload.total_macs / (
            het_pkg.total_pes * window
            * het_pkg.chiplets[0].accel.frequency_hz)
        assert het.utilization != pytest.approx(buggy)
        # Slowing one chiplet shrinks available PE-cycles -> higher util.
        assert het.utilization > schedule36.utilization


class TestPipelineInternalEdge:
    """Per-segment hand-off prices one instance's tensor, not the group's."""

    def test_dual_npu_fe_is_pipeline_partitioned(self, schedule72):
        plan = schedule72.groups["FE_BFPN"].plan
        assert plan.segments >= 2  # the paper's two pipelining stages

    def test_handoff_latency_per_instance_energy_additive(self, schedule72):
        group = schedule72.workload.find_group("FE_BFPN")
        assert group.instances > 1  # the over-counting factor at stake
        plan = schedule72.groups["FE_BFPN"].plan
        edge = schedule72._pipeline_internal_edge("FE_BFPN")

        per_instance = group.output_bytes_per_instance
        hops = plan.segments - 1
        t = transfer_cost(per_instance, 1, schedule72.package.nop)
        # Latency: instances overlap, one instance's tensor per hop.
        assert edge.latency_s == pytest.approx(t.latency_s * hops)
        # Energy and total bytes: the concurrent transfers are additive.
        assert edge.payload_bytes == per_instance * hops * group.instances
        assert edge.energy_j == pytest.approx(
            t.energy_j * hops * group.instances)

        # The pre-fix pricing serialized the whole group's output per hop.
        buggy = transfer_cost(per_instance * group.instances, 1,
                              schedule72.package.nop)
        assert edge.latency_s < buggy.latency_s * hops

    def test_unsegmented_groups_have_no_internal_edge(self, schedule36):
        for name, gs in schedule36.groups.items():
            if gs.plan.segments < 2:
                assert schedule36._pipeline_internal_edge(name) is None


class TestStreamPeriodAndSteadyWindow:
    def test_explicit_zero_period_equals_default(self, schedule36):
        sim = StreamSimulator(schedule36)
        by_none = sim.run(n_frames=8, arrival_period_s=None)
        by_zero = sim.run(n_frames=8, arrival_period_s=0.0)
        assert by_zero.measured_pipe_s == by_none.measured_pipe_s
        assert by_zero.frames == by_none.frames

    def test_negative_period_rejected(self, schedule36):
        with pytest.raises(ValueError):
            StreamSimulator(schedule36).run(n_frames=4,
                                            arrival_period_s=-1.0)

    def test_two_frames_measure_nonzero_pipe(self, schedule36):
        # n_frames=2 used to leave the steady window with a single frame,
        # silently reporting a 0.0 pipe latency and infinite FPS.
        result = StreamSimulator(schedule36).run(n_frames=2)
        assert result.measured_pipe_s > 0.0
        assert result.sustainable_fps < float("inf")

    def test_two_frame_pipe_is_sane(self, schedule36):
        result = StreamSimulator(schedule36).run(n_frames=2)
        # One inter-departure sample: within 2x of the steady prediction.
        assert result.measured_pipe_s == pytest.approx(
            schedule36.pipe_latency_s, rel=1.0)
