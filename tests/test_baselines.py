"""Tests for the baseline engine simulator (Table II machinery)."""

import pytest

from repro.cost import chain_latency_s, monolithic
from repro.sim import (
    LAYERWISE,
    STAGEWISE,
    baseline_arrangements,
    run_baselines,
    simulate_engines,
)


class TestArrangements:
    def test_paper_pe_budgets(self):
        arr = baseline_arrangements()
        assert set(arr) == {"1x9216", "2x4608", "4x2304"}
        for engines in arr.values():
            assert sum(e.pe_count for e in engines) == 9216


class TestSingleEngine:
    def test_e2e_equals_pipe_equals_serial_sum(self, workload):
        engines = [monolithic(9216)]
        report = simulate_engines(workload, engines, STAGEWISE)
        serial = sum(chain_latency_s(g.layers, engines[0]) * g.instances
                     for g in workload.all_groups())
        assert report.e2e_s == pytest.approx(serial)
        assert report.pipe_s == pytest.approx(serial)

    def test_monolithic_e2e_matches_paper_band(self, workload):
        report = simulate_engines(workload, [monolithic(9216)], STAGEWISE)
        assert 1.6 < report.e2e_s < 2.1  # paper: 1.8 s

    def test_schemes_identical_on_one_engine(self, workload):
        engines = [monolithic(9216)]
        a = simulate_engines(workload, engines, STAGEWISE)
        b = simulate_engines(workload, engines, LAYERWISE)
        assert a.e2e_s == pytest.approx(b.e2e_s)


class TestMultiEngine:
    def test_more_engines_never_hurt_pipe(self, workload):
        pipes = []
        for name, engines in baseline_arrangements().items():
            pipes.append(simulate_engines(workload, engines,
                                          LAYERWISE).pipe_s)
        assert pipes[0] >= pipes[1] >= pipes[2]

    def test_layerwise_beats_stagewise_e2e(self, workload):
        engines = baseline_arrangements()["4x2304"]
        sw = simulate_engines(workload, engines, STAGEWISE)
        lw = simulate_engines(workload, engines, LAYERWISE)
        assert lw.e2e_s <= sw.e2e_s

    def test_dependencies_respected(self, workload):
        # E2E can never go below the longest dependent chain (one FE model
        # followed by the serial fusion path), however many engines exist.
        engines = [monolithic(2304)] * 4
        report = simulate_engines(workload, engines, LAYERWISE)
        accel = engines[0]
        fe = workload.find_group("FE_BFPN")
        chain = chain_latency_s(fe.layers, accel)
        for name in ("S_KV_PROJ", "S_ATTN", "S_FFN", "T_ATTN", "T_FFN"):
            g = workload.find_group(name)
            chain += chain_latency_s(g.layers, accel)
        assert report.e2e_s >= chain - 1e-9

    def test_energy_independent_of_engine_count(self, workload):
        reports = {name: simulate_engines(workload, engines, STAGEWISE)
                   for name, engines in baseline_arrangements().items()}
        energies = [r.energy_j for r in reports.values()]
        assert max(energies) == pytest.approx(min(energies))

    def test_utilization_improves_with_smaller_dies(self, workload):
        reports = [simulate_engines(workload, engines, LAYERWISE)
                   for engines in baseline_arrangements().values()]
        assert (reports[0].utilization < reports[1].utilization
                < reports[2].utilization)


class TestValidation:
    def test_unknown_scheme_rejected(self, workload):
        with pytest.raises(ValueError):
            simulate_engines(workload, [monolithic(9216)], "pipelined")

    def test_empty_engine_list_rejected(self, workload):
        with pytest.raises(ValueError):
            simulate_engines(workload, [], STAGEWISE)

    def test_run_baselines_rows(self, workload):
        reports = run_baselines(workload)
        assert len(reports) == 6  # 3 arrangements x 2 schemes
        labels = {r.label for r in reports}
        assert "1x9216-stagewise" in labels
        assert "4x2304-layerwise" in labels
