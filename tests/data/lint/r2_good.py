"""R2 fixture: key construction routed through the plan store."""
from repro.core.planstore import plan_key_hash


def plan_key(group, n: int, accel, mode: str) -> str:
    return plan_key_hash(group, n, accel, mode)
