"""R5 fixture: numeric fields named with bare quantity words."""
from dataclasses import dataclass


@dataclass(frozen=True)
class StageCost:
    stage: str
    latency: float
    energy: float


def record(cost: StageCost) -> dict:
    payload = {"stage": cost.stage, "latency": cost.latency}
    payload["energy"] = cost.energy
    return payload
