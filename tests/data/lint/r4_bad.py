"""R4 fixture: unfrozen row columns written without an axis guard."""

_EXTRA_FIELDS = ("contention_ms", "spill_bytes")


def price(scenario, summary: dict) -> dict:
    row = {"key": scenario.key, "custom_note": "x"}
    row["pipe_ms"] = summary["pipe_ms"]
    row["queue_depth"] = summary["queue_depth"]
    for name in _EXTRA_FIELDS:
        row[name] = summary[name]
    row.update(scenario.extra_columns())
    return row
