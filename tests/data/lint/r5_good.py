"""R5 fixture: the unit-suffixed spellings of r5_bad.py."""
from dataclasses import dataclass


@dataclass(frozen=True)
class StageCost:
    stage: str
    latency_ms: float
    energy_mj: float


def record(cost: StageCost) -> dict:
    payload = {"stage": cost.stage, "latency_ms": cost.latency_ms}
    payload["energy_mj"] = cost.energy_mj
    return payload
