"""R6 fixture: numpy leaking outside the batch pricing engine."""
import numpy
import numpy.linalg as la
from numpy import float64


def fast_sum(values):
    return float64(numpy.sum(values)) + la.norm(values)
