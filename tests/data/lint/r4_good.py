"""R4 fixture: the guarded spellings of r4_bad.py."""

_EXTRA_FIELDS = ("contention_ms", "spill_bytes")


def price(scenario, summary: dict) -> dict:
    row = {"key": scenario.key}
    row["pipe_ms"] = summary["pipe_ms"]  # frozen baseline column
    if scenario.queue_depth is not None:
        row["queue_depth"] = summary["queue_depth"]
        for name in _EXTRA_FIELDS:
            row[name] = summary[name]
    if scenario.extra is not None:
        row.update(scenario.extra_columns())
    return row
