"""R1 fixture: the deterministic spellings of r1_bad.py."""
import random


def stamp_record(record: dict, generated_s: float) -> dict:
    record["generated_s"] = generated_s  # timestamps are inputs, not reads
    record["pick"] = "a"
    record["rng"] = random.Random(1234)  # seeded is fine
    return record


def ordered_fragments(ids: list) -> list:
    return [f"id={i}" for i in sorted(set(ids))]
