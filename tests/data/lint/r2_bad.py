"""R2 fixture: hand-rolled plan-key hashing outside the plan store."""
import hashlib
import json


def fast_plan_key(group_dict: dict, n: int, mode: str) -> str:
    text = json.dumps({"g": group_dict, "n": n, "m": mode})
    return hashlib.sha256(text.encode()).hexdigest()
