"""R1 fixture: wall-clock/entropy calls and unordered-set iteration."""
import os
import random
import time
from datetime import datetime


def stamp_record(record: dict) -> dict:
    record["generated_s"] = time.time()
    record["stamp"] = datetime.now().isoformat()
    record["nonce_bytes"] = os.urandom(8)
    record["pick"] = random.choice(["a", "b"])
    record["rng"] = random.Random()
    return record


def unordered_fragments(ids: list) -> list:
    return [f"id={i}" for i in set(ids)]


def wait_a_bit() -> None:
    time.sleep(0.1)
