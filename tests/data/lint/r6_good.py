"""R6 fixture: vectorized work routed through the batch engine."""
from repro.cost import price_batch


def fast_price(pairs):
    return price_batch(pairs, engine="auto")
