"""Pragma fixture: every violation here is deliberately suppressed."""
import time

# repro-lint: disable-file=R5

SUFFIXLESS_COLUMNS = True


def stamp(record: dict) -> dict:
    record["wall_s"] = time.time()  # repro-lint: disable=R1
    record["latency"] = 0.0  # file-level pragma silences R5
    return record
