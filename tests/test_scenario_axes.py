"""Tests for the hardware-aware scenario axes (PR 3).

Covers the four new axes (dataflow, frequency_ghz, native_tile,
dram_gbps), the Scenario.build() materialization path, key byte-stability
against a frozen PR 2 fixture, the uniform CLI axis parsing, and
PlanStore/PlanCache keying across the new axes.
"""

import json
import pathlib

import pytest

from repro.arch import DramBudget, NoPConfig, simba_package, \
    workload_dram_bytes
from repro.cost import nvdla_chiplet, simba_chiplet
from repro.sweep import (
    AXIS_SPECS,
    Scenario,
    ScenarioSweep,
    parse_axis,
    parse_grid_axes,
    parse_tile,
    run_scenario,
    scenario_grid,
)

FIXTURE = pathlib.Path(__file__).parent / "data" / "frozen_scenario_keys.json"
HETERO_FIXTURE = (pathlib.Path(__file__).parent / "data"
                  / "frozen_hetero_axis.json")


class TestKeyByteStability:
    def test_keys_match_frozen_pr2_fixture(self):
        payload = json.loads(FIXTURE.read_text())
        g = payload["grid"]
        grid = scenario_grid(
            tolerances=tuple(g["tolerances"]),
            nop_gbps=tuple(g["nop_gbps"]),
            npus=tuple(g["npus"]),
            workloads=tuple(g["workloads"]),
            het_ws_budgets=tuple(g["het_ws_budgets"]),
        )
        assert [s.key for s in grid] == payload["keys"]

    def test_new_axes_absent_from_default_key(self):
        key = Scenario().key
        for fragment in ("df=", "ghz=", "tile=", "dram="):
            assert fragment not in key

    def test_new_axes_appear_only_when_set(self):
        s = Scenario(dataflow="ws", frequency_ghz=1.5,
                     native_tile=(8, 8), dram_gbps=6.0)
        assert s.key.endswith("df=ws|ghz=1.5|tile=8x8|dram=6")
        # and the base prefix is the unchanged PR 2 key
        assert s.key.startswith(Scenario().key)

    def test_to_dict_is_byte_stable_at_defaults(self):
        assert set(Scenario().to_dict()) == {
            "tolerance", "nop_gbps", "npus", "workload", "het_ws_budget"}
        d = Scenario(dram_gbps=6.0, dataflow="os").to_dict()
        assert d["dram_gbps"] == 6.0
        assert d["dataflow"] == "os"
        assert "frequency_ghz" not in d

    def test_grid_defaults_expand_exactly_like_pr2(self):
        old_style = scenario_grid(tolerances=(1.0, 1.05), npus=(1, 2))
        assert len(old_style) == 4
        assert all(s.dataflow is None and s.dram_gbps is None
                   for s in old_style)


class TestScenarioValidation:
    def test_bad_axis_values_rejected(self):
        with pytest.raises(ValueError, match="dataflow"):
            Scenario(dataflow="systolic")
        with pytest.raises(ValueError, match="frequency_ghz"):
            Scenario(frequency_ghz=0.0)
        with pytest.raises(ValueError, match="native_tile"):
            Scenario(native_tile=(16,))
        with pytest.raises(ValueError, match="native_tile"):
            Scenario(native_tile=(16, 0))
        with pytest.raises(ValueError, match="dram_gbps"):
            Scenario(dram_gbps=-1.0)

    def test_native_tile_list_normalized_to_tuple(self):
        s = Scenario(native_tile=[8, 8])
        assert s.native_tile == (8, 8)
        assert hash(s)  # stays hashable after normalization

    def test_oversized_tile_fails_at_build(self):
        # 32x32 = 1024 PEs exceeds the 256-PE chiplet: the accelerator
        # config itself rejects the combination.
        with pytest.raises(ValueError, match="native"):
            Scenario(native_tile=(32, 32)).build()


class TestScenarioBuild:
    def test_default_build_matches_hand_rolled_package(self):
        built = Scenario(npus=2, nop_gbps=50.0).build()
        hand = simba_package(
            npus=2, nop=NoPConfig(bandwidth_bytes_per_s=50.0e9))
        assert built.package.name == hand.name
        assert built.package.nop == hand.nop
        assert [c.accel for c in built.package.chiplets] == \
            [c.accel for c in hand.chiplets]
        assert built.dram is None
        assert built.dram_bytes_per_frame == 0
        # the package-only accessor produces the same hardware
        solo = Scenario(npus=2, nop_gbps=50.0).package()
        assert solo.name == hand.name and solo.nop == hand.nop

    def test_axes_reach_the_package(self):
        built = Scenario(dataflow="ws", frequency_ghz=1.0,
                         native_tile=(8, 8)).build()
        accel = built.accel
        assert accel.dataflow == "ws"
        assert accel.frequency_hz == 1.0e9
        assert accel.native_tile == (8, 8)
        assert all(c.accel == accel for c in built.package.chiplets)

    def test_explicit_default_override_is_identical_hardware(self):
        # frequency_ghz=2.0 spells out the preset: same accel object
        # content, so plans (and store entries) are shared with defaults.
        assert Scenario(frequency_ghz=2.0).accel() == Scenario().accel()
        assert Scenario(dataflow="os").accel() == Scenario().accel()

    def test_dram_budget_materializes(self):
        built = Scenario(dram_gbps=6.0).build()
        assert built.dram == DramBudget(bandwidth_bytes_per_s=6.0e9)
        assert built.dram_bytes_per_frame == workload_dram_bytes(
            built.workload, built.config)

    def test_build_schedule_carries_dram(self):
        schedule = Scenario(dram_gbps=2.0).build().schedule()
        assert schedule.dram is not None
        assert schedule.dram_throttled
        assert schedule.pipe_latency_s == schedule.dram_time_s
        assert schedule.pipe_latency_s > schedule.compute_pipe_latency_s


class TestHardwareAxisRows:
    def test_dataflow_axis_moves_latency(self):
        os_row = run_scenario(Scenario())
        ws_row = run_scenario(Scenario(dataflow="ws"))
        assert ws_row["pipe_ms"] > os_row["pipe_ms"]
        assert "dataflow" not in os_row and ws_row["dataflow"] == "ws"

    def test_frequency_axis_scales_latency(self):
        # Halving the clock roughly doubles compute time; the exact
        # factor moves because scheduling thresholds (colocation, NoP
        # balance) are absolute-time quantities.
        full = run_scenario(Scenario())
        half = run_scenario(Scenario(frequency_ghz=1.0))
        assert 1.8 * full["pipe_ms"] < half["pipe_ms"] < 3.0 * full["pipe_ms"]

    def test_dram_axis_adds_columns_and_throttles(self):
        row = run_scenario(Scenario(dram_gbps=2.0))
        assert row["dram_throttled"] is True
        assert row["pipe_ms"] == pytest.approx(row["dram_ms"])
        assert row["pipe_ms"] > row["compute_pipe_ms"]
        assert row["dram_bw_util"] == pytest.approx(1.0)
        # steady-state fps below the compute-only fps: the DRAM wall
        assert 1e3 / row["pipe_ms"] < 1e3 / row["compute_pipe_ms"]
        unthrottled = run_scenario(Scenario(dram_gbps=200.0))
        assert unthrottled["dram_throttled"] is False
        assert unthrottled["pipe_ms"] == pytest.approx(
            unthrottled["compute_pipe_ms"])

    def test_default_rows_have_no_dram_columns(self):
        row = run_scenario(Scenario())
        for col in ("dram_ms", "dram_throttled", "compute_pipe_ms"):
            assert col not in row

    def test_trunk_memo_distinguishes_frequency(self):
        slow = run_scenario(Scenario(het_ws_budget=2, frequency_ghz=1.0))
        fast = run_scenario(Scenario(het_ws_budget=2))
        assert slow["trunk_pipe_ms"] != fast["trunk_pipe_ms"]


class TestAxisParsing:
    def test_parse_tile(self):
        assert parse_tile("16x16") == (16, 16)
        assert parse_tile("8X4") == (8, 4)
        with pytest.raises(ValueError):
            parse_tile("16*16")
        with pytest.raises(ValueError):
            parse_tile("16x")

    def test_parse_axis_names_the_offending_axis(self):
        with pytest.raises(ValueError, match=r"'16\*16' for axis "
                                             r"'native_tile'"):
            parse_axis("16x16,16*16", parse_tile, axis="native_tile")
        with pytest.raises(ValueError, match="'abc' for axis 'tolerance'"):
            parse_axis("1.0,abc", float, axis="tolerance")

    def test_none_sentinel_uniform_across_casts(self):
        assert parse_axis("none,16x8", parse_tile) == [None, (16, 8)]
        assert parse_axis("NONE,ws", str) == [None, "ws"]
        assert parse_axis("none,2", int) == [None, 2]

    def test_parse_grid_axes_round_trips_every_axis(self):
        kwargs = parse_grid_axes({
            "tolerance": "1.0,1.05",
            "nop_gbps": "none,25",
            "npus": "1,2",
            "workload": "default",
            "het_ws_budget": "none,2",
            "dataflow": "none,ws",
            "frequency_ghz": "none,1.5",
            "native_tile": "none,8x8",
            "dram_gbps": "none,6",
        })
        grid = scenario_grid(**kwargs)
        assert len(grid) == 2 * 2 * 2 * 1 * 2 * 2 * 2 * 2 * 2
        assert len({s.key for s in grid}) == len(grid)

    def test_parse_grid_axes_rejects_unknown_axis(self):
        with pytest.raises(ValueError, match="unknown sweep axis 'pes'"):
            parse_grid_axes({"pes": "1,2"})

    def test_parse_grid_axes_rejects_none_without_sentinel(self):
        with pytest.raises(ValueError, match="'none' for axis 'npus'"):
            parse_grid_axes({"npus": "none,2"})

    def test_axis_specs_cover_every_scenario_axis(self):
        import dataclasses
        fields = {f.name for f in dataclasses.fields(Scenario)}
        assert set(AXIS_SPECS) == fields


class TestHeteroAxis:
    """The per-quadrant hetero axis (frozen-key regression + behavior)."""

    def test_unset_hetero_is_byte_identical_to_frozen_fixture(self):
        # With hetero unset, the scenario key, the full row payload, and
        # the plan-store content hashes must match the committed PR 4
        # fixture byte for byte.
        fixture = json.loads(HETERO_FIXTURE.read_text())
        scenario = Scenario(tolerance=1.0)
        assert scenario.key == fixture["scenario_key"]
        row = run_scenario(scenario)
        assert json.dumps(row, sort_keys=True) == \
            json.dumps(fixture["row"], sort_keys=True)

        from repro.core.plancache import MODE_BEST
        from repro.core.planstore import plan_key_hash
        from repro.cost import simba_chiplet
        from repro.workloads import build_perception_workload
        wl = build_perception_workload()
        accel = simba_chiplet("os")
        for label, frozen in fixture["plan_key_hashes"].items():
            name, n = label.split("@")
            assert plan_key_hash(wl.find_group(name), int(n), accel,
                                 MODE_BEST) == frozen

    def test_any_set_override_changes_the_content_hash(self):
        from repro.core.plancache import MODE_BEST
        from repro.core.planstore import plan_key_hash
        from repro.cost import simba_chiplet
        from repro.workloads import build_perception_workload
        fixture = json.loads(HETERO_FIXTURE.read_text())
        group = build_perception_workload().find_group("S_FFN")
        accel = simba_chiplet("os")
        base = fixture["plan_key_hashes"]["S_FFN@2"]
        for hetero in ("trunk:ws", "trunk:os@2", "fe:/8x8"):
            ctx = Scenario(hetero=hetero).plan_context
            assert ctx is not None
            assert plan_key_hash(group, 2, accel, MODE_BEST, ctx) != base

    def test_hetero_absent_from_default_key_and_row(self):
        assert "hetero" not in Scenario().key
        assert "hetero" not in run_scenario(Scenario(tolerance=1.0))

    def test_hetero_key_fragment_and_canonicalization(self):
        s = Scenario(hetero="trunk:WS@1.20 + fe:os")
        assert s.hetero == "fe:os+trunk:ws@1.2"
        assert s.key.endswith("|hetero=fe:os+trunk:ws@1.2")
        assert s.key.startswith(Scenario().key)
        assert s.to_dict()["hetero"] == "fe:os+trunk:ws@1.2"

    def test_bad_hetero_token_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown dataflow"):
            Scenario(hetero="trunk:xx")
        with pytest.raises(ValueError, match="unknown quadrant"):
            Scenario(hetero="bogus:ws")

    def test_plan_context_composes_topology_and_hetero(self):
        assert Scenario().plan_context is None
        assert Scenario(topology="torus").plan_context == "torus"
        assert Scenario(hetero="trunk:ws").plan_context == "het:trunk:ws"
        assert Scenario(topology="torus", hetero="trunk:ws").plan_context \
            == "torus|het:trunk:ws"
        # an explicit mesh stays in the seed context class
        assert Scenario(topology="mesh").plan_context is None
        assert Scenario(topology="mesh", hetero="trunk:ws").plan_context \
            == "het:trunk:ws"

    def test_build_materializes_the_mixed_package(self):
        built = Scenario(hetero="trunk:ws@1.2",
                         frequency_ghz=1.0).build()
        trunk = built.package.quadrant(3)
        assert all(c.dataflow == "ws" and c.accel.frequency_hz == 1.2e9
                   for c in trunk)
        # the quadrant override layers on the package-wide axis
        assert all(c.dataflow == "os" and c.accel.frequency_hz == 1.0e9
                   for c in built.package.quadrant(0))

    def test_hetero_rows_carry_composition_and_utilization(self):
        row = run_scenario(Scenario(tolerance=1.0, hetero="trunk:ws"))
        assert row["hetero"] == "trunk:ws"
        assert row["package_composition"].endswith("trunk:ws@2")
        util = row["stage_utilization"]
        assert set(util) == {"FE_BFPN", "S_FUSE", "T_FUSE", "TRUNKS"}
        assert all(0 < u <= 1 for u in util.values())

    def test_trunk_hw_prefers_the_quadrant_override(self):
        s = Scenario(frequency_ghz=1.0, hetero="trunk:ws@1.5/8x8")
        assert s.trunk_hw() == (1.5, (8, 8))
        assert Scenario(frequency_ghz=1.0).trunk_hw() == (1.0, None)
        assert Scenario(hetero="fe:ws").trunk_hw() == (None, None)

    def test_grid_expands_hetero_innermost(self):
        grid = scenario_grid(tolerances=(1.0, 1.05),
                             heteros=(None, "trunk:ws"))
        assert [s.hetero for s in grid] == [None, "trunk:ws"] * 2
        assert len({s.key for s in grid}) == 4


class TestPlanStoreKeyingAcrossAxes:
    """Two scenarios differing only in hardware must never share plans."""

    @staticmethod
    def _cold():
        from repro.core import clear_plan_cache
        from repro.cost import clear_cache
        from repro.sweep import clear_trunk_memo
        clear_cache()
        clear_plan_cache()
        clear_trunk_memo()

    def test_key_hashes_differ_per_accel_override(self):
        from repro.core.planstore import plan_key_hash
        from repro.workloads.trunks import build_trunks
        group = build_trunks().groups[0]
        base = simba_chiplet("os")
        hashes = {
            plan_key_hash(group, 2, accel, "best")
            for accel in (
                base,
                base.with_overrides(frequency_hz=1.0e9),
                base.with_overrides(native_tile=(8, 8)),
                simba_chiplet("ws"),
                nvdla_chiplet(),
            )
        }
        assert len(hashes) == 5
        # an override equal to the default is the same hardware: same key
        assert plan_key_hash(group, 2, base, "best") == plan_key_hash(
            group, 2, base.with_overrides(frequency_hz=2.0e9), "best")

    @pytest.mark.parametrize("axis", [
        {"frequency_ghz": 1.0},
        {"dataflow": "ws"},
    ])
    def test_store_never_shares_shards_across_axis(self, axis, tmp_path):
        store = tmp_path / "store"
        base = [Scenario(tolerance=1.0)]
        varied = [Scenario(tolerance=1.0, **axis)]
        self._cold()
        first = ScenarioSweep(base, store_path=store).run()
        assert first.cache_stats.misses > 0
        # The varied scenario must be a full miss against the warm store:
        # its accel differs, so no shard can serve it.
        self._cold()
        second = ScenarioSweep(varied, store_path=store).run()
        assert second.cache_stats.misses > 0
        assert second.cache_stats.store_hits == 0
        assert second.rows_json() != first.rows_json()
        # ... and once flushed, the varied scenario warm-starts exactly.
        self._cold()
        third = ScenarioSweep(varied, store_path=store).run()
        assert third.cache_stats.misses == 0
        assert third.cache_stats.store_hits > 0
        assert third.rows_json() == second.rows_json()

    def test_dram_axis_amortizes_for_free(self, tmp_path):
        # DRAM throttling is accounting-only: a dram_gbps scenario reuses
        # the exact plans of the default scenario (same accel), so the
        # store warm-starts it with zero misses.
        store = tmp_path / "store"
        self._cold()
        ScenarioSweep([Scenario(tolerance=1.0)], store_path=store).run()
        self._cold()
        warm = ScenarioSweep([Scenario(tolerance=1.0, dram_gbps=2.0)],
                             store_path=store).run()
        assert warm.cache_stats.misses == 0
        assert warm.cache_stats.store_hits > 0
