"""Golden calibration snapshot.

Locks the headline reproduction numbers so that any change to the cost
model, the workload dimensions, or the scheduler that silently moves them
is caught immediately.  Tolerances here are tight (1%), unlike the wide
paper-shape bands in ``test_experiments.py`` — these pin *our* calibrated
values, not the paper's.

If a change intentionally moves these numbers, update both this file and
EXPERIMENTS.md.
"""

import pytest

from repro.cost import chain_latency_s, shidiannao_chiplet


class TestGoldenNumbers:
    def test_lat_base(self, schedule36):
        assert schedule36.base_latency_s * 1e3 == pytest.approx(89.24,
                                                                rel=0.01)

    def test_pipe_latency_36(self, schedule36):
        assert schedule36.pipe_latency_s * 1e3 == pytest.approx(89.24,
                                                                rel=0.01)

    def test_e2e_latency_36(self, schedule36):
        assert schedule36.e2e_latency_s * 1e3 == pytest.approx(449.4,
                                                               rel=0.01)

    def test_energy_36(self, schedule36):
        assert schedule36.energy_j == pytest.approx(0.829, rel=0.01)

    def test_utilization_36(self, schedule36):
        assert schedule36.utilization == pytest.approx(0.524, rel=0.01)

    def test_pipe_latency_72(self, schedule72):
        assert schedule72.pipe_latency_s * 1e3 == pytest.approx(46.23,
                                                                rel=0.01)

    def test_total_macs(self, workload):
        assert workload.total_macs == pytest.approx(861.3e9, rel=0.01)

    def test_single_chiplet_component_anchors(self, workload):
        accel = shidiannao_chiplet()
        anchors = {
            "S_ATTN": 20.37,
            "T_ATTN": 36.66,
            "OCC_TR": 79.07,
            "DET_TR": 18.76,
        }
        for name, expected_ms in anchors.items():
            group = workload.find_group(name)
            measured = chain_latency_s(group.layers, accel) * 1e3
            assert measured == pytest.approx(expected_ms, rel=0.01), name
