"""Edge-case tests for the dataflow mappers and cost model."""

import pytest

from repro.analysis import layer_cost_table, to_csv
from repro.cost import evaluate, map_layer
from repro.workloads import conv, dense, dwconv, matmul


class TestTinyPlanes:
    def test_plane_smaller_than_tile(self, os_accel):
        layer = conv("tiny", (3, 5), 64, 64, r=3)
        m = map_layer(layer, os_accel)
        assert m.passes == 1
        assert m.engagement == pytest.approx(15 / 256)

    def test_single_pixel_output(self, os_accel, ws_accel):
        layer = conv("pixel", (1, 1), 128, 128, r=1)
        for accel in (os_accel, ws_accel):
            cost = evaluate(layer, accel)
            assert cost.cycles > 0
            assert cost.energy_j > 0

    def test_single_output_channel(self, os_accel, ws_accel):
        layer = conv("k1", (64, 64), 1, 256, r=3)
        os_cost = evaluate(layer, os_accel)
        ws_cost = evaluate(layer, ws_accel)
        # WS wastes 15/16 of its K lanes; OS keeps the plane full.
        assert map_layer(layer, ws_accel).engagement <= 1 / 16 + 1e-9
        assert os_cost.utilization > ws_cost.utilization

    def test_single_input_channel(self, ws_accel):
        layer = conv("c1", (64, 64), 256, 1, r=3)
        m = map_layer(layer, ws_accel)
        assert m.accum_words == 0  # one C tile: no spills


class TestExtremeKernels:
    def test_large_kernel_stride(self, os_accel):
        layer = conv("stem", (180, 320), 64, 3, r=7, stride=4)
        cost = evaluate(layer, os_accel)
        assert cost.macs == 180 * 320 * 64 * 3 * 49
        assert cost.bound == "compute"

    def test_1x1_conv_equals_dense_shape(self, os_accel):
        c1 = conv("c1x1", (20, 80), 256, 300, r=1)
        d = dense("d", (20, 80), 256, 300)
        assert evaluate(c1, os_accel).cycles == evaluate(d, os_accel).cycles

    def test_wide_depthwise(self, os_accel, ws_accel):
        layer = dwconv("dw", (8, 8), 1024, r=3)
        for accel in (os_accel, ws_accel):
            cost = evaluate(layer, accel)
            assert cost.macs == 64 * 1024 * 9
            assert cost.cycles >= cost.macs // accel.native_pes


class TestMatmulSemantics:
    def test_matmul_never_pays_dram(self, os_accel):
        layer = matmul("scores", (200, 80), 4096, 64)
        assert evaluate(layer, os_accel).dram_words == 0

    def test_huge_window_scores(self, os_accel):
        layer = matmul("scores", (200, 80), 16000, 384)
        cost = evaluate(layer, os_accel)
        assert cost.macs == 16000 * 384 * 16000
        assert 0 < cost.utilization <= 1


class TestLayerCostTable:
    def test_table_covers_all_layers(self, workload, os_accel):
        rows = layer_cost_table(workload, os_accel)
        assert len(rows) == len(workload.all_layers())

    def test_compute_only_filter(self, workload, os_accel):
        all_rows = layer_cost_table(workload, os_accel)
        compute = layer_cost_table(workload, os_accel, compute_only=True)
        assert len(compute) < len(all_rows)
        assert all(r["macs"] > 0 for r in compute)

    def test_csv_round_trip_lines(self, workload, os_accel):
        rows = layer_cost_table(workload, os_accel, compute_only=True)
        text = to_csv(rows)
        lines = text.splitlines()
        assert len(lines) == len(rows) + 1
        assert lines[0].startswith("stage,group,layer")

    def test_csv_empty(self):
        assert to_csv([]) == ""
