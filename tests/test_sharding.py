"""Unit tests for sharding transforms and group planning."""

import pytest

from repro.core.sharding import (
    MODE_INSTANCES,
    MODE_PIPELINE,
    MODE_ROWS,
    MODE_SINGLE,
    _balanced_segments,
    max_row_shards,
    next_shard_step,
    plan_group,
    split_plane,
)
from repro.cost import chain_latency_s
from repro.workloads import conv, dense
from repro.workloads.graph import LayerGroup


def _group(instances=1, rows=True, pipeline=False, layers=None):
    layers = layers or (dense("l0", (40, 80), 128, 128),
                        dense("l1", (40, 80), 128, 128))
    return LayerGroup(name="g", layers=tuple(layers), stage="S",
                      instances=instances, row_shardable=rows,
                      pipeline_splittable=pipeline)


class TestSplitPlane:
    def test_2d_splits_rows(self):
        layer = conv("c", (20, 80), 64, 64)
        parts = [split_plane(layer, 4, i) for i in range(4)]
        assert sum(p.out_h for p in parts) == 20

    def test_1d_splits_tokens(self):
        layer = dense("d", (1, 1000), 64, 64)
        parts = [split_plane(layer, 3, i) for i in range(3)]
        assert sum(p.out_w for p in parts) == 1000
        assert all(p.out_h == 1 for p in parts)

    def test_rejects_oversplit(self):
        with pytest.raises(ValueError):
            split_plane(dense("d", (1, 4), 8, 8), 5, 0)


class TestBalancedSegments:
    def test_two_way_split_balances(self):
        bounds = _balanced_segments([1.0, 1.0, 1.0, 1.0], 2)
        assert bounds == [0, 2]

    def test_heavy_tail_isolated(self):
        # A dominant last layer should sit alone in its segment.
        bounds = _balanced_segments([1.0, 1.0, 1.0, 10.0], 2)
        assert bounds == [0, 3]

    def test_matches_bruteforce_minmax(self):
        import itertools
        lats = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0]
        k = 3
        bounds = _balanced_segments(lats, k)
        segs = [sum(lats[a:b]) for a, b in
                zip(bounds, bounds[1:] + [len(lats)])]
        best = min(
            max(sum(lats[a:b]) for a, b in
                zip((0,) + cuts, cuts + (len(lats),)))
            for cuts in itertools.combinations(range(1, len(lats)), k - 1))
        assert max(segs) == pytest.approx(best)

    def test_always_k_nonempty_segments_at_optimal_minmax(self):
        # The binary search must deliver exactly k non-empty segments
        # whose max equals the brute-force optimum on random chains.
        import itertools
        import random
        rng = random.Random(7)
        for trial in range(25):
            n = rng.randint(2, 9)
            lats = [rng.uniform(0.1, 10.0) for _ in range(n)]
            k = rng.randint(1, n)
            bounds = _balanced_segments(lats, k)
            assert bounds[0] == 0 and len(bounds) == k
            assert bounds == sorted(set(bounds))
            segs = [sum(lats[a:b]) for a, b in
                    zip(bounds, bounds[1:] + [n])]
            assert all(s > 0 for s in segs)
            best = min(
                max(sum(lats[a:b]) for a, b in
                    zip((0,) + cuts, cuts + (n,)))
                for cuts in itertools.combinations(range(1, n), k - 1))
            assert max(segs) == pytest.approx(best, rel=1e-12)

    def test_degenerate_k(self):
        assert _balanced_segments([2.0, 3.0], 1) == [0]
        assert _balanced_segments([2.0, 3.0, 4.0], 3) == [0, 1, 2]
        assert _balanced_segments([2.0], 5) == [0]


class TestPlanGroup:
    def test_single_plan(self, os_accel):
        g = _group()
        plan = plan_group(g, 1, os_accel)
        assert plan.mode == MODE_SINGLE
        assert plan.span_s == pytest.approx(
            chain_latency_s(g.layers, os_accel))

    def test_instances_distribution(self, os_accel):
        g = _group(instances=8)
        plan = plan_group(g, 3, os_accel)
        assert plan.mode == MODE_INSTANCES
        per = chain_latency_s(g.layers, os_accel)
        assert plan.per_chiplet_busy == pytest.approx(
            (3 * per, 3 * per, 2 * per))
        assert plan.pipe_latency_s == pytest.approx(3 * per)

    def test_rows_reduce_pipe_sublinearly(self, os_accel):
        g = _group()
        single = plan_group(g, 1, os_accel)
        rows = plan_group(g, 4, os_accel)
        assert rows.mode == MODE_ROWS
        assert rows.pipe_latency_s < single.pipe_latency_s
        # Quantization makes the speedup sub-linear, never super-linear.
        assert rows.pipe_latency_s >= single.pipe_latency_s / 4 - 1e-12

    def test_pipeline_plan_span_equals_chain(self, os_accel):
        g = _group(rows=False, pipeline=True)
        plan = plan_group(g, 2, os_accel)
        assert plan.mode == MODE_PIPELINE
        assert plan.segments == 2
        assert plan.span_s == pytest.approx(
            chain_latency_s(g.layers, os_accel))
        assert plan.pipe_latency_s < plan.span_s

    def test_pipeline_with_instances_multiplies_chiplets(self, os_accel):
        g = _group(instances=4, rows=False, pipeline=True)
        assert plan_group(g, 8, os_accel).segments == 2
        assert plan_group(g, 6, os_accel) is None  # 6 % 4 != 0

    def test_macs_preserved_by_every_mode(self, os_accel):
        for g, n in ((_group(), 4), (_group(instances=8), 4),
                     (_group(rows=False, pipeline=True), 2)):
            plan = plan_group(g, n, os_accel)
            assert plan.macs == g.total_macs

    def test_infeasible_n_returns_none(self, os_accel):
        g = _group(instances=1, rows=False, pipeline=False)
        assert plan_group(g, 2, os_accel) is None

    def test_max_row_shards_bounded_by_narrowest_layer(self):
        g = _group(layers=(dense("a", (40, 80), 8, 8),
                           dense("b", (10, 80), 8, 8)))
        assert max_row_shards(g) == 10


class TestRowPlanFastPath:
    """_plan_rows prices <= 2 band shapes per layer, not all n chains."""

    def _reference_rows_plan(self, group, n, accel):
        """The seed implementation: price every shard chain."""
        from repro.cost import chain_energy_j, chain_latency_s
        busy = []
        energy = 0.0
        for idx in range(n):
            shard = [split_plane(l, n, idx) for l in group.layers]
            busy.append(chain_latency_s(shard, accel))
            energy += chain_energy_j(shard, accel)
        return tuple(busy), energy

    def test_plans_numerically_identical_to_seed(self, os_accel):
        from repro.core.sharding import _plan_rows
        groups = [
            _group(),
            _group(layers=(dense("t", (1, 1000), 64, 64),)),  # 1D tokens
            _group(layers=(conv("c", (37, 80), 64, 64),
                           dense("d", (10, 80), 32, 32))),
        ]
        for g in groups:
            for n in (2, 3, 5, 7):
                if n > max_row_shards(g):
                    continue
                plan = _plan_rows(g, n, os_accel)
                busy, energy = self._reference_rows_plan(g, n, os_accel)
                assert plan.per_chiplet_busy == busy  # bit-exact
                assert plan.energy_j == energy
                assert plan.span_s == max(busy)

    def test_chain_pricings_constant_in_n(self, os_accel, monkeypatch):
        from repro.core import sharding as sharding_mod
        g = _group(layers=(dense("a", (40, 80), 64, 64),
                           dense("b", (40, 80), 64, 64)))
        counts = {"calls": 0}
        real_evaluate = sharding_mod.evaluate

        def counting_evaluate(layer, accel):
            counts["calls"] += 1
            return real_evaluate(layer, accel)

        monkeypatch.setattr(sharding_mod, "evaluate", counting_evaluate)
        calls_per_n = {}
        for n in (4, 13, 37):
            counts["calls"] = 0
            sharding_mod._plan_rows(g, n, os_accel)
            calls_per_n[n] = counts["calls"]
        # <= 2 pricings per layer, independent of the shard count (an
        # even split needs just one band shape per layer).
        assert all(c <= 2 * len(g.layers) for c in calls_per_n.values())
        assert calls_per_n[4] == 1 * len(g.layers)   # 40 % 4 == 0
        assert calls_per_n[13] == calls_per_n[37] == 2 * len(g.layers)


class TestNextShardStep:
    def test_skips_useless_chiplet_counts(self, os_accel):
        # 8 instances on 4 chiplets = 2 each; 5..7 chiplets change nothing,
        # the next useful step is 8.
        g = _group(instances=8)
        plan = next_shard_step(g, 4, 8, os_accel)
        assert plan is not None
        assert plan.n_chiplets == 8

    def test_respects_budget(self, os_accel):
        g = _group(instances=8)
        assert next_shard_step(g, 4, 7, os_accel) is None

    def test_unshardable_returns_none(self, os_accel):
        g = _group(instances=1, rows=False, pipeline=False)
        assert next_shard_step(g, 1, 9, os_accel) is None
