"""Self-tests for repro-lint (rules R1-R6, pragmas, CLI, repo cleanliness).

The per-rule behavior is locked by good/bad fixture pairs under
``tests/data/lint/``; the R3 axis-coherence check is additionally proven
*live* by doctoring the real source surfaces (removing an ``AXIS_SPECS``
entry must make it fire).  The whole-repo clean run is the gate CI
enforces via ``chiplet-npu lint``.
"""

from __future__ import annotations

import json
import re

import pytest

from repro.devtools import (
    RULES,
    check_axis_coherence,
    run_lint,
    scan_pragmas,
)
from repro.devtools.runner import (
    find_repo_root,
    load_frozen_columns,
    main,
    render_text,
)

ROOT = find_repo_root()
LINT_DIR = ROOT / "tests" / "data" / "lint"


def lint_fixture(name: str):
    diags, checked = run_lint([str(LINT_DIR / name)], root=ROOT)
    assert checked == 1
    return diags


def rules_of(diags) -> set:
    return {d.rule for d in diags}


# ----------------------------------------------------------------------
# The repo itself is clean
# ----------------------------------------------------------------------

class TestRepoClean:
    def test_whole_repo_clean(self):
        diags, checked = run_lint(root=ROOT)
        assert diags == [], "\n".join(d.format() for d in diags)
        assert checked >= 60  # every module under src/repro

    def test_rule_registry(self):
        assert set(RULES) == {"R1", "R2", "R3", "R4", "R5", "R6"}

    def test_frozen_columns_loaded(self):
        frozen = load_frozen_columns(ROOT)
        # The baseline columns every default sweep row carries.
        assert {"key", "pipe_ms", "e2e_ms", "energy_j",
                "tolerance"} <= frozen
        # Axis-gated columns must NOT be in the baseline.
        assert "dram_throttled" not in frozen
        assert "nop_avg_hops" not in frozen


# ----------------------------------------------------------------------
# Per-rule fixtures
# ----------------------------------------------------------------------

class TestRuleFixtures:
    @pytest.mark.parametrize("name,rule", [
        ("r1_bad.py", "R1"), ("r2_bad.py", "R2"),
        ("r4_bad.py", "R4"), ("r5_bad.py", "R5"),
        ("r6_bad.py", "R6"),
    ])
    def test_bad_fixture_flags_only_its_rule(self, name, rule):
        diags = lint_fixture(name)
        assert diags, f"{name} produced no diagnostics"
        assert rules_of(diags) == {rule}
        for diag in diags:
            assert diag.line > 0
            assert name in diag.path
            # file:line plus the rule ID, the CI-visible contract.
            assert re.match(rf"^\S*{re.escape(name)}:\d+:\d+: {rule} ",
                            diag.format())

    @pytest.mark.parametrize("name", [
        "r1_good.py", "r2_good.py", "r4_good.py", "r5_good.py",
        "r6_good.py",
    ])
    def test_good_fixture_clean(self, name):
        assert lint_fixture(name) == []

    def test_r1_catches_each_call_family(self):
        messages = "\n".join(d.message for d in lint_fixture("r1_bad.py"))
        for fragment in ("time.time", "time.sleep", "datetime.now",
                         "os.urandom", "random.choice",
                         "unseeded random.Random", "unordered set"):
            assert fragment in messages

    def test_r4_catches_loop_and_dynamic_update(self):
        messages = "\n".join(d.message for d in lint_fixture("r4_bad.py"))
        assert "'contention_ms'" in messages  # via module-level tuple
        assert "dynamic row.update" in messages

    def test_r5_names_the_suffix_vocabulary(self):
        messages = "\n".join(d.message for d in lint_fixture("r5_bad.py"))
        assert "'latency'" in messages and "'energy'" in messages
        assert "_ms" in messages and "_j" in messages

    def test_r6_catches_every_import_form(self):
        diags = lint_fixture("r6_bad.py")
        messages = "\n".join(d.message for d in diags)
        # plain import, dotted-submodule import, and from-import
        assert len(diags) == 3
        assert "numpy.linalg" in messages
        assert "cost/batch.py" in messages

    def test_r6_sanctioned_module_is_exempt(self):
        batch = ROOT / "src" / "repro" / "cost" / "batch.py"
        diags, _ = run_lint([str(batch)], root=ROOT)
        assert not [d for d in diags if d.rule == "R6"]


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------

class TestPragmas:
    def test_pragma_fixture_fully_suppressed(self):
        assert lint_fixture("pragmas.py") == []

    def test_line_pragma_scopes_one_line(self):
        src = ("import time\n"
               "a = time.time()  # repro-lint: disable=R1\n"
               "b = time.time()\n")
        sup = scan_pragmas(src)
        assert sup.is_suppressed("R1", 2)
        assert not sup.is_suppressed("R1", 3)
        assert not sup.is_suppressed("R2", 2)

    def test_file_pragma_and_rule_lists(self):
        sup = scan_pragmas("# repro-lint: disable-file=R1, R5\n")
        assert sup.is_suppressed("R1", 99)
        assert sup.is_suppressed("R5", 1)
        assert not sup.is_suppressed("R4", 1)

    def test_pragma_in_string_literal_is_inert(self):
        sup = scan_pragmas('x = "# repro-lint: disable-file=R1"\n')
        assert not sup.is_suppressed("R1", 1)


# ----------------------------------------------------------------------
# R3 axis coherence
# ----------------------------------------------------------------------

class TestAxisCoherence:
    @pytest.fixture()
    def surfaces(self):
        return (
            (ROOT / "src/repro/sweep/scenario.py").read_text(),
            (ROOT / "src/repro/cli.py").read_text(),
            (ROOT / "docs/SWEEP.md").read_text(),
        )

    def test_real_tree_coherent(self, surfaces):
        assert check_axis_coherence(*surfaces) == []

    def test_fires_when_axis_specs_entry_removed(self, surfaces):
        scenario_src, cli_src, docs = surfaces
        doctored = re.sub(r'    "topology": AxisSpec\(.*?\),\n', "",
                          scenario_src, flags=re.S)
        assert doctored != scenario_src
        diags = check_axis_coherence(doctored, cli_src, docs)
        assert any(d.rule == "R3" and "'topology'" in d.message
                   and "AXIS_SPECS" in d.message for d in diags)

    def test_fires_when_cli_flag_dropped(self, surfaces):
        scenario_src, cli_src, docs = surfaces
        doctored = cli_src.replace('        "hetero": args.hetero,\n', "")
        assert doctored != cli_src
        diags = check_axis_coherence(scenario_src, doctored, docs)
        assert any(d.rule == "R3" and "'hetero'" in d.message
                   and "unreachable" in d.message for d in diags)

    def test_fires_on_stale_docs_row(self, surfaces):
        scenario_src, cli_src, docs = surfaces
        stale = docs.replace(
            "| `--tolerances` |",
            "| `--retired-axis` | gone | `none` | stale |\n"
            "| `--tolerances` |")
        diags = check_axis_coherence(scenario_src, cli_src, stale)
        assert any(d.rule == "R3" and "--retired-axis" in d.message
                   for d in diags)

    def test_fires_when_docs_row_removed(self, surfaces):
        scenario_src, cli_src, docs = surfaces
        pruned = "\n".join(line for line in docs.splitlines()
                           if not line.startswith("| `--topologies`"))
        diags = check_axis_coherence(scenario_src, cli_src, pruned)
        assert any(d.rule == "R3" and "--topologies" in d.message
                   and "docs" in d.message for d in diags)

    def test_fires_on_undocumented_execution_flag(self, surfaces):
        # The widened check: *every* sweep-parser flag needs a docs
        # table row, not just the axis flags.
        scenario_src, cli_src, docs = surfaces
        pruned = "\n".join(line for line in docs.splitlines()
                           if not line.startswith("| `--stream`"))
        diags = check_axis_coherence(scenario_src, cli_src, pruned)
        assert any(d.rule == "R3" and "--stream" in d.message
                   and "documents" in d.message for d in diags)

    @pytest.fixture()
    def design_docs(self):
        return (ROOT / "docs/DESIGN.md").read_text()

    def test_real_tree_design_surface_coherent(self, surfaces,
                                               design_docs):
        assert check_axis_coherence(
            *surfaces, design_docs_text=design_docs) == []

    def test_design_checks_skipped_without_docs(self, surfaces):
        # The 3-surface call (the pre-design contract) stays valid:
        # design coherence only runs when its docs surface is supplied.
        scenario_src, cli_src, docs = surfaces
        doctored = cli_src.replace("_run_design", "_run_redesign")
        assert check_axis_coherence(scenario_src, doctored, docs) == []

    def test_fires_when_design_axis_dropped(self, surfaces, design_docs):
        scenario_src, cli_src, docs = surfaces
        # Strip hetero only from _run_design's axis-texts dict: anchor
        # the search past the function's def so _grid_kwargs and the
        # scaling report keep theirs.
        needle = '        "hetero": args.hetero,\n'
        start = cli_src.index("def _run_design")
        pos = cli_src.index(needle, start)
        doctored = cli_src[:pos] + cli_src[pos + len(needle):]
        diags = check_axis_coherence(scenario_src, doctored, docs,
                                     design_docs_text=design_docs)
        assert any(d.rule == "R3" and "'hetero'" in d.message
                   and "design CLI" in d.message for d in diags)

    def test_fires_when_design_docs_row_removed(self, surfaces,
                                                design_docs):
        scenario_src, cli_src, docs = surfaces
        pruned = "\n".join(line for line in design_docs.splitlines()
                           if not line.startswith("| `--target-pipe-ms`"))
        diags = check_axis_coherence(scenario_src, cli_src, docs,
                                     design_docs_text=pruned)
        assert any(d.rule == "R3" and "--target-pipe-ms" in d.message
                   and "DESIGN.md" in d.message for d in diags)

    def test_fires_on_stale_design_docs_row(self, surfaces, design_docs):
        scenario_src, cli_src, docs = surfaces
        stale = design_docs.replace(
            "| `--target-pipe-ms` |",
            "| `--retired-knob` | gone | off | stale |\n"
            "| `--target-pipe-ms` |")
        diags = check_axis_coherence(scenario_src, cli_src, docs,
                                     design_docs_text=stale)
        assert any(d.rule == "R3" and "--retired-knob" in d.message
                   for d in diags)


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------

class TestCli:
    def test_repo_run_exits_zero(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "repro-lint: 0 issues" in out

    def test_bad_fixture_exits_nonzero_with_location(self, capsys):
        assert main([str(LINT_DIR / "r2_bad.py")]) == 1
        out = capsys.readouterr().out
        assert re.search(r"r2_bad\.py:\d+:\d+: R2 ", out)

    def test_json_report_artifact(self, tmp_path, capsys):
        report_path = tmp_path / "replint.json"
        code = main([str(LINT_DIR / "r1_bad.py"), "--json",
                     "--output", str(report_path)])
        assert code == 1
        document = json.loads(report_path.read_text())
        assert document == json.loads(capsys.readouterr().out)
        assert document["checked_files"] == 1
        assert {issue["rule"] for issue in document["issues"]} == {"R1"}
        assert set(document["rules"]) == set(RULES)

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert f"{rule}: " in out

    def test_text_summary_wording(self):
        text = render_text([], 7)
        assert "0 issues (7 files checked" in text

    def test_chiplet_npu_dispatch(self, capsys):
        from repro.cli import main as cli_main
        assert cli_main(["lint"]) == 0
        assert "repro-lint: 0 issues" in capsys.readouterr().out
