"""Algorithm 1 behaviour on controlled synthetic workloads.

The real perception pipeline exercises the matcher end to end; these tests
pin the *mechanics* — base-latency selection, stage-local matching, budget
exhaustion, colocation, and surplus absorption — on workloads small enough
to verify by hand.
"""

import pytest

from repro.arch import simba_package
from repro.core import ThroughputMatcher
from repro.cost import chain_latency_s, shidiannao_chiplet
from repro.workloads import dense
from repro.workloads.graph import LayerGroup, PerceptionWorkload, Stage


def _dense_ms(target_ms: float) -> dense:
    """A dense layer whose OS single-chiplet latency is ~target_ms.

    The token-plane height is scaled to hit the requested latency, which
    keeps the layer compute-bound and row-shardable to fine granularity.
    """
    accel = shidiannao_chiplet()
    base = dense("probe", (16, 256), 256, 256)
    base_ms = chain_latency_s([base], accel) * 1e3
    rows = max(16, 16 * round(target_ms / base_ms))
    return dense(f"unit{target_ms}", (rows, 256), 256, 256)


def _make_workload(spec) -> PerceptionWorkload:
    """spec: list of (stage, [(name, ms, instances, row_shardable)])."""
    stages = []
    for stage_name, groups in spec:
        stage = Stage(stage_name)
        for name, ms, instances, rows in groups:
            stage.add(LayerGroup(
                name=name,
                layers=(_dense_ms(ms),),
                stage=stage_name,
                instances=instances,
                row_shardable=rows,
            ))
        stages.append(stage)
    return PerceptionWorkload(stages=stages)


class TestBaseLatency:
    def test_base_comes_from_first_stage(self):
        wl = _make_workload([
            ("A", [("a", 50.0, 4, False)]),
            ("B", [("b", 20.0, 1, True)]),
        ])
        schedule = ThroughputMatcher(wl, simba_package()).run()
        a_pipe = schedule.groups["a"].plan.pipe_latency_s * 1e3
        assert schedule.base_latency_s * 1e3 == pytest.approx(a_pipe)

    def test_first_stage_gets_one_chiplet_per_instance(self):
        wl = _make_workload([
            ("A", [("a", 50.0, 7, False)]),
            ("B", [("b", 20.0, 1, True)]),
        ])
        schedule = ThroughputMatcher(wl, simba_package()).run()
        assert schedule.groups["a"].plan.n_chiplets == 7


class TestMatchingPhase:
    def test_bottleneck_sharded_to_target(self):
        # Stage B is 6x over the base: needs >= 6 row shards.
        wl = _make_workload([
            ("A", [("a", 50.0, 1, False)]),
            ("B", [("b", 300.0, 1, True)]),
        ])
        schedule = ThroughputMatcher(wl, simba_package(),
                                     tolerance=1.05).run()
        plan = schedule.groups["b"].plan
        assert plan.pipe_latency_s <= 1.06 * schedule.base_latency_s
        assert plan.n_chiplets >= 6

    def test_budget_exhaustion_stops_matching(self):
        # 20x over base cannot be matched inside a 9-chiplet quadrant:
        # the matcher must stop at the budget, not loop forever.
        wl = _make_workload([
            ("A", [("a", 20.0, 1, False)]),
            ("B", [("b", 400.0, 1, True)]),
        ])
        schedule = ThroughputMatcher(wl, simba_package()).run()
        assert schedule.groups["b"].plan.n_chiplets == 9
        assert schedule.pipe_latency_s > schedule.base_latency_s

    def test_instances_capped_at_count(self):
        wl = _make_workload([
            ("A", [("a", 30.0, 1, False)]),
            ("B", [("b", 60.0, 3, False)]),  # not row shardable
        ])
        schedule = ThroughputMatcher(wl, simba_package()).run()
        # 3 instances max 3 chiplets, leaving per-chiplet 60 ms > base.
        assert schedule.groups["b"].plan.n_chiplets == 3
        assert schedule.pipe_latency_s * 1e3 == pytest.approx(60.0,
                                                              rel=0.06)


class TestColocation:
    def test_tiny_group_rides_consumer(self):
        wl = _make_workload([
            ("A", [("a", 30.0, 1, False)]),
            ("B", [("tiny", 1.0, 1, False), ("big", 30.0, 1, True)]),
        ])
        # Make 'big' depend on 'tiny' so it qualifies as a consumer host.
        stage_b = wl.stage("B")
        big = stage_b.group("big")
        stage_b.replace_group(
            LayerGroup(name="big", layers=big.layers, stage="B",
                       row_shardable=True, depends_on=("tiny",)))
        schedule = ThroughputMatcher(wl, simba_package()).run()
        assert schedule.groups["tiny"].host == "big"
        assert schedule.chiplets_of("tiny") == \
            schedule.groups["big"].chiplet_ids[:1]


class TestAbsorption:
    def test_surplus_spent_on_stage_bottleneck(self):
        wl = _make_workload([
            ("A", [("a", 80.0, 1, False)]),
            ("B", [("b", 60.0, 1, True)]),
        ])
        schedule = ThroughputMatcher(wl, simba_package()).run()
        # B met the target at n=1 but the quadrant has 9 chiplets; the
        # absorb phase should still spread it out.
        assert schedule.groups["b"].plan.n_chiplets > 1

    def test_two_stage_workload_uses_two_quadrants(self):
        wl = _make_workload([
            ("A", [("a", 40.0, 2, False)]),
            ("B", [("b", 40.0, 1, True)]),
        ])
        schedule = ThroughputMatcher(wl, simba_package()).run()
        quads_a = {simba_package().chiplet(c).quadrant
                   for c in schedule.groups["a"].chiplet_ids}
        quads_b = {simba_package().chiplet(c).quadrant
                   for c in schedule.groups["b"].chiplet_ids}
        assert quads_a == {0}
        assert quads_b == {1}
