"""Batch pricing (repro.cost.batch) and delta-sweeps: exactness locks.

Two contracts from the ISSUE are locked here:

* ``price_batch()`` — on **both** engines — returns ``LayerCost``
  records exactly equal to scalar ``evaluate()``: field-for-field on
  randomized layers/accels (hypothesis), and byte-for-byte against the
  frozen fixture ``tests/data/frozen_pricing.json``.
* ``ScenarioSweep.run_delta()`` re-prices only the scenarios whose
  content fingerprint moved — zero for an unchanged grid — and its
  merged output is byte-identical to a cold full run.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import (
    HAVE_NUMPY,
    PricingRequest,
    clear_cache,
    evaluate,
    eyeriss_chiplet,
    monolithic,
    nvdla_chiplet,
    price_batch,
    price_chain,
    seed_pairs,
    shidiannao_chiplet,
)
from repro.cost.batch import scenario_pairs
from repro.sweep.journal import SweepJournal
from repro.sweep.runner import ScenarioSweep, scenario_fingerprint
from repro.sweep.scenario import scenario_grid
from repro.workloads import (
    concat,
    conv,
    deconv,
    dense,
    dwconv,
    eltwise,
    matmul,
    move,
    pool,
    softmax,
)

FIXTURE = pathlib.Path(__file__).parent / "data" / "frozen_pricing.json"


def fixture_layers():
    """One layer per operator class, shaped to hit every mapper branch."""
    return [
        conv("conv3", (56, 56), 64, 32, r=3),
        conv("conv1", (28, 28), 128, 64, r=1, s=1),
        conv("convs2", (28, 28), 96, 48, r=3, stride=2),
        conv("tokens", (1, 197), 768, 768, r=1, s=1),
        dwconv("dw", (28, 28), 96, r=3),
        deconv("up", (56, 56), 32, 64, r=4, stride=2),
        dense("fc", (1, 197), 768, 768),
        matmul("attn", (1, 197), 197, 64),
        softmax("sm", (1, 197), 197),
        pool("pool", (28, 28), 64),
        eltwise("add", (56, 56), 64),
        concat("cat", (28, 28), 192),
        move("lift", (32, 88), 80),
    ]


def fixture_accels():
    """Labeled candidate configs spanning every dataflow and override."""
    return [
        ("os-256", shidiannao_chiplet()),
        ("ws-256", nvdla_chiplet()),
        ("rs-256", eyeriss_chiplet()),
        ("mono-9216", monolithic(9216)),
        ("os-1.5ghz-8x32", shidiannao_chiplet().with_overrides(
            frequency_hz=1.5e9, native_tile=(8, 32))),
        ("ws-0.8ghz-32x8", nvdla_chiplet().with_overrides(
            frequency_hz=0.8e9, native_tile=(32, 8))),
    ]


def fixture_pairs():
    layers = fixture_layers()
    return [(label, layer, accel)
            for label, accel in fixture_accels() for layer in layers]


def cost_dict(cost) -> dict:
    return dataclasses.asdict(cost)


def fixture_doc(costs) -> str:
    """Canonical fixture serialization for a list of per-pair costs."""
    entries = [
        {"accel": label, "layer": layer.name, "cost": cost_dict(cost)}
        for (label, layer, _), cost in zip(fixture_pairs(), costs)
    ]
    return json.dumps({"entries": entries}, indent=2, sort_keys=True) + "\n"


def engines():
    """The engines under test (numpy only where available)."""
    return ("scalar", "numpy") if HAVE_NUMPY else ("scalar",)


# ----------------------------------------------------------------------
# Frozen fixture: byte-for-byte against both engines and the scalar path
# ----------------------------------------------------------------------

class TestFrozenFixture:
    def test_fixture_exists(self):
        assert FIXTURE.is_file(), (
            "regenerate via fixture_doc() over scalar evaluate() — see "
            "docs/PRICING.md")

    def test_scalar_evaluate_matches_fixture(self):
        clear_cache()
        costs = [evaluate(layer, accel)
                 for _, layer, accel in fixture_pairs()]
        assert fixture_doc(costs) == FIXTURE.read_text()

    @pytest.mark.parametrize("engine", engines())
    def test_price_batch_matches_fixture(self, engine):
        pairs = [(layer, accel) for _, layer, accel in fixture_pairs()]
        priced = price_batch(pairs, engine=engine)
        costs = [priced[pair] for pair in pairs]
        assert fixture_doc(costs) == FIXTURE.read_text()


# ----------------------------------------------------------------------
# Property tests: batch == scalar, field for field, both engines
# ----------------------------------------------------------------------

dims = st.integers(min_value=1, max_value=48)
planes = st.integers(min_value=1, max_value=220)
kernels = st.sampled_from([1, 3, 5, 7])
strides = st.sampled_from([1, 2])


@st.composite
def any_layer(draw):
    kind = draw(st.sampled_from(
        ["conv", "dwconv", "deconv", "dense", "matmul",
         "softmax", "pool", "eltwise", "concat", "move"]))
    hw = (draw(planes), draw(planes))
    k = draw(dims) * draw(st.sampled_from([1, 4, 16]))
    if kind == "conv":
        return conv("L", hw, k, draw(dims), r=draw(kernels),
                    stride=draw(strides))
    if kind == "dwconv":
        return dwconv("L", hw, k, r=draw(kernels), stride=draw(strides))
    if kind == "deconv":
        return deconv("L", hw, k, draw(dims), r=draw(kernels))
    if kind == "dense":
        return dense("L", hw, k, draw(dims) * 4)
    if kind == "matmul":
        return matmul("L", hw, k, draw(dims) * 4)
    if kind == "softmax":
        return softmax("L", hw, k)
    if kind == "pool":
        return pool("L", hw, k, r=draw(kernels), stride=draw(strides))
    if kind == "eltwise":
        return eltwise("L", hw, k)
    if kind == "concat":
        return concat("L", hw, k)
    return move("L", hw, k)


@st.composite
def any_accel(draw):
    base = draw(st.sampled_from([
        shidiannao_chiplet(), nvdla_chiplet(), eyeriss_chiplet(),
        monolithic(9216),
    ]))
    freq = draw(st.sampled_from([None, 0.5e9, 1.5e9, 2.4e9]))
    tile = draw(st.sampled_from([None, (8, 32), (32, 8), (4, 64)]))
    if freq is None and tile is None:
        return base
    return base.with_overrides(frequency_hz=freq, native_tile=tile)


class TestBatchEqualsScalar:
    @given(layer=any_layer(), accel=any_accel())
    @settings(max_examples=150, deadline=None)
    def test_single_pair_both_engines(self, layer, accel):
        expected = evaluate(layer, accel)
        for engine in engines():
            got = price_batch([(layer, accel)], engine=engine)[
                (layer, accel)]
            # Dataclass equality compares every field with ==; the
            # asdict comparison reports *which* field diverged on
            # failure (and catches a -0.0 vs 0.0 flip via repr).
            assert cost_dict(got) == cost_dict(expected)
            assert repr(cost_dict(got)) == repr(cost_dict(expected))
            assert got == expected

    @given(layers=st.lists(any_layer(), min_size=1, max_size=12),
           accels=st.lists(any_accel(), min_size=1, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_matrix_both_engines(self, layers, accels):
        pairs = [(layer, accel) for accel in accels for layer in layers]
        expected = {pair: evaluate(*pair) for pair in pairs}
        for engine in engines():
            priced = price_batch(pairs, engine=engine)
            assert set(priced) == set(expected)
            for pair, got in priced.items():
                assert cost_dict(got) == cost_dict(expected[pair])


# ----------------------------------------------------------------------
# Request extraction and memo seeding
# ----------------------------------------------------------------------

class TestRequestAndSeeding:
    def test_request_dedupes_in_first_seen_order(self):
        layer_a, layer_b = conv("a", (8, 8), 16, 8), conv("b", (8, 8), 16, 8)
        accel = shidiannao_chiplet()
        request = PricingRequest.from_pairs(
            [(layer_a, accel), (layer_b, accel), (layer_a, accel)])
        assert request.pairs == ((layer_a, accel), (layer_b, accel))
        assert len(request) == 2

    def test_from_scenarios_collects_distinct_pairs(self):
        grid = scenario_grid(tolerances=[1.05, 1.2])
        request = PricingRequest.from_scenarios(grid)
        # Both scenarios build the same workload/package, so the pair
        # set is exactly one scenario's worth, fully deduplicated.
        single = scenario_pairs(grid[0])
        assert request.pairs == tuple(dict.fromkeys(single))
        assert len(set(request.pairs)) == len(request)

    def test_seed_pairs_turns_evaluate_into_hits(self):
        clear_cache()
        layers = fixture_layers()
        accel = nvdla_chiplet()
        inserted = seed_pairs((layer, accel) for layer in layers)
        assert inserted == len(layers)
        info = evaluate.cache_info()
        assert info.seeded == len(layers)
        assert info.misses == 0
        for layer in layers:
            assert evaluate(layer, accel) == price_batch(
                [(layer, accel)], engine="scalar")[(layer, accel)]
        info = evaluate.cache_info()
        assert info.hits == len(layers)
        assert info.misses == 0
        # Idempotent: nothing left to seed.
        assert seed_pairs((layer, accel) for layer in layers) == 0
        assert price_chain(layers, accel) == 0
        clear_cache()

    def test_engine_validation(self):
        pair = (conv("v", (8, 8), 16, 8), shidiannao_chiplet())
        with pytest.raises(ValueError, match="unknown pricing engine"):
            price_batch([pair], engine="cuda")


# ----------------------------------------------------------------------
# Delta-sweeps
# ----------------------------------------------------------------------

GRID_KWARGS = dict(tolerances=[1.1, 1.25], nop_gbps=[64.0, 128.0])


def count_repriced(monkeypatch, sweep, baseline):
    """Run ``run_delta`` while recording which keys hit run_scenario."""
    import repro.sweep.runner as runner_mod
    orig = runner_mod.run_scenario
    priced: list[str] = []

    def counting(scenario):
        priced.append(scenario.key)
        return orig(scenario)

    monkeypatch.setattr(runner_mod, "run_scenario", counting)
    result = sweep.run_delta(baseline)
    return result, priced


class TestDeltaSweep:
    @pytest.fixture()
    def baseline(self, tmp_path):
        journal = tmp_path / "journal"
        grid = scenario_grid(**GRID_KWARGS)
        full = ScenarioSweep(grid, journal_path=journal).run()
        return grid, journal, full

    def test_unchanged_grid_reprices_zero(self, baseline, monkeypatch):
        grid, journal, full = baseline
        sweep = ScenarioSweep(scenario_grid(**GRID_KWARGS))
        result, priced = count_repriced(monkeypatch, sweep, journal)
        assert priced == []
        assert result.delta_skipped == len(grid)
        assert result.summary()["delta_skipped"] == len(grid)
        assert result.rows_json() == full.rows_json()

    def test_single_axis_change_reprices_only_moved_keys(
            self, baseline, monkeypatch, tmp_path):
        _, journal, _ = baseline
        changed = scenario_grid(tolerances=[1.1, 1.25],
                                nop_gbps=[64.0, 256.0])
        sweep = ScenarioSweep(changed)
        result, priced = count_repriced(monkeypatch, sweep, journal)
        moved = [s.key for s in changed if "nop=256" in s.key]
        assert sorted(priced) == sorted(moved)
        assert result.delta_skipped == len(changed) - len(moved)
        cold = ScenarioSweep(list(changed)).run()
        assert result.rows_json() == cold.rows_json()

    def test_in_memory_result_baseline(self, baseline, monkeypatch):
        grid, _, full = baseline
        sweep = ScenarioSweep(scenario_grid(**GRID_KWARGS))
        result, priced = count_repriced(monkeypatch, sweep, full)
        assert priced == []
        assert result.delta_skipped == len(grid)
        assert result.rows_json() == full.rows_json()

    def test_pre_fingerprint_journal_reprices_everything(
            self, baseline, monkeypatch):
        grid, journal, full = baseline
        # Strip the fingerprints, simulating a journal written before
        # delta-sweeps existed: splicing must conservatively refuse.
        for record in SweepJournal(journal).outcome_files():
            payload = json.loads(record.read_text())
            payload.pop("fingerprint")
            record.write_text(json.dumps(payload, sort_keys=True))
        sweep = ScenarioSweep(scenario_grid(**GRID_KWARGS))
        result, priced = count_repriced(monkeypatch, sweep, journal)
        assert sorted(priced) == sorted(s.key for s in grid)
        assert result.delta_skipped == 0
        assert result.rows_json() == full.rows_json()

    def test_fingerprint_is_content_addressed(self):
        grid = scenario_grid(**GRID_KWARGS)
        fp_a = scenario_fingerprint(grid[0])
        fp_b = scenario_fingerprint(dataclasses.replace(grid[0]))
        assert fp_a == fp_b  # structural, not identity
        assert fp_a != scenario_fingerprint(grid[1])
        assert len(fp_a) == 64  # sha256 hex

    def test_delta_journal_checkpoints_under_parent_indices(
            self, baseline, tmp_path):
        _, journal, _ = baseline
        changed = scenario_grid(tolerances=[1.1, 1.25],
                                nop_gbps=[64.0, 256.0])
        delta_journal = tmp_path / "delta-journal"
        sweep = ScenarioSweep(changed, journal_path=delta_journal)
        sweep.run_delta(journal)
        recorded = {json.loads(p.read_text())["key"]: p.name
                    for p in SweepJournal(delta_journal).outcome_files()}
        index = {s.key: i for i, s in enumerate(changed)}
        for key, name in recorded.items():
            assert name == f"outcome-{index[key]:05d}.json"
