"""Unit tests for the MCM package and NoP cost model."""

import pytest

from repro.arch import NoPConfig, simba_package, transfer_cost
from repro.cost import nvdla_chiplet


class TestPackage:
    def test_simba_6x6_dimensions(self):
        pkg = simba_package()
        assert len(pkg) == 36
        assert pkg.total_pes == 9216  # paper: matches the Tesla NPU budget
        assert pkg.quadrant_count == 4

    def test_quadrants_are_3x3(self):
        pkg = simba_package()
        for q in range(4):
            assert pkg.quadrant_capacity(q) == 9

    def test_quadrant_membership_geometry(self):
        pkg = simba_package()
        assert pkg.at(0, 0).quadrant == 0
        assert pkg.at(3, 0).quadrant == 1
        assert pkg.at(0, 3).quadrant == 2
        assert pkg.at(5, 5).quadrant == 3

    def test_dual_npu_package(self):
        pkg = simba_package(npus=2)
        assert len(pkg) == 72
        assert pkg.quadrant_count == 8
        assert pkg.at(6, 0).quadrant == 4  # second module's first quadrant

    def test_hop_distance_is_manhattan(self):
        pkg = simba_package()
        a = pkg.at(0, 0).chiplet_id
        b = pkg.at(3, 2).chiplet_id
        assert pkg.hops(a, b) == 5
        assert pkg.hops(a, a) == 0

    def test_heterogeneous_replacement(self):
        pkg = simba_package()
        ws = nvdla_chiplet()
        het = pkg.with_dataflow_at([(3, 3), (4, 4)], ws)
        assert het.at(3, 3).dataflow == "ws"
        assert het.at(0, 0).dataflow == "os"
        assert pkg.at(3, 3).dataflow == "os"  # original untouched

    def test_replacement_rejects_off_mesh_coords(self):
        with pytest.raises(KeyError):
            simba_package().with_dataflow_at([(9, 9)], nvdla_chiplet())


class TestNoP:
    def test_paper_parameters(self):
        nop = NoPConfig()
        assert nop.bandwidth_bytes_per_s == 100.0e9  # 100 GB/s/chiplet
        assert nop.hop_latency_s == 35.0e-9          # 35 ns/hop
        assert nop.energy_pj_per_bit == 2.04         # 2.04 pJ/bit

    def test_transfer_latency_formula(self):
        # latency = hops * (bytes/BW + hop latency): the paper's
        # store-and-forward serialization.
        t = transfer_cost(100_000_000, 2)
        assert t.latency_s == pytest.approx(2 * (1e-3 + 35e-9))

    def test_transfer_energy_formula(self):
        t = transfer_cost(1000, 3)
        assert t.energy_j == pytest.approx(1000 * 8 * 2.04e-12 * 3)

    def test_zero_hops_is_free(self):
        t = transfer_cost(123456, 0)
        assert t.latency_s == 0.0
        assert t.energy_j == 0.0

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            transfer_cost(-1, 1)
        with pytest.raises(ValueError):
            transfer_cost(1, -1)
