"""Tests for the repro.design joint package-design search.

Locks the search's load-bearing properties: Pareto dominance math
(stable order, ties survive), canonical space declaration, the
optimistic-bound contract of the roofline proxy (pruning never discards
a design whose materialized metrics meet the target), and the frontier
report's byte-identity across store temperature and worker counts.
"""

from __future__ import annotations

import json

import pytest

from repro.core import best_ranked
from repro.design import (
    DesignSearch,
    DesignSpace,
    DesignTargets,
    axis_token,
    dominated_indices,
    dominates,
    pareto_indices,
)
from repro.sweep import ScenarioSweep, scenario_grid


def _cold():
    from repro.core import clear_plan_cache
    from repro.cost import clear_cache
    from repro.sweep import clear_trunk_memo
    clear_cache()
    clear_plan_cache()
    clear_trunk_memo()


# ----------------------------------------------------------------------
# Pareto dominance
# ----------------------------------------------------------------------

class TestPareto:
    def test_dominates_requires_strict_improvement(self):
        assert dominates((1.0, 2.0), (1.0, 3.0))
        assert dominates((0.5, 2.0), (1.0, 2.0))
        assert not dominates((1.0, 2.0), (1.0, 2.0))  # exact tie
        assert not dominates((1.0, 3.0), (2.0, 2.0))  # trade-off

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ in length"):
            dominates((1.0,), (1.0, 2.0))

    def test_frontier_preserves_input_order(self):
        points = [(3.0, 1.0), (2.0, 2.0), (1.0, 3.0), (4.0, 4.0)]
        assert pareto_indices(points) == [0, 1, 2]
        assert dominated_indices(points) == [3]

    def test_duplicates_all_survive(self):
        # A tie is not a strict improvement, so exact duplicates never
        # dominate each other — both reach the frontier, in order.
        points = [(1.0, 1.0), (1.0, 1.0), (2.0, 2.0)]
        assert pareto_indices(points) == [0, 1]

    def test_single_point_is_frontier(self):
        assert pareto_indices([(5.0, 5.0)]) == [0]
        assert pareto_indices([]) == []


# ----------------------------------------------------------------------
# best_ranked (the rank-then-materialize primitive)
# ----------------------------------------------------------------------

class TestBestRanked:
    def test_first_seen_min_wins(self):
        rank, payload = best_ranked([((2.0,), "b"), ((1.0,), "a"),
                                     ((1.0,), "late-tie")])
        assert rank == (1.0,)
        assert payload == "a"

    def test_none_ranks_skipped(self):
        rank, payload = best_ranked([(None, "x"), ((3.0,), "y")])
        assert payload == "y"

    def test_empty_yields_none(self):
        assert best_ranked([]) == (None, None)
        assert best_ranked([(None, "x")]) == (None, None)


# ----------------------------------------------------------------------
# DesignSpace declarations
# ----------------------------------------------------------------------

class TestDesignSpace:
    def test_axes_reorder_canonically(self):
        # Construction order must not matter: two declarations of the
        # same space enumerate (and report) identically.
        a = DesignSpace(axes=(("dataflow", ("os", "ws")),
                              ("tolerance", (1.0, 1.1))))
        b = DesignSpace(axes=(("tolerance", (1.0, 1.1)),
                              ("dataflow", ("os", "ws"))))
        assert a == b
        assert [name for name, _ in a.axes] == ["tolerance", "dataflow"]
        assert a.size == 4
        assert [s.key for s in a.candidates()] \
            == [s.key for s in b.candidates()]

    def test_candidates_match_scenario_grid(self):
        space = DesignSpace(axes=(("npus", (1, 2)),))
        assert [s.key for s in space.candidates()] \
            == [s.key for s in scenario_grid(npus=[1, 2])]

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown design axis"):
            DesignSpace(axes=(("chiplets", (1,)),))

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate design axis"):
            DesignSpace(axes=(("npus", (1,)), ("npus", (2,))))

    def test_empty_declarations_rejected(self):
        with pytest.raises(ValueError, match="at least one axis"):
            DesignSpace(axes=())
        with pytest.raises(ValueError, match="has no values"):
            DesignSpace(axes=(("npus", ()),))

    def test_from_axis_texts_uses_sweep_grammar(self):
        space = DesignSpace.from_axis_texts({
            "native_tile": "16x16,8x8",
            "hetero": "none,trunk:ws#4",
        })
        by_name = dict(space.axes)
        assert by_name["native_tile"] == ((16, 16), (8, 8))
        assert by_name["hetero"] == (None, "trunk:ws#4")
        assert space.to_dict() == {
            "native_tile": ["16x16", "8x8"],
            "hetero": ["none", "trunk:ws#4"],
        }

    def test_axis_token_forms(self):
        assert axis_token("dram_gbps", None) == "none"
        assert axis_token("frequency_ghz", 1.5) == "1.5"
        assert axis_token("native_tile", (16, 16)) == "16x16"
        assert axis_token("npus", 2) == "2"


# ----------------------------------------------------------------------
# Targets
# ----------------------------------------------------------------------

class TestDesignTargets:
    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="pipe_ms"):
            DesignTargets(pipe_ms=0.0)
        with pytest.raises(ValueError, match="energy_j"):
            DesignTargets(energy_j=-1.0)

    def test_admits(self):
        targets = DesignTargets(pipe_ms=50.0, energy_j=2.0)
        assert targets.admits(50.0, 2.0)
        assert not targets.admits(50.1, 2.0)
        assert not targets.admits(50.0, 2.1)
        assert DesignTargets().admits(1e9, 1e9)


# ----------------------------------------------------------------------
# The search
# ----------------------------------------------------------------------

class TestDesignSearch:
    @pytest.fixture()
    def small_space(self):
        return DesignSpace.from_axis_texts({
            "dataflow": "os,ws",
            "frequency_ghz": "1.0,2.0",
        })

    def test_stats_partition_the_space(self, small_space):
        _cold()
        result = DesignSearch(small_space,
                              DesignTargets(pipe_ms=100.0)).run()
        stats = result.stats()
        assert stats["candidates"] == 4
        assert stats["pruned"] + stats["dominated"] + stats["frontier"] \
            == stats["candidates"]
        assert stats["materialized"] == stats["frontier"] == \
            len(result.rows) == len(result.frontier)
        assert stats["priced_pairs"] > 0

    def test_proxy_is_an_optimistic_bound(self, small_space):
        # The contract target pruning rides on: the proxy never exceeds
        # the materialized metric, so pruning on it never discards a
        # design whose real metrics would have met the target.
        _cold()
        result = DesignSearch(small_space).run()
        by_key = {row["key"]: row
                  for row in ScenarioSweep(small_space.candidates())
                  .run().rows}
        for candidate in result.candidates:
            row = by_key[candidate.scenario.key]
            assert candidate.proxy_pipe_ms <= row["pipe_ms"] + 1e-9
            assert candidate.proxy_energy_j <= row["energy_j"] + 1e-9

    def test_only_frontier_is_materialized(self, small_space):
        _cold()
        result = DesignSearch(small_space,
                              DesignTargets(pipe_ms=100.0)).run()
        assert 0 < len(result.rows) < len(result.candidates)
        materialized = {row["key"] for row in result.rows}
        assert materialized == {c.scenario.key for c in result.frontier}
        for candidate in result.frontier:
            assert not candidate.pruned

    def test_everything_pruned_yields_empty_frontier(self, small_space):
        _cold()
        result = DesignSearch(small_space,
                              DesignTargets(pipe_ms=0.001)).run()
        assert result.frontier == [] and result.rows == []
        assert result.sweep is None and result.best is None
        stats = result.stats()
        assert stats["pruned"] == stats["candidates"]
        assert stats["materialized_fraction"] == 0.0
        report = result.report()
        assert report["frontier"] == [] and report["best"] is None

    def test_best_is_lowest_materialized_edp(self, small_space):
        _cold()
        result = DesignSearch(small_space).run()
        assert result.best["edp_j_ms"] == \
            min(row["edp_j_ms"] for row in result.rows)
        assert result.report()["best"] == result.best["key"]

    def test_report_byte_identical_cold_vs_warm_store(self, tmp_path):
        space = DesignSpace.from_axis_texts({
            "dataflow": "os,ws",
            "hetero": "none,trunk:ws#4",
        })
        store = tmp_path / "planstore"
        documents = []
        for _ in range(2):
            _cold()
            result = DesignSearch(space, DesignTargets(pipe_ms=200.0),
                                  store_path=str(store)).run()
            documents.append(json.dumps(result.report(), indent=2,
                                        sort_keys=True))
        assert documents[0] == documents[1]
        # The warm run really was warm — every plan came from the store.
        assert result.sweep.summary()["plan_cache"]["misses"] == 0

    def test_report_byte_identical_serial_vs_parallel(self, small_space):
        _cold()
        serial = DesignSearch(small_space).run().report()
        _cold()
        parallel = DesignSearch(small_space, workers=2).run().report()
        assert json.dumps(serial, sort_keys=True) \
            == json.dumps(parallel, sort_keys=True)

    def test_hetero_rows_gate_their_columns(self):
        _cold()
        space = DesignSpace.from_axis_texts({"hetero": "none,trunk:ws#2"})
        report = DesignSearch(space).run().report()
        for entry in report["frontier"]:
            has_hetero = entry["scenario"]["hetero"] is not None
            assert ("package_composition" in entry) == has_hetero
