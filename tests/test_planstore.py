"""Tests for the disk-backed plan store and its cache layering."""

import json
import os
import subprocess
import sys

import pytest

from repro.core import (
    SCHEMA_VERSION,
    PlanCache,
    PlanStore,
    plan_group,
    plan_key_hash,
)
from repro.core.plancache import MODE_BEST
from repro.io import plan_from_record, plan_to_record
from repro.workloads import build_perception_workload


@pytest.fixture
def groups(workload):
    return [workload.find_group("S_FFN"), workload.find_group("T_FFN")]


def _plans(groups, accel):
    entries = {}
    for g in groups:
        for n in (1, 2, 3, 1000):
            plan = plan_group(g, n, accel)
            entries[plan_key_hash(g, n, accel, MODE_BEST)] = plan
    return entries


class TestKeyHash:
    def test_structurally_equal_objects_hash_equal(self, os_accel):
        a = build_perception_workload().find_group("S_FFN")
        b = build_perception_workload().find_group("S_FFN")
        assert a is not b
        assert plan_key_hash(a, 2, os_accel, MODE_BEST) == \
            plan_key_hash(b, 2, os_accel, MODE_BEST)

    def test_every_key_component_separates(self, groups, os_accel, ws_accel):
        g = groups[0]
        base = plan_key_hash(g, 2, os_accel, MODE_BEST)
        assert plan_key_hash(g, 3, os_accel, MODE_BEST) != base
        assert plan_key_hash(g, 2, ws_accel, MODE_BEST) != base
        assert plan_key_hash(g, 2, os_accel, "rows") != base
        assert plan_key_hash(groups[1], 2, os_accel, MODE_BEST) != base

    def test_store_memoized_hash_matches_pure_function(self, tmp_path,
                                                       groups, os_accel):
        store = PlanStore(tmp_path / "store")
        g = groups[0]
        assert store.key_hash(g, 2, os_accel, MODE_BEST) == \
            plan_key_hash(g, 2, os_accel, MODE_BEST)
        # memoized second call returns the same string
        assert store.key_hash(g, 2, os_accel, MODE_BEST) == \
            plan_key_hash(g, 2, os_accel, MODE_BEST)


class TestPlanRecordRoundTrip:
    def test_exact_round_trip(self, groups, os_accel):
        for g in groups:
            plan = plan_group(g, 3, os_accel)
            restored = plan_from_record(
                json.loads(json.dumps(plan_to_record(plan))))
            assert restored == plan  # bit-exact, including floats
            assert restored.per_chiplet_busy == plan.per_chiplet_busy


class TestPlanStore:
    def test_flush_and_load_round_trip(self, tmp_path, groups, os_accel):
        store = PlanStore(tmp_path / "store")
        entries = _plans(groups, os_accel)
        assert any(p is None for p in entries.values())  # infeasible too
        store.flush(entries)
        fresh = PlanStore(tmp_path / "store")
        loaded = fresh.load()
        assert loaded == entries
        assert fresh.skipped_files == []

    def test_flush_is_atomic_and_content_addressed(self, tmp_path, groups,
                                                   os_accel):
        store = PlanStore(tmp_path / "store")
        entries = _plans(groups, os_accel)
        first = store.flush(entries)
        second = store.flush(entries)  # identical content -> same shard
        assert first == second
        assert store.shard_files() == [first]
        assert store.flush({}) is None
        assert not list((tmp_path / "store").glob("*.tmp"))

    def test_fresh_process_loads_identical_plans(self, tmp_path, groups,
                                                 os_accel):
        store = PlanStore(tmp_path / "store")
        entries = _plans(groups, os_accel)
        store.flush(entries)
        code = (
            "import json, sys\n"
            "from repro.core import PlanStore\n"
            "from repro.io import plan_to_record\n"
            "store = PlanStore(sys.argv[1])\n"
            "loaded = store.load()\n"
            "out = {k: None if p is None else plan_to_record(p)\n"
            "       for k, p in loaded.items()}\n"
            "print(json.dumps(out, sort_keys=True))\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", code, str(tmp_path / "store")],
            capture_output=True, text=True, env=env, check=True)
        remote = json.loads(proc.stdout)
        local = {k: None if p is None else plan_to_record(p)
                 for k, p in entries.items()}
        assert remote == local

    def test_schema_version_mismatch_rejected(self, tmp_path, groups,
                                              os_accel):
        store = PlanStore(tmp_path / "store")
        store.flush(_plans(groups, os_accel))
        stale = PlanStore(tmp_path / "store",
                          schema_version=SCHEMA_VERSION + 1)
        assert stale.load() == {}
        assert [reason for _, reason in stale.skipped_files] == ["schema"]

    def test_corrupted_and_truncated_files_skipped(self, tmp_path, groups,
                                                   os_accel):
        store = PlanStore(tmp_path / "store")
        good = store.flush(_plans(groups, os_accel))
        (tmp_path / "store" / "plans-garbage.json").write_text("{not json")
        truncated = good.read_text()[: len(good.read_text()) // 2]
        (tmp_path / "store" / "plans-truncated.json").write_text(truncated)
        # wrong payload shape (valid JSON, right schema, bad entries)
        (tmp_path / "store" / "plans-badshape.json").write_text(
            json.dumps({"schema": SCHEMA_VERSION, "entries": [1, 2]}))
        fresh = PlanStore(tmp_path / "store")
        assert fresh.load() == _plans(groups, os_accel)
        reasons = sorted(reason for _, reason in fresh.skipped_files)
        assert reasons == ["corrupt", "corrupt", "schema"]

    def test_compact_merges_shards(self, tmp_path, groups, os_accel):
        store = PlanStore(tmp_path / "store")
        entries = _plans(groups, os_accel)
        items = list(entries.items())
        store.flush(dict(items[:3]))
        store.flush(dict(items[3:]))
        assert len(store.shard_files()) == 2
        store.compact()
        assert len(store.shard_files()) == 1
        assert PlanStore(tmp_path / "store").load() == entries


class TestHeteroStoreIsolation:
    """Hetero rows get their own shards, warm-start cleanly, and never
    disturb (or get served from) homogeneous/mesh shards."""

    @staticmethod
    def _cold():
        from repro.core import clear_plan_cache
        from repro.cost import clear_cache
        from repro.sweep import clear_trunk_memo
        clear_cache()
        clear_plan_cache()
        clear_trunk_memo()

    def test_hetero_worker_sweep_warm_starts_and_isolates(self, tmp_path):
        from repro.sweep import Scenario, ScenarioSweep, scenario_grid
        store = tmp_path / "store"

        # Seed the store with a homogeneous sweep and snapshot its shards.
        self._cold()
        homog = ScenarioSweep([Scenario(tolerance=1.0)],
                              store_path=store).run()
        assert homog.cache_stats.misses > 0
        baseline = {p.name: p.read_bytes()
                    for p in store.glob("plans-*.json")}
        assert baseline

        # A hetero grid across worker processes is a full miss against
        # the homogeneous shards: no entry may be served across the
        # context boundary.
        grid = scenario_grid(tolerances=(1.0,),
                             heteros=("trunk:ws", "trunk:ws@1"))
        self._cold()
        first = ScenarioSweep(grid, workers=2, store_path=store).run()
        assert first.cache_stats.misses > 0
        assert first.cache_stats.store_hits == 0

        # Warm restart (fresh caches, same store): 0 misses, every
        # first-touch lookup served from disk, rows byte-identical.
        self._cold()
        second = ScenarioSweep(grid, workers=2, store_path=store).run()
        assert second.cache_stats.misses == 0
        assert second.cache_stats.store_hits > 0
        assert second.rows_json() == first.rows_json()

        # The homogeneous shards are untouched — hetero flushes add new
        # shards, they never rewrite foreign ones.
        for name, data in baseline.items():
            assert (store / name).read_bytes() == data
        assert len(list(store.glob("plans-*.json"))) > len(baseline)

        # ... and the homogeneous scenario still warm-starts from its
        # own shards (the hetero rows did not pollute them).
        self._cold()
        rerun = ScenarioSweep([Scenario(tolerance=1.0)],
                              store_path=store).run()
        assert rerun.cache_stats.misses == 0
        assert rerun.rows_json() == homog.rows_json()

    def test_hetero_never_shares_with_mesh_topology_shards(self, tmp_path):
        from repro.sweep import Scenario, ScenarioSweep
        store = tmp_path / "store"
        self._cold()
        ScenarioSweep([Scenario(tolerance=1.0, topology="torus")],
                      store_path=store).run()
        # A hetero scenario on the same grid geometry must not be served
        # from torus shards (contexts differ), nor vice versa.
        self._cold()
        het = ScenarioSweep([Scenario(tolerance=1.0, hetero="trunk:ws")],
                            store_path=store).run()
        assert het.cache_stats.misses > 0
        assert het.cache_stats.store_hits == 0


class TestCacheStoreLayering:
    def test_store_hit_skips_compute(self, tmp_path, groups, os_accel):
        g = groups[0]
        plan = plan_group(g, 2, os_accel)
        store = PlanStore(tmp_path / "store")
        store.flush({store.key_hash(g, 2, os_accel, MODE_BEST): plan})

        cache = PlanCache()
        assert cache.attach_store(PlanStore(tmp_path / "store")) == 1

        def explode():
            raise AssertionError("compute ran despite a store entry")

        served = cache.get_or_compute(g, 2, os_accel, MODE_BEST, explode)
        assert served == plan
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.store_hits) == (1, 0, 1)
        # promoted to the in-memory table: second hit is not a store hit
        cache.get_or_compute(g, 2, os_accel, MODE_BEST, explode)
        assert cache.stats().store_hits == 1
        assert cache.stats().hits == 2

    def test_misses_are_staged_and_flushed(self, tmp_path, groups,
                                           os_accel):
        g = groups[0]
        cache = PlanCache()
        cache.attach_store(PlanStore(tmp_path / "store"))
        computed = cache.get_or_compute(
            g, 2, os_accel, MODE_BEST,
            lambda: plan_group(g, 2, os_accel))
        assert cache.stats().misses == 1
        assert cache.flush_to_store() == 1
        assert cache.flush_to_store() == 0  # nothing new since
        loaded = PlanStore(tmp_path / "store").load()
        assert list(loaded.values()) == [computed]

    def test_detach_restores_plain_cache(self, tmp_path, groups, os_accel):
        cache = PlanCache()
        store = PlanStore(tmp_path / "store")
        cache.attach_store(store)
        assert cache.detach_store() is store
        assert cache.store is None
        calls = []
        cache.get_or_compute(groups[0], 2, os_accel, MODE_BEST,
                             lambda: calls.append(1))
        assert calls == [1]

    def test_stats_arithmetic_with_store_hits(self):
        from repro.core import CacheStats
        a = CacheStats(hits=10, misses=4, entries=4, store_hits=3)
        b = CacheStats(hits=3, misses=1, entries=4, store_hits=1)
        assert (a - b).store_hits == 2
        assert (a + b).store_hits == 4
        assert "store_hits" in a.to_dict()
