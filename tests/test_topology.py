"""Tests for the first-class NoP topology subsystem (PR 4).

Covers the :class:`~repro.arch.topology.NoPTopology` hop geometry (mesh
delegation, torus wraparound, explicit grids), token parsing, the package
integration (quadrants, ``hops``), topology-aware placement and schedule
pricing, the ``topology`` sweep axis (key/byte-stability, rows, plan
keying), and the Fig. 9-style acceptance claim: at equal package size a
torus yields strictly lower mean NoP hop counts at no pipe-latency cost.
"""

import pytest

from repro.arch import (
    TOPOLOGY_KINDS,
    NoPTopology,
    canonical_topology,
    min_hop_map,
    parse_topology,
    simba_package,
    topology_for,
)
from repro.core.throughput import match_throughput
from repro.sweep import Scenario, ScenarioSweep, run_scenario, scenario_grid


class TestTopologyGeometry:
    def test_mesh_hops_are_manhattan(self):
        topo = NoPTopology("mesh", 6, 6)
        assert topo.hops((0, 0), (3, 2)) == 5
        assert topo.hops((0, 0), (5, 5)) == 10
        assert topo.hops((2, 2), (2, 2)) == 0
        assert not topo.wraparound

    def test_torus_hops_wrap_both_axes(self):
        topo = NoPTopology("torus", 6, 6)
        assert topo.hops((0, 0), (5, 0)) == 1   # x wraparound
        assert topo.hops((0, 0), (0, 5)) == 1   # y wraparound
        assert topo.hops((0, 0), (5, 5)) == 2   # both
        assert topo.hops((0, 0), (3, 3)) == 6   # at the diameter
        assert topo.hops((1, 1), (2, 2)) == 2   # short routes unchanged

    def test_torus_never_longer_than_mesh(self):
        mesh = NoPTopology("mesh", 8, 6)
        torus = NoPTopology("torus", 8, 6)
        for ax in range(8):
            for ay in range(6):
                for bx in range(8):
                    for by in range(6):
                        assert (torus.hops((ax, ay), (bx, by))
                                <= mesh.hops((ax, ay), (bx, by)))

    def test_mesh_min_hop_map_matches_seed_transform(self):
        topo = NoPTopology("mesh", 12, 6)
        sources = [(0, 0), (7, 3), (11, 5)]
        assert topo.min_hop_map(sources) == min_hop_map(12, 6, sources)

    def test_torus_min_hop_map_is_closed_form_minimum(self):
        topo = NoPTopology("torus", 6, 6)
        sources = [(0, 0), (4, 5)]
        hop_map = topo.min_hop_map(sources)
        for x in range(6):
            for y in range(6):
                want = min(topo.hops((x, y), s) for s in sources)
                assert hop_map[x][y] == want
        # wraparound visibly shortens routes: (5,0) reaches (0,0) in one
        # x-wrap hop where the open mesh needs five.
        assert hop_map[5][0] == 1
        assert min_hop_map(6, 6, sources)[5][0] == 5

    def test_empty_sources_yield_unreachable_sentinel(self):
        for kind in TOPOLOGY_KINDS:
            topo = NoPTopology(kind, 4, 4)
            assert topo.min_hop_map([]) == [[8] * 4 for _ in range(4)]

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="mesh, torus"):
            NoPTopology("ring", 6, 6)


class TestTopologyParsing:
    def test_plain_kinds(self):
        assert parse_topology("mesh") == ("mesh", None)
        assert parse_topology("torus") == ("torus", None)
        assert parse_topology("  TORUS ") == ("torus", None)

    def test_explicit_grids(self):
        assert parse_topology("torus-8x8") == ("torus", (8, 8))
        assert parse_topology("mesh-12X10") == ("mesh", (12, 10))

    def test_canonical_tokens(self):
        assert canonical_topology("Torus") == "torus"
        assert canonical_topology("MESH-8X8") == "mesh-8x8"

    def test_unknown_kind_lists_choices(self):
        with pytest.raises(ValueError, match="mesh, torus"):
            parse_topology("ring")
        with pytest.raises(ValueError, match="torus-8x8"):
            parse_topology("hypercube-4x4")

    def test_malformed_grids_rejected(self):
        for bad in ("torus-8", "torus-8x", "mesh-ax8", "mesh-8x8x8"):
            with pytest.raises(ValueError, match="KIND-WxH"):
                parse_topology(bad)
        for bad in ("mesh-7x6", "torus-2x3", "mesh-0x6"):
            with pytest.raises(ValueError, match="even"):
                parse_topology(bad)

    def test_topology_for_resolves_npus(self):
        assert topology_for(None, 2) == NoPTopology("mesh", 12, 6)
        assert topology_for("torus", 2) == NoPTopology("torus", 12, 6)
        assert topology_for("torus-8x8", 1) == NoPTopology("torus", 8, 8)
        with pytest.raises(ValueError, match="npus=2"):
            topology_for("torus-8x8", 2)


class TestPackageTopology:
    def test_default_package_topology_is_seed_mesh(self):
        pkg = simba_package()
        assert pkg.topology == NoPTopology("mesh", 6, 6)
        assert pkg.name == "simba-6x6-os"  # seed name unchanged

    def test_explicit_mesh_is_identical_hardware(self):
        default = simba_package(npus=2)
        explicit = simba_package(npus=2, topology="mesh")
        assert explicit.name == default.name
        assert explicit.topology == default.topology
        assert explicit.chiplets == default.chiplets

    def test_torus_package_wraps_hops(self):
        pkg = simba_package(topology="torus")
        a = pkg.at(0, 0).chiplet_id
        b = pkg.at(5, 5).chiplet_id
        assert pkg.hops(a, b) == 2
        # same chiplet grid and quadrant tiling as the mesh
        assert len(pkg) == 36 and pkg.quadrant_count == 4
        assert "torus" in pkg.name

    def test_explicit_grid_package(self):
        pkg = simba_package(topology="mesh-8x8")
        assert len(pkg) == 64
        assert pkg.quadrant_count == 4
        assert all(pkg.quadrant_capacity(q) == 16 for q in range(4))
        assert pkg.at(0, 0).quadrant == 0
        assert pkg.at(4, 0).quadrant == 1
        assert pkg.at(0, 4).quadrant == 2
        assert pkg.at(7, 7).quadrant == 3

    def test_explicit_grid_rejects_multi_npu(self):
        with pytest.raises(ValueError, match="npus=2"):
            simba_package(npus=2, topology="torus-8x8")

    def test_direct_topology_instance_validated_like_tokens(self):
        # A NoPTopology object passed directly must meet the same 2x2
        # quadrant-tiling preconditions the token parser enforces.
        with pytest.raises(ValueError, match="even"):
            simba_package(topology=NoPTopology("torus", 6, 1))
        with pytest.raises(ValueError, match="even"):
            simba_package(topology=NoPTopology("mesh", 5, 5))
        with pytest.raises(ValueError, match="npus=2"):
            simba_package(npus=2, topology=NoPTopology("torus", 8, 8))
        # valid non-standard instances still build
        pkg = simba_package(topology=NoPTopology("torus", 8, 8))
        assert len(pkg) == 64 and pkg.quadrant_count == 4

    def test_mismatched_topology_object_rejected(self):
        from repro.arch import MCMPackage
        pkg = simba_package()
        with pytest.raises(ValueError, match="does not match"):
            MCMPackage("bad", 6, 6, pkg.chiplets, pkg.nop, 1,
                       NoPTopology("mesh", 8, 8))


class TestTopologySchedules:
    def test_torus_schedule_is_valid_and_pipe_equal(self):
        mesh = match_throughput(package=simba_package())
        torus = match_throughput(package=simba_package(topology="torus"))
        # Sharding is topology-independent: identical busy multisets.
        assert torus.pipe_latency_s == mesh.pipe_latency_s
        # Every group stays inside its stage quadrants.
        for name, gs in torus.groups.items():
            if gs.host is not None:
                continue
            stage = torus.workload.find_group(name).stage
            allowed = {c.chiplet_id
                       for q in torus.stage_quadrants[stage]
                       for c in torus.package.quadrant(q)}
            assert set(gs.chiplet_ids) <= allowed

    def test_torus_strictly_reduces_mean_hops(self):
        mesh = match_throughput(package=simba_package())
        torus = match_throughput(package=simba_package(topology="torus"))
        assert torus.nop_avg_hops < mesh.nop_avg_hops
        assert torus.nop_latency_s <= mesh.nop_latency_s
        assert torus.e2e_latency_s <= mesh.e2e_latency_s

    def test_fig9_grid_acceptance_claim(self):
        """Fig. 9 NoP-bandwidth grid: torus < mesh mean hops everywhere,
        at no pipe-latency cost and equal package size."""
        grid = scenario_grid(nop_gbps=(25.0, 50.0, 100.0),
                             topologies=("mesh", "torus"))
        rows = ScenarioSweep(grid).run().rows
        by_topo = {}
        for r in rows:
            by_topo.setdefault(r["topology"], {})[r["nop_gbps"]] = r
        for bw, mesh_row in by_topo["mesh"].items():
            torus_row = by_topo["torus"][bw]
            assert torus_row["nop_avg_hops"] < mesh_row["nop_avg_hops"]
            assert torus_row["pipe_ms"] <= mesh_row["pipe_ms"]
            assert torus_row["used_chiplets"] == mesh_row["used_chiplets"]

    def test_nop_hop_metrics_on_seed_schedule(self):
        schedule = match_throughput(package=simba_package())
        assert schedule.nop_avg_hops > 0
        assert schedule.nop_max_hops >= schedule.nop_avg_hops


class TestTopologyAxis:
    def test_default_key_and_row_have_no_topology(self):
        assert "topo=" not in Scenario().key
        row = run_scenario(Scenario())
        assert "topology" not in row
        assert "nop_avg_hops" not in row

    def test_key_fragment_and_dict_when_set(self):
        s = Scenario(topology="torus")
        assert s.key.endswith("topo=torus")
        assert s.key.startswith(Scenario().key)
        assert s.to_dict()["topology"] == "torus"

    def test_token_canonicalized_on_scenario(self):
        assert Scenario(topology="TORUS-8X8").topology == "torus-8x8"

    def test_bad_token_and_npus_conflict_rejected(self):
        with pytest.raises(ValueError, match="mesh, torus"):
            Scenario(topology="ring")
        with pytest.raises(ValueError, match="npus=2"):
            Scenario(topology="torus-8x8", npus=2)

    def test_explicit_mesh_row_matches_seed_metrics(self):
        base = run_scenario(Scenario())
        mesh = run_scenario(Scenario(topology="mesh"))
        for metric in ("pipe_ms", "e2e_ms", "energy_j", "utilization",
                       "used_chiplets", "shard_steps"):
            assert mesh[metric] == base[metric]
        assert "nop_avg_hops" in mesh  # the comparison column

    def test_grid_expands_topology_innermost(self):
        grid = scenario_grid(tolerances=(1.0, 1.05),
                             topologies=(None, "torus"))
        assert [(s.tolerance, s.topology) for s in grid] == [
            (1.0, None), (1.0, "torus"), (1.05, None), (1.05, "torus")]


class TestTopologyPlanKeying:
    @staticmethod
    def _cold():
        from repro.core import clear_plan_cache
        from repro.cost import clear_cache
        from repro.sweep import clear_trunk_memo
        clear_cache()
        clear_plan_cache()
        clear_trunk_memo()

    def test_plan_key_hash_scopes_by_context(self):
        from repro.core.planstore import plan_key_hash
        from repro.cost import simba_chiplet
        from repro.workloads.trunks import build_trunks
        group = build_trunks().groups[0]
        accel = simba_chiplet("os")
        default = plan_key_hash(group, 2, accel, "best")
        torus = plan_key_hash(group, 2, accel, "best", context="torus")
        assert default != torus
        # explicit None context is the byte-stable seed hash
        assert plan_key_hash(group, 2, accel, "best", context=None) == default

    def test_mesh_store_never_serves_torus(self, tmp_path):
        store = tmp_path / "store"
        self._cold()
        mesh = ScenarioSweep([Scenario(tolerance=1.0)],
                             store_path=store).run()
        assert mesh.cache_stats.misses > 0
        # torus must be a full miss against the mesh-warm store...
        self._cold()
        torus = ScenarioSweep([Scenario(tolerance=1.0, topology="torus")],
                              store_path=store).run()
        assert torus.cache_stats.misses > 0
        assert torus.cache_stats.store_hits == 0
        # ... and once flushed, torus warm-starts exactly from its own
        # shards while never having shared one with mesh.
        self._cold()
        warm = ScenarioSweep([Scenario(tolerance=1.0, topology="torus")],
                             store_path=store).run()
        assert warm.cache_stats.misses == 0
        assert warm.cache_stats.store_hits > 0
        assert warm.rows_json() == torus.rows_json()

    def test_torus_store_never_serves_mesh(self, tmp_path):
        store = tmp_path / "store"
        self._cold()
        ScenarioSweep([Scenario(tolerance=1.0, topology="torus")],
                      store_path=store).run()
        self._cold()
        mesh = ScenarioSweep([Scenario(tolerance=1.0)],
                             store_path=store).run()
        assert mesh.cache_stats.misses > 0
        assert mesh.cache_stats.store_hits == 0

    def test_trunk_dse_plans_scoped_by_topology(self, tmp_path):
        # The trunk DSE prices its plans under the scenario's context
        # too: a torus+het sweep must not flush shards a mesh+het sweep
        # can be served from.
        store = tmp_path / "store"
        self._cold()
        torus = ScenarioSweep(
            [Scenario(tolerance=1.0, het_ws_budget=2, topology="torus")],
            store_path=store).run()
        assert torus.cache_stats.misses > 0
        self._cold()
        mesh = ScenarioSweep(
            [Scenario(tolerance=1.0, het_ws_budget=2)],
            store_path=store).run()
        assert mesh.cache_stats.misses > 0
        assert mesh.cache_stats.store_hits == 0
        # the DSE itself is topology-agnostic: same trunk columns
        assert (mesh.rows[0]["trunk_edp_j_ms"]
                == torus.rows[0]["trunk_edp_j_ms"])

    def test_scenario_plan_context(self):
        assert Scenario().plan_context is None
        assert Scenario(topology="mesh").plan_context is None
        assert Scenario(topology="mesh-8x8").plan_context is None
        assert Scenario(topology="torus").plan_context == "torus"
        assert Scenario(topology="torus-8x8").plan_context == "torus"

    def test_explicit_mesh_shares_seed_plans(self, tmp_path):
        # topology="mesh" is the seed geometry class: same plan context,
        # so it warm-starts from a default-scenario store with 0 misses.
        store = tmp_path / "store"
        self._cold()
        ScenarioSweep([Scenario(tolerance=1.0)], store_path=store).run()
        self._cold()
        warm = ScenarioSweep([Scenario(tolerance=1.0, topology="mesh")],
                             store_path=store).run()
        assert warm.cache_stats.misses == 0
        assert warm.cache_stats.store_hits > 0


class TestTopologyScalingReport:
    def test_report_gains_topology_columns(self):
        from repro.experiments import scaling
        report = scaling.run(npus=(1, 2), dram_gbps=(None,),
                             topologies=("mesh", "torus"))
        assert report["axes"]["topologies"] == ["mesh", "torus"]
        rows = report["rows"]
        assert all("topology" in r and "nop_avg_hops" in r for r in rows)
        mesh = {r["npus"]: r for r in rows if r["topology"] == "mesh"}
        torus = {r["npus"]: r for r in rows if r["topology"] == "torus"}
        for n in (1, 2):
            assert torus[n]["nop_avg_hops"] < mesh[n]["nop_avg_hops"]
            assert torus[n]["pipe_ms"] <= mesh[n]["pipe_ms"]

    def test_default_report_has_no_topology_columns(self):
        from repro.experiments import scaling
        report = scaling.run(npus=(1,), dram_gbps=(None,))
        assert "topologies" not in report["axes"]
        assert all("topology" not in r for r in report["rows"])
