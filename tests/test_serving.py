"""Tests for the serving layer: memo server, remote client, dispatch."""

import json
import socket
import threading
import urllib.request

import pytest

from repro.core import SCHEMA_VERSION, PlanStore, PlanStoreLike
from repro.serve import (
    GCPolicy,
    MemoServer,
    RemoteStoreClient,
    ServeProtocolError,
    dispatch_sweep,
    is_store_url,
    percentile,
    shard_round_robin,
)
from repro.serve.protocol import LatencyRecorder
from repro.sweep import ScenarioSweep, scenario_grid
from repro.sweep.resilience import NullClock, RetryPolicy

#: a retry policy that never sleeps for real and fails fast.
FAST_RETRY = RetryPolicy(max_attempts=2, backoff_base_s=0.0)


def _cold():
    from repro.core import clear_plan_cache
    from repro.cost import clear_cache
    from repro.sweep import clear_trunk_memo
    clear_cache()
    clear_plan_cache()
    clear_trunk_memo()


@pytest.fixture
def server(tmp_path):
    with MemoServer(tmp_path / "store") as srv:
        yield srv


@pytest.fixture
def client(server):
    return RemoteStoreClient(server.url, retry=FAST_RETRY,
                             clock=NullClock())


@pytest.fixture
def grid():
    return scenario_grid(tolerances=(1.0, 1.05))


# ----------------------------------------------------------------------
# protocol primitives
# ----------------------------------------------------------------------

class TestPrimitives:
    def test_is_store_url(self):
        assert is_store_url("http://127.0.0.1:80")
        assert is_store_url("https://memo.example")
        assert not is_store_url("results/planstore")
        assert not is_store_url(None)

    def test_percentile_is_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 50) == 2.0
        assert percentile(samples, 99) == 4.0
        assert percentile([7.5], 50) == 7.5

    def test_latency_log_line_format_is_deterministic(self):
        recorder = LatencyRecorder()
        line = recorder.log_line("batch_get", 1.23456)
        assert line == ('{"duration_ms": 1.235, '
                        '"request_class": "batch_get"}')
        assert json.loads(line)["request_class"] == "batch_get"

    def test_shard_round_robin(self):
        items = list("abcde")
        shards = shard_round_robin(items, 2)
        assert shards == [["a", "c", "e"], ["b", "d"]]
        # more shards than items: empties are dropped, nothing lost
        assert shard_round_robin(items, 9) == [[c] for c in items]
        with pytest.raises(ValueError):
            shard_round_robin(items, 0)


class TestGCPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            GCPolicy(max_entries=0)
        with pytest.raises(ValueError):
            GCPolicy(max_age_puts=0)
        with pytest.raises(ValueError):
            GCPolicy(compact_after_shards=0)

    def test_size_bound_evicts_oldest_generation_first(self):
        policy = GCPolicy(max_entries=2)
        generations = {"a": 3, "b": 1, "c": 2, "d": 1}
        # two in excess: generation-1 records go, ties in key order
        assert policy.evictions(generations, 3) == ["b", "d"]

    def test_age_bound_is_in_put_generations(self):
        policy = GCPolicy(max_age_puts=2)
        generations = {"old": 1, "mid": 3, "new": 5}
        assert policy.evictions(generations, 5) == ["old"]
        assert policy.evictions(generations, 3) == []

    def test_eviction_order_is_deterministic(self):
        policy = GCPolicy(max_entries=1, max_age_puts=4)
        generations = {"e": 2, "a": 2, "c": 1, "b": 7, "d": 6}
        first = policy.evictions(dict(generations), 7)
        second = policy.evictions(dict(reversed(generations.items())), 7)
        assert first == second == ["c", "a", "e", "d"]

    def test_unbounded_policy_never_evicts(self):
        assert GCPolicy().evictions({"a": 1, "b": 900}, 10 ** 6) == []


# ----------------------------------------------------------------------
# wire protocol against a live server
# ----------------------------------------------------------------------

class TestWireProtocol:
    def test_put_get_round_trip(self, client):
        record = {"total_s": 0.125, "mode": "best"}
        assert client.put_record("k1", record) == 1
        assert client.get_record("k1") == (True, record)
        assert client.get_record("missing") == (False, None)

    def test_null_record_memoizes_infeasible(self, client):
        client.put_record("dead", None)
        assert client.get_record("dead") == (True, None)

    def test_batch_round_trip(self, client):
        records = {"a": {"x": 1}, "b": None, "c": {"x": 3}}
        assert client.batch_put(records) == 3
        assert client.batch_get(["a", "b", "nope"]) == \
            {"a": {"x": 1}, "b": None}
        stats = client.stats()
        assert stats["entries"] == 3
        assert stats["generation"] == 1

    def test_schema_skew_is_miss_and_noop_never_error(self, server,
                                                      client):
        client.put_record("k", {"x": 1})
        stale = RemoteStoreClient(server.url, retry=FAST_RETRY,
                                  clock=NullClock(),
                                  schema_version=SCHEMA_VERSION + 1)
        # reads miss, writes are ignored, nothing raises
        assert stale.get_record("k") == (False, None)
        assert stale.batch_get(["k"]) == {}
        assert stale.load() == {}
        assert stale.put_record("k2", {"x": 2}) == 0
        assert client.stats()["entries"] == 1

    def test_put_survives_server_restart(self, tmp_path):
        with MemoServer(tmp_path / "store") as srv:
            RemoteStoreClient(srv.url).put_record("k", {"x": 1})
        with MemoServer(tmp_path / "store") as srv:
            reborn = RemoteStoreClient(srv.url)
            assert reborn.get_record("k") == (True, {"x": 1})

    def test_healthz_and_stats_answer_get(self, server):
        for path, key in (("/healthz", "ok"), ("/stats", "entries")):
            with urllib.request.urlopen(server.url + path) as response:
                body = json.loads(response.read())
            assert key in body
            assert body["protocol"] == 1

    def test_stats_reports_latency_per_request_class(self, client):
        client.put_record("k", {"x": 1})
        client.get_record("k")
        requests = client.stats()["requests"]
        assert requests["put"]["count"] == 1
        assert requests["get"]["count"] == 1
        assert requests["get"]["p50_ms"] <= requests["get"]["p99_ms"]

    def test_concurrent_clients_interleave_safely(self, server):
        errors = []

        def worker(index: int) -> None:
            try:
                mine = RemoteStoreClient(server.url)
                keys = [f"w{index}-{i}" for i in range(8)]
                mine.batch_put({k: {"n": i}
                                for i, k in enumerate(keys)})
                for i, key in enumerate(keys):
                    assert mine.get_record(key) == (True, {"n": i})
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        client = RemoteStoreClient(server.url)
        assert client.stats()["entries"] == 48
        assert len(client.batch_get([f"w{i}-{j}" for i in range(6)
                                     for j in range(8)])) == 48


# ----------------------------------------------------------------------
# error taxonomy
# ----------------------------------------------------------------------

class TestErrorTaxonomy:
    def test_bad_request_is_protocol_error_not_retried(self, client):
        with pytest.raises(ServeProtocolError, match="HTTP 400"):
            client.post("/get", {"key": 5})
        assert client.clock.slept == []  # 4xx never retries

    def test_unknown_route_is_protocol_error(self, client):
        with pytest.raises(ServeProtocolError, match="HTTP 404"):
            client.post("/no-such-route", {})

    def test_protocol_version_skew_raises_immediately(self, client,
                                                      monkeypatch):
        monkeypatch.setattr("repro.serve.client.PROTOCOL_VERSION", 99)
        with pytest.raises(ServeProtocolError, match="protocol"):
            client.stats()
        assert client.clock.slept == []

    def test_unreachable_server_retries_then_raises(self):
        clock = NullClock()
        dead = RemoteStoreClient("http://127.0.0.1:1",
                                 retry=RetryPolicy(max_attempts=3),
                                 clock=clock, timeout_s=0.5)
        with pytest.raises(OSError):
            dead.get_record("k")
        # attempts 2 and 3 each waited on the deterministic schedule
        assert len(clock.slept) == 2
        assert clock.slept == sorted(clock.slept)

    def test_rejects_non_url(self):
        with pytest.raises(ValueError, match="http"):
            RemoteStoreClient("results/planstore")

    def test_malformed_content_length_is_bad_request(self, server):
        host, port = server._httpd.server_address[:2]
        with socket.create_connection((host, port), timeout=5.0) as sock:
            sock.sendall(b"POST /stats HTTP/1.1\r\n"
                         b"Host: test\r\n"
                         b"Content-Length: banana\r\n"
                         b"Connection: close\r\n\r\n")
            response = b""
            while chunk := sock.recv(4096):
                response += chunk
        status_line = response.split(b"\r\n", 1)[0]
        assert b"400" in status_line
        assert b"bad_request" in response


# ----------------------------------------------------------------------
# the PlanStoreLike surface and sweep integration
# ----------------------------------------------------------------------

class TestSweepIntegration:
    def test_client_satisfies_planstorelike(self, client):
        assert isinstance(client, PlanStoreLike)

    def test_remote_warm_run_is_zero_miss_and_byte_identical(
            self, tmp_path, grid):
        disk_dir = tmp_path / "disk"
        with MemoServer(tmp_path / "served") as srv:
            _cold()
            cold = ScenarioSweep(grid, store_path=srv.url).run()
            assert cold.cache_stats.misses > 0
            _cold()
            warm = ScenarioSweep(grid, store_path=srv.url).run()
            assert warm.cache_stats.misses == 0
            assert warm.cache_stats.store_hits > 0
            assert warm.rows_json() == cold.rows_json()
            _cold()
            disk = ScenarioSweep(grid, store_path=disk_dir).run()
            assert disk.rows_json() == cold.rows_json()
        # the records the server persisted are byte-equal to the disk
        # store's: one contract, two transports
        assert PlanStore(tmp_path / "served").load_records() \
            == PlanStore(disk_dir).load_records()

    def test_corrupt_server_shard_is_a_miss_never_an_error(
            self, tmp_path, grid):
        store_dir = tmp_path / "store"
        _cold()
        ScenarioSweep(grid, store_path=store_dir).run()
        shards = sorted(store_dir.glob("plans-*.json"))
        shards[0].write_text("{ not json")
        stale = json.loads(shards[1].read_text()) \
            if len(shards) > 1 else None
        if stale is not None:
            stale["schema"] = SCHEMA_VERSION + 1
            shards[1].write_text(json.dumps(stale))
        with MemoServer(store_dir) as srv:
            client = RemoteStoreClient(srv.url)
            reasons = sorted(item["reason"]
                             for item in client.skipped_manifest())
            assert reasons[0] == "corrupt"
            if stale is not None:
                assert "schema" in reasons
            # the sweep still warm-starts from whatever survived, and
            # surfaces the loss in the summary
            _cold()
            result = ScenarioSweep(grid, store_path=srv.url).run()
            assert [item["reason"] for item in result.store_skipped] \
                == reasons
            assert result.rows_json()

    def test_server_side_gc_is_deterministic(self, tmp_path):
        def feed(path):
            policy = GCPolicy(max_entries=3, compact_after_shards=2)
            with MemoServer(path, gc_policy=policy) as srv:
                client = RemoteStoreClient(srv.url)
                for i in range(6):
                    client.put_record(f"k{i}", {"n": i})
                stats = client.stats()
                return (sorted(client.batch_get(
                            [f"k{i}" for i in range(6)])),
                        stats["gc"]["evicted"],
                        stats["gc"]["compactions"])

        first = feed(tmp_path / "a")
        second = feed(tmp_path / "b")
        assert first == second
        survivors, evicted, compactions = first
        assert survivors == ["k3", "k4", "k5"]  # oldest puts evicted
        assert evicted == 3
        assert compactions >= 1
        # compaction rewrote the directory down to the live table
        assert len(PlanStore(tmp_path / "a").load_records()) == 3

    def test_forced_compact_merges_shards(self, tmp_path, client,
                                          server):
        for i in range(4):
            client.put_record(f"k{i}", {"n": i})
        report = client.compact()
        assert report["entries"] == 4
        assert report["shards"] == 1
        assert client.batch_get([f"k{i}" for i in range(4)]) \
            == {f"k{i}": {"n": i} for i in range(4)}

    def test_compaction_preserves_skipped_shards(self, tmp_path):
        store_dir = tmp_path / "store"
        store_dir.mkdir()
        corrupt = store_dir / "plans-00000000.json"
        corrupt.write_text("{ not json")
        foreign = store_dir / "plans-11111111.json"
        foreign.write_text(json.dumps(
            {"schema": SCHEMA_VERSION + 1, "entries": {"f": {"x": 9}}}))
        policy = GCPolicy(max_entries=2, compact_after_shards=2)
        with MemoServer(store_dir, gc_policy=policy) as srv:
            client = RemoteStoreClient(srv.url)
            # a bad shard can also land mid-run (e.g. a torn foreign
            # write); absorption must skip it, not crash or lose it
            late = store_dir / "plans-22222222.json"
            late.write_text("truncated")
            for i in range(4):  # crosses both GC-compaction triggers
                client.put_record(f"k{i}", {"n": i})
            client.compact()  # and the forced path
            assert client.stats()["gc"]["compactions"] >= 1
            manifest = client.skipped_manifest()
            assert {item["file"] for item in manifest} \
                == {corrupt.name, foreign.name, late.name}
            # every advertised file survived every compaction
            assert all((store_dir / item["file"]).exists()
                       for item in manifest)
        # a restart re-skips the same files and still has the live table
        with MemoServer(store_dir) as srv:
            reborn = RemoteStoreClient(srv.url)
            assert sorted(item["reason"]
                          for item in reborn.skipped_manifest()) \
                == ["corrupt", "corrupt", "schema"]
            assert reborn.get_record("k3") == (True, {"n": 3})

    def test_sweep_flushed_plans_enter_the_live_table(self, tmp_path,
                                                      grid):
        from repro.core import get_plan_cache
        from repro.sweep.runner import _attach_store
        store_dir = tmp_path / "store"
        with MemoServer(store_dir) as srv:
            _cold()
            # the `chiplet-npu serve` setup: this process's plan cache
            # flushes straight to the served directory, bypassing the
            # put routes
            get_plan_cache().detach_store()
            _attach_store(store_dir)
            try:
                dispatch_sweep(grid, [srv.url])
            finally:
                get_plan_cache().detach_store()
            client = RemoteStoreClient(srv.url)
            entries = client.stats()["entries"]
            assert entries > 0
            # the get routes serve the flushed plans without a restart
            served = client.post("/batch_get", {"all": True})["records"]
            assert len(served) == entries
            # and compaction keeps them instead of unlinking their shards
            assert client.compact()["entries"] == entries
        assert len(PlanStore(store_dir).load_records()) == entries


class TestDispatch:
    def test_two_workers_merge_byte_identical_to_serial(self, tmp_path):
        grid = scenario_grid(tolerances=(1.0, 1.05, 1.2))
        _cold()
        serial = ScenarioSweep(grid).run()
        with MemoServer(tmp_path / "a") as worker_a, \
                MemoServer(tmp_path / "b") as worker_b:
            _cold()
            distributed = dispatch_sweep(
                grid, [worker_a.url, worker_b.url])
            assert distributed.rows_json() == serial.rows_json()
            assert distributed.workers == 2
            assert distributed.parallel
            served = worker_a.latency.report()
            assert served["sweep"]["count"] == 1

    def test_dead_worker_quarantines_only_its_shard(self, tmp_path):
        grid = scenario_grid(tolerances=(1.0, 1.05))
        with MemoServer(tmp_path / "a") as live:
            _cold()
            result = dispatch_sweep(
                grid, [live.url, "http://127.0.0.1:1"], strict=False,
                retry=FAST_RETRY, clock=NullClock(), timeout_s=0.5)
        # worker 0's shard (grid[0::2]) survived; worker 1's is reported
        assert [row["key"] for row in result.rows] == [grid[0].key]
        assert [f.key for f in result.failures] == [grid[1].key]
        assert all(f.attempts == FAST_RETRY.max_attempts
                   for f in result.failures)

    def test_strict_dispatch_raises_on_lost_shard(self, tmp_path):
        from repro.sweep.resilience import SweepQuarantineError
        grid = scenario_grid(tolerances=(1.0, 1.05))
        with MemoServer(tmp_path / "a") as live:
            _cold()
            with pytest.raises(SweepQuarantineError):
                dispatch_sweep(grid, [live.url, "http://127.0.0.1:1"],
                               retry=FAST_RETRY, clock=NullClock(),
                               timeout_s=0.5)

    def test_requires_a_worker(self, grid):
        with pytest.raises(ValueError):
            dispatch_sweep(grid, [])

    def test_small_grid_reports_actual_shard_count(self, tmp_path):
        # 2 scenarios across 4 workers dispatch only 2 shards; the extra
        # URLs are never contacted (they would fail the strict run) and
        # must not be reported as workers that ran.
        grid = scenario_grid(tolerances=(1.0, 1.05))
        with MemoServer(tmp_path / "a") as live:
            _cold()
            urls = [live.url, live.url,
                    "http://127.0.0.1:1", "http://127.0.0.1:1"]
            result = dispatch_sweep(grid, urls, retry=FAST_RETRY,
                                    clock=NullClock(), timeout_s=5.0)
        assert len(result.rows) == 2
        assert result.workers == 2
        assert result.parallel

    def test_single_scenario_grid_is_not_parallel(self, tmp_path):
        grid = scenario_grid(tolerances=(1.0,))
        with MemoServer(tmp_path / "a") as live:
            _cold()
            result = dispatch_sweep(
                grid, [live.url, "http://127.0.0.1:1"],
                retry=FAST_RETRY, clock=NullClock(), timeout_s=5.0)
        assert result.workers == 1
        assert not result.parallel

    def test_strict_failure_cancels_outstanding_shards(self):
        # One dead worker plus one hung worker: the dead shard's
        # quarantine must raise promptly instead of waiting out the hung
        # shard's full timeout_s.
        import time
        from repro.sweep.resilience import SweepQuarantineError
        grid = scenario_grid(tolerances=(1.0, 1.05))
        slow = _HungWorker()
        try:
            start = time.monotonic()
            with pytest.raises(SweepQuarantineError) as excinfo:
                dispatch_sweep(grid, [slow.url, "http://127.0.0.1:1"],
                               retry=FAST_RETRY, clock=NullClock(),
                               timeout_s=30.0)
            elapsed = time.monotonic() - start
        finally:
            slow.close()  # unblock the abandoned shard's thread
        assert elapsed < 10.0  # far below the hung shard's timeout_s
        # the quarantine names the dead worker's shard (grid[1::2])
        assert [f.key for f in excinfo.value.failures] == [grid[1].key]


class _HungWorker:
    """A TCP endpoint that accepts /sweep connections and never answers.

    Stands in for a worker that wedges mid-request: connections succeed,
    so the client blocks until its full ``timeout_s`` — exactly the
    shard the strict early-cancel must not wait for.  ``close`` resets
    every accepted connection so the abandoned dispatch thread (and the
    interpreter's executor join at exit) unblocks.
    """

    def __init__(self):
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        port = self._listener.getsockname()[1]
        self.url = f"http://127.0.0.1:{port}"
        self._conns = []
        self._thread = threading.Thread(target=self._accept, daemon=True)
        self._thread.start()

    def _accept(self):
        try:
            while True:
                conn, _ = self._listener.accept()
                self._conns.append(conn)
        except OSError:
            pass

    def close(self):
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self._listener.close()
        self._thread.join(timeout=5.0)
