"""Unit tests for layer groups, stages, and the workload graph."""

import pytest

from repro.workloads import conv, dense
from repro.workloads.graph import LayerGroup, PerceptionWorkload, Stage


def _group(name, deps=(), instances=1, stage="S"):
    return LayerGroup(
        name=name,
        layers=(dense(f"{name}.l", (8, 8), 16, 16),),
        stage=stage,
        instances=instances,
        depends_on=tuple(deps),
    )


class TestLayerGroup:
    def test_rejects_empty_chain(self):
        with pytest.raises(ValueError):
            LayerGroup(name="g", layers=(), stage="S")

    def test_rejects_zero_instances(self):
        with pytest.raises(ValueError):
            LayerGroup(name="g", layers=(conv("c", (4, 4), 4, 4),),
                       stage="S", instances=0)

    def test_total_macs_scales_with_instances(self):
        g = _group("g", instances=8)
        assert g.total_macs == 8 * g.macs_per_instance

    def test_output_layer_is_last(self):
        g = LayerGroup(name="g", stage="S",
                       layers=(conv("a", (4, 4), 4, 4),
                               dense("b", (4, 4), 8, 4)))
        assert g.output_layer.name == "b"


class TestStage:
    def test_duplicate_group_rejected(self):
        stage = Stage("S")
        stage.add(_group("a"))
        with pytest.raises(ValueError):
            stage.add(_group("a"))

    def test_topo_order_respects_dependencies(self):
        stage = Stage("S")
        stage.add(_group("c", deps=("b",)))
        stage.add(_group("a"))
        stage.add(_group("b", deps=("a",)))
        order = [g.name for g in stage.topo_order()]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_topo_order_detects_cycles(self):
        stage = Stage("S")
        stage.add(_group("a", deps=("b",)))
        stage.add(_group("b", deps=("a",)))
        with pytest.raises(ValueError):
            stage.topo_order()

    def test_critical_path_overlaps_independent_groups(self):
        stage = Stage("S")
        stage.add(_group("a"))
        stage.add(_group("b"))
        stage.add(_group("c", deps=("a", "b")))
        spans = {"a": 3.0, "b": 5.0, "c": 2.0}
        assert stage.critical_path(lambda g: spans[g.name]) == 7.0

    def test_replace_group(self):
        stage = Stage("S")
        stage.add(_group("a"))
        replacement = _group("a", instances=4)
        stage.replace_group(replacement)
        assert stage.group("a").instances == 4

    def test_group_lookup_raises(self):
        with pytest.raises(KeyError):
            Stage("S").group("missing")


class TestPerceptionWorkload:
    def test_real_pipeline_has_four_stages(self, workload):
        assert workload.stage_names == ["FE_BFPN", "S_FUSE", "T_FUSE",
                                        "TRUNKS"]

    def test_all_expected_groups_present(self, workload):
        names = {g.name for g in workload.all_groups()}
        expected = {"FE_BFPN", "S_LIFT", "S_Q_PROJ", "S_KV_PROJ", "S_ATTN",
                    "S_FFN", "T_Q_PROJ", "T_KV_PROJ", "T_ATTN", "T_FFN",
                    "T_POOL", "OCC_TR", "LANE_TR", "DET_TR"}
        assert expected <= names

    def test_total_macs_in_calibrated_band(self, workload):
        # ~850 GMACs for the full 8-camera pipeline (DESIGN.md Sec. 3).
        assert 6e11 < workload.total_macs < 1.2e12

    def test_find_group_and_missing(self, workload):
        assert workload.find_group("T_FFN").instances == 12
        with pytest.raises(KeyError):
            workload.find_group("NOPE")

    def test_instance_axes(self, workload):
        assert workload.find_group("FE_BFPN").instance_axis == "camera"
        assert workload.find_group("T_KV_PROJ").instance_axis == "frame"
        assert workload.find_group("DET_TR").instance_axis == "model"
