"""Tests for serialization and report generation."""

import json

import pytest

from repro.io import (
    generate_report,
    group_to_dict,
    layer_to_dict,
    save_schedule,
    schedule_to_dict,
    workload_to_dict,
)
from repro.workloads import conv


class TestSerialization:
    def test_layer_round_trips_through_json(self):
        payload = layer_to_dict(conv("c", (90, 160), 128, 64, r=3,
                                     stride=2))
        restored = json.loads(json.dumps(payload))
        assert restored["kind"] == "conv"
        assert restored["macs"] == 90 * 160 * 128 * 64 * 9

    def test_group_dict_fields(self, workload):
        payload = group_to_dict(workload.find_group("T_FFN"))
        assert payload["instances"] == 12
        assert payload["instance_axis"] == "frame"
        assert len(payload["layers"]) == 2

    def test_workload_dict_covers_all_stages(self, workload):
        payload = workload_to_dict(workload)
        assert [s["name"] for s in payload["stages"]] == [
            "FE_BFPN", "S_FUSE", "T_FUSE", "TRUNKS"]
        assert payload["total_macs"] == workload.total_macs

    def test_schedule_dict_is_json_safe(self, schedule36):
        payload = schedule_to_dict(schedule36)
        text = json.dumps(payload)
        restored = json.loads(text)
        assert restored["package"]["total_pes"] == 9216
        assert restored["groups"]["T_FFN"]["plan"]["n_chiplets"] == 6
        assert restored["metrics"]["pipe_ms"] == pytest.approx(
            schedule36.pipe_latency_s * 1e3)

    def test_schedule_dict_trace_matches(self, schedule36):
        payload = schedule_to_dict(schedule36)
        assert len(payload["trace"]) == len(schedule36.trace)

    def test_save_schedule_writes_file(self, schedule36, tmp_path):
        out = tmp_path / "schedule.json"
        save_schedule(schedule36, out)
        restored = json.loads(out.read_text())
        assert restored["tolerance"] == schedule36.tolerance


class TestReport:
    def test_report_contains_every_section(self, tmp_path):
        out = tmp_path / "REPORT.md"
        text = generate_report(out)
        assert out.exists()
        for section in ("fig3", "fig10", "table2", "table3"):
            assert f"## {section}" in text
        assert "Table II" in text
