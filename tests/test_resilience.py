"""Tests for fault-tolerant sweep execution (resilience, faults, journal).

The contract under test: every failure mode the resilience layer handles
— injected failures, worker crashes, hung pools, corrupted shards,
interrupted runs — must leave the deterministic row payload untouched.
``rows_json()`` is compared byte-for-byte against an undisturbed serial
run throughout.
"""

import json

import pytest

from repro.sweep import (
    CRASH_EXIT_CODE,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    NullClock,
    RetryPolicy,
    ScenarioSweep,
    SweepFailure,
    SweepJournal,
    SweepOutcome,
    SweepQuarantineError,
    TransientError,
    WorkerCrashError,
    error_class,
    key_fraction,
    scenario_grid,
)


@pytest.fixture(scope="module")
def grid():
    return scenario_grid(tolerances=(1.0, 1.05), npus=(1, 2))


@pytest.fixture(scope="module")
def reference(grid):
    """The undisturbed serial run every fault scenario must reproduce."""
    return ScenarioSweep(list(grid)).run()


# ----------------------------------------------------------------------
# RetryPolicy: deterministic backoff
# ----------------------------------------------------------------------

class TestRetryPolicy:
    def test_backoff_is_a_pure_function(self):
        policy = RetryPolicy()
        first = [policy.backoff_s("tol=1.0", a) for a in range(1, 6)]
        again = [policy.backoff_s("tol=1.0", a) for a in range(1, 6)]
        assert first == again

    def test_first_attempt_never_waits(self):
        assert RetryPolicy().backoff_s("anything", 1) == 0.0

    def test_backoff_grows_then_caps(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_cap_s=0.3)
        waits = [policy.backoff_s("k", a) for a in (2, 3, 4, 5, 6)]
        assert waits[0] < waits[1]
        assert waits == sorted(waits)
        assert waits[-1] == 0.3

    def test_key_jitter_separates_scenarios(self):
        policy = RetryPolicy()
        assert (policy.backoff_s("tol=1.0", 2)
                != policy.backoff_s("tol=1.05", 2))

    def test_key_fraction_is_stable_and_bounded(self):
        for key in ("", "a", "tol=1.0|npus=2", "x" * 500):
            frac = key_fraction(key)
            assert 0.0 <= frac < 1.0
            assert frac == key_fraction(key)

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientError("x"))
        assert policy.is_retryable(WorkerCrashError("x"))
        assert policy.is_retryable(InjectedFault("x"))
        assert policy.is_retryable(OSError("x"))
        assert not policy.is_retryable(ValueError("deterministic"))

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(chunk_timeout_s=0.0)

    def test_null_clock_records_instead_of_waiting(self):
        clock = NullClock()
        clock.sleep(0.25)
        clock.sleep(0.5)
        assert clock.slept == [0.25, 0.5]


class TestFailureRecords:
    def test_error_class_is_rule_stable(self):
        assert error_class(ValueError("path /tmp/x at 0x7f..")) \
            == "ValueError"
        assert error_class(InjectedFault("n")) == "InjectedFault"

    def test_manifest_excludes_the_free_text_detail(self):
        failure = SweepFailure(key="k", error="ValueError", attempts=2,
                               detail="message with /paths and counters")
        assert failure.to_manifest() == {"key": "k", "error": "ValueError",
                                         "attempts": 2}

    def test_quarantine_error_lists_every_key(self):
        exc = SweepQuarantineError([
            SweepFailure(key="a", error="InjectedFault", attempts=3),
            SweepFailure(key="b", error="ValueError", attempts=1),
        ])
        assert "a" in str(exc) and "b" in str(exc)
        assert "strict=False" in str(exc)


# ----------------------------------------------------------------------
# FaultPlan: the deterministic failure script
# ----------------------------------------------------------------------

class TestFaultPlan:
    def test_parse_round_trips_the_grammar(self):
        plan = FaultPlan.parse("fail:0; crash:1@2 ;hang:2@1,3;"
                               "corrupt-shard:0")
        kinds = [s.kind for s in plan.specs]
        assert kinds == ["fail", "crash", "hang", "corrupt-shard"]
        assert plan.specs[1].attempts == (2,)
        assert plan.specs[2].attempts == (1, 3)

    @pytest.mark.parametrize("text", [
        "", "fail", "fail:", "fail:x", "explode:0", "fail:0@", "fail:0@0",
    ])
    def test_parse_rejects_malformed_scripts(self, text):
        with pytest.raises(ValueError):
            FaultPlan.parse(text)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="nope", target=0)
        with pytest.raises(ValueError):
            FaultSpec(kind="fail", target=0, attempts=())
        with pytest.raises(ValueError):
            FaultSpec(kind="hang", target=0, hang_s=0.0)

    def test_resolved_maps_indices_to_keys(self, grid):
        plan = FaultPlan.parse("fail:1").resolved(grid)
        assert plan.specs[0].target == grid[1].key
        assert plan.spec_for(grid[1].key, 1) is not None
        assert plan.spec_for(grid[1].key, 2) is None
        assert plan.spec_for(grid[0].key, 1) is None

    def test_resolved_rejects_out_of_grid_targets(self, grid):
        with pytest.raises(ValueError, match="outside"):
            FaultPlan.parse(f"fail:{len(grid)}").resolved(grid)

    def test_fire_raises_a_retryable_fault(self, grid):
        plan = FaultPlan.parse("fail:0").resolved(grid)
        with pytest.raises(InjectedFault):
            plan.fire(grid[0].key, 1)
        plan.fire(grid[0].key, 2)  # not armed for attempt 2
        assert issubclass(InjectedFault, TransientError)

    def test_hang_fires_through_the_injectable_clock(self, grid):
        plan = FaultPlan(specs=(
            FaultSpec(kind="hang", target=0, hang_s=123.0),
        )).resolved(grid)
        clock = NullClock()
        plan.fire(grid[0].key, 1, clock)
        assert clock.slept == [123.0]

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE == 86


# ----------------------------------------------------------------------
# Serial retries and quarantine
# ----------------------------------------------------------------------

class TestSerialRetries:
    def test_transient_failure_retries_to_identical_rows(self, grid,
                                                         reference):
        clock = NullClock()
        result = ScenarioSweep(list(grid), faults=FaultPlan.parse("fail:0"),
                               clock=clock).run()
        assert result.rows_json() == reference.rows_json()
        assert result.complete
        # exactly one retry happened, on the deterministic schedule
        assert clock.slept == [
            RetryPolicy().backoff_s(grid[0].key, 2)]

    def test_poison_scenario_quarantines_strict(self, grid):
        sweep = ScenarioSweep(list(grid),
                              faults=FaultPlan.parse("fail:1@1,2,3"),
                              clock=NullClock())
        with pytest.raises(SweepQuarantineError) as err:
            sweep.run()
        assert [f.key for f in err.value.failures] == [grid[1].key]
        assert err.value.failures[0].attempts == 3

    def test_keep_going_returns_partial_with_manifest(self, grid,
                                                      reference):
        sweep = ScenarioSweep(list(grid),
                              faults=FaultPlan.parse("fail:1@1,2,3"),
                              strict=False, clock=NullClock())
        result = sweep.run()
        assert not result.complete
        assert len(result.rows) == len(grid) - 1
        assert result.failures_manifest() == [{
            "key": grid[1].key, "error": "InjectedFault", "attempts": 3}]
        assert result.summary()["failures"] == result.failures_manifest()
        # the surviving rows are the reference rows, minus the victim
        surviving = [r for r in reference.rows if r["key"] != grid[1].key]
        assert result.rows == surviving

    def test_failure_manifest_bytes_are_deterministic(self, grid):
        def manifest():
            return ScenarioSweep(
                list(grid), faults=FaultPlan.parse("fail:0@1,2,3"),
                strict=False, clock=NullClock()).run().failures_json()
        assert manifest() == manifest()

    def test_deterministic_error_is_not_retried(self):
        # A het budget beyond the trunk quadrant capacity raises
        # ValueError at pricing time: re-running a pure function cannot
        # change the answer, so quarantine happens on attempt 1.
        bad = scenario_grid(tolerances=(1.0,), het_ws_budgets=(64,))
        clock = NullClock()
        result = ScenarioSweep(list(bad), strict=False,
                               clock=clock).run()
        assert result.rows == []
        assert result.failures_manifest() == [{
            "key": bad[0].key, "error": "ValueError", "attempts": 1}]
        assert clock.slept == []  # no backoff was ever scheduled

    def test_custom_attempt_budget_is_honored(self, grid):
        clock = NullClock()
        sweep = ScenarioSweep(list(grid),
                              retry=RetryPolicy(max_attempts=5),
                              faults=FaultPlan.parse("fail:0@1,2,3,4"),
                              clock=clock)
        result = sweep.run()
        assert result.complete  # succeeded on the fifth attempt
        assert len(clock.slept) == 4


# ----------------------------------------------------------------------
# Journal: checkpoint and resume
# ----------------------------------------------------------------------

class TestJournal:
    def test_interrupted_run_resumes_byte_identical(self, grid, reference,
                                                    tmp_path):
        journal_dir = tmp_path / "journal"
        stream = ScenarioSweep(list(grid),
                               journal_path=journal_dir).run_iter()
        next(stream)
        next(stream)
        stream.close()  # the "crash": two outcomes checkpointed
        assert len(list(journal_dir.glob("outcome-*.json"))) == 2
        resumed = ScenarioSweep(list(grid),
                                resume_from=journal_dir).run()
        assert resumed.rows_json() == reference.rows_json()
        # resume completed the journal for the next resume
        assert len(list(journal_dir.glob("outcome-*.json"))) == len(grid)

    def test_fully_journaled_grid_replays_without_pricing(self, grid,
                                                          reference,
                                                          tmp_path):
        journal_dir = tmp_path / "journal"
        ScenarioSweep(list(grid), journal_path=journal_dir).run()
        replayed = ScenarioSweep(list(grid),
                                 resume_from=journal_dir).run()
        assert replayed.rows_json() == reference.rows_json()

    def test_corrupt_and_stale_records_degrade_to_repricing(
            self, grid, reference, tmp_path):
        journal_dir = tmp_path / "journal"
        ScenarioSweep(list(grid), journal_path=journal_dir).run()
        records = sorted(journal_dir.glob("outcome-*.json"))
        records[0].write_text("{ truncated")
        stale = json.loads(records[1].read_text())
        stale["schema"] = -1
        records[1].write_text(json.dumps(stale))
        journal = SweepJournal(journal_dir)
        outcomes = journal.load()
        assert len(outcomes) == len(grid) - 2
        assert sorted(reason for _, reason in journal.skipped_files) \
            == ["corrupt", "schema"]
        resumed = ScenarioSweep(list(grid),
                                resume_from=journal_dir).run()
        assert resumed.rows_json() == reference.rows_json()

    def test_failures_are_journaled_but_never_replayed(self, grid,
                                                       tmp_path):
        journal_dir = tmp_path / "journal"
        ScenarioSweep(list(grid), journal_path=journal_dir,
                      faults=FaultPlan.parse("fail:0@1,2,3"),
                      strict=False, clock=NullClock()).run()
        journal = SweepJournal(journal_dir)
        failures = journal.load_failures()
        assert [f.error for f in failures] == ["InjectedFault"]
        # the failed key is absent from the replay map, so a resumed run
        # re-attempts it from scratch (the fault may have been transient)
        assert grid[0].key not in journal.load()
        resumed = ScenarioSweep(list(grid),
                                resume_from=journal_dir).run()
        assert resumed.complete

    def test_round_trip_preserves_rows_and_stats(self, grid, tmp_path):
        journal_dir = tmp_path / "journal"
        sweep = ScenarioSweep(list(grid), journal_path=journal_dir)
        originals = {o.key: o for o in sweep.run_iter()}
        loaded = SweepJournal(journal_dir).load()
        assert set(loaded) == set(originals)
        for key, outcome in loaded.items():
            assert isinstance(outcome, SweepOutcome)
            assert outcome.row == originals[key].row
            assert outcome.plan_cache.to_dict() \
                == originals[key].plan_cache.to_dict()


# ----------------------------------------------------------------------
# Parallel recovery: crashes, hangs, in-worker retries
# ----------------------------------------------------------------------

class TestParallelRecovery:
    def test_worker_crash_recovers_byte_identical(self, grid, reference):
        result = ScenarioSweep(list(grid), workers=2, chunksize=2,
                               faults=FaultPlan.parse("crash:1"),
                               clock=NullClock()).run()
        assert result.rows_json() == reference.rows_json()
        assert result.complete

    def test_crash_always_quarantines_as_worker_crash(self, grid):
        # A single-scenario grid keeps the test deterministic: nothing
        # else can be collaterally re-dispatched by the pool deaths.
        victim = [grid[0]]
        result = ScenarioSweep(victim, workers=2,
                               faults=FaultPlan.parse("crash:0@1,2,3"),
                               strict=False, clock=NullClock()).run()
        assert result.rows == []
        assert result.failures_manifest() == [{
            "key": grid[0].key, "error": "WorkerCrashError",
            "attempts": 3}]

    def test_hung_worker_trips_the_watchdog(self, grid, reference):
        result = ScenarioSweep(
            list(grid), workers=2, chunksize=2,
            retry=RetryPolicy(chunk_timeout_s=5.0),
            faults=FaultPlan.parse("hang:0"),
            clock=NullClock()).run()
        assert result.rows_json() == reference.rows_json()

    def test_in_worker_transient_failure_retries(self, grid, reference):
        result = ScenarioSweep(list(grid), workers=2,
                               faults=FaultPlan.parse("fail:3"),
                               clock=NullClock()).run()
        assert result.rows_json() == reference.rows_json()

    def test_parallel_journal_matches_serial_journal_rows(self, grid,
                                                          tmp_path):
        serial_dir, parallel_dir = tmp_path / "s", tmp_path / "p"
        ScenarioSweep(list(grid), journal_path=serial_dir).run()
        ScenarioSweep(list(grid), workers=2, journal_path=parallel_dir,
                      faults=FaultPlan.parse("crash:1"),
                      clock=NullClock()).run()
        serial_rows = {k: o.row
                       for k, o in SweepJournal(serial_dir).load().items()}
        parallel_rows = {
            k: o.row for k, o in SweepJournal(parallel_dir).load().items()}
        assert serial_rows == parallel_rows


# ----------------------------------------------------------------------
# Corrupt plan-store shards surface in the result
# ----------------------------------------------------------------------

class TestCorruptShardDegradation:
    @staticmethod
    def _cold():
        # Cold caches so the warm-up run actually flushes shards: plans
        # already memoized in this process are never re-flushed.
        from repro.core import clear_plan_cache
        from repro.cost import clear_cache
        clear_cache()
        clear_plan_cache()

    def test_corrupt_shard_is_survived_and_reported(self, grid, reference,
                                                    tmp_path):
        store = tmp_path / "store"
        self._cold()
        ScenarioSweep(list(grid), store_path=store).run()
        self._cold()
        result = ScenarioSweep(list(grid), store_path=store,
                               faults=FaultPlan.parse("corrupt-shard:0"),
                               clock=NullClock()).run()
        assert result.rows_json() == reference.rows_json()
        assert result.store_skipped
        assert result.store_skipped[0]["reason"] == "corrupt"
        assert result.summary()["store_skipped"] == result.store_skipped

    def test_healthy_store_reports_no_skips(self, grid, tmp_path):
        store = tmp_path / "store"
        result = ScenarioSweep(list(grid), store_path=store).run()
        assert result.store_skipped == []
        assert "store_skipped" not in result.summary()
