"""Shared fixtures: accelerators, workloads, and schedules."""

from __future__ import annotations

import pytest

from repro.arch import simba_package
from repro.core import match_throughput
from repro.cost import nvdla_chiplet, shidiannao_chiplet
from repro.workloads import build_perception_workload


@pytest.fixture(scope="session")
def os_accel():
    return shidiannao_chiplet()


@pytest.fixture(scope="session")
def ws_accel():
    return nvdla_chiplet()


@pytest.fixture(scope="session")
def workload():
    return build_perception_workload()


@pytest.fixture(scope="session")
def schedule36():
    return match_throughput(build_perception_workload(), simba_package())


@pytest.fixture(scope="session")
def schedule72():
    return match_throughput(build_perception_workload(),
                            simba_package(npus=2))
