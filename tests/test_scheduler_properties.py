"""Property-based tests: scheduler invariants over random workloads.

Hypothesis generates small random pipelines (random group latencies,
instance counts, shardability flags) and checks that Algorithm 1 always
produces a *valid* schedule: budgets hold, no chiplet is double-booked,
sharding never makes the pipeline slower than the unsharded mapping, and
the accounting identities between plans and the busy map are preserved.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import simba_package
from repro.core import ThroughputMatcher
from repro.workloads import dense
from repro.workloads.graph import LayerGroup, PerceptionWorkload, Stage


@st.composite
def small_workloads(draw):
    """A 2-4 stage pipeline of dense groups with random attributes."""
    n_stages = draw(st.integers(min_value=2, max_value=4))
    stages = []
    for si in range(n_stages):
        stage = Stage(f"ST{si}")
        n_groups = draw(st.integers(min_value=1, max_value=3))
        prev_name = None
        for gi in range(n_groups):
            rows = draw(st.sampled_from([16, 48, 160, 320]))
            k = draw(st.sampled_from([64, 128, 256]))
            instances = draw(st.sampled_from([1, 1, 2, 4, 8]))
            layer = dense(f"st{si}g{gi}", (rows, 128), k, 128)
            deps = (prev_name,) if (prev_name is not None
                                    and draw(st.booleans())) else ()
            name = f"G{si}_{gi}"
            stage.add(LayerGroup(
                name=name,
                layers=(layer,),
                stage=f"ST{si}",
                instances=instances,
                row_shardable=(instances == 1 and draw(st.booleans())),
                depends_on=deps,
            ))
            prev_name = name
        stages.append(stage)
    return PerceptionWorkload(stages=stages)


class TestMatcherInvariants:
    @given(workload=small_workloads())
    @settings(max_examples=25, deadline=None)
    def test_schedule_is_always_valid(self, workload):
        package = simba_package()
        schedule = ThroughputMatcher(workload, package).run()

        # 1. All groups scheduled.
        assert set(schedule.groups) == {g.name
                                        for g in workload.all_groups()}

        # 2. No chiplet double-booked across non-colocated groups.
        seen: set[int] = set()
        for name, gs in schedule.groups.items():
            if gs.host is not None:
                continue
            ids = set(gs.chiplet_ids)
            assert not ids & seen
            seen |= ids

        # 3. Stage quadrant budgets hold.
        for stage in workload.stages:
            used = sum(schedule.groups[g.name].plan.n_chiplets
                       for g in stage.groups
                       if schedule.groups[g.name].host is None)
            capacity = sum(package.quadrant_capacity(q)
                           for q in schedule.stage_quadrants[stage.name])
            assert used <= capacity

        # 4. Accounting identity: busy map totals equal plan totals.
        busy_total = sum(schedule.chiplet_busy().values())
        plan_total = sum(
            (gs.plan.span_s if gs.host is not None
             else sum(gs.plan.per_chiplet_busy))
            for gs in schedule.groups.values())
        assert busy_total == plan_total or abs(
            busy_total - plan_total) < 1e-9

    @given(workload=small_workloads())
    @settings(max_examples=25, deadline=None)
    def test_sharding_never_hurts_pipe_latency(self, workload):
        package = simba_package()
        matcher = ThroughputMatcher(workload, package)
        schedule = matcher.run()
        # Unsharded reference: every group on one chiplet.  Colocated tiny
        # groups legally stack on a host chiplet, so the bound allows one
        # colocation threshold per hosted group.
        from repro.core.sharding import plan_group
        accel = package.chiplets[0].accel
        unsharded = max(plan_group(g, 1, accel).pipe_latency_s
                        for g in workload.all_groups())
        hosted = sum(1 for gs in schedule.groups.values()
                     if gs.host is not None)
        slack = hosted * matcher.colocate_threshold_s
        assert schedule.pipe_latency_s <= unsharded + slack + 1e-9

    @given(workload=small_workloads())
    @settings(max_examples=15, deadline=None)
    def test_metrics_are_finite_and_ordered(self, workload):
        schedule = ThroughputMatcher(workload, simba_package()).run()
        assert 0 < schedule.pipe_latency_s < 10
        assert schedule.e2e_latency_s >= schedule.pipe_latency_s - 1e-12
        assert schedule.energy_j > 0
        assert 0 < schedule.utilization <= 1
