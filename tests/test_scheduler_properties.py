"""Property-based tests: scheduler invariants over random workloads.

Hypothesis generates small random pipelines (random group latencies,
instance counts, shardability flags) and checks that Algorithm 1 always
produces a *valid* schedule: budgets hold, no chiplet is double-booked,
sharding never makes the pipeline slower than the unsharded mapping, and
the accounting identities between plans and the busy map are preserved.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import (
    QUADRANT_NAMES,
    DramBudget,
    QuadrantOverride,
    QuadrantOverrides,
    simba_package,
    transfer_cost,
)
from repro.core import ThroughputMatcher
from repro.workloads import dense
from repro.workloads.graph import LayerGroup, PerceptionWorkload, Stage


@st.composite
def small_workloads(draw):
    """A 2-4 stage pipeline of dense groups with random attributes."""
    n_stages = draw(st.integers(min_value=2, max_value=4))
    stages = []
    for si in range(n_stages):
        stage = Stage(f"ST{si}")
        n_groups = draw(st.integers(min_value=1, max_value=3))
        prev_name = None
        for gi in range(n_groups):
            rows = draw(st.sampled_from([16, 48, 160, 320]))
            k = draw(st.sampled_from([64, 128, 256]))
            instances = draw(st.sampled_from([1, 1, 2, 4, 8]))
            layer = dense(f"st{si}g{gi}", (rows, 128), k, 128)
            deps = (prev_name,) if (prev_name is not None
                                    and draw(st.booleans())) else ()
            name = f"G{si}_{gi}"
            stage.add(LayerGroup(
                name=name,
                layers=(layer,),
                stage=f"ST{si}",
                instances=instances,
                row_shardable=(instances == 1 and draw(st.booleans())),
                depends_on=deps,
            ))
            prev_name = name
        stages.append(stage)
    return PerceptionWorkload(stages=stages)


class TestMatcherInvariants:
    @given(workload=small_workloads())
    @settings(max_examples=25, deadline=None)
    def test_schedule_is_always_valid(self, workload):
        package = simba_package()
        schedule = ThroughputMatcher(workload, package).run()

        # 1. All groups scheduled.
        assert set(schedule.groups) == {g.name
                                        for g in workload.all_groups()}

        # 2. No chiplet double-booked across non-colocated groups.
        seen: set[int] = set()
        for name, gs in schedule.groups.items():
            if gs.host is not None:
                continue
            ids = set(gs.chiplet_ids)
            assert not ids & seen
            seen |= ids

        # 3. Stage quadrant budgets hold.
        for stage in workload.stages:
            used = sum(schedule.groups[g.name].plan.n_chiplets
                       for g in stage.groups
                       if schedule.groups[g.name].host is None)
            capacity = sum(package.quadrant_capacity(q)
                           for q in schedule.stage_quadrants[stage.name])
            assert used <= capacity

        # 4. Accounting identity: busy map totals equal plan totals.
        busy_total = sum(schedule.chiplet_busy().values())
        plan_total = sum(
            (gs.plan.span_s if gs.host is not None
             else sum(gs.plan.per_chiplet_busy))
            for gs in schedule.groups.values())
        assert busy_total == plan_total or abs(
            busy_total - plan_total) < 1e-9

    @given(workload=small_workloads())
    @settings(max_examples=25, deadline=None)
    def test_sharding_never_hurts_pipe_latency(self, workload):
        package = simba_package()
        matcher = ThroughputMatcher(workload, package)
        schedule = matcher.run()
        # Unsharded reference: every group on one chiplet.  Colocated tiny
        # groups legally stack on a host chiplet, so the bound allows one
        # colocation threshold per hosted group.
        from repro.core.sharding import plan_group
        accel = package.chiplets[0].accel
        unsharded = max(plan_group(g, 1, accel).pipe_latency_s
                        for g in workload.all_groups())
        hosted = sum(1 for gs in schedule.groups.values()
                     if gs.host is not None)
        slack = hosted * matcher.colocate_threshold_s
        assert schedule.pipe_latency_s <= unsharded + slack + 1e-9

    @given(workload=small_workloads())
    @settings(max_examples=15, deadline=None)
    def test_metrics_are_finite_and_ordered(self, workload):
        schedule = ThroughputMatcher(workload, simba_package()).run()
        assert 0 < schedule.pipe_latency_s < 10
        assert schedule.e2e_latency_s >= schedule.pipe_latency_s - 1e-12
        assert schedule.energy_j > 0
        assert 0 < schedule.utilization <= 1


@st.composite
def quadrant_override_specs(draw):
    """A random per-quadrant override spec (>= 1 quadrant touched)."""
    names = draw(st.sets(st.sampled_from(QUADRANT_NAMES),
                         min_size=1, max_size=len(QUADRANT_NAMES)))
    overrides = []
    for name in sorted(names, key=QUADRANT_NAMES.index):
        dataflow = draw(st.sampled_from([None, "os", "ws", "rs"]))
        ghz = draw(st.sampled_from([None, 0.5, 1.0, 1.6, 2.0]))
        tile = draw(st.sampled_from([None, (8, 8), (16, 16)]))
        if dataflow is None and ghz is None and tile is None:
            dataflow = "ws"
        overrides.append((name, QuadrantOverride(
            dataflow=dataflow, frequency_ghz=ghz, native_tile=tile)))
    return QuadrantOverrides(tuple(overrides))


class TestHeterogeneousPackageInvariants:
    """Scheduler invariants under randomized quadrant overrides.

    The PR 1 heterogeneous-utilization fix (each chiplet contributes
    PE-cycles at its *own* clock) and the per-instance hand-off energy
    accounting had no hetero-axis coverage: every prior property test
    ran on a homogeneous package.  These drive Algorithm 1 over random
    mixed-chiplet packages — random dataflows, clocks, and tiles per
    quadrant — with and without a DRAM budget attached.
    """

    @given(workload=small_workloads(), spec=quadrant_override_specs(),
           dram_gbps=st.sampled_from([None, 2.0, 50.0]))
    @settings(max_examples=25, deadline=None)
    def test_hetero_schedule_invariants(self, workload, spec, dram_gbps):
        package = spec.apply(simba_package())
        dram = (DramBudget(bandwidth_bytes_per_s=dram_gbps * 1e9)
                if dram_gbps is not None else None)
        dram_bytes = 50_000_000 if dram is not None else 0
        schedule = ThroughputMatcher(
            workload, package,
            dram=dram, dram_bytes_per_frame=dram_bytes,
            plan_context=f"het:{spec.token}").run()

        # 1. Energy stays additive: the total is exactly the sum of its
        #    per-group compute, NoP, and DRAM components...
        component_sum = (schedule.compute_energy_j + schedule.nop_energy_j
                         + schedule.dram_energy_j)
        assert schedule.energy_j == component_sum
        plan_sum = sum(gs.plan.energy_j for gs in schedule.groups.values())
        assert abs(schedule.compute_energy_j - plan_sum) <= 1e-12 * max(
            1.0, plan_sum)
        # ... and pipeline hand-off energy scales with the instance
        # count (the PR 1 fix: latency is per instance, energy is not).
        for edge in schedule.nop_edges():
            if edge.src_group != edge.dst_group:
                continue
            group = workload.find_group(edge.src_group)
            segments = schedule.groups[edge.src_group].plan.segments
            per_hop = transfer_cost(group.output_bytes_per_instance, 1,
                                    package.nop)
            expected = per_hop.energy_j * (segments - 1) * group.instances
            assert edge.energy_j == expected

        # 2. The steady-state pipe is never faster than either resource:
        #    the busiest chiplet or the per-frame DRAM stream.
        assert schedule.pipe_latency_s >= \
            schedule.compute_pipe_latency_s - 1e-15
        assert schedule.pipe_latency_s >= schedule.dram_time_s - 1e-15
        assert schedule.pipe_latency_s == max(
            schedule.compute_pipe_latency_s, schedule.dram_time_s)

        # 3. Per-chiplet-frequency utilization stays a fraction: each
        #    chiplet's PE-cycles are priced at its own clock, so mixed
        #    frequencies must never push utilization outside (0, 1] —
        #    package-wide and per stage quadrant alike.
        assert 0 < schedule.utilization <= 1
        for util in schedule.stage_utilization().values():
            assert 0 < util <= 1

    @given(spec=quadrant_override_specs())
    @settings(max_examples=10, deadline=None)
    def test_noop_and_real_overrides_key_disjoint_contexts(self, spec):
        # Any hetero spec (even one spelling out the defaults) scopes
        # its plans away from the homogeneous context.
        from repro.sweep import Scenario
        scenario = Scenario(hetero=spec.token)
        assert scenario.plan_context == f"het:{scenario.hetero}"
        assert scenario.plan_context != Scenario().plan_context
