"""Tests for per-quadrant heterogeneous package composition.

Covers the QuadrantOverrides spec (token grammar, canonicalization,
validation), its materialization through MCMPackage.with_accels, the
package composition strings, and the refactored core/hetero.py flow —
including the acceptance claim that a trunk-only ``ws`` override
reproduces the hetero.py Table I composition through the generic path.
"""

import pytest

from repro.arch import (
    QUADRANT_NAMES,
    QuadrantOverride,
    QuadrantOverrides,
    hetero_cells,
    package_composition,
    quadrant_ids,
    simba_package,
)
from repro.cost import nvdla_chiplet, simba_chiplet


class TestQuadrantOverrideParsing:
    def test_full_token_round_trips(self):
        spec = QuadrantOverrides.parse("trunk:ws@1.2/8x8")
        assert spec.token == "trunk:ws@1.2/8x8"
        ov = spec.get("trunk")
        assert ov.dataflow == "ws"
        assert ov.frequency_ghz == 1.2
        assert ov.native_tile == (8, 8)

    def test_partial_tokens(self):
        assert QuadrantOverrides.parse("temporal:@1.5").get(
            "temporal") == QuadrantOverride(frequency_ghz=1.5)
        assert QuadrantOverrides.parse("fe:/8x8").get(
            "fe") == QuadrantOverride(native_tile=(8, 8))
        assert QuadrantOverrides.parse("spatial:rs").get(
            "spatial") == QuadrantOverride(dataflow="rs")

    def test_canonicalization_is_spelling_independent(self):
        a = QuadrantOverrides.parse("trunk:WS@1.20+fe:os")
        b = QuadrantOverrides.parse("fe:os + trunk:ws@1.2")
        assert a == b
        assert a.token == b.token == "fe:os+trunk:ws@1.2"

    def test_unknown_quadrant_lists_valid_names(self):
        with pytest.raises(ValueError, match="unknown quadrant 'bogus'"):
            QuadrantOverrides.parse("bogus:ws")
        with pytest.raises(ValueError, match="fe, spatial, temporal, trunk"):
            QuadrantOverrides.parse("bogus:ws")

    def test_unknown_dataflow_lists_valid_styles(self):
        with pytest.raises(ValueError, match="unknown dataflow 'xx'"):
            QuadrantOverrides.parse("trunk:xx")
        with pytest.raises(ValueError, match="os, ws, rs"):
            QuadrantOverrides.parse("trunk:xx")

    def test_malformed_tokens_rejected(self):
        with pytest.raises(ValueError, match="QUADRANT:SPEC"):
            QuadrantOverrides.parse("trunk")
        with pytest.raises(ValueError,
                           match="empty quadrant override.*'trunk:'"):
            QuadrantOverrides.parse("trunk:")
        with pytest.raises(ValueError, match="bad frequency"):
            QuadrantOverrides.parse("trunk:ws@fast")
        with pytest.raises(ValueError, match="must be positive"):
            QuadrantOverrides.parse("trunk:ws@0")
        with pytest.raises(ValueError, match="ROWSxCOLS"):
            QuadrantOverrides.parse("trunk:ws/8x")
        with pytest.raises(ValueError,
                           match="positive integers.*'trunk:ws/0x8'"):
            QuadrantOverrides.parse("trunk:ws/0x8")
        with pytest.raises(ValueError, match="duplicate quadrant"):
            QuadrantOverrides.parse("trunk:ws+trunk:os")
        with pytest.raises(ValueError, match="empty hetero spec"):
            QuadrantOverrides.parse("  ")

    def test_empty_override_record_rejected(self):
        with pytest.raises(ValueError, match="empty quadrant override"):
            QuadrantOverride()

    def test_partial_count_token_round_trips(self):
        spec = QuadrantOverrides.parse("trunk:ws#4")
        assert spec.token == "trunk:ws#4"
        ov = spec.get("trunk")
        assert ov == QuadrantOverride(dataflow="ws", count=4)
        full = QuadrantOverrides.parse("trunk:ws@1.2/8x8#2")
        assert full.token == "trunk:ws@1.2/8x8#2"
        assert full.get("trunk").count == 2

    def test_count_tokens_rejected(self):
        with pytest.raises(ValueError, match="bad count"):
            QuadrantOverrides.parse("trunk:ws#four")
        with pytest.raises(ValueError, match="bad count"):
            QuadrantOverrides.parse("trunk:ws#")
        with pytest.raises(ValueError, match="positive integer"):
            QuadrantOverrides.parse("trunk:ws#0")
        # a count alone overrides no hardware: parse error, not a no-op
        with pytest.raises(ValueError, match="#COUNT alone"):
            QuadrantOverrides.parse("trunk:#4")


class TestQuadrantOverrideApply:
    def test_apply_layers_on_base_accel(self):
        base = simba_chiplet("os")
        ov = QuadrantOverrides.parse("trunk:ws@1.2").get("trunk")
        accel = ov.apply(base)
        assert accel.dataflow == "ws"
        assert accel.frequency_hz == 1.2e9
        assert accel.native_tile == base.native_tile  # kept

    def test_noop_override_is_identical_config(self):
        base = simba_chiplet("os")
        ov = QuadrantOverride(dataflow="os", frequency_ghz=2.0)
        assert ov.apply(base) == base  # same plans, same store entries


class TestPackageMaterialization:
    def test_whole_quadrant_rewritten(self):
        pkg = QuadrantOverrides.parse("trunk:ws").apply(simba_package())
        trunk = pkg.quadrant(3)
        assert len(trunk) == 9
        assert all(c.dataflow == "ws" for c in trunk)
        for q in (0, 1, 2):
            assert all(c.dataflow == "os" for c in pkg.quadrant(q))

    def test_multi_module_override_hits_every_module(self):
        pkg = QuadrantOverrides.parse("trunk:ws").apply(
            simba_package(npus=2))
        for q in (3, 7):  # trunk quadrant of both modules
            assert all(c.dataflow == "ws" for c in pkg.quadrant(q))
        assert all(c.dataflow == "os" for c in pkg.quadrant(4))

    def test_explicit_grid_package_supported(self):
        pkg = QuadrantOverrides.parse("trunk:ws").apply(
            simba_package(topology="torus-8x8"))
        assert all(c.dataflow == "ws" for c in pkg.quadrant(3))
        assert pkg.topology.kind == "torus"

    def test_with_accels_rejects_unknown_ids(self):
        with pytest.raises(KeyError, match="not in package"):
            simba_package().with_accels({999: nvdla_chiplet()})

    def test_composition_string(self):
        pkg = QuadrantOverrides.parse(
            "temporal:@1.5+trunk:ws@1.2").apply(simba_package())
        assert package_composition(pkg) == (
            "fe:os@2|spatial:os@2|temporal:os@1.5|trunk:ws@1.2")
        assert package_composition(simba_package()) == (
            "fe:os@2|spatial:os@2|temporal:os@2|trunk:os@2")

    def test_partial_count_rewrites_corner_cells_only(self):
        pkg = QuadrantOverrides.parse("trunk:ws#2").apply(simba_package())
        ws = sorted(c.coords for c in pkg.chiplets if c.dataflow == "ws")
        # the Het(2) corner policy repro.core.hetero has always used
        assert ws == [(5, 4), (5, 5)]
        assert sum(c.dataflow == "os" for c in pkg.quadrant(3)) == 7
        # a partially-rewritten quadrant reports as mixed
        assert "trunk:mixed" in package_composition(pkg)

    def test_count_exceeding_quadrant_capacity_rejected(self):
        with pytest.raises(ValueError, match="9 chiplet"):
            QuadrantOverrides.parse("trunk:ws#10").apply(simba_package())
        # whole-quadrant count is fine and equals the uncounted override
        a = QuadrantOverrides.parse("trunk:ws#9").apply(simba_package())
        b = QuadrantOverrides.parse("trunk:ws").apply(simba_package())
        assert [c.accel for c in a.chiplets] == [c.accel for c in b.chiplets]

    def test_quadrant_names_cover_the_standard_tiling(self):
        assert quadrant_ids("fe", simba_package()) == [0]
        assert quadrant_ids("trunk", simba_package(npus=2)) == [3, 7]
        assert len(QUADRANT_NAMES) == 4


class TestHeteroFlowComposition:
    """core/hetero.py as a composition of the general mechanism."""

    def test_hetero_cells_keeps_the_corner_policy(self):
        # The Het(k) selection prefers the trunk-quadrant corner farthest
        # from the fusion stages — the policy hetero.py has always used.
        pkg = simba_package()
        cells = hetero_cells(pkg, (3,), 2)
        assert [c.coords for c in cells] == [(5, 5), (5, 4)]
        # count=None selects the whole quadrant
        assert len(hetero_cells(pkg, (3,))) == 9

    def test_trunk_ws_override_reproduces_table1_composition(self):
        """Acceptance: a trunk-only ws override == hetero.py's layout.

        The generic path (Scenario ``hetero`` axis -> QuadrantOverrides
        -> with_accels) must produce the exact package layout hetero.py
        builds for the full-quadrant WS column of Table I, and the
        sweep's generic ``het_ws_budget`` path must reproduce its trunk
        pipe latency.
        """
        from repro.core import schedule_heterogeneous
        from repro.sweep import Scenario, run_scenario

        legacy = schedule_heterogeneous(ws_chiplets=9)
        generic = Scenario(hetero="trunk:ws").package()
        legacy_ws = {c.coords for c in legacy.package.chiplets
                     if c.dataflow == "ws"}
        generic_ws = {c.coords for c in generic.chiplets
                      if c.dataflow == "ws"}
        assert legacy_ws == generic_ws
        assert [c.dataflow for c in legacy.package.chiplets] == \
            [c.dataflow for c in generic.chiplets]
        # Table I's WS-column pipe latency through the generic sweep path
        # (the same DSE the hetero.py flow embeds).
        row = run_scenario(Scenario(het_ws_budget=9))
        assert row["trunk_pipe_ms"] == pytest.approx(
            legacy.trunk_config.pipe_ms)
        assert row["trunk_pipe_ms"] == pytest.approx(
            legacy.pipe_latency_s * 1e3)  # WS is the bottleneck (Table I)

    def test_mixed_package_matcher_beats_unsharded_dse_trunks(self):
        # Algorithm 1 on the mixed package may row-shard the WS trunks,
        # so the generic schedule can only improve on the shard-free DSE
        # mapping hetero.py reports for the WS column.
        from repro.core import schedule_heterogeneous
        from repro.sweep import Scenario

        legacy = schedule_heterogeneous(ws_chiplets=9)
        schedule = Scenario(hetero="trunk:ws").build().schedule()
        assert schedule.pipe_latency_s <= legacy.pipe_latency_s + 1e-12

    def test_het2_layout_unchanged_by_refactor(self):
        # The partial Het(2) embedding keeps its exact pre-refactor
        # placement (corner cells of the trunk quadrant).
        from repro.core import schedule_heterogeneous
        het2 = schedule_heterogeneous(ws_chiplets=2)
        ws = sorted(c.coords for c in het2.package.chiplets
                    if c.dataflow == "ws")
        assert ws == [(5, 4), (5, 5)]

    def test_count_token_matches_legacy_het_k_layout(self):
        # The #COUNT axis token embeds exactly the hetero.py Het(k)
        # package, so the sweep/design axis speaks the paper's Table I
        # partial rows too.
        from repro.core import schedule_heterogeneous
        from repro.sweep import Scenario
        legacy = schedule_heterogeneous(ws_chiplets=2)
        generic = Scenario(hetero="trunk:ws#2").package()
        assert [c.dataflow for c in legacy.package.chiplets] == \
            [c.dataflow for c in generic.chiplets]
