"""Tests for the process-wide plan cache."""

import pytest

from repro.core import (
    PlanCache,
    TrunkDSE,
    clear_plan_cache,
    get_plan_cache,
    next_shard_step,
    plan_cache_stats,
    plan_group,
)


@pytest.fixture
def group(workload):
    return workload.find_group("S_FFN")


class TestPlanCache:
    def test_hit_and_miss_counting(self):
        cache = PlanCache()
        calls = []

        def compute():
            calls.append(1)
            return None

        assert cache.get_or_compute("g", 1, "a", "best", compute) is None
        assert cache.get_or_compute("g", 1, "a", "best", compute) is None
        assert len(calls) == 1  # second lookup served from cache
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_clear_resets_everything(self):
        cache = PlanCache()
        cache.get_or_compute("g", 1, "a", "best", lambda: 42)
        cache.clear()
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (0, 0, 0)

    def test_stats_delta_and_merge(self):
        from repro.core import CacheStats
        a = CacheStats(hits=10, misses=4, entries=4)
        b = CacheStats(hits=3, misses=1, entries=4)
        assert (a - b).hits == 7
        merged = a + b
        assert (merged.hits, merged.misses) == (13, 5)


class TestSharedPlanGroupCache:
    def test_plan_group_is_served_from_shared_cache(self, group, os_accel):
        clear_plan_cache()
        first = plan_group(group, 2, os_accel)
        before = plan_cache_stats()
        second = plan_group(group, 2, os_accel)
        after = plan_cache_stats()
        assert second is first  # identical object, not a recompute
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_infeasible_plans_are_cached_too(self, group, os_accel):
        clear_plan_cache()
        n_bad = 10_000  # no shard mode can use this many chiplets
        assert plan_group(group, n_bad, os_accel) is None
        before = plan_cache_stats()
        assert plan_group(group, n_bad, os_accel) is None
        assert plan_cache_stats().hits == before.hits + 1

    def test_trunk_dse_shares_cache_across_instances(self):
        clear_plan_cache()
        TrunkDSE().table()
        misses_after_first = plan_cache_stats().misses
        TrunkDSE().table()  # a fresh instance must not recompute plans
        assert plan_cache_stats().misses == misses_after_first

    def test_global_cache_is_a_singleton(self):
        assert get_plan_cache() is get_plan_cache()


class TestNextShardStepCurrentPlan:
    def test_current_plan_short_circuits_replanning(self, group, os_accel):
        current = plan_group(group, 1, os_accel)
        with_current = next_shard_step(group, 1, 4, os_accel,
                                       current=current)
        without = next_shard_step(group, 1, 4, os_accel)
        assert with_current == without

    def test_mismatched_current_plan_rejected(self, group, os_accel):
        wrong = plan_group(group, 2, os_accel)
        with pytest.raises(ValueError):
            next_shard_step(group, 1, 4, os_accel, current=wrong)

    def test_matcher_results_unchanged_by_wiring(self, schedule36):
        # The matcher passes its held plans into next_shard_step; the
        # resulting schedule must equal the from-scratch fixture numbers.
        assert schedule36.pipe_latency_s * 1e3 == pytest.approx(89.24,
                                                                rel=0.01)
