"""Unit tests for the perception workload builders."""

import pytest

from repro.workloads import (
    LayerKind,
    PipelineConfig,
    build_detection_layers,
    build_lane_layers,
    build_occupancy_layers,
    build_perception_workload,
)
from repro.workloads.bifpn import build_fe_bfpn
from repro.workloads.resnet import build_resnet18_fe


class TestResNet:
    def test_stage_planes_match_paper_grids(self):
        layers = {l.name: l for l in build_resnet18_fe()}
        assert (layers["layer2.block1.conv1"].out_h,
                layers["layer2.block1.conv1"].out_w) == (90, 160)
        assert (layers["layer3.block1.conv1"].out_h,
                layers["layer3.block1.conv1"].out_w) == (45, 80)
        assert (layers["layer4.block1.conv1"].out_h,
                layers["layer4.block1.conv1"].out_w) == (23, 40)
        assert (layers["p6.conv"].out_h, layers["p6.conv"].out_w) == (12, 20)

    def test_channel_progression(self):
        layers = {l.name: l for l in build_resnet18_fe()}
        assert layers["layer1.block1.conv1"].k == 64
        assert layers["layer4.block2.conv2"].k == 512

    def test_downsample_only_on_transition_blocks(self):
        names = [l.name for l in build_resnet18_fe()]
        assert "layer2.block1.downsample" in names
        assert "layer2.block2.downsample" not in names
        assert "layer1.block1.downsample" not in names

    def test_input_resolution_scales_planes(self):
        half = {l.name: l for l in build_resnet18_fe((360, 640))}
        assert (half["layer2.block1.conv1"].out_h,
                half["layer2.block1.conv1"].out_w) == (45, 80)


class TestFeBfpn:
    def test_chain_ends_in_token_grid_output(self):
        chain = build_fe_bfpn(build_resnet18_fe())
        out = chain[-1]
        assert (out.out_h, out.out_w) == (20, 80)
        assert out.k == 256  # paper Fig. 2: per-camera 20x80x256

    def test_bifpn_block_count_scales_chain(self):
        one = build_fe_bfpn(build_resnet18_fe(), n_blocks=1)
        two = build_fe_bfpn(build_resnet18_fe(), n_blocks=2)
        assert len(two) > len(one)

    def test_contains_separable_fusion_nodes(self):
        chain = build_fe_bfpn(build_resnet18_fe())
        kinds = {l.kind for l in chain}
        assert LayerKind.DWCONV in kinds
        assert LayerKind.POOL in kinds


class TestTrunkBuilders:
    def test_occupancy_upscale_chain(self):
        layers = build_occupancy_layers(upsample_stages=4)
        deconvs = [l for l in layers if l.kind is LayerKind.DECONV]
        assert len(deconvs) == 4
        assert (deconvs[-1].out_h, deconvs[-1].out_w) == (320, 1280)

    def test_occupancy_stage_bounds(self):
        with pytest.raises(ValueError):
            build_occupancy_layers(upsample_stages=0)
        with pytest.raises(ValueError):
            build_occupancy_layers(upsample_stages=7)

    def test_lane_levels_and_context(self):
        full = build_lane_layers(context_fraction=1.0)
        pruned = build_lane_layers(context_fraction=0.5)
        assert len(full) == len(pruned)
        total_full = sum(l.macs for l in full)
        total_pruned = sum(l.macs for l in pruned)
        assert total_pruned < 0.75 * total_full

    def test_lane_context_validation(self):
        with pytest.raises(ValueError):
            build_lane_layers(context_fraction=0.0)

    def test_detection_head_structure(self):
        layers = build_detection_layers()
        convs = [l for l in layers if l.kind is LayerKind.CONV]
        assert len(convs) == 6  # 3 convs x (cls + box)


class TestPipelineAssembly:
    def test_default_config_matches_paper(self):
        cfg = PipelineConfig()
        assert cfg.cameras == 8
        assert cfg.t_frames == 12
        assert cfg.grid == (200, 80)
        assert cfg.token_grid == (20, 80)

    def test_fe_group_is_per_camera(self, workload):
        fe = workload.find_group("FE_BFPN")
        assert fe.instances == 8
        assert fe.pipeline_splittable
        assert not fe.row_shardable

    def test_fusion_dependencies(self, workload):
        s_attn = workload.find_group("S_ATTN")
        assert set(s_attn.depends_on) == {"S_Q_PROJ", "S_KV_PROJ"}
        t_pool = workload.find_group("T_POOL")
        assert t_pool.depends_on == ("T_FFN",)

    def test_trunk_input_channels_flow_from_t_pool(self, workload):
        t_pool = workload.find_group("T_POOL")
        assert t_pool.output_layer.k == 300  # paper: 1x20x80x300
        occ = workload.find_group("OCC_TR")
        assert occ.layers[0].c == 300

    def test_config_overrides_propagate(self):
        wl = build_perception_workload(
            PipelineConfig(cameras=4, t_frames=6))
        assert wl.find_group("FE_BFPN").instances == 4
        assert wl.find_group("T_FFN").instances == 6

    def test_lane_context_override(self):
        lean = build_perception_workload(
            PipelineConfig(lane_context=0.25))
        full = build_perception_workload(
            PipelineConfig(lane_context=1.0))
        assert (lean.find_group("LANE_TR").macs_per_instance
                < full.find_group("LANE_TR").macs_per_instance)
