"""Cross-module integration tests: the full flow, end to end.

These tie the subsystems together the way a user would: build -> validate
-> schedule -> serialize -> stream -> visualize, asserting the views stay
mutually consistent.
"""

import json

import pytest

from repro.arch import dram_report, simba_package
from repro.core import match_throughput
from repro.io import schedule_to_dict
from repro.sim import stream_validate
from repro.viz import chiplet_labels, render_floorplan
from repro.workloads import (
    PipelineConfig,
    build_perception_workload,
    check_workload,
)


class TestFullFlow:
    def test_build_validate_schedule_stream(self):
        config = PipelineConfig(cameras=4, t_frames=6)
        workload = build_perception_workload(config)
        check_workload(workload)
        schedule = match_throughput(workload, simba_package())
        result = stream_validate(schedule, n_frames=16)
        assert result.prediction_error < 0.05
        report = dram_report(workload, config)
        assert report.sustainable

    def test_serialized_view_matches_live_schedule(self, schedule36):
        payload = json.loads(json.dumps(schedule_to_dict(schedule36)))
        busy = schedule36.chiplet_busy()
        for name, entry in payload["groups"].items():
            gs = schedule36.groups[name]
            assert entry["chiplets"] == list(gs.chiplet_ids)
            assert entry["plan"]["mode"] == gs.plan.mode
        # Pipe latency in the dump equals the busiest chiplet's load.
        assert payload["metrics"]["pipe_ms"] == pytest.approx(
            max(busy.values()) * 1e3)

    def test_floorplan_consistent_with_busy_map(self, schedule36):
        labels = chiplet_labels(schedule36)
        busy = schedule36.chiplet_busy()
        idle = [cid for cid, b in busy.items() if b == 0.0]
        for cid in idle:
            assert cid not in labels
        text = render_floorplan(schedule36)
        assert text.count("idle") == len(idle)

    def test_dual_package_flow(self):
        workload = build_perception_workload()
        schedule = match_throughput(workload, simba_package(npus=2))
        text = render_floorplan(schedule)
        # 12-wide mesh renders 12 columns of cells.
        first_border = text.splitlines()[0]
        assert first_border.count("+") == 13
        result = stream_validate(schedule, n_frames=8)
        assert result.measured_pipe_s < 0.06  # ~46 ms

    def test_stream_energy_independent_path(self, schedule36):
        # Energy is per-frame and schedule-derived; the DES must not
        # change what a frame costs.
        before = schedule36.energy_j
        stream_validate(schedule36, n_frames=8)
        assert schedule36.energy_j == before


class TestConfigVariants:
    @pytest.mark.parametrize("cams,frames", [(4, 6), (6, 12), (8, 24)])
    def test_matcher_succeeds_across_configs(self, cams, frames):
        config = PipelineConfig(cameras=cams, t_frames=frames)
        workload = build_perception_workload(config)
        schedule = match_throughput(workload, simba_package())
        assert schedule.pipe_latency_s > 0
        assert schedule.e2e_latency_s >= schedule.pipe_latency_s
        assert 0 < schedule.utilization <= 1

    def test_occ_stage_variants_schedule(self):
        for stages in (1, 2, 4):
            config = PipelineConfig(occ_stages=stages)
            workload = build_perception_workload(config)
            schedule = match_throughput(workload, simba_package())
            assert schedule.pipe_latency_s > 0
