"""Tests for the discrete-event stream simulator."""

import pytest

from repro.sim.stream import StreamSimulator, stream_validate


class TestStreamValidation:
    def test_measured_pipe_matches_analytical(self, schedule36):
        result = stream_validate(schedule36, n_frames=32)
        # The DES must confirm the analytical steady-state prediction.
        assert result.prediction_error < 0.02

    def test_dual_npu_throughput_also_validates(self, schedule72):
        result = stream_validate(schedule72, n_frames=32)
        assert result.prediction_error < 0.05

    def test_first_frame_latency_near_e2e(self, schedule36):
        result = stream_validate(schedule36, n_frames=8)
        # An empty pipeline processes frame 0 in about the analytical E2E
        # (the DES omits only second-order NoP terms).
        assert result.first_frame_latency_s == pytest.approx(
            schedule36.e2e_latency_s, rel=0.05)

    def test_departures_monotone(self, schedule36):
        result = stream_validate(schedule36, n_frames=16)
        deps = [f.departure_s for f in result.frames]
        assert all(a < b for a, b in zip(deps, deps[1:]))

    def test_bottleneck_chiplet_saturates(self, schedule36):
        result = stream_validate(schedule36, n_frames=32)
        assert max(result.chiplet_occupancy.values()) > 0.85

    def test_paced_admission_keeps_latency_bounded(self, schedule36):
        sim = StreamSimulator(schedule36)
        paced = sim.run(n_frames=32,
                        arrival_period_s=schedule36.pipe_latency_s * 1.01)
        # At or below the sustainable rate, frame latency stays near E2E
        # instead of growing with queue depth.
        assert paced.steady_latency_s < 1.5 * schedule36.e2e_latency_s

    def test_saturated_admission_grows_queues(self, schedule36):
        flooded = stream_validate(schedule36, n_frames=32)
        assert flooded.steady_latency_s > flooded.first_frame_latency_s

    def test_perception_pipeline_misses_30fps_on_one_npu(self, schedule36):
        # ~89 ms pipe latency sustains ~11 FPS; the 30 FPS camera rate
        # needs further scaling (the paper's dual-NPU motivation).
        result = stream_validate(schedule36, n_frames=16)
        assert not result.meets_target_fps
        assert 9 < result.sustainable_fps < 14

    def test_validation_errors(self, schedule36):
        with pytest.raises(ValueError):
            StreamSimulator(schedule36, target_fps=0)
        with pytest.raises(ValueError):
            StreamSimulator(schedule36).run(n_frames=1)
