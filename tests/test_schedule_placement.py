"""Tests for schedule metrics accounting and NoP-aware placement."""

import pytest

from repro.core.placement import default_stage_quadrants, place


class TestChipletBusy:
    def test_busy_covers_all_chiplets(self, schedule36):
        busy = schedule36.chiplet_busy()
        assert set(busy) == {c.chiplet_id
                             for c in schedule36.package.chiplets}

    def test_pipe_is_max_busy(self, schedule36):
        busy = schedule36.chiplet_busy()
        assert schedule36.pipe_latency_s == pytest.approx(max(busy.values()))

    def test_colocated_span_lands_on_host_chiplet(self, schedule36):
        host_id = schedule36.chiplets_of("S_Q_PROJ")[0]
        attn_ids = schedule36.groups["S_ATTN"].chiplet_ids
        assert host_id == attn_ids[0]
        busy = schedule36.chiplet_busy()
        attn_plan = schedule36.groups["S_ATTN"].plan
        q_plan = schedule36.groups["S_Q_PROJ"].plan
        assert busy[host_id] == pytest.approx(
            attn_plan.per_chiplet_busy[0] + q_plan.span_s)


class TestNoPAccounting:
    def test_edges_cover_stage_boundaries(self, schedule36):
        pairs = {(e.src_group, e.dst_group)
                 for e in schedule36.nop_edges()}
        assert ("FE_BFPN", "S_LIFT") in pairs
        assert ("S_KV_PROJ", "S_ATTN") in pairs
        assert ("T_FFN", "T_POOL") in pairs

    def test_energy_includes_nop(self, schedule36):
        assert schedule36.energy_j == pytest.approx(
            schedule36.compute_energy_j + schedule36.nop_energy_j)

    def test_stage_span_at_least_longest_group(self, schedule36):
        for stage in schedule36.workload.stages:
            span = schedule36.stage_span_s(stage.name)
            for g in stage.groups:
                assert span >= schedule36.groups[g.name].plan.span_s - 1e-12

    def test_e2e_at_least_sum_of_stage_spans(self, schedule36):
        total = sum(schedule36.stage_span_s(s.name)
                    for s in schedule36.workload.stages)
        assert schedule36.e2e_latency_s >= total - 1e-12


class TestPlacement:
    def test_default_quadrant_map(self, workload):
        from repro.arch import simba_package
        mapping = default_stage_quadrants(workload, simba_package())
        assert mapping == {"FE_BFPN": (0,), "S_FUSE": (1,),
                           "T_FUSE": (2,), "TRUNKS": (3,)}
        dual = default_stage_quadrants(workload, simba_package(npus=2))
        assert dual["S_FUSE"] == (1, 5)

    def test_groups_stay_inside_their_quadrants(self, schedule36):
        for stage in schedule36.workload.stages:
            allowed = {c.chiplet_id
                       for q in schedule36.stage_quadrants[stage.name]
                       for c in schedule36.package.quadrant(q)}
            for g in stage.groups:
                gs = schedule36.groups[g.name]
                if gs.host is None:
                    assert set(gs.chiplet_ids) <= allowed

    def test_place_rejects_overflow(self, workload):
        from repro.arch import simba_package
        pkg = simba_package()
        quadrants = default_stage_quadrants(workload, pkg)
        alloc = {g.name: 5 for g in workload.all_groups()}
        with pytest.raises(ValueError):
            place(workload, pkg, alloc, quadrants, colocated={})

    def test_placement_prefers_proximity_to_producers(self, schedule36):
        # The consumer of the biggest fusion tensors (S_ATTN) must sit
        # adjacent to at least one of its KV producer chiplets.
        pkg = schedule36.package
        attn = schedule36.chiplets_of("S_ATTN")[0]
        kv = schedule36.chiplets_of("S_KV_PROJ")
        assert min(pkg.hops(attn, k) for k in kv) <= 2
