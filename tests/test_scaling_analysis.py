"""Tests for the workload scaling sweeps."""

from repro.analysis import camera_sweep, frame_queue_sweep, resolution_sweep


class TestResolutionSweep:
    def test_base_latency_monotone_in_resolution(self):
        rows = resolution_sweep(((360, 640), (720, 1280)))
        assert rows[0]["base_ms"] < rows[1]["base_ms"]

    def test_low_resolution_moves_bottleneck_off_fe(self):
        rows = resolution_sweep(((360, 640),))
        # With a light FE, the fusion stages set the pipe latency.
        assert rows[0]["pipe_ms"] > rows[0]["base_ms"]


class TestCameraSweep:
    def test_energy_scales_with_cameras(self):
        rows = camera_sweep((4, 8))
        assert rows[0]["energy_j"] < rows[1]["energy_j"]

    def test_labels_present(self):
        rows = camera_sweep((4,))
        assert rows[0]["cameras"] == 4
        assert "pipe_ms" in rows[0]


class TestFrameQueueSweep:
    def test_deep_queues_outgrow_the_quadrant(self):
        rows = frame_queue_sweep((12, 24))
        by = {r["t_frames"]: r for r in rows}
        # At 12 frames the FE bounds the pipe; at 24 the T_FUSE quadrant
        # runs out of sharding room and takes over the bottleneck.
        assert by[12]["pipe_ms"] <= by[12]["base_ms"] + 1e-6
        assert by[24]["pipe_ms"] > by[24]["base_ms"]

    def test_energy_monotone_in_queue_depth(self):
        rows = frame_queue_sweep((6, 12, 24))
        energies = [r["energy_j"] for r in rows]
        assert energies == sorted(energies)
