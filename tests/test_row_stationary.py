"""Tests for the row-stationary dataflow extension."""

import pytest

from repro.cost import chain_energy_j, chain_latency_s, evaluate, map_layer
from repro.cost.accelerator import eyeriss_chiplet, shidiannao_chiplet
from repro.workloads import conv, dense, dwconv


@pytest.fixture(scope="module")
def rs_accel():
    return eyeriss_chiplet()


class TestRowStationaryMapping:
    def test_preset(self, rs_accel):
        assert rs_accel.dataflow == "rs"
        assert rs_accel.pe_count == 256

    def test_conv_cycles_comparable_to_os(self, rs_accel):
        layer = conv("c", (180, 320), 64, 64, r=3)
        rs = map_layer(layer, rs_accel)
        os_cycles = map_layer(layer, shidiannao_chiplet()).compute_cycles
        # Row folding wastes a little of the array; never better than OS.
        assert os_cycles <= rs.compute_cycles <= 2 * os_cycles

    def test_attention_degenerates_to_output_tiling(self, rs_accel):
        layer = dense("d", (200, 80), 384, 384)
        rs = map_layer(layer, rs_accel)
        os_cycles = map_layer(layer, shidiannao_chiplet()).compute_cycles
        assert rs.compute_cycles == os_cycles

    def test_row_accumulation_traffic(self, rs_accel):
        layer = conv("c", (90, 160), 128, 64, r=3)
        rs = map_layer(layer, rs_accel)
        assert rs.accum_words == 2 * layer.output_words * 2  # r - 1 = 2

    def test_dwconv_supported(self, rs_accel):
        layer = dwconv("dw", (90, 160), 256, r=3)
        cost = evaluate(layer, rs_accel)
        assert cost.cycles > 0
        assert 0 < cost.engagement <= 1

    def test_engagement_bounded(self, rs_accel):
        for layer in (conv("c", (23, 40), 512, 256, r=3),
                      dense("d", (1, 1600), 352, 300),
                      conv("s", (12, 20), 64, 3, r=7, stride=4)):
            m = map_layer(layer, rs_accel)
            assert 0 < m.engagement <= 1


class TestRowStationaryDominated:
    def test_os_dominates_rs_on_perception(self, workload, rs_accel):
        # The paper's premise for excluding other dataflow styles.
        os_accel = shidiannao_chiplet()
        lat_os = sum(chain_latency_s(g.layers, os_accel) * g.instances
                     for g in workload.all_groups())
        lat_rs = sum(chain_latency_s(g.layers, rs_accel) * g.instances
                     for g in workload.all_groups())
        e_os = sum(chain_energy_j(g.layers, os_accel) * g.instances
                   for g in workload.all_groups())
        e_rs = sum(chain_energy_j(g.layers, rs_accel) * g.instances
                   for g in workload.all_groups())
        assert lat_os < lat_rs
        assert e_os <= e_rs
