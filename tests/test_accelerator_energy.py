"""Unit tests for accelerator configs and energy tables."""

import pytest

from repro.cost import (
    ENERGY_28NM,
    AcceleratorConfig,
    EnergyTable,
    monolithic,
    nvdla_chiplet,
    shidiannao_chiplet,
    simba_chiplet,
)


class TestEnergyTable:
    def test_nop_word_energy(self):
        table = EnergyTable(nop_pj_bit=2.04)
        assert table.nop_pj_word == pytest.approx(2.04 * 16)

    def test_scaled_uniform(self):
        half = ENERGY_28NM.scaled(0.5)
        assert half.mac_pj == pytest.approx(ENERGY_28NM.mac_pj * 0.5)
        assert half.dram_pj_word == pytest.approx(
            ENERGY_28NM.dram_pj_word * 0.5)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ENERGY_28NM.scaled(0)


class TestAcceleratorConfig:
    def test_simba_chiplet_matches_paper_setup(self):
        accel = simba_chiplet()
        assert accel.pe_count == 256  # Sec. III: 256 PEs per chiplet
        assert accel.frequency_hz == 2.0e9  # Sec. III: 2 GHz
        assert accel.native_tile == (16, 16)

    def test_peak_throughput(self):
        accel = simba_chiplet()
        assert accel.peak_macs_per_s == 256 * 2.0e9

    def test_dataflow_presets(self):
        assert shidiannao_chiplet().dataflow == "os"
        assert nvdla_chiplet().dataflow == "ws"

    def test_with_dataflow_swaps_style(self):
        ws = shidiannao_chiplet().with_dataflow("ws")
        assert ws.dataflow == "ws"

    def test_unknown_dataflow_rejected(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(name="x", pe_count=256, dataflow="systolic")

    def test_pe_count_must_cover_native_tile(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(name="x", pe_count=64)

    def test_monolithic_scales_buffer_and_port(self):
        big = monolithic(9216)
        assert big.pe_count == 9216
        assert big.gb_words_per_cycle == 32 * 36
        assert big.gb_bytes == 2 * 1024 * 1024 * 36
        # Native dataflow tile does NOT scale — the paper's baseline story.
        assert big.native_tile == (16, 16)
