"""Tests for the scenario-sweep engine (grid, runner, determinism)."""

import json

import pytest

from repro.io import save_sweep
from repro.sweep import (
    WORKLOAD_VARIANTS,
    Scenario,
    ScenarioSweep,
    parse_axis,
    run_scenario,
    scenario_grid,
)


class TestScenario:
    def test_key_is_deterministic_and_unique_per_point(self):
        a = Scenario(tolerance=1.05, npus=2)
        b = Scenario(tolerance=1.05, npus=2)
        c = Scenario(tolerance=1.1, npus=2)
        assert a.key == b.key
        assert a.key != c.key

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(tolerance=0.9)
        with pytest.raises(ValueError):
            Scenario(npus=0)
        with pytest.raises(ValueError):
            Scenario(nop_gbps=-1.0)
        with pytest.raises(KeyError):
            Scenario(workload="no-such-variant")

    def test_grid_expansion_is_row_major_and_duplicate_free(self):
        grid = scenario_grid(tolerances=(1.0, 1.1), npus=(1, 2))
        assert len(grid) == 4
        assert grid[0].tolerance == 1.0 and grid[0].npus == 1
        assert grid[1].tolerance == 1.0 and grid[1].npus == 2
        assert len({s.key for s in grid}) == 4

    def test_all_workload_variants_build(self):
        for name in WORKLOAD_VARIANTS:
            assert Scenario(workload=name).workload == name

    def test_parse_axis(self):
        assert parse_axis("1.0,1.05") == [1.0, 1.05]
        assert parse_axis("none,50") == [None, 50.0]
        assert parse_axis("1,2", int) == [1, 2]
        with pytest.raises(ValueError):
            parse_axis("  ,")


class TestRunScenario:
    def test_row_carries_scenario_identity_and_metrics(self):
        row = run_scenario(Scenario())
        assert row["key"] == Scenario().key
        assert row["pipe_ms"] > 0
        assert row["e2e_ms"] > row["pipe_ms"]
        assert 0 < row["utilization"] < 1
        assert "trunk_edp_j_ms" not in row  # no het budget requested

    def test_het_budget_adds_trunk_dse_columns(self):
        row = run_scenario(Scenario(het_ws_budget=2))
        assert row["trunk_label"] == "Het(2)"
        assert row["trunk_edp_j_ms"] > 0
        assert isinstance(row["trunk_feasible"], bool)

    def test_trunk_columns_match_schedule_heterogeneous(self):
        # The sweep's trunk DSE must use the scenario's own constraint
        # and quadrant budget, exactly like the canonical hetero flow.
        from repro.core import schedule_heterogeneous
        row = run_scenario(Scenario(tolerance=1.0, het_ws_budget=2))
        het = schedule_heterogeneous(ws_chiplets=2, tolerance=1.0)
        assert row["trunk_edp_j_ms"] == pytest.approx(
            het.trunk_config.edp_j_ms)
        assert row["trunk_feasible"] == het.trunk_config.feasible

    def test_nop_bandwidth_axis_moves_nop_latency(self):
        slow = run_scenario(Scenario(nop_gbps=12.5))
        fast = run_scenario(Scenario(nop_gbps=200.0))
        assert slow["nop_latency_ms"] > fast["nop_latency_ms"]


class TestScenarioSweep:
    @pytest.fixture(scope="class")
    def grid(self):
        return scenario_grid(
            tolerances=(1.0, 1.05),
            npus=(1,),
            workloads=("default",),
            het_ws_budgets=(None, 2),
        )

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            ScenarioSweep([])
        with pytest.raises(ValueError):
            ScenarioSweep(grid, workers=0)
        with pytest.raises(ValueError):
            ScenarioSweep([grid[0], grid[0]])

    def test_serial_and_parallel_rows_byte_identical(self, grid):
        serial = ScenarioSweep(grid, workers=1).run()
        parallel = ScenarioSweep(grid, workers=2).run()
        assert serial.rows_json() == parallel.rows_json()

    def test_rows_follow_grid_order(self, grid):
        result = ScenarioSweep(grid, workers=1).run()
        assert [r["key"] for r in result.rows] == [s.key for s in grid]

    def test_cache_stats_are_aggregated(self, grid):
        result = ScenarioSweep(grid, workers=1).run()
        stats = result.summary()["plan_cache"]
        assert stats["hits"] + stats["misses"] > 0
        # Repeated scenarios over one workload must mostly hit the cache.
        assert stats["hits"] > stats["misses"]

    def test_result_serializes_to_stable_json(self, grid, tmp_path):
        result = ScenarioSweep(grid, workers=1).run()
        out = tmp_path / "sweep.json"
        save_sweep(result, out)
        payload = json.loads(out.read_text())
        assert payload["summary"]["scenarios"] == len(grid)
        assert payload["rows"] == result.to_dict()["rows"]
        # sorted-key serialization is reproducible byte-for-byte
        save_sweep(result, tmp_path / "sweep2.json")
        assert out.read_text() == (tmp_path / "sweep2.json").read_text()
