"""Tests for the scenario-sweep engine (grid, runner, determinism)."""

import json

import pytest

from repro.io import save_sweep
from repro.sweep import (
    WORKLOAD_VARIANTS,
    Scenario,
    ScenarioSweep,
    parse_axis,
    run_scenario,
    scenario_grid,
)


class TestScenario:
    def test_key_is_deterministic_and_unique_per_point(self):
        a = Scenario(tolerance=1.05, npus=2)
        b = Scenario(tolerance=1.05, npus=2)
        c = Scenario(tolerance=1.1, npus=2)
        assert a.key == b.key
        assert a.key != c.key

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(tolerance=0.9)
        with pytest.raises(ValueError):
            Scenario(npus=0)
        with pytest.raises(ValueError):
            Scenario(nop_gbps=-1.0)
        with pytest.raises(KeyError):
            Scenario(workload="no-such-variant")

    def test_grid_expansion_is_row_major_and_duplicate_free(self):
        grid = scenario_grid(tolerances=(1.0, 1.1), npus=(1, 2))
        assert len(grid) == 4
        assert grid[0].tolerance == 1.0 and grid[0].npus == 1
        assert grid[1].tolerance == 1.0 and grid[1].npus == 2
        assert len({s.key for s in grid}) == 4

    def test_all_workload_variants_build(self):
        for name in WORKLOAD_VARIANTS:
            assert Scenario(workload=name).workload == name

    def test_parse_axis(self):
        assert parse_axis("1.0,1.05") == [1.0, 1.05]
        assert parse_axis("none,50") == [None, 50.0]
        assert parse_axis("1,2", int) == [1, 2]
        with pytest.raises(ValueError):
            parse_axis("  ,")


class TestRunScenario:
    def test_row_carries_scenario_identity_and_metrics(self):
        row = run_scenario(Scenario())
        assert row["key"] == Scenario().key
        assert row["pipe_ms"] > 0
        assert row["e2e_ms"] > row["pipe_ms"]
        assert 0 < row["utilization"] < 1
        assert "trunk_edp_j_ms" not in row  # no het budget requested

    def test_het_budget_adds_trunk_dse_columns(self):
        row = run_scenario(Scenario(het_ws_budget=2))
        assert row["trunk_label"] == "Het(2)"
        assert row["trunk_edp_j_ms"] > 0
        assert isinstance(row["trunk_feasible"], bool)

    def test_trunk_columns_match_schedule_heterogeneous(self):
        # The sweep's trunk DSE must use the scenario's own constraint
        # and quadrant budget, exactly like the canonical hetero flow.
        from repro.core import schedule_heterogeneous
        row = run_scenario(Scenario(tolerance=1.0, het_ws_budget=2))
        het = schedule_heterogeneous(ws_chiplets=2, tolerance=1.0)
        assert row["trunk_edp_j_ms"] == pytest.approx(
            het.trunk_config.edp_j_ms)
        assert row["trunk_feasible"] == het.trunk_config.feasible

    def test_nop_bandwidth_axis_moves_nop_latency(self):
        slow = run_scenario(Scenario(nop_gbps=12.5))
        fast = run_scenario(Scenario(nop_gbps=200.0))
        assert slow["nop_latency_ms"] > fast["nop_latency_ms"]


class TestScenarioSweep:
    @pytest.fixture(scope="class")
    def grid(self):
        return scenario_grid(
            tolerances=(1.0, 1.05),
            npus=(1,),
            workloads=("default",),
            het_ws_budgets=(None, 2),
        )

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            ScenarioSweep([])
        with pytest.raises(ValueError):
            ScenarioSweep(grid, workers=0)
        with pytest.raises(ValueError):
            ScenarioSweep([grid[0], grid[0]])

    def test_serial_and_parallel_rows_byte_identical(self, grid):
        serial = ScenarioSweep(grid, workers=1).run()
        parallel = ScenarioSweep(grid, workers=2).run()
        assert serial.rows_json() == parallel.rows_json()

    def test_rows_follow_grid_order(self, grid):
        result = ScenarioSweep(grid, workers=1).run()
        assert [r["key"] for r in result.rows] == [s.key for s in grid]

    def test_cache_stats_are_aggregated(self, grid):
        result = ScenarioSweep(grid, workers=1).run()
        stats = result.summary()["plan_cache"]
        assert stats["hits"] + stats["misses"] > 0
        # Repeated scenarios over one workload must mostly hit the cache.
        assert stats["hits"] > stats["misses"]

    def test_result_serializes_to_stable_json(self, grid, tmp_path):
        result = ScenarioSweep(grid, workers=1).run()
        out = tmp_path / "sweep.json"
        save_sweep(result, out)
        payload = json.loads(out.read_text())
        assert payload["summary"]["scenarios"] == len(grid)
        assert payload["rows"] == result.to_dict()["rows"]
        # sorted-key serialization is reproducible byte-for-byte
        save_sweep(result, tmp_path / "sweep2.json")
        assert out.read_text() == (tmp_path / "sweep2.json").read_text()

    def test_row_lookup_is_keyed(self, grid):
        result = ScenarioSweep(grid, workers=1).run()
        for s in grid:
            assert result.row(s.key)["key"] == s.key
        with pytest.raises(KeyError):
            result.row("no-such-key")

    def test_summary_surfaces_both_memo_layers(self, grid):
        # Cold caches so plan computation actually exercises evaluate().
        from repro.core import clear_plan_cache
        from repro.cost import clear_cache
        clear_cache()
        clear_plan_cache()
        result = ScenarioSweep(grid, workers=1).run()
        summary = result.summary()
        assert "store_hits" in summary["plan_cache"]
        layer = summary["layer_cost_cache"]
        assert layer["hits"] + layer["misses"] > 0
        assert layer["entries"] > 0


class TestStreaming:
    @pytest.fixture(scope="class")
    def grid(self):
        return scenario_grid(tolerances=(1.0, 1.05, 1.1))

    def test_run_iter_yields_every_scenario(self, grid):
        sweep = ScenarioSweep(grid, workers=1)
        outcomes = list(sweep.run_iter())
        assert [o.key for o in outcomes] == [s.key for s in grid]

    def test_merged_stream_is_byte_identical_to_batch(self, grid):
        batch = ScenarioSweep(grid, workers=1).run()
        sweep = ScenarioSweep(grid, workers=2)
        streamed = sweep.merge(sweep.run_iter())
        assert streamed.rows_json() == batch.rows_json()

    def test_merge_rejects_missing_scenarios(self, grid):
        sweep = ScenarioSweep(grid, workers=1)
        outcomes = list(sweep.run_iter())[1:]
        with pytest.raises(RuntimeError):
            sweep.merge(outcomes)

    def test_chunked_dispatch_matches(self, grid):
        batch = ScenarioSweep(grid, workers=1).run()
        chunked = ScenarioSweep(grid, workers=2, chunksize=2).run()
        assert chunked.rows_json() == batch.rows_json()

    def test_merge_tolerates_byte_identical_duplicates(self, grid):
        # Retries and journal resume can legitimately price a scenario
        # twice; identical rows merge to one.
        sweep = ScenarioSweep(grid, workers=1)
        outcomes = list(sweep.run_iter())
        merged = sweep.merge(outcomes + [outcomes[0]])
        assert [r["key"] for r in merged.rows] == [s.key for s in grid]

    def test_merge_rejects_conflicting_duplicates(self, grid):
        import dataclasses
        sweep = ScenarioSweep(grid, workers=1)
        outcomes = list(sweep.run_iter())
        mutated = dataclasses.replace(
            outcomes[0], row={**outcomes[0].row, "pipe_ms": -1.0})
        with pytest.raises(RuntimeError, match="duplicate"):
            sweep.merge(outcomes + [mutated])


class TestStoreBackedSweep:
    @pytest.fixture(scope="class")
    def grid(self):
        return scenario_grid(tolerances=(1.0, 1.05),
                             het_ws_budgets=(None, 2))

    @staticmethod
    def _cold():
        from repro.core import clear_plan_cache
        from repro.cost import clear_cache
        from repro.sweep import clear_trunk_memo
        clear_cache()
        clear_plan_cache()
        clear_trunk_memo()

    def test_second_run_is_served_from_disk(self, grid, tmp_path):
        store = tmp_path / "store"
        self._cold()
        first = ScenarioSweep(grid, workers=1, store_path=store).run()
        assert first.cache_stats.misses > 0
        self._cold()
        second = ScenarioSweep(grid, workers=1, store_path=store).run()
        assert second.cache_stats.misses == 0
        assert second.cache_stats.store_hits > 0
        assert second.rows_json() == first.rows_json()

    def test_parallel_workers_share_one_store(self, grid, tmp_path):
        store = tmp_path / "store"
        self._cold()
        first = ScenarioSweep(grid, workers=2, store_path=store).run()
        second = ScenarioSweep(grid, workers=2, store_path=store).run()
        assert second.cache_stats.misses == 0
        assert second.rows_json() == first.rows_json()

    def test_serial_run_detaches_the_global_cache(self, grid, tmp_path):
        from repro.core import get_plan_cache
        self._cold()
        ScenarioSweep(grid[:1], workers=1,
                      store_path=tmp_path / "store").run()
        assert get_plan_cache().store is None

    def test_conflicting_store_attachment_is_rejected(self, grid,
                                                      tmp_path):
        from repro.core import PlanStore, get_plan_cache
        cache = get_plan_cache()
        cache.attach_store(PlanStore(tmp_path / "store-a"))
        try:
            sweep = ScenarioSweep(grid[:1], workers=1,
                                  store_path=tmp_path / "store-b")
            with pytest.raises(RuntimeError, match="already attached"):
                list(sweep.run_iter())
            # same directory is fine (idempotent attach, kept attached)
            ScenarioSweep(grid[:1], workers=1,
                          store_path=tmp_path / "store-a").run()
            assert cache.store is not None
        finally:
            cache.detach_store()

    def test_abandoned_parallel_stream_does_not_hang(self, grid):
        sweep = ScenarioSweep(grid, workers=2)
        stream = sweep.run_iter()
        first = next(stream)
        assert first.row["pipe_ms"] > 0
        stream.close()  # must cancel queued chunks, not run them all
        # the engine stays usable afterwards
        assert len(ScenarioSweep(grid[:1], workers=1).run().rows) == 1

    def test_abandoned_stream_leaves_flushed_plans_warm(self, grid,
                                                        tmp_path):
        # The cancel_futures contract: breaking out of run_iter mid-grid
        # drops queued chunks, but every *completed* scenario has already
        # flushed its plans — the store stays warm for the next run.
        from repro.core import PlanStore
        store = tmp_path / "store"
        self._cold()
        sweep = ScenarioSweep(grid, workers=2, store_path=store)
        stream = sweep.run_iter()
        first = next(stream)
        assert first.row["pipe_ms"] > 0
        stream.close()
        assert PlanStore(store).load(), "no plans flushed before abandon"
        self._cold()
        warm = ScenarioSweep(grid, workers=1, store_path=store).run()
        assert warm.cache_stats.store_hits > 0
