"""Scenario wire round-trips: ``from_dict(to_dict(s))`` across every axis.

The serving layer's ``/sweep`` route ships scenarios as JSON and
rebuilds them with ``Scenario.from_dict``; these tests lock the
round-trip contract for *every* axis (including canonicalizing token
axes like ``hetero`` and explicit ``KIND-WxH`` topologies): the rebuilt
scenario has the same plan key, serializes to the same payload, and
prices to the same row — and unknown keys fail fast instead of silently
dropping an axis a newer client swept.
"""

from __future__ import annotations

import json

import pytest

from repro.sweep import Scenario, run_scenario

#: one scenario per axis (set away from its default), plus combinations
#: that exercise canonicalization on the wire.
WIRE_CASES = {
    "tolerance": Scenario(tolerance=1.2),
    "nop_gbps": Scenario(nop_gbps=25.0),
    "npus": Scenario(npus=2),
    "workload": Scenario(workload="hires"),
    "het_ws_budget": Scenario(het_ws_budget=2),
    "dataflow": Scenario(dataflow="ws"),
    "frequency_ghz": Scenario(frequency_ghz=1.5),
    "native_tile": Scenario(native_tile=(8, 8)),
    "dram_gbps": Scenario(dram_gbps=6.0),
    "topology": Scenario(topology="torus"),
    "topology_explicit_grid": Scenario(topology="torus-8x8"),
    "hetero": Scenario(hetero="trunk:ws@1.2+temporal:@1.5"),
    "hetero_partial_count": Scenario(hetero="trunk:ws#4"),
    "kitchen_sink": Scenario(tolerance=1.1, nop_gbps=50.0, npus=2,
                             workload="lores", het_ws_budget=2,
                             dataflow="ws", frequency_ghz=1.2,
                             native_tile=(8, 8), dram_gbps=6.0,
                             topology="mesh", hetero="fe:/8x8"),
}


def wire_trip(scenario: Scenario) -> Scenario:
    """to_dict -> JSON bytes -> from_dict, as the /sweep route does."""
    return Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))


class TestWireRoundTrip:
    @pytest.mark.parametrize("case", sorted(WIRE_CASES),
                             ids=sorted(WIRE_CASES))
    def test_round_trip_reproduces_key_and_payload(self, case):
        original = WIRE_CASES[case]
        rebuilt = wire_trip(original)
        assert rebuilt == original
        assert rebuilt.key == original.key
        assert rebuilt.to_dict() == original.to_dict()
        assert rebuilt.plan_context == original.plan_context

    def test_native_tile_survives_json_list_form(self):
        # JSON has no tuples: the wire payload carries [8, 8] and
        # from_dict must normalize it back before keying.
        payload = Scenario(native_tile=(8, 8)).to_dict()
        assert payload["native_tile"] == [8, 8]
        assert wire_trip(Scenario(native_tile=(8, 8))).native_tile == (8, 8)

    def test_uncanonical_tokens_canonicalize_identically(self):
        # Canonicalization happens in __post_init__ on both sides, so a
        # client sending a raw (uppercase, reordered) token keys the
        # same scenario the canonical form does.
        raw = Scenario.from_dict({"hetero": "temporal:@1.50+trunk:WS@1.20"})
        assert raw.key == Scenario(hetero="trunk:ws@1.2+temporal:@1.5").key

    def test_round_trip_prices_identical_row(self):
        original = Scenario(dataflow="ws", hetero="trunk:ws#2")
        assert json.dumps(run_scenario(wire_trip(original)),
                          sort_keys=True) \
            == json.dumps(run_scenario(original), sort_keys=True)

    def test_unknown_axes_rejected_strictly(self):
        payload = Scenario().to_dict()
        payload["voltage_v"] = 0.9
        with pytest.raises(ValueError, match="unknown scenario axes"):
            Scenario.from_dict(payload)
        # ... naming every unknown key and the axes this side speaks.
        payload["cooling"] = "liquid"
        with pytest.raises(ValueError,
                           match=r"\['cooling', 'voltage_v'\]"):
            Scenario.from_dict(payload)

    def test_non_object_payload_rejected(self):
        with pytest.raises(TypeError, match="must be an object"):
            Scenario.from_dict([("tolerance", 1.05)])
