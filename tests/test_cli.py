"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_table3_renders(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "[16X,16Y]" in out

    def test_json_output_parses(self, capsys):
        assert main(["fig11", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "fig11" in payload
        assert payload["fig11"]["points"]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestSweepCli:
    def test_sweep_table_output(self, capsys):
        assert main(["sweep", "--tolerances", "1.0,1.1"]) == 0
        out = capsys.readouterr().out
        assert "Scenario sweep (2 scenarios" in out
        assert "plan cache:" in out

    def test_sweep_json_output(self, capsys):
        assert main(["sweep", "--tolerances", "1.05",
                     "--het-budgets", "none,2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["scenarios"] == 2
        assert "plan_cache" in payload["summary"]
        assert payload["rows"][1]["trunk_label"] == "Het(2)"

    def test_sweep_writes_output_file(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        assert main(["sweep", "--npus", "1", "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["summary"]["scenarios"] == 1

    def test_sweep_rejects_bad_axis(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--tolerances", "abc"])

    def test_sweep_rejects_invalid_workers(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--workers", "0"])

    def test_bad_topology_names_axis_and_choices(self, capsys):
        # `--axis topology=ring` must fail with a parser error that names
        # the offending axis and lists the valid topology kinds.
        with pytest.raises(SystemExit):
            main(["sweep", "--axis", "topology=ring"])
        err = capsys.readouterr().err
        assert "'ring'" in err and "'topology'" in err
        assert "mesh, torus" in err

    def test_bad_topology_grid_errors_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--topologies", "torus-8x"])
        err = capsys.readouterr().err
        assert "'torus-8x'" in err and "KIND-WxH" in err

    def test_malformed_tile_axis_errors_cleanly(self, capsys):
        # a truncated tuple token must produce the named-axis message,
        # not a bare cast traceback.
        with pytest.raises(SystemExit):
            main(["sweep", "--axis", "native_tile=16x"])
        err = capsys.readouterr().err
        assert "'16x'" in err and "'native_tile'" in err
        assert "ROWSxCOLS" in err

    def test_unknown_axis_name_lists_known_axes(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--axis", "pes=256"])
        err = capsys.readouterr().err
        assert "unknown sweep axis 'pes'" in err
        assert "topology" in err  # the new axis is advertised

    def test_axis_without_values_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--axis", "topology"])
        err = capsys.readouterr().err
        assert "NAME=VALUES" in err

    def test_explicit_grid_with_npus_conflict_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--npus", "2", "--topologies", "torus-8x8"])
        err = capsys.readouterr().err
        assert "npus=2" in err

    def test_bad_hetero_dataflow_names_axis_and_choices(self, capsys):
        # `--axis hetero=trunk:xx` must fail with a parser error that
        # names the offending axis and lists the valid dataflow styles.
        with pytest.raises(SystemExit):
            main(["sweep", "--axis", "hetero=trunk:xx"])
        err = capsys.readouterr().err
        assert "'trunk:xx'" in err and "'hetero'" in err
        assert "os, ws, rs" in err

    def test_unknown_hetero_quadrant_lists_valid_names(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--hetero", "bogus:ws"])
        err = capsys.readouterr().err
        assert "'bogus'" in err and "'hetero'" in err
        assert "fe, spatial, temporal, trunk" in err

    def test_malformed_hetero_spec_errors_cleanly(self, capsys):
        # a quadrant with an empty SPEC must produce the named-axis
        # message, not a bare traceback.
        with pytest.raises(SystemExit):
            main(["sweep", "--axis", "hetero=trunk:"])
        err = capsys.readouterr().err
        assert "'trunk:'" in err and "'hetero'" in err
        with pytest.raises(SystemExit):
            main(["sweep", "--hetero", "trunk:ws@fast"])
        err = capsys.readouterr().err
        assert "'fast'" in err and "'hetero'" in err

    def test_hetero_axis_reaches_rows(self, capsys):
        assert main(["sweep", "--hetero", "none,trunk:ws", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        rows = payload["rows"]
        assert "hetero" not in rows[0]
        assert rows[1]["hetero"] == "trunk:ws"
        assert rows[1]["package_composition"].endswith("trunk:ws@2")
        assert rows[1]["pipe_ms"] > rows[0]["pipe_ms"]  # WS trunks cost

    def test_report_scaling_hetero_axis(self, capsys):
        assert main(["report", "scaling", "--npus", "1",
                     "--dram-gbps", "none",
                     "--hetero", "none,trunk:ws", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["axes"]["heteros"] == ["trunk:ws"]
        het_rows = [r for r in payload["rows"] if "hetero" in r]
        assert het_rows and all(
            0 < r["trunk_utilization"] <= 1 for r in het_rows)

    def test_topology_axis_reaches_rows(self, capsys):
        assert main(["sweep", "--topologies", "mesh,torus", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        rows = payload["rows"]
        assert [r["topology"] for r in rows] == ["mesh", "torus"]
        assert rows[1]["nop_avg_hops"] < rows[0]["nop_avg_hops"]

    def test_report_scaling_topology_axis(self, capsys):
        assert main(["report", "scaling", "--npus", "1",
                     "--dram-gbps", "none",
                     "--topologies", "mesh,torus", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["axes"]["topologies"] == ["mesh", "torus"]

    def test_flags_before_subcommand(self, capsys):
        # argparse allows options before the positional; both shared and
        # sweep-specific flags must reach the sweep parser.
        assert main(["--json", "sweep", "--tolerances", "1.0,1.1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["scenarios"] == 2

    def test_experiment_rejects_stray_arguments(self):
        with pytest.raises(SystemExit):
            main(["fig11", "--tolerances", "1.0"])

    def test_sweep_stream_prints_rows_then_report(self, capsys):
        assert main(["sweep", "--tolerances", "1.0,1.1", "--stream"]) == 0
        out = capsys.readouterr().out
        assert "[1/2]" in out and "[2/2]" in out
        assert "Scenario sweep (2 scenarios" in out
        assert "layer-cost cache:" in out

    def test_sweep_stream_json_emits_row_lines(self, capsys):
        assert main(["sweep", "--tolerances", "1.0,1.1",
                     "--stream", "--json"]) == 0
        lines = capsys.readouterr().out.splitlines()
        rows = [json.loads(lines[0]), json.loads(lines[1])]
        assert {r["tolerance"] for r in rows} == {1.0, 1.1}
        summary = json.loads("\n".join(lines[2:]))
        assert summary["summary"]["scenarios"] == 2

    def test_sweep_stream_artifact_matches_batch(self, tmp_path, capsys):
        batch = tmp_path / "batch.json"
        streamed = tmp_path / "streamed.json"
        assert main(["sweep", "--tolerances", "1.0,1.1",
                     "--output", str(batch)]) == 0
        assert main(["sweep", "--tolerances", "1.0,1.1", "--stream",
                     "--output", str(streamed)]) == 0
        capsys.readouterr()
        assert json.loads(batch.read_text())["rows"] == \
            json.loads(streamed.read_text())["rows"]

    def test_sweep_store_warm_start(self, tmp_path, capsys):
        from repro.core import clear_plan_cache
        from repro.cost import clear_cache
        store = tmp_path / "store"
        clear_cache()
        clear_plan_cache()
        assert main(["sweep", "--tolerances", "1.0",
                     "--store", str(store), "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["summary"]["plan_cache"]["misses"] > 0
        assert list(store.glob("plans-*.json"))
        # fresh in-memory caches, same store: everything from disk
        clear_cache()
        clear_plan_cache()
        assert main(["sweep", "--tolerances", "1.0",
                     "--store", str(store), "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["summary"]["plan_cache"]["misses"] == 0
        assert second["summary"]["plan_cache"]["store_hits"] > 0
        assert second["rows"] == first["rows"]


class TestDesignCli:
    def test_design_table_output(self, capsys):
        assert main(["design", "--dataflows", "os,ws",
                     "--target-pipe-ms", "100"]) == 0
        out = capsys.readouterr().out
        assert "searched 2 candidate(s)" in out
        assert "plan cache:" in out

    def test_design_json_output(self, capsys):
        assert main(["design", "--dataflows", "os,ws", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["axes"]["dataflow"] == ["os", "ws"]
        assert payload["search"]["candidates"] == 2
        assert payload["best"] in {e["key"] for e in payload["frontier"]}

    def test_design_flags_before_subcommand(self, tmp_path, capsys):
        out = tmp_path / "frontier.json"
        assert main(["--json", "--output", str(out), "design",
                     "--frequencies-ghz", "1.0,2.0"]) == 0
        stdout = capsys.readouterr().out
        assert out.read_text() == stdout.rstrip("\n") + "\n"

    def test_design_output_document_deterministic(self, tmp_path, capsys):
        args = ["design", "--dataflows", "os,ws",
                "--axis", "hetero=none,trunk:ws#2", "--json"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_design_rejects_bad_axis(self, capsys):
        with pytest.raises(SystemExit):
            main(["design", "--axis", "topology=ring"])
        assert "topology" in capsys.readouterr().err

    def test_design_rejects_two_stores(self, capsys):
        with pytest.raises(SystemExit):
            main(["design", "--store", "x",
                  "--store-url", "http://127.0.0.1:1"])
        assert "two different plan stores" in capsys.readouterr().err


class TestResilienceCli:
    def test_injected_fault_retries_transparently(self, capsys):
        assert main(["sweep", "--tolerances", "1.0,1.1",
                     "--inject-faults", "fail:0", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["scenarios"] == 2
        assert "failures" not in payload["summary"]

    def test_keep_going_exits_2_with_manifest(self, capsys):
        code = main(["sweep", "--tolerances", "1.0,1.1",
                     "--inject-faults", "fail:1@1,2,3",
                     "--keep-going", "--json"])
        assert code == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["scenarios"] == 1
        manifest = payload["summary"]["failures"]
        assert manifest[0]["error"] == "InjectedFault"
        assert manifest[0]["attempts"] == 3

    def test_strict_quarantine_errors_out(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--tolerances", "1.0,1.1",
                  "--inject-faults", "fail:1@1,2,3"])
        err = capsys.readouterr().err
        assert "quarantined" in err
        assert "--keep-going" in err

    def test_retries_flag_bounds_attempts(self, capsys):
        code = main(["sweep", "--tolerances", "1.0",
                     "--inject-faults", "fail:0@1,2",
                     "--retries", "1", "--keep-going", "--json"])
        assert code == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["failures"][0]["attempts"] == 1

    def test_malformed_fault_script_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--tolerances", "1.0",
                  "--inject-faults", "explode:0"])
        assert "fault" in capsys.readouterr().err

    def test_journal_flag_checkpoints_and_resumes(self, tmp_path, capsys):
        journal = tmp_path / "journal"
        assert main(["sweep", "--tolerances", "1.0,1.1",
                     "--journal", str(journal), "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert len(list(journal.glob("outcome-*.json"))) == 2
        # the same command again resumes: replayed rows are identical
        assert main(["sweep", "--tolerances", "1.0,1.1",
                     "--journal", str(journal), "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["rows"] == first["rows"]

    def test_stream_reports_quarantined_scenarios(self, capsys):
        code = main(["sweep", "--tolerances", "1.0,1.1", "--stream",
                     "--inject-faults", "fail:0@1,2,3", "--keep-going"])
        assert code == 2
        out = capsys.readouterr().out
        assert "QUARANTINED" in out
        assert "quarantined 1 scenario(s):" in out
