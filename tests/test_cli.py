"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_table3_renders(self, capsys):
        assert main(["table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "[16X,16Y]" in out

    def test_json_output_parses(self, capsys):
        assert main(["fig11", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "fig11" in payload
        assert payload["fig11"]["points"]

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
