"""Tests for the chiplet-count scaling report and DRAM steady-state model.

The report is the headline artifact of PR 3: a deterministic
``npus x workload x dram_gbps`` table in which scaling flattens where an
undersized DRAM interface takes over the steady state — validated both
analytically (Schedule) and empirically (StreamSimulator).
"""

import json

import pytest

from repro.analysis import chiplet_scaling_report, chiplet_scaling_rows
from repro.cli import main
from repro.experiments import scaling
from repro.sim import stream_validate
from repro.sweep import Scenario

#: tiny grid that still exhibits a DRAM wall (2 GB/s < any compute fps)
TINY = dict(npus=(1, 2), dram_gbps=(None, 2.0))


@pytest.fixture(scope="module")
def report():
    return scaling.run(**TINY)


class TestScalingReport:
    def test_rows_cover_the_grid(self, report):
        assert len(report["rows"]) == 4
        assert report["axes"]["npus"] == [1, 2]
        assert report["axes"]["dram_gbps"] == [2.0, "unbounded"]

    def test_unbounded_column_scales(self, report):
        col = [r for r in report["rows"] if r["dram"] == "unbounded"]
        assert col[0]["speedup"] == 1.0
        assert col[1]["speedup"] > 1.5
        assert not any(r["dram_throttled"] for r in col)

    def test_dram_wall_flattens_scaling(self, report):
        col = [r for r in report["rows"] if r["dram"] == "2 GB/s"]
        assert all(r["dram_throttled"] for r in col)
        # DRAM sets the frame time, so adding an NPU buys nothing.
        assert col[0]["pipe_ms"] == col[1]["pipe_ms"]
        assert col[1]["scaling_efficiency"] < 0.6
        # steady-state fps strictly below the compute-only fps
        for r in col:
            assert r["steady_fps"] < r["compute_fps"]

    def test_throttled_points_and_wall_are_reported(self, report):
        assert report["throttled_points"]
        assert report["dram_wall"] == [
            {"workload": "default", "dram": "2 GB/s",
             "first_throttled_npus": 1}]

    def test_report_is_deterministic(self):
        a = json.dumps(scaling.run(**TINY), sort_keys=True)
        b = json.dumps(scaling.run(**TINY), sort_keys=True)
        assert a == b

    def test_render_mentions_the_wall(self, report):
        text = scaling.render(report)
        assert "DRAM wall" in text
        assert "Chiplet-count scaling" in text

    def test_rows_builder_accepts_plain_sweep_rows(self):
        rows = [
            {"workload": "default", "npus": 1, "used_chiplets": 35,
             "pipe_ms": 90.0, "energy_j": 1.0, "utilization": 0.5},
            {"workload": "default", "npus": 2, "used_chiplets": 69,
             "pipe_ms": 45.0, "energy_j": 1.1, "utilization": 0.5},
        ]
        table = chiplet_scaling_rows(rows)
        assert table[1]["speedup"] == 2.0
        assert table[1]["scaling_efficiency"] == 1.0
        assert table[0]["dram"] == "unbounded"
        report = chiplet_scaling_report(rows)
        assert report["dram_wall"] == []

    def test_dram_wall_ordered_numerically_not_lexically(self):
        # '10 GB/s' < '2 GB/s' as strings; the wall list must follow the
        # numerically-ordered rows table instead.
        rows = [
            {"workload": "default", "npus": 1, "used_chiplets": 35,
             "pipe_ms": 100.0, "compute_pipe_ms": 90.0, "energy_j": 1.0,
             "dram_gbps": g, "dram_throttled": True}
            for g in (2.0, 10.0, 20.0)
        ]
        report = chiplet_scaling_report(rows)
        assert [w["dram"] for w in report["dram_wall"]] == [
            "2 GB/s", "10 GB/s", "20 GB/s"]


class TestScalingCli:
    def test_report_scaling_json_is_deterministic(self, capsys):
        args = ["report", "scaling", "--npus", "1,2",
                "--dram-gbps", "none,2", "--json"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert any(r["dram_throttled"] for r in payload["rows"])
        assert any(r["steady_fps"] < r["compute_fps"]
                   for r in payload["rows"])

    def test_report_scaling_writes_output(self, tmp_path, capsys):
        out = tmp_path / "scaling.json"
        assert main(["report", "scaling", "--npus", "1",
                     "--dram-gbps", "none", "--output", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["rows"][0]["npus"] == 1
        assert "Chiplet-count scaling" in capsys.readouterr().out

    def test_shared_flags_before_subcommand(self, capsys):
        assert main(["--json", "report", "scaling", "--npus", "1",
                     "--dram-gbps", "none"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["axes"]["npus"] == [1]

    def test_bad_axis_value_names_the_axis(self, capsys):
        with pytest.raises(SystemExit):
            main(["report", "scaling", "--npus", "one"])
        assert "axis 'npus'" in capsys.readouterr().err

    def test_plain_report_still_works(self, tmp_path, capsys):
        # `report` without `scaling` keeps its markdown-report meaning —
        # exercised shallowly via the experiment registry instead of the
        # full (slow) document: the scaling module must be registered.
        from repro.experiments import ALL_EXPERIMENTS
        assert "scaling" in ALL_EXPERIMENTS

    def test_sweep_cli_rejects_bad_tile(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--native-tiles", "16*16"])
        assert "native_tile" in capsys.readouterr().err

    def test_sweep_cli_axis_flag(self, capsys):
        assert main(["sweep", "--axis", "native_tile=8x8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"][0]["native_tile"] == [8, 8]

    def test_sweep_cli_axis_flag_malformed(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--axis", "native_tile"])
        assert "NAME=VALUES" in capsys.readouterr().err


class TestDramStreamSimulation:
    def test_des_measures_the_dram_wall(self):
        schedule = Scenario(dram_gbps=2.0).build().schedule()
        assert schedule.dram_throttled
        result = stream_validate(schedule, n_frames=16)
        # The empirical inter-departure time equals the DRAM stream time
        # (the FIFO interface is the bottleneck), matching the analytical
        # prediction.
        assert result.measured_pipe_s == pytest.approx(
            schedule.dram_time_s, rel=1e-6)
        assert result.prediction_error < 0.01
        assert result.sustainable_fps < 1.0 / schedule.compute_pipe_latency_s

    def test_des_unthrottled_when_dram_is_fast(self):
        schedule = Scenario(dram_gbps=200.0).build().schedule()
        assert not schedule.dram_throttled
        result = stream_validate(schedule, n_frames=16)
        baseline = stream_validate(Scenario().build().schedule(),
                                   n_frames=16)
        assert result.measured_pipe_s == pytest.approx(
            baseline.measured_pipe_s, rel=1e-6)

    def test_energy_includes_dram_when_attached(self):
        plain = Scenario().build().schedule()
        dram = Scenario(dram_gbps=63.5).build().schedule()
        assert dram.dram_energy_j > 0
        assert dram.energy_j == pytest.approx(
            plain.energy_j + dram.dram_energy_j)
