"""Tests for the breakdown and affinity analyses (Figs. 3-4 machinery)."""

import pytest

from repro.analysis import (
    affinity_blocks,
    component_breakdown,
    fusion_latency_share,
)


class TestBreakdown:
    def test_shares_sum_to_one(self, workload, os_accel):
        rows = component_breakdown(workload, os_accel)
        assert sum(r.latency_share for r in rows) == pytest.approx(1.0)
        assert sum(r.energy_share for r in rows) == pytest.approx(1.0)

    def test_fusion_modules_are_the_bottleneck(self, workload, os_accel):
        # Paper Sec. III-A: S_FUSE 25-28%, T_FUSE 52-54% of latency.
        shares = fusion_latency_share(component_breakdown(workload,
                                                          os_accel))
        assert 0.20 < shares["S_FUSE"] < 0.33
        assert 0.42 < shares["T_FUSE"] < 0.60

    def test_all_components_present(self, workload, os_accel):
        rows = component_breakdown(workload, os_accel)
        labels = {r.component for r in rows}
        assert {"FE+BFPN", "S_QKV", "S_ATTN", "S_FFN", "T_QKV", "T_ATTN",
                "T_FFN", "OCC_TR", "LANE_TR", "DET_TR"} == labels

    def test_os_latencies_below_ws(self, workload, os_accel, ws_accel):
        os_rows = {r.component: r for r in
                   component_breakdown(workload, os_accel)}
        ws_rows = {r.component: r for r in
                   component_breakdown(workload, ws_accel)}
        for label, row in os_rows.items():
            assert row.latency_ms < ws_rows[label].latency_ms


class TestAffinity:
    def test_panels_cover_paper_blocks(self, workload):
        panels = affinity_blocks(workload)
        assert set(panels) == {"FE+BFPN", "S+T Attn Fusion", "Trunks"}

    def test_fusion_layers_fully_os_affine(self, workload):
        # Paper Fig. 4: negative deltas for every fusion layer in both
        # latency and energy.
        rows = affinity_blocks(workload)["S+T Attn Fusion"]
        assert rows, "fusion panel must not be empty"
        assert all(r.delta_latency_ms < 0 for r in rows)
        assert all(r.delta_energy_mj < 0 for r in rows)

    def test_fe_shows_latency_energy_tradeoff(self, workload):
        # Paper Fig. 4: FE+BFPN trades latency (OS) against energy (WS).
        rows = affinity_blocks(workload)["FE+BFPN"]
        os_latency = sum(r.delta_latency_ms < 0 for r in rows) / len(rows)
        ws_energy = sum(r.delta_energy_mj > 0 for r in rows) / len(rows)
        assert os_latency > 0.5
        assert ws_energy > 0.5

    def test_compute_only_filter(self, workload):
        with_vec = affinity_blocks(workload, compute_only=False)
        without = affinity_blocks(workload, compute_only=True)
        assert (len(with_vec["FE+BFPN"]) > len(without["FE+BFPN"]))
