"""Integration tests for Algorithm 1 (throughput matching)."""

import pytest

from repro.arch import simba_package
from repro.core import ThroughputMatcher


class TestScheduleShape36:
    def test_pipe_latency_matches_base(self, schedule36):
        # The FE stage defines Lat_base; nothing should exceed it after
        # matching (FE itself cannot split within a 9-chiplet quadrant).
        assert schedule36.pipe_latency_s == pytest.approx(
            schedule36.base_latency_s)

    def test_base_latency_band(self, schedule36):
        assert 0.080 < schedule36.base_latency_s < 0.100  # paper: 82.7 ms

    def test_quadrant_budgets_respected(self, schedule36):
        for stage in schedule36.workload.stages:
            used = set()
            for g in stage.groups:
                used.update(schedule36.chiplets_of(g.name))
            capacity = sum(
                schedule36.package.quadrant_capacity(q)
                for q in schedule36.stage_quadrants[stage.name])
            assert len(used) <= capacity

    def test_chiplets_not_shared_across_groups(self, schedule36):
        seen = {}
        for name, gs in schedule36.groups.items():
            if gs.host is not None:
                continue
            for cid in gs.chiplet_ids:
                assert cid not in seen, f"{name} and {seen.get(cid)} share"
                seen[cid] = name

    def test_paper_shard_counts(self, schedule36):
        # Fig. 6: spatial FFN four-folded; Fig. 7: temporal FFN across 6.
        assert schedule36.groups["S_FFN"].plan.n_chiplets == 4
        assert schedule36.groups["T_FFN"].plan.n_chiplets == 6
        assert schedule36.groups["T_KV_PROJ"].plan.n_chiplets == 2

    def test_tiny_groups_colocated(self, schedule36):
        assert schedule36.groups["S_LIFT"].host == "S_KV_PROJ"
        assert schedule36.groups["S_Q_PROJ"].host == "S_ATTN"
        assert schedule36.groups["T_POOL"].host == "T_FFN"

    def test_e2e_exceeds_pipe(self, schedule36):
        assert schedule36.e2e_latency_s > schedule36.pipe_latency_s

    def test_e2e_band(self, schedule36):
        assert 0.40 < schedule36.e2e_latency_s < 0.55  # paper: 0.5 s

    def test_utilization_band(self, schedule36):
        assert 0.45 < schedule36.utilization < 0.62  # paper: 54.19%

    def test_nop_well_below_compute(self, schedule36):
        assert schedule36.nop_latency_s < 0.05 * schedule36.e2e_latency_s

    def test_trace_records_all_phases(self, schedule36):
        phases = {t.phase for t in schedule36.trace}
        assert {"init", "match", "absorb"} <= phases

    def test_summary_keys(self, schedule36):
        summary = schedule36.summary()
        for key in ("e2e_ms", "pipe_ms", "energy_j", "edp_j_ms",
                    "utilization"):
            assert key in summary


class TestScheduleShape72:
    def test_dual_npu_nearly_halves_pipe(self, schedule36, schedule72):
        speedup = schedule36.pipe_latency_s / schedule72.pipe_latency_s
        assert 1.7 < speedup < 2.3  # paper: 87 ms -> 41.1 ms (~2x)

    def test_fe_pipeline_partitioned(self, schedule72):
        fe = schedule72.groups["FE_BFPN"].plan
        assert fe.mode == "pipeline"
        assert fe.segments == 2  # paper: two equivalent FE partitions

    def test_t_ffn_sharding_exhausted(self, schedule72):
        # "each temporal frame is processed independently on a separate
        # chiplet" — 12 chiplets for 12 frames.
        assert schedule72.groups["T_FFN"].plan.n_chiplets == 12


class TestMatcherValidation:
    def test_tolerance_below_one_rejected(self):
        with pytest.raises(ValueError):
            ThroughputMatcher(tolerance=0.9)

    def test_custom_tolerance_loosens_target(self):
        tight = ThroughputMatcher(tolerance=1.0,
                                  package=simba_package()).run()
        loose = ThroughputMatcher(tolerance=1.3,
                                  package=simba_package()).run()
        assert loose.pipe_latency_s <= tight.pipe_latency_s * 1.3 + 1e-9
