"""Tests for the trunk DSE (Table I) and context-aware lane computing."""

import pytest

from repro.core import TrunkDSE, lane_context_sweep, min_feasible_fraction


@pytest.fixture(scope="module")
def dse_table():
    return TrunkDSE().table()


class TestTrunkDSE:
    def test_table_order_and_labels(self, dse_table):
        assert [c.label for c in dse_table] == ["OS", "WS", "Het(2)",
                                                "Het(4)"]

    def test_os_config_feasible(self, dse_table):
        assert dse_table[0].feasible

    def test_ws_only_violates_latency_constraint(self, dse_table):
        # Paper Table I: the WS column blows E2E up ~6.6x (605.7 ms).
        ws = dse_table[1]
        assert not ws.feasible
        assert ws.e2e_ms > 4 * dse_table[0].e2e_ms

    def test_het_reduces_energy_at_same_e2e(self, dse_table):
        os_cfg, het2, het4 = dse_table[0], dse_table[2], dse_table[3]
        assert het2.energy_j < os_cfg.energy_j
        assert het4.energy_j < os_cfg.energy_j
        assert het2.e2e_ms == pytest.approx(os_cfg.e2e_ms, rel=0.02)

    def test_het_improves_edp(self, dse_table):
        assert dse_table[2].edp_j_ms < dse_table[0].edp_j_ms

    def test_ws_chiplets_take_the_detection_trunk(self, dse_table):
        # Paper: "the WS chiplets are predominantly assigned to the
        # DET_TR layers".
        het2 = dse_table[2]
        assert het2.alloc["DET_TR"][1] == "ws"
        assert het2.alloc["LANE_TR"][1] == "os"

    def test_det_energy_reduction_on_ws(self, dse_table):
        os_det = dse_table[0].model_energy_j["DET_TR"]
        het_det = dse_table[2].model_energy_j["DET_TR"]
        assert 0.10 < 1 - het_det / os_det < 0.45  # paper: 35%

    def test_ws_budget_validation(self):
        with pytest.raises(ValueError):
            TrunkDSE().search(10)

    def test_free_sharding_ablation_improves_pipe(self):
        constrained = TrunkDSE().search(0)
        free = TrunkDSE(allow_sharding=True).search(0)
        assert free.pipe_ms <= constrained.pipe_ms


class TestLaneContext:
    def test_latency_monotone_in_context(self):
        points = lane_context_sweep()
        lats = [p.latency_ms for p in points]  # fractions descend
        assert all(a >= b - 1e-9 for a, b in zip(lats, lats[1:]))

    def test_energy_monotone_in_context(self):
        points = lane_context_sweep()
        energies = [p.energy_j for p in points]
        assert all(a >= b - 1e-12 for a, b in zip(energies, energies[1:]))

    def test_full_context_violates_constraint(self):
        points = lane_context_sweep()
        assert not points[0].meets_constraint  # f = 1.0

    def test_crossover_near_sixty_percent(self):
        # Paper: "Around 60% computing satisfies the latency constraint."
        frac = min_feasible_fraction(lane_context_sweep())
        assert 0.5 <= frac <= 0.75

    def test_custom_threshold_shifts_crossover(self):
        generous = lane_context_sweep(threshold_s=1.0)
        assert min_feasible_fraction(generous) == 1.0
