"""Unit tests for layer/group cost evaluation (repro.cost.model)."""

import dataclasses

import pytest

from repro.cost import (
    chain_cycles,
    chain_energy_j,
    chain_latency_s,
    evaluate,
    shidiannao_chiplet,
    simba_chiplet,
)
from repro.workloads import conv, dense, pool, softmax


class TestComputeLayers:
    def test_latency_is_cycles_over_frequency(self, os_accel):
        layer = conv("c", (64, 64), 64, 64)
        cost = evaluate(layer, os_accel)
        assert cost.latency_s == pytest.approx(
            cost.cycles / os_accel.frequency_hz)

    def test_energy_at_least_mac_energy(self, os_accel, ws_accel):
        layer = dense("d", (100, 100), 128, 128)
        floor = layer.macs * os_accel.energy.mac_pj * 1e-12
        assert evaluate(layer, os_accel).energy_j > floor
        assert evaluate(layer, ws_accel).energy_j > floor

    def test_utilization_definitions(self, os_accel):
        layer = conv("c", (160, 160), 64, 64)
        cost = evaluate(layer, os_accel)
        assert 0 < cost.utilization <= 1
        assert 0 < cost.engagement <= 1
        assert cost.utilization == pytest.approx(
            layer.macs / (cost.cycles * os_accel.pe_count))

    def test_monolithic_utilization_collapses(self):
        from repro.cost import monolithic
        layer = dense("d", (200, 80), 384, 384)
        chiplet = evaluate(layer, shidiannao_chiplet())
        big = evaluate(layer, monolithic(9216))
        # Same cycles (fixed native dataflow tile), 36x more idle PEs.
        assert big.cycles == chiplet.cycles
        assert big.utilization == pytest.approx(chiplet.utilization / 36)

    def test_dram_words_zero_for_activation_weights(self, os_accel):
        from repro.workloads import matmul
        scores = matmul("m", (200, 80), 800, 384)
        proj = dense("d", (200, 80), 800, 384)
        assert evaluate(scores, os_accel).dram_words == 0
        assert evaluate(proj, os_accel).dram_words == proj.weight_words

    def test_bandwidth_bound_detected_when_port_is_narrow(self):
        starved = dataclasses.replace(simba_chiplet("os"),
                                      gb_words_per_cycle=1,
                                      name="starved")
        layer = conv("c", (64, 64), 64, 64)
        cost = evaluate(layer, starved)
        assert cost.bound == "bandwidth"
        wide = evaluate(layer, shidiannao_chiplet())
        assert wide.bound == "compute"
        assert cost.cycles > wide.cycles


class TestVectorLayers:
    def test_vector_latency_uses_simd_lanes(self, os_accel):
        layer = pool("p", (20, 80), 64)
        cost = evaluate(layer, os_accel)
        expected = -(-layer.vector_elems // os_accel.vector_lanes)
        assert cost.cycles == expected
        assert cost.bound == "vector"
        assert cost.macs == 0

    def test_softmax_energy_positive(self, os_accel):
        cost = evaluate(softmax("s", (200, 80), 800), os_accel)
        assert cost.energy_j > 0


class TestChains:
    def test_chain_helpers_sum_layers(self, os_accel):
        layers = [conv("a", (32, 32), 32, 32), dense("b", (32, 32), 64, 32)]
        assert chain_latency_s(layers, os_accel) == pytest.approx(
            sum(evaluate(l, os_accel).latency_s for l in layers))
        assert chain_energy_j(layers, os_accel) == pytest.approx(
            sum(evaluate(l, os_accel).energy_j for l in layers))
        assert chain_cycles(layers, os_accel) == sum(
            evaluate(l, os_accel).cycles for l in layers)

    def test_evaluation_is_memoized(self, os_accel):
        layer = conv("memo", (32, 32), 32, 32)
        assert evaluate(layer, os_accel) is evaluate(layer, os_accel)


class TestCalibration:
    """The DESIGN.md Sec. 3 calibration bands (paper-facing anchors)."""

    def test_fe_bfpn_single_chiplet_near_latbase(self, workload, os_accel):
        fe = workload.find_group("FE_BFPN")
        lat_ms = chain_latency_s(fe.layers, os_accel) * 1e3
        assert 80 < lat_ms < 100  # paper: 82.7 ms

    def test_s_attn_matches_paper(self, workload, os_accel):
        attn = workload.find_group("S_ATTN")
        lat_ms = chain_latency_s(attn.layers, os_accel) * 1e3
        assert 18 < lat_ms < 23  # paper: 20.5 ms

    def test_t_ffn_dominates_fusion(self, workload, os_accel):
        t_ffn = workload.find_group("T_FFN")
        total_ms = (chain_latency_s(t_ffn.layers, os_accel)
                    * t_ffn.instances * 1e3)
        assert 400 < total_ms < 520  # paper: 490.2 ms

    def test_os_ws_latency_ratio_band(self, workload, os_accel, ws_accel):
        lat_os = sum(chain_latency_s(g.layers, os_accel) * g.instances
                     for g in workload.all_groups())
        lat_ws = sum(chain_latency_s(g.layers, ws_accel) * g.instances
                     for g in workload.all_groups())
        assert 5.5 < lat_ws / lat_os < 8.5  # paper: 6.85x

    def test_ws_wins_fe_energy_os_wins_fusion_energy(self, workload,
                                                     os_accel, ws_accel):
        fe = workload.find_group("FE_BFPN")
        assert (chain_energy_j(fe.layers, ws_accel)
                < chain_energy_j(fe.layers, os_accel))
        ffn = workload.find_group("T_FFN")
        assert (chain_energy_j(ffn.layers, os_accel)
                < chain_energy_j(ffn.layers, ws_accel))
