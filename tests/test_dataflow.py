"""Unit tests for the dataflow mapping analysis (hand-computed expectations)."""

import pytest

from repro.cost import map_layer, nvdla_chiplet, shidiannao_chiplet
from repro.cost.dataflow import map_output_stationary, map_weight_stationary
from repro.workloads import conv, dense, dwconv, pool


@pytest.fixture(scope="module")
def os_acc():
    return shidiannao_chiplet()


@pytest.fixture(scope="module")
def ws_acc():
    return nvdla_chiplet()


class TestOutputStationary:
    def test_resnet_conv_cycles(self, os_acc):
        # 64->64 3x3 @ 180x320 on a 16x16 tile: 12*20 positions, each
        # iterating k*c*r*s = 36864 cycles.
        layer = conv("c", (180, 320), 64, 64, r=3)
        m = map_output_stationary(layer, os_acc)
        assert m.passes == 240
        assert m.compute_cycles == 240 * 36864

    def test_engagement_with_edge_tiles(self, os_acc):
        # 23x40 plane: ceil(23/16)*ceil(40/16) = 2*3 = 6 positions.
        layer = conv("c", (23, 40), 512, 512, r=3)
        m = map_output_stationary(layer, os_acc)
        assert m.passes == 6
        assert m.engagement == pytest.approx(920 / (6 * 256))

    def test_token_grid_dense(self, os_acc):
        layer = dense("d", (200, 80), 384, 384)
        m = map_output_stationary(layer, os_acc)
        assert m.passes == 13 * 5
        assert m.compute_cycles == 65 * 384 * 384

    def test_1d_token_set_folds_flat(self, os_acc):
        layer = dense("d", (1, 1000), 16, 16)
        m = map_output_stationary(layer, os_acc)
        assert m.passes == 4  # ceil(1000/256)
        assert m.engagement == pytest.approx(1000 / (4 * 256))

    def test_weights_refetched_per_position(self, os_acc):
        layer = conv("c", (180, 320), 64, 64, r=3)
        m = map_output_stationary(layer, os_acc)
        assert m.weight_gb_words == layer.weight_words * 240

    def test_input_cached_when_footprint_fits(self, os_acc):
        # c*r*s = 64*9 = 576 <= 1024-word PE cache: inputs read once.
        layer = conv("c", (180, 320), 64, 64, r=3)
        m = map_output_stationary(layer, os_acc)
        assert m.input_gb_words == layer.input_words

    def test_input_rereads_when_footprint_overflows(self, os_acc):
        # c = 1536 > 1024: ceil(1536/1024) = 2 rereads.
        layer = dense("d", (200, 80), 384, 1536)
        m = map_output_stationary(layer, os_acc)
        assert m.input_gb_words == layer.input_words * 2

    def test_no_psum_traffic(self, os_acc):
        layer = conv("c", (64, 64), 64, 64)
        assert map_output_stationary(layer, os_acc).accum_words == 0


class TestWeightStationary:
    def test_resnet_conv_cycles_include_drain(self, ws_acc):
        # k/c tiles: 4*4 = 16 passes; per pass: plane * (9 + drain).
        layer = conv("c", (180, 320), 64, 64, r=3)
        m = map_weight_stationary(layer, ws_acc)
        drain = ws_acc.reduction_drain_cycles
        assert m.passes == 16
        assert m.compute_cycles == 16 * 57600 * (9 + drain)

    def test_attention_layer_drain_dominates(self, ws_acc):
        # r=s=1: per-pass cost is 1 + drain, so the WS penalty is largest
        # exactly on the fusion layers (the paper's Fig. 4 affinity).
        layer = dense("d", (200, 80), 384, 384)
        m = map_weight_stationary(layer, ws_acc)
        assert m.passes == 24 * 24
        assert m.compute_cycles == 576 * 16000 * (
            1 + ws_acc.reduction_drain_cycles)

    def test_weights_fetched_once(self, ws_acc):
        layer = conv("c", (180, 320), 64, 64, r=3)
        m = map_weight_stationary(layer, ws_acc)
        assert m.weight_gb_words == layer.weight_words

    def test_psum_spill_per_extra_c_tile(self, ws_acc):
        layer = dense("d", (200, 80), 384, 384)
        m = map_weight_stationary(layer, ws_acc)
        # ceil(384/16) - 1 = 23 extra C tiles.
        assert m.accum_words == 2 * layer.output_words * 23

    def test_depthwise_has_no_drain_or_spill(self, ws_acc):
        layer = dwconv("dw", (90, 160), 256, r=3)
        m = map_weight_stationary(layer, ws_acc)
        assert m.passes == 1  # 256 channels across 256 PEs
        assert m.compute_cycles == 14400 * 9
        assert m.accum_words == 0


class TestDispatch:
    def test_map_layer_dispatches_by_style(self, os_acc, ws_acc):
        layer = conv("c", (32, 32), 32, 32)
        assert (map_layer(layer, os_acc).compute_cycles
                == map_output_stationary(layer, os_acc).compute_cycles)
        assert (map_layer(layer, ws_acc).compute_cycles
                == map_weight_stationary(layer, ws_acc).compute_cycles)

    def test_vector_layers_rejected(self, os_acc):
        with pytest.raises(ValueError):
            map_layer(pool("p", (8, 8), 16), os_acc)

    def test_os_faster_on_attention_ws_competitive_on_dwconv(self, os_acc,
                                                             ws_acc):
        attn = dense("d", (200, 80), 384, 384)
        assert (map_layer(attn, ws_acc).compute_cycles
                > 5 * map_layer(attn, os_acc).compute_cycles)
